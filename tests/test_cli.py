"""End-to-end tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import contextlib
import io
import json
import os
import threading

import pytest

from repro.cli import build_parser, main
from repro.models import Task
from repro.serialization import tasks_to_csv, tasks_to_json


@pytest.fixture
def task_csv(tmp_path):
    path = os.path.join(tmp_path, "tasks.csv")
    with open(path, "w") as handle:
        tasks_to_csv(
            [
                Task(0.0, 40.0, 8000.0, "a"),
                Task(0.0, 70.0, 15000.0, "b"),
            ],
            handle,
        )
    return path


@pytest.fixture
def agreeable_json(tmp_path):
    path = os.path.join(tmp_path, "tasks.json")
    with open(path, "w") as handle:
        handle.write(
            tasks_to_json(
                [
                    Task(0.0, 30.0, 5000.0, "a"),
                    Task(10.0, 60.0, 5000.0, "b"),
                    Task(200.0, 260.0, 5000.0, "c"),
                ]
            )
        )
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "nope"])


class TestSolve:
    def test_demo(self, capsys):
        assert main(["solve", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "Section 4" in out
        assert "MEM" in out
        assert "energy report" in out

    def test_csv_input(self, capsys, task_csv):
        assert main(["solve", "--tasks", task_csv]) == 0
        out = capsys.readouterr().out
        assert "memory sleep Delta" in out

    def test_agreeable_json_input(self, capsys, agreeable_json):
        assert main(["solve", "--tasks", agreeable_json]) == 0
        out = capsys.readouterr().out
        assert "Section 5" in out
        assert "block(s)" in out

    def test_overhead_scheme_selected(self, capsys):
        assert main(["solve", "--demo", "--xi-m", "40"]) == 0
        out = capsys.readouterr().out
        assert "Section 7" in out

    def test_missing_tasks_errors(self):
        with pytest.raises(SystemExit, match="--tasks"):
            main(["solve"])


class TestSimulate:
    @pytest.mark.parametrize("policy", ["sdem-on", "mbkp", "mbkps", "avr", "race"])
    def test_synthetic_trace_all_policies(self, capsys, policy):
        assert (
            main(
                [
                    "simulate",
                    "--policy",
                    policy,
                    "--n",
                    "10",
                    "--seed",
                    "4",
                    "--x",
                    "300",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert policy in out
        assert "total" in out

    def test_dspstone_trace(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--dspstone",
                    "fft",
                    "--u",
                    "4",
                    "--n",
                    "12",
                    "--policy",
                    "sdem-on",
                ]
            )
            == 0
        )
        assert "fft" not in capsys.readouterr().err

    def test_gantt_flag(self, capsys):
        assert (
            main(
                ["simulate", "--n", "5", "--gantt", "--width", "40", "--seed", "2"]
            )
            == 0
        )
        assert "MEM" in capsys.readouterr().out


class TestExhibits:
    def test_fig7a_reduced(self, capsys, tmp_path, monkeypatch):
        out_dir = os.path.join(tmp_path, "results")
        assert (
            main(["fig7a", "--seeds", "1", "--n", "15", "--out", out_dir]) == 0
        )
        assert os.path.exists(os.path.join(out_dir, "fig7a.csv"))
        assert "improvement" in capsys.readouterr().out

    def test_fig6_reduced(self, capsys, tmp_path):
        out_dir = os.path.join(tmp_path, "results")
        assert main(["fig6", "--seeds", "1", "--n", "16", "--out", out_dir]) == 0
        assert os.path.exists(os.path.join(out_dir, "fig6_fft.csv"))
        assert os.path.exists(os.path.join(out_dir, "fig6_matmul.txt"))

    def test_tables(self, capsys):
        assert main(["tables", "--n", "6"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out and "Table 4" in out

    def test_fig6_with_workers_and_cache_matches_default(self, capsys, tmp_path):
        plain_dir = os.path.join(tmp_path, "plain")
        engine_dir = os.path.join(tmp_path, "engine")
        assert (
            main(["fig6", "--seeds", "1", "--n", "16", "--out", plain_dir, "--no-cache"])
            == 0
        )
        assert (
            main(
                [
                    "fig6", "--seeds", "1", "--n", "16", "--out", engine_dir,
                    "--workers", "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        for name in ("fig6_fft.csv", "fig6_matmul.csv"):
            with open(os.path.join(plain_dir, name), "rb") as a, open(
                os.path.join(engine_dir, name), "rb"
            ) as b:
                assert a.read() == b.read()
        # The default cache landed inside the out directory.
        assert os.path.isdir(os.path.join(engine_dir, ".cache"))
        assert not os.path.exists(os.path.join(plain_dir, ".cache"))


class TestBenchAndCache:
    def test_bench_quick_writes_report(self, capsys, tmp_path):
        report_path = os.path.join(tmp_path, "BENCH_experiments.json")
        cache_dir = os.path.join(tmp_path, "cache")
        assert (
            main(
                [
                    "bench", "--quick", "--workers", "2",
                    "--out", report_path, "--cache-dir", cache_dir,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serial cold" in out and "warm cache" in out
        import json as json_module

        with open(report_path, encoding="utf-8") as handle:
            trajectory = json_module.load(handle)["trajectory"]
        assert len(trajectory) == 1
        report = trajectory[-1]
        assert report["rows_identical"] is True
        assert set(report["modes"]) == {"serial_cold", "parallel_cold", "warm_cache"}
        assert report["modes"]["warm_cache"]["cached_units"] == report["slice"]["units"]
        assert "generated_at" in report

    def test_bench_appends_trajectory_instead_of_clobbering(
        self, capsys, tmp_path
    ):
        import json as json_module

        report_path = os.path.join(tmp_path, "BENCH_experiments.json")
        # Seed with the legacy single-report layout: the next run must
        # migrate it into the trajectory, not overwrite it.
        legacy = {"slice": {"benchmark": "fft"}, "rows_identical": True}
        with open(report_path, "w", encoding="utf-8") as handle:
            json_module.dump(legacy, handle)
        args = [
            "bench", "--quick",
            "--out", report_path,
            "--cache-dir", os.path.join(tmp_path, "cache"),
        ]
        assert main(args) == 0
        assert main(args) == 0
        capsys.readouterr()
        with open(report_path, encoding="utf-8") as handle:
            trajectory = json_module.load(handle)["trajectory"]
        assert len(trajectory) == 3
        assert trajectory[0] == legacy
        assert all("generated_at" in entry for entry in trajectory[1:])

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        cache_dir = os.path.join(tmp_path, "cache")
        report_path = os.path.join(tmp_path, "bench.json")
        assert (
            main(
                [
                    "bench", "--quick",
                    "--out", report_path, "--cache-dir", cache_dir,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["cache", "stats", "--dir", cache_dir]) == 0
        stats_out = capsys.readouterr().out
        assert "entries" in stats_out
        assert main(["cache", "clear", "--dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--dir", cache_dir]) == 0
        assert "entries:    0" in capsys.readouterr().out


class TestGlobalFlags:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_json_errors_wraps_command_failures(self, capsys):
        assert main(["solve", "--json-errors"]) == 2  # no --tasks and no --demo
        envelope = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert envelope["error"]["code"] == "CLI_ERROR"
        assert "--tasks" in envelope["error"]["message"]

    def test_json_errors_wraps_parse_failures(self, capsys):
        assert main(["--json-errors", "frobnicate"]) == 2
        envelope = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert envelope["error"]["code"] == "CLI_ERROR"

    def test_without_flag_systemexit_propagates(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


@contextlib.contextmanager
def background_server(**service_kwargs):
    """A real TCP solve server on an ephemeral port, in a side thread."""
    import asyncio

    from repro.service.server import SolveService

    started = threading.Event()
    state = {}

    def serve():
        async def runner():
            service = SolveService(**service_kwargs)
            server = await service.serve_tcp("127.0.0.1", 0)
            state["port"] = server.sockets[0].getsockname()[1]
            state["loop"] = asyncio.get_running_loop()
            state["stop"] = asyncio.Event()
            started.set()
            await state["stop"].wait()
            server.close()
            await server.wait_closed()
            await service.drain()

        asyncio.run(runner())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert started.wait(10.0), "server thread failed to start"
    try:
        yield state["port"]
    finally:
        state["loop"].call_soon_threadsafe(state["stop"].set)
        thread.join(10.0)


class TestServiceCli:
    def test_submit_demo_local(self, capsys):
        assert main(["submit", "--demo", "--local", "--n", "24", "--clients", "4"]) == 0
        out = capsys.readouterr().out
        assert "verdict:         OK" in out

    def test_submit_single_request_to_running_server(self, capsys, task_csv):
        with background_server() as port:
            code = main(
                ["submit", "--host", "127.0.0.1", "--port", str(port),
                 "--tasks", task_csv]
            )
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] is True
        assert response["result"]["scheme"] == "common-release-overhead"

    def test_serve_stats_prints_metrics_page(self, capsys):
        with background_server() as port:
            assert (
                main(["serve", "--stats", "--host", "127.0.0.1",
                      "--port", str(port)])
                == 0
            )
        out = capsys.readouterr().out
        assert "# TYPE repro_requests_total counter" in out
        assert "repro_queue_depth" in out

"""Unit and property tests for :mod:`repro.models.task`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.models import Task, TaskSet


def make_task(release=0.0, deadline=10.0, workload=5.0, name=""):
    return Task(release, deadline, workload, name)


class TestTask:
    def test_rejects_empty_feasible_region(self):
        with pytest.raises(ValueError):
            Task(5.0, 5.0, 1.0)

    def test_rejects_inverted_region(self):
        with pytest.raises(ValueError):
            Task(5.0, 4.0, 1.0)

    def test_rejects_nonpositive_workload(self):
        with pytest.raises(ValueError):
            Task(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            Task(0.0, 1.0, -2.0)

    def test_span_and_filled_speed(self):
        task = make_task(2.0, 12.0, 50.0)
        assert task.span == 10.0
        assert task.filled_speed == pytest.approx(5.0)

    def test_duration_at_speed(self):
        task = make_task(workload=30.0)
        assert task.duration_at(10.0) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            task.duration_at(0.0)

    def test_shifted_keeps_deadline_and_workload(self):
        task = make_task(0.0, 10.0, 5.0, "J")
        moved = task.shifted(release=4.0)
        assert moved.release == 4.0
        assert moved.deadline == 10.0
        assert moved.workload == 5.0
        assert moved.name == "J"

    def test_with_workload(self):
        task = make_task(workload=5.0)
        assert task.with_workload(2.5).workload == 2.5

    @given(
        release=st.floats(0, 1e3),
        span=st.floats(1e-3, 1e3),
        workload=st.floats(1e-3, 1e6),
    )
    def test_filled_speed_exactly_fills_region(self, release, span, workload):
        task = Task(release, release + span, workload)
        assert math.isclose(
            task.duration_at(task.filled_speed), task.span, rel_tol=1e-9
        )


class TestTaskSet:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TaskSet([])

    def test_sorted_by_deadline(self):
        ts = TaskSet(
            [make_task(0, 30, 1, "a"), make_task(0, 10, 1, "b"), make_task(0, 20, 1, "c")]
        )
        assert [t.deadline for t in ts] == [10, 20, 30]

    def test_auto_names_follow_sorted_order(self):
        ts = TaskSet([Task(0, 30, 1), Task(0, 10, 1)])
        assert [t.name for t in ts] == ["T1", "T2"]
        assert ts[0].deadline == 10

    def test_common_release_predicate(self, common_release_tasks):
        assert common_release_tasks.has_common_release()
        mixed = TaskSet([make_task(0, 10, 1), make_task(1, 20, 1)])
        assert not mixed.has_common_release()

    def test_common_deadline_predicate(self):
        ts = TaskSet([make_task(0, 10, 1), make_task(2, 10, 1)])
        assert ts.has_common_deadline()
        assert not ts.has_common_release()

    def test_agreeable_predicate(self, agreeable_tasks):
        assert agreeable_tasks.is_agreeable()
        nested = TaskSet([Task(0, 30, 1, "outer"), Task(5, 10, 1, "inner")])
        assert not nested.is_agreeable()

    def test_common_release_sets_are_agreeable(self, common_release_tasks):
        assert common_release_tasks.is_agreeable()

    def test_aggregates(self, common_release_tasks):
        assert common_release_tasks.earliest_release == 0.0
        assert common_release_tasks.latest_deadline == 40.0
        assert common_release_tasks.total_workload == pytest.approx(60.0)

    def test_max_filled_speed_and_feasibility(self):
        ts = TaskSet([make_task(0, 10, 100), make_task(0, 5, 20)])
        assert ts.max_filled_speed == pytest.approx(10.0)
        assert ts.is_feasible_at(10.0)
        assert not ts.is_feasible_at(9.0)

    def test_subset_slicing(self, common_release_tasks):
        sub = common_release_tasks.subset(1, 3)
        assert [t.name for t in sub] == ["T2", "T3"]
        with pytest.raises(ValueError):
            common_release_tasks.subset(2, 2)

    def test_normalized_to_zero(self):
        ts = TaskSet([make_task(5, 15, 1, "x"), make_task(7, 20, 2, "y")])
        norm = ts.normalized_to_zero()
        assert norm.earliest_release == 0.0
        assert norm.latest_deadline == 15.0
        assert [t.name for t in norm] == ["x", "y"]

    def test_with_common_release(self):
        ts = TaskSet([make_task(0, 15, 1), make_task(3, 20, 2)])
        re_anchored = ts.with_common_release(5.0)
        assert re_anchored.has_common_release()
        assert all(t.release == 5.0 for t in re_anchored)

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 100), st.floats(0.5, 100), st.floats(0.1, 100)
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_sorted_invariant(self, triples):
        tasks = [Task(r, r + span, w) for r, span, w in triples]
        ts = TaskSet(tasks)
        deadlines = ts.deadlines()
        assert deadlines == sorted(deadlines)
        assert len(ts) == len(tasks)

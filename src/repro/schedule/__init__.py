"""Schedule representation shared by every SDEM algorithm and baseline.

A :class:`Schedule` is a list of per-core timelines of constant-speed
execution intervals.  The memory's busy time is the union of all cores'
execution intervals; the *common idle time* (equivalently the maximal
memory sleep time Delta of the paper) is its complement within the
accounting horizon.
"""

from repro.schedule.timeline import (
    ExecutionInterval,
    CoreTimeline,
    Schedule,
    merge_intervals,
    complement_within,
    total_length,
)
from repro.schedule.validation import (
    FeasibilityError,
    validate_schedule,
    is_feasible,
)

__all__ = [
    "ExecutionInterval",
    "CoreTimeline",
    "Schedule",
    "merge_intervals",
    "complement_within",
    "total_length",
    "FeasibilityError",
    "validate_schedule",
    "is_feasible",
]

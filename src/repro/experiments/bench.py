"""``repro bench``: measure the experiment engine on a Fig. 6 slice.

Three timed runs of the same Fig. 6 FFT slice, in a fixed order:

1. **serial cold** -- ``max_workers=1``, no result cache, in-process
   memoization cleared: the pre-engine baseline;
2. **parallel cold** -- ``max_workers=N`` through the process pool,
   populating a fresh on-disk result cache as it goes;
3. **warm cache** -- ``max_workers=1`` again, every unit served from the
   cache populated by run 2.

The three runs must produce identical ``SeriesResult.rows()`` output --
:func:`run_bench` asserts it -- so the speedup table never advertises a
fast-but-different engine.  Results are printed as a table and written to
``BENCH_experiments.json`` for CI artifact upload.  Interpretation notes
live in docs/PERFORMANCE.md; in particular the parallel speedup is bounded
by the machine's core count, so on a single-core container run 2 shows
only pool overhead.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from repro.core.blocks import block_energy_cache_clear
from repro.experiments.cache import ResultCache
from repro.experiments.fig6 import fig6_specs
from repro.experiments.parallel import resolve_workers, run_series
from repro.experiments.runner import SeriesResult
from repro.utils.solvers import reset_solver_counts, solver_call_total

__all__ = ["run_bench", "render_bench_table", "write_bench_json"]

#: Default Fig. 6 slice: the full U sweep at a moderate seed count.
BENCH_U_VALUES: List[int] = [2, 3, 4, 5, 6, 7, 8, 9]
BENCH_SEEDS = 5
BENCH_INSTANCES = 48

#: ``--quick`` slice for CI smoke: a few seconds end to end.
QUICK_U_VALUES: List[int] = [2, 3]
QUICK_SEEDS = 2
QUICK_INSTANCES = 24


def _timed_run(
    name: str,
    specs,
    *,
    seeds: int,
    max_workers: Optional[int],
    cache: Optional[ResultCache],
) -> Dict[str, object]:
    """One bench mode: cold in-process state, wall-clock + counters."""
    block_energy_cache_clear()
    reset_solver_counts()
    start = time.perf_counter()
    series = run_series(
        name, specs, seeds=seeds, max_workers=max_workers, cache=cache
    )
    seconds = time.perf_counter() - start
    return {
        "series": series,
        "seconds": seconds,
        # Pool workers count in their own processes; use the per-unit
        # counters shipped back in the results, not this process's tally.
        "solver_calls": sum(p.solver_calls for p in series.points),
        "cached_units": sum(p.cached_units for p in series.points),
        "local_solver_calls": solver_call_total(),
    }


def run_bench(
    *,
    benchmark: str = "fft",
    u_values: Optional[List[int]] = None,
    seeds: Optional[int] = None,
    instances: Optional[int] = None,
    workers: Optional[int] = None,
    cache_root: str,
    quick: bool = False,
) -> Dict[str, object]:
    """Run the three-mode benchmark and return the report dict.

    ``workers=None`` uses every core for the parallel mode.  ``cache_root``
    hosts the run's result cache; it is cleared first so the "cold" modes
    are honestly cold.
    """
    if quick:
        u_values = u_values if u_values is not None else QUICK_U_VALUES
        seeds = seeds if seeds is not None else QUICK_SEEDS
        instances = instances if instances is not None else QUICK_INSTANCES
    else:
        u_values = u_values if u_values is not None else BENCH_U_VALUES
        seeds = seeds if seeds is not None else BENCH_SEEDS
        instances = instances if instances is not None else BENCH_INSTANCES
    pool_workers = resolve_workers(workers)

    specs = fig6_specs(benchmark, u_values=u_values, instances=instances)
    cache = ResultCache(cache_root)
    cache.clear()

    serial = _timed_run(
        "bench-serial", specs, seeds=seeds, max_workers=1, cache=None
    )
    parallel = _timed_run(
        "bench-parallel", specs, seeds=seeds, max_workers=pool_workers, cache=cache
    )
    warm = _timed_run(
        "bench-warm", specs, seeds=seeds, max_workers=1, cache=cache
    )

    rows = [mode["series"].rows() for mode in (serial, parallel, warm)]
    identical = rows[0] == rows[1] == rows[2]
    assert identical, "bench modes disagree -- engine determinism is broken"

    def mode_report(mode: Dict[str, object]) -> Dict[str, object]:
        return {
            "seconds": round(mode["seconds"], 4),
            "solver_calls": mode["solver_calls"],
            "cached_units": mode["cached_units"],
        }

    serial_s = serial["seconds"]
    report: Dict[str, object] = {
        "slice": {
            "benchmark": benchmark,
            "u_values": u_values,
            "seeds": seeds,
            "instances": instances,
            "units": len(u_values) * seeds,
        },
        "workers": pool_workers,
        "cpu_count": os.cpu_count(),
        "modes": {
            "serial_cold": mode_report(serial),
            "parallel_cold": mode_report(parallel),
            "warm_cache": mode_report(warm),
        },
        "speedup": {
            "parallel_vs_serial": round(serial_s / parallel["seconds"], 3)
            if parallel["seconds"] > 0
            else None,
            "warm_vs_serial": round(serial_s / warm["seconds"], 3)
            if warm["seconds"] > 0
            else None,
            "warm_fraction_of_serial": round(warm["seconds"] / serial_s, 4)
            if serial_s > 0
            else None,
        },
        "rows_identical": identical,
        "cache_entries": cache.stats().entries,
    }
    return report


def render_bench_table(report: Dict[str, object]) -> str:
    """Human-readable speedup table for one :func:`run_bench` report."""
    sl = report["slice"]
    modes = report["modes"]
    speed = report["speedup"]
    serial_s = modes["serial_cold"]["seconds"]
    lines = [
        f"bench slice: fig6-{sl['benchmark']} U={sl['u_values']} "
        f"seeds={sl['seeds']} n={sl['instances']} "
        f"({sl['units']} work units; {report['workers']} worker(s), "
        f"{report['cpu_count']} cpu(s))",
        f"{'mode':<14s} {'seconds':>9s} {'speedup':>9s} "
        f"{'solver calls':>13s} {'cached units':>13s}",
    ]
    for label, key in (
        ("serial cold", "serial_cold"),
        ("parallel cold", "parallel_cold"),
        ("warm cache", "warm_cache"),
    ):
        mode = modes[key]
        speedup = serial_s / mode["seconds"] if mode["seconds"] > 0 else 0.0
        lines.append(
            f"{label:<14s} {mode['seconds']:>9.3f} {speedup:>8.2f}x "
            f"{mode['solver_calls']:>13d} {mode['cached_units']:>13d}"
        )
    lines.append(
        f"rows identical across modes: {report['rows_identical']}; "
        f"warm run took {speed['warm_fraction_of_serial'] * 100.0:.1f}% "
        f"of cold serial"
    )
    return "\n".join(lines)


def write_bench_json(report: Dict[str, object], path: str) -> None:
    """Persist the report where CI uploads it as an artifact."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

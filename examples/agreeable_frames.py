#!/usr/bin/env python3
"""Video-frame bursts: the Section 5 dynamic program in action.

A camera pipeline emits bursts of frame-processing jobs.  Within a burst
deadlines are agreeable (later frames arrive later and are due later);
between bursts the system is idle.  The Section 5 DP decides, per burst
spacing, whether to fuse work into one long memory-busy block or split it
and sleep in between -- and, inside each block, which tasks to stretch and
which to pin at their critical speed.

Run:  python examples/agreeable_frames.py
"""

from __future__ import annotations

from repro import Task, TaskSet, paper_platform, solve_agreeable


def burst(start: float, count: int, *, label: str, gap: float = 8.0) -> list:
    """One camera burst: frames every ``gap`` ms, 30 ms to process each."""
    tasks = []
    for k in range(count):
        release = start + k * gap
        tasks.append(
            Task(release, release + 30.0, 6000.0 + 500.0 * k, f"{label}{k}")
        )
    return tasks


def main() -> None:
    # 0.5 W DRAM with a 40 ms break-even: sleeping between bursts only pays
    # off when the gap is long enough (the Section 7 per-block overhead).
    platform = paper_platform(xi=0.0, xi_m=40.0, alpha_m=500.0)

    for start_b in (35.0, 180.0, 460.0):
        tasks = TaskSet(burst(0.0, 3, label="a") + burst(start_b, 3, label="b"))
        solution = solve_agreeable(
            tasks, platform, include_transition_overhead=True
        )
        print(f"second burst at {start_b:g} ms -> {solution.num_blocks} "
              f"block(s), energy {solution.predicted_energy / 1000.0:.2f} mJ")
        for block in solution.blocks:
            members = ", ".join(p.name for p in block.placements)
            print(
                f"  block [{block.start:7.1f}, {block.end:7.1f}] ms "
                f"({block.length:6.1f} ms busy): {members}"
            )
            for p in block.placements:
                s0 = platform.core.s0(
                    next(t for t in tasks if t.name == p.name)
                )
                tag = "critical" if abs(p.speed - s0) < 1e-6 else "aligned"
                print(
                    f"    {p.name:<4s} {p.speed:7.1f} MHz "
                    f"[{p.start:7.1f}, {p.end:7.1f}] ({tag})"
                )
        print()

    print("Close bursts fuse into one memory-busy block; distant bursts are")
    print("split so the DRAM can sleep between them -- the DP finds the")
    print("crossover automatically (Lemma 4 + per-block optimum).")


if __name__ == "__main__":
    main()

"""ε-approximate solver tier (FPTAS mode, ``--solver exact|fptas``).

The exact DPs (Sections 5 and 7) price O(n^2) blocks with a continuous
2-D minimization inside each, which caps task sets at tens of tasks no
matter how fast each inner loop gets.  Following the discretization
strategy of *A Fully Polynomial-Time Approximation Scheme for Speed
Scaling with Sleep State* (Antoniadis, Huang, Ott — arXiv:1407.0892),
this module trades an ε-bounded energy increase for a huge-n runtime:
every continuous quantity the exact solvers optimize over is snapped to
a geometric grid keyed on ε, and the DP compares *rounded* states while
reporting the true (unrounded) energy of the partition it picks.

With ``delta = epsilon / 4`` the two approximation sources compose as

* **endpoint grids** — a multi-task block's busy interval ``[s, e]`` is
  chosen from uniform grids anchored outward at the block's first
  release / last deadline with pitch ``delta * L_min`` (``L_min`` = the
  block's minimum feasible busy length).  Rounding the optimum's start
  down and end up only *widens* every task window (execution energy is
  non-increasing in window width), and costs at most ``alpha_m * 2 *
  pitch <= 2 * delta * E*`` extra memory-awake energy because any
  feasible block pays at least ``alpha_m * L_min``;
* **energy ladder** — the prefix DP compares block prices rounded up
  onto the ladder ``(1 + delta) ** k``, inflating any partition's
  comparison value by at most ``(1 + delta)``.

Combined: ``(1 + 2*delta) * (1 + delta) <= 1 + epsilon`` for
``epsilon <= 2``.  The common-release tier instead lays a geometric
ladder over the memory busy *length* and evaluates the exact Section 7
objective (:func:`repro.core.transition.overhead_energy_at_delta`,
which degenerates to the Section 4 objective when the break-even times
are zero) at every rung: stretching the optimal busy length ``L*`` to
``rho * L*`` with ``rho <= 1 + delta`` scales the static/memory terms
by at most ``rho`` and decreases everything else.

Cluster decomposition keeps the huge-n path near-linear: the agreeable
DP is split *exactly* (no approximation) at feasibility gaps where
splitting is provably dominant — every positive gap when sleeping is
free, gaps of at least ``xi_m`` under the Section 7 per-block overhead,
and every index when ``alpha_m = 0`` (no memory coupling, the per-task
closed form is optimal).  On sporadic traces cluster sizes are bounded,
so :func:`solve_agreeable_fptas_columns` — which never materializes
per-task ``Task`` objects — runs the O(m^2) DP only inside small
clusters and handles n in the 10^3–10^5 range.

The module also owns the process-wide *solver tier* selection mirrored
on :mod:`repro.core.vectorized`'s backend switch: ``REPRO_SOLVER_TIER``
/ ``REPRO_SOLVER_EPSILON`` environment variables, a programmatic
override (:func:`set_solver_tier`), and :func:`solver_cache_component`
for cache keys so exact and fptas results can never alias.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core import vectorized
from repro.core.agreeable import AgreeableSolution
from repro.core.blocks import BlockSolution, TaskPlacement
from repro.core.common_release import CommonReleaseSolution
from repro.core.transition import _schedule_geometry, overhead_energy_at_delta
from repro.models.platform import Platform
from repro.models.task import Task, TaskSet
from repro.units import MS, SCALAR, UJ, unit
from repro.utils.solvers import golden_section_minimize, record_solver_call

__all__ = [
    "DEFAULT_EPSILON",
    "EPSILON_ENV",
    "SOLVER_TIERS",
    "TIER_ENV",
    "get_solver_epsilon",
    "get_solver_tier",
    "pinned_solver",
    "set_solver_tier",
    "solve_agreeable_fptas",
    "solve_agreeable_fptas_columns",
    "solve_common_release_fptas",
    "solver_cache_component",
    "solver_override",
]

TIER_ENV = "REPRO_SOLVER_TIER"
EPSILON_ENV = "REPRO_SOLVER_EPSILON"
SOLVER_TIERS = ("exact", "fptas")
DEFAULT_EPSILON = 0.1

#: Grid prices at or above this are graded infeasibility penalties from
#: the block-energy evaluators (they start at ``vectorized._PENALTY``).
_INFEASIBLE_FLOOR = 1e29

#: Per-axis cap on endpoint-grid resolution.  ``ceil(span / pitch)``
#: exceeds this only on pathological span/workload ratios; the pitch is
#: then widened to keep the search bounded (the ε guarantee loosens only
#: on those instances, never silently on normal ones).
_GRID_MAX_POINTS = 20000

#: Coordinate-descent sweeps before snapping onto the ε-grid.
_DESCENT_ROUNDS = 3

_tier_override: Optional[str] = None
_epsilon_override: Optional[float] = None


# ---------------------------------------------------------------------------
# Tier selection (mirrors repro.core.vectorized's backend switch)
# ---------------------------------------------------------------------------


def _validate_tier(name: object) -> str:
    tier = str(name).strip().lower()
    if tier not in SOLVER_TIERS:
        raise ValueError(
            f"unknown solver tier {name!r}; expected one of {SOLVER_TIERS}"
        )
    return tier


@unit(SCALAR)
def _validate_epsilon(value: object) -> float:
    """Parse and range-check an ε; the bound proof needs ``epsilon <= 2``."""
    try:
        eps = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ValueError(f"epsilon must be a number, got {value!r}") from None
    if not math.isfinite(eps) or eps <= 0.0 or eps > 2.0:
        raise ValueError(f"epsilon must lie in (0, 2], got {value!r}")
    return eps


def set_solver_tier(tier: Optional[str], epsilon: Optional[float] = None) -> None:
    """Set (or with ``None`` clear) the process-wide solver tier override."""
    global _tier_override, _epsilon_override
    if tier is None:
        _tier_override = None
        _epsilon_override = None
        return
    _tier_override = _validate_tier(tier)
    _epsilon_override = None if epsilon is None else _validate_epsilon(epsilon)


def get_solver_tier() -> str:
    """Active solver tier: override > $REPRO_SOLVER_TIER > ``"exact"``."""
    if _tier_override is not None:
        return _tier_override
    raw = os.environ.get(TIER_ENV)
    if raw:
        return _validate_tier(raw)
    return "exact"


@unit(SCALAR)
def get_solver_epsilon() -> float:
    """Active ε: override > $REPRO_SOLVER_EPSILON > :data:`DEFAULT_EPSILON`."""
    if _epsilon_override is not None:
        return _epsilon_override
    raw = os.environ.get(EPSILON_ENV)
    if raw:
        return _validate_epsilon(raw)
    return DEFAULT_EPSILON


def solver_override() -> Tuple[Optional[str], Optional[float]]:
    """The raw (tier, epsilon) override pair, for save/restore pinning."""
    return _tier_override, _epsilon_override


@contextmanager
def pinned_solver(
    tier: Optional[str], epsilon: Optional[float] = None
) -> Iterator[None]:
    """Pin the solver tier for a scope, restoring the previous override."""
    saved_tier, saved_epsilon = solver_override()
    set_solver_tier(tier, epsilon)
    try:
        yield
    finally:
        set_solver_tier(saved_tier, saved_epsilon)


def solver_cache_component() -> Dict[str, object]:
    """Cache-key component for the active tier.

    Exact stays a bare ``{"tier": "exact"}`` so every exact key is a pure
    function of the pre-existing payload fields plus this constant; fptas
    keys additionally carry ε, so results at different tolerances can
    never alias each other or the exact tier.
    """
    if get_solver_tier() == "fptas":
        return {"tier": "fptas", "epsilon": get_solver_epsilon()}
    return {"tier": "exact"}


# ---------------------------------------------------------------------------
# Discretization geometry
# ---------------------------------------------------------------------------


@unit(SCALAR)
def _rounding_delta(epsilon: float) -> float:
    """``delta = epsilon / 4``: grid (1+2δ) times ladder (1+δ) ≤ 1+ε."""
    return 0.25 * epsilon


@unit(MS)
def _grid_step(epsilon: float, min_busy_ms: float) -> float:
    """Endpoint-grid pitch: δ times the block's minimum busy length."""
    step = _rounding_delta(epsilon) * min_busy_ms
    return max(step, 1e-9)


@unit(UJ)
def _round_energy_up(energy: float, delta: float) -> float:
    """Round an energy up onto the geometric ladder ``(1 + delta) ** k``."""
    if energy <= 0.0 or not math.isfinite(energy):
        return energy
    k = math.ceil(math.log(energy) / math.log1p(delta))
    rounded = (1.0 + delta) ** k
    while rounded < energy:  # guard against log/pow rounding dust
        k += 1
        rounded = (1.0 + delta) ** k
    return rounded


@unit(MS)
def _busy_ladder(min_length: float, horizon: float, delta: float) -> List[float]:
    """Geometric busy-length candidates covering ``[min_length, horizon]``.

    For any optimal busy length ``L*`` in that range the ladder contains a
    rung ``L`` with ``L* <= L <= (1 + delta) * L*`` (clamped to the
    horizon), which is all the (1+δ) scaling argument needs.
    """
    floor = max(min_length, horizon * 1e-9)
    lengths = [floor]
    if horizon > floor:
        ratio = 1.0 + delta
        value = floor * ratio
        while value < horizon:
            lengths.append(value)
            value *= ratio
        lengths.append(horizon)
    return lengths


# ---------------------------------------------------------------------------
# Block pricing on the endpoint grids
# ---------------------------------------------------------------------------


def _price_block_discrete(
    evaluate: Callable[[float, float], float],
    start_lo: float,
    end_hi: float,
    step: float,
    *,
    start_hi: Optional[float] = None,
    end_lo: Optional[float] = None,
) -> Optional[Tuple[float, float, float]]:
    """Minimize a block objective over the outward-anchored endpoint grids.

    Starts ascend from ``start_lo`` (the block's first release) and ends
    descend from ``end_hi`` (its last deadline) in multiples of ``step``.
    The landscape is the same one the exact tier minimizes with 2-D
    convex descent (``blocks._solve_block_descent``), so the continuous
    minimum is located the same way — per-axis golden-section coordinate
    descent — and then snapped *outward* onto the grid (start down, end
    up: windows only widen).  An outward-biased neighborhood around the
    snap absorbs descent landing within a pitch of the true optimum, so
    the evaluated set always contains the outward-rounded grid point the
    (1 + 2δ) bound argues about.

    Returns ``(energy, start, end)`` or ``None`` when every candidate is
    an infeasibility penalty.  ``start_hi`` / ``end_lo`` optionally
    tighten the per-axis line-search intervals the way the exact descent
    does (the block must start by its first task's deadline and end after
    its last task's release); the *grids* keep their full anchors so the
    snap geometry is unchanged.
    """
    span = end_hi - start_lo
    if span <= 0.0:
        return None
    count = int(math.ceil(span / step))
    if count > _GRID_MAX_POINTS:
        count = _GRID_MAX_POINTS
        step = span / count
    top = count - 1 if count > 1 else 0
    s_box = end_hi if start_hi is None else min(max(start_hi, start_lo), end_hi)
    e_box = start_lo if end_lo is None else min(max(end_lo, start_lo), end_hi)

    # Descent error up to one pitch keeps the outward snap's -2..+1
    # neighborhood covering the true optimum's outward-rounded grid point.
    tol = max(step, 1e-12)
    s_cur, e_cur = start_lo, end_hi
    f_cur = evaluate(s_cur, e_cur)
    for _ in range(_DESCENT_ROUNDS):
        f_before = f_cur
        s_new, f_s = golden_section_minimize(
            lambda x: evaluate(x, e_cur), start_lo, s_box, tol=tol
        )
        if f_s < f_cur:
            s_cur, f_cur = s_new, f_s
        e_new, f_e = golden_section_minimize(
            lambda y: evaluate(s_cur, y), e_box, end_hi, tol=tol
        )
        if f_e < f_cur:
            e_cur, f_cur = e_new, f_e
        if f_before - f_cur <= 1e-12 * max(abs(f_before), 1.0):
            break

    best_value = math.inf
    best_i = 0
    best_j = 0
    seen: Dict[Tuple[int, int], float] = {}
    i0 = int((s_cur - start_lo) / step)
    j0 = int((end_hi - e_cur) / step)
    for di in (-2, -1, 0, 1):
        for dj in (-2, -1, 0, 1):
            i = min(max(i0 + di, 0), top)
            j = min(max(j0 + dj, 0), top)
            if (i, j) in seen:
                continue
            value = evaluate(start_lo + i * step, end_hi - j * step)
            seen[(i, j)] = value
            if value < best_value:
                best_value = value
                best_i, best_j = i, j
    if (0, 0) not in seen:
        # The widest corner is feasible whenever any endpoint choice is.
        value = evaluate(start_lo, end_hi)
        if value < best_value:
            best_value = value
            best_i, best_j = 0, 0
    if best_value >= _INFEASIBLE_FLOOR:
        return None
    return best_value, start_lo + best_i * step, end_hi - best_j * step


# ---------------------------------------------------------------------------
# Cluster decomposition and the rounded-state prefix DP
# ---------------------------------------------------------------------------


def _split_indices(
    releases: Sequence[float],
    deadlines: Sequence[float],
    alpha_m: float,
    overhead: float,
    xi_m: float,
) -> List[int]:
    """Exact (dominance-based) cluster boundaries for the agreeable DP.

    * ``alpha_m = 0``: no memory coupling — per-task blocks are optimal,
      split at every index;
    * free sleeping (no per-block overhead): split at every feasibility
      gap, mirroring the exact DP's gap pruning (saves ``alpha_m * gap``);
    * positive overhead: split only at gaps of at least ``xi_m``, where
      the saved awake time always amortizes the extra sleep cycle.
    """
    n = len(releases)
    bounds = [0]
    for k in range(n - 1):
        gap = releases[k + 1] - deadlines[k]
        if alpha_m <= 0.0:
            split = True
        elif overhead <= 0.0:
            split = gap > 1e-9
        else:
            split = gap >= xi_m - 1e-9
        if split:
            bounds.append(k + 1)
    bounds.append(n)
    return bounds


def _cluster_partition(
    m: int,
    price: Callable[[int, int], Optional[Tuple[float, object]]],
    overhead: float,
    delta: float,
) -> List[Tuple[int, int, float, object]]:
    """Prefix DP over one cluster, comparing ladder-rounded block prices.

    ``price(p, q)`` returns ``(true_energy, payload)`` for the block of
    cluster-relative tasks ``[p, q)`` or ``None`` when that block is
    infeasible.  Returns the chosen blocks as ``(p, q, true_energy,
    payload)`` in task order; the caller reports true energies, the
    rounding only coarsens DP comparisons.
    """
    best = [math.inf] * (m + 1)
    best[0] = 0.0
    prev = [-1] * (m + 1)
    choice: Dict[int, Tuple[int, float, object]] = {}
    for q in range(1, m + 1):
        for p in range(q):
            priced = price(p, q)
            if priced is None:
                continue
            energy, payload = priced
            cand = best[p] + _round_energy_up(energy + overhead, delta)
            if cand < best[q]:
                best[q] = cand
                prev[q] = p
                choice[q] = (p, energy, payload)
    if not math.isfinite(best[m]):
        raise ValueError("cluster DP found no feasible block partition")
    out: List[Tuple[int, int, float, object]] = []
    q = m
    while q > 0:
        p, energy, payload = choice[q]
        out.append((p, q, energy, payload))
        q = p
    out.reverse()
    return out


@unit(UJ)
def _singleton_energy(
    release: float, deadline: float, workload: float, platform: Platform
) -> float:
    """Closed-form single-task block energy (Section 5.2, one task).

    The optimal singleton block shrinks to exactly the execution at the
    clamped memory-associated critical speed ``s_1``; this is *exact*,
    so singleton-heavy traces lose nothing to the approximation.
    """
    core = platform.core
    alpha_m = platform.memory.alpha_m
    filled = workload / (deadline - release)
    speed = min(max(core.s_cm(alpha_m), filled), core.s_up)
    return alpha_m * (workload / speed) + core.execution_energy(workload, speed)


def _scalar_placements(
    members: Sequence[Task], platform: Platform, start: float, end: float
) -> Tuple[TaskPlacement, ...]:
    """Per-task placements at ``[start, end]``, scalar path only.

    Mirrors ``blocks._placements_at``'s reference branch; the fptas tier
    uses it on every backend so its schedules (like its prices) are
    backend-independent floats.
    """
    core = platform.core
    placements: List[TaskPlacement] = []
    for task in members:
        lo = max(task.release, start)
        hi = min(task.deadline, end)
        min_duration = task.workload / core.s_up
        window = max(hi - lo, min_duration)
        if core.alpha == 0.0:
            duration = window
        else:
            duration = min(max(task.workload / core.s0(task), min_duration), window)
        placements.append(
            TaskPlacement(task.name, lo, lo + duration, task.workload / duration)
        )
    return tuple(placements)


def _solve_singleton(task: Task, platform: Platform) -> BlockSolution:
    """Materialized :class:`BlockSolution` for the singleton closed form."""
    core = platform.core
    alpha_m = platform.memory.alpha_m
    speed = min(max(core.s_cm(alpha_m), task.filled_speed), core.s_up)
    duration = task.workload / speed
    start = task.release
    energy = _singleton_energy(task.release, task.deadline, task.workload, platform)
    placement = TaskPlacement(task.name, start, start + duration, speed)
    return BlockSolution(
        tasks=TaskSet.presorted((task,)),
        start=start,
        end=start + duration,
        energy=energy,
        placements=(placement,),
    )


# ---------------------------------------------------------------------------
# Agreeable fptas (object path)
# ---------------------------------------------------------------------------


def solve_agreeable_fptas(
    tasks: TaskSet,
    platform: Platform,
    *,
    epsilon: Optional[float] = None,
    include_transition_overhead: bool = False,
    check_inputs: bool = True,
) -> AgreeableSolution:
    """(1+ε)-approximate agreeable-deadline SDEM schedule.

    Drop-in sibling of :func:`repro.core.agreeable.solve_agreeable`
    returning the same :class:`AgreeableSolution` type, with
    ``predicted_energy <= (1 + epsilon)`` times the exact optimum and a
    feasible schedule (all placements inside task windows at or below
    ``s_up``).  ``epsilon`` defaults to the active tier ε
    (:func:`get_solver_epsilon`).
    """
    eps = _validate_epsilon(get_solver_epsilon() if epsilon is None else epsilon)
    if check_inputs:
        if not tasks.is_agreeable():
            raise ValueError("Section 5 schemes require agreeable deadlines")
        if not tasks.is_feasible_at(platform.core.s_up):
            raise ValueError("task set infeasible even at s_up")
    record_solver_call("solve_agreeable_fptas")
    core = platform.core
    memory = platform.memory
    overhead = memory.transition_energy() if include_transition_overhead else 0.0
    delta = _rounding_delta(eps)
    n = len(tasks)
    if n == 0:
        return AgreeableSolution(
            tasks=tasks, blocks=(), predicted_energy=0.0, block_overhead=overhead
        )
    releases = [t.release for t in tasks]
    deadlines = [t.deadline for t in tasks]
    workloads = [t.workload for t in tasks]
    bounds = _split_indices(releases, deadlines, memory.alpha_m, overhead, memory.xi_m)

    blocks: List[BlockSolution] = []
    total = 0.0
    for a, b in zip(bounds[:-1], bounds[1:]):
        m = b - a

        def price(p: int, q: int, _a: int = a) -> Optional[Tuple[float, object]]:
            g_p, g_q = _a + p, _a + q
            width = q - p
            if width == 1:
                solution = _solve_singleton(tasks[g_p], platform)
                return solution.energy, solution
            start_lo = releases[g_p]
            end_hi = deadlines[g_q - 1]
            min_busy = max(workloads[g_p:g_q]) / core.s_up
            step = _grid_step(eps, min_busy)
            priced = _price_block_discrete(
                lambda s, e: _columns_block_energy(
                    releases, deadlines, workloads, g_p, g_q, platform, s, e
                ),
                start_lo,
                end_hi,
                step,
                start_hi=deadlines[g_p],
                end_lo=releases[g_q - 1],
            )
            if priced is None:
                return None
            energy, s_opt, e_opt = priced
            subset = tasks.subset(g_p, g_q)
            placements = _scalar_placements(subset.tasks, platform, s_opt, e_opt)
            return energy, BlockSolution(
                tasks=subset,
                start=s_opt,
                end=e_opt,
                energy=energy,
                placements=placements,
            )

        for _p, _q, energy, payload in _cluster_partition(m, price, overhead, delta):
            assert isinstance(payload, BlockSolution)
            blocks.append(payload)
            total += energy + overhead
    return AgreeableSolution(
        tasks=tasks,
        blocks=tuple(blocks),
        predicted_energy=total,
        block_overhead=overhead,
    )


# ---------------------------------------------------------------------------
# Common-release fptas (Sections 4 and 7)
# ---------------------------------------------------------------------------


def solve_common_release_fptas(
    tasks: TaskSet,
    platform: Platform,
    *,
    epsilon: Optional[float] = None,
    horizon_end: Optional[float] = None,
    check_inputs: bool = True,
) -> CommonReleaseSolution:
    """(1+ε)-approximate common-release schedule (overhead-aware).

    Evaluates the exact Section 7 objective on a geometric ladder of
    memory busy lengths.  With zero break-even times every gap cost
    vanishes and the objective *is* the Section 4 one, so this single
    entry point approximates both ``solve_common_release`` and
    ``solve_common_release_with_overhead``.  Stretching the optimal busy
    length by ``rho <= 1 + delta`` scales the static (``alpha``,
    ``alpha_m``) terms by at most ``rho``, decreases dynamic energy, and
    never increases gap costs — hence the (1+ε) bound with room to
    spare.
    """
    eps = _validate_epsilon(get_solver_epsilon() if epsilon is None else epsilon)
    core = platform.core
    if check_inputs:
        if not tasks.has_common_release():
            raise ValueError("the common-release schemes require a common release")
        if not tasks.is_feasible_at(core.s_up):
            raise ValueError("task set infeasible even at s_up")
    record_solver_call("solve_common_release_fptas")
    delta_step = _rounding_delta(eps)
    release = tasks[0].release
    horizon, ends, _workloads, order = _schedule_geometry(tasks, platform)
    rel_end = (
        tasks.latest_deadline - release
        if horizon_end is None
        else horizon_end - release
    )
    if rel_end < horizon - 1e-9:
        raise ValueError(
            f"horizon_end {horizon_end} precedes the schedule end "
            f"{release + horizon}"
        )
    min_length = max(t.workload for t in tasks) / core.s_up
    best_energy = math.inf
    best_length = horizon
    for length in _busy_ladder(min_length, horizon, delta_step):
        energy = overhead_energy_at_delta(
            tasks, platform, horizon - length, horizon_end=horizon_end
        )
        if energy < best_energy - 1e-12:
            best_energy = energy
            best_length = length
    if not math.isfinite(best_energy):  # pragma: no cover - feasibility-guarded
        raise RuntimeError("no feasible busy length found")

    busy_end = best_length
    finish: Dict[str, float] = {}
    speeds: Dict[str, float] = {}
    for natural, task in zip(ends, order):
        end_rel = min(natural, busy_end)
        finish[task.name] = release + end_rel
        speeds[task.name] = task.workload / end_rel
    aligned_after = 0
    for natural in ends:
        if natural < busy_end - 1e-9:
            aligned_after += 1
    return CommonReleaseSolution(
        tasks=tasks,
        release=release,
        interval_end=release + horizon,
        delta=horizon - busy_end,
        case_index=min(len(ends), aligned_after + 1),
        finish_times=finish,
        speeds=speeds,
        predicted_energy=best_energy,
        alpha_zero=core.alpha == 0.0,
    )


# ---------------------------------------------------------------------------
# Huge-n columns path (no per-task Python objects)
# ---------------------------------------------------------------------------


@unit(UJ)
def _columns_block_energy(
    releases: Sequence[float],
    deadlines: Sequence[float],
    workloads: Sequence[float],
    lo: int,
    hi: int,
    platform: Platform,
    start: float,
    end: float,
) -> float:
    """Scalar block energy over column slices ``[lo, hi)``.

    Mirrors ``repro.core.blocks._block_energy_scalar`` (same window
    clamps, same relative speed-cap tolerance) without constructing Task
    objects.  One deliberate difference: the degenerate region ``end <=
    start`` is *not* special-cased to a flat ``_PENALTY * (1 + overlap)``
    -- that grading sits below the adjacent window-violation penalties
    and forms a spurious local minimum exactly at ``end == start``, which
    a 1-D line search can lock onto.  Here the per-task violation loop
    prices the degenerate region too (every window shrinks through zero
    and keeps shrinking), so the penalty is continuous and monotone
    across the boundary and descent is always steered back toward the
    feasible valley.
    """
    core = platform.core
    s_up = core.s_up
    s_m = core.s_m
    alpha = core.alpha
    total = platform.memory.alpha_m * (end - start)
    violation = 0.0
    for i in range(lo, hi):
        w_lo = releases[i] if releases[i] > start else start
        w_hi = deadlines[i] if deadlines[i] < end else end
        window = w_hi - w_lo
        w = workloads[i]
        min_duration = w / s_up
        if window < min_duration * (1.0 - 1e-12) - 1e-12:
            violation += min_duration - window
            continue
        if window < min_duration:
            window = min_duration
        if alpha == 0.0:
            duration = window
        else:
            filled = w / (deadlines[i] - releases[i])
            s0 = min(max(s_m, filled), s_up)
            duration = min(max(w / s0, min_duration), window)
        total += core.execution_energy(w, w / duration)
    if violation > 0.0:
        return vectorized._PENALTY * (1.0 + violation)
    return total


def solve_agreeable_fptas_columns(
    releases: Sequence[float],
    deadlines: Sequence[float],
    workloads: Sequence[float],
    platform: Platform,
    *,
    epsilon: Optional[float] = None,
    include_transition_overhead: bool = False,
) -> Dict[str, object]:
    """Array-only agreeable fptas for huge n (10^3–10^5 tasks).

    Takes the trace as parallel columns in agreeable order and returns a
    summary dict (``energy``, ``num_blocks``, ``clusters``,
    ``max_cluster_size``) without ever materializing per-task Python
    objects: singleton clusters — the vast majority on sporadic traces —
    take one closed-form evaluation each, and the O(m^2) grid-priced DP
    runs only inside multi-task clusters on index slices.  Both paths
    share the scalar pricing evaluator, so energies are float-identical
    with :func:`solve_agreeable_fptas` on the same trace and independent
    of the numeric backend (the bench's huge-n slice checks this).
    """
    eps = _validate_epsilon(get_solver_epsilon() if epsilon is None else epsilon)
    n = len(releases)
    if len(deadlines) != n or len(workloads) != n:
        raise ValueError("releases, deadlines and workloads must align")
    core = platform.core
    memory = platform.memory
    overhead = memory.transition_energy() if include_transition_overhead else 0.0
    delta = _rounding_delta(eps)
    if n == 0:
        return {
            "n": 0,
            "epsilon": eps,
            "energy": 0.0,
            "num_blocks": 0,
            "clusters": 0,
            "max_cluster_size": 0,
        }
    record_solver_call("solve_agreeable_fptas_columns")
    cap = core.s_up * (1.0 + 1e-9)
    prev_release = -math.inf
    prev_deadline = -math.inf
    for i in range(n):
        span = deadlines[i] - releases[i]
        if workloads[i] <= 0.0:
            raise ValueError("workloads must be positive")
        if span <= 0.0 or workloads[i] / span > cap:
            raise ValueError("task set infeasible even at s_up")
        if releases[i] < prev_release - 1e-12 or deadlines[i] < prev_deadline - 1e-12:
            raise ValueError("columns must be agreeable (sorted releases/deadlines)")
        prev_release = releases[i]
        prev_deadline = deadlines[i]

    bounds = _split_indices(releases, deadlines, memory.alpha_m, overhead, memory.xi_m)
    total = 0.0
    num_blocks = 0
    max_cluster = 0
    for a, b in zip(bounds[:-1], bounds[1:]):
        m = b - a
        if m > max_cluster:
            max_cluster = m
        if m == 1:
            total += (
                _singleton_energy(releases[a], deadlines[a], workloads[a], platform)
                + overhead
            )
            num_blocks += 1
            continue

        def price(p: int, q: int, _a: int = a) -> Optional[Tuple[float, object]]:
            lo, hi = _a + p, _a + q
            width = q - p
            if width == 1:
                return (
                    _singleton_energy(
                        releases[lo], deadlines[lo], workloads[lo], platform
                    ),
                    None,
                )
            start_lo = releases[lo]
            end_hi = deadlines[hi - 1]
            min_busy = max(workloads[lo:hi]) / core.s_up
            step = _grid_step(eps, min_busy)
            priced = _price_block_discrete(
                lambda s, e: _columns_block_energy(
                    releases, deadlines, workloads, lo, hi, platform, s, e
                ),
                start_lo,
                end_hi,
                step,
                start_hi=deadlines[lo],
                end_lo=releases[hi - 1],
            )
            if priced is None:
                return None
            return priced[0], None

        for _p, _q, energy, _payload in _cluster_partition(m, price, overhead, delta):
            total += energy + overhead
            num_blocks += 1
    return {
        "n": n,
        "epsilon": eps,
        "energy": total,
        "num_blocks": num_blocks,
        "clusters": len(bounds) - 1,
        "max_cluster_size": max_cluster,
    }

"""Vectorized NumPy numeric core for the block / case-scan hot paths.

The scalar solvers in :mod:`repro.core.blocks`,
:mod:`repro.core.common_release` and :mod:`repro.core.transition` are the
*reference* implementations: they follow the paper's per-task loops
line by line and every fidelity test pins them against the closed forms.
Profiling (see docs/PERFORMANCE.md) shows the dominant cost of a Section 8
sweep is exactly those loops, re-entered thousands of times by the
golden-section / coordinate-descent probes of the O(n^4)/O(n^5) DPs.

This module provides the batched counterparts:

* :class:`BlockArrays` -- a task set's releases / deadlines / workloads as
  ndarrays (deadline-sorted, matching ``TaskSet`` order) plus workload
  prefix sums, built once per content signature and LRU-cached;
* :func:`block_energy_batch` -- the graded-penalty block energy of
  ``repro.core.blocks._block_energy_uncached`` evaluated at a whole array
  of ``(start, end)`` candidates in one shot;
* :func:`placement_arrays` -- the per-task best-response placement vectors
  behind ``_placements_at``;
* :func:`overhead_energy_batch` -- the Section 7 break-even-aware energy of
  ``repro.core.transition.overhead_energy_at_delta`` over an array of
  sleep-length candidates;
* :func:`schedule_geometry_arrays` -- the vectorized constrained-critical-
  speed geometry (natural finish times) behind ``_schedule_geometry``.

Backend selection is process-wide: ``REPRO_NUMERIC=scalar|numpy`` in the
environment, or :func:`set_backend` for programmatic control (the CLI's
``--numeric`` flag).  When unset, the numpy backend is used whenever numpy
imports; the scalar path needs nothing beyond the standard library.  The
property tests in ``tests/test_numeric_backends.py`` assert the two
backends agree to 1e-9 on randomized task sets, so paper-fidelity tests
keep pinning the closed forms no matter which backend runs them.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less CI legs
    np = None  # type: ignore[assignment]

from repro.models.platform import Platform
from repro.models.task import TaskSet

__all__ = [
    "HAS_NUMPY",
    "BACKEND_ENV",
    "available_backends",
    "get_backend",
    "get_backend_override",
    "set_backend",
    "use_numpy",
    "BlockArrays",
    "block_arrays",
    "block_arrays_cache_clear",
    "register_subset_arrays",
    "prefetch_block_arrays",
    "block_energy_batch",
    "placement_arrays",
    "schedule_geometry_arrays",
    "OverheadScan",
    "overhead_scan",
    "overhead_energy_batch",
]

HAS_NUMPY = np is not None

#: Environment variable selecting the numeric backend.
BACKEND_ENV = "REPRO_NUMERIC"

_PENALTY = 1e30
_INF = float("inf")

_BACKENDS = ("scalar", "numpy")
_backend_override: Optional[str] = None


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this process (``numpy`` only when importable)."""
    return _BACKENDS if HAS_NUMPY else ("scalar",)


def _validate_backend(name: str) -> str:
    name = name.strip().lower()
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown numeric backend {name!r}; valid: {', '.join(_BACKENDS)}"
        )
    if name == "numpy" and not HAS_NUMPY:
        raise RuntimeError(
            "numeric backend 'numpy' requested but numpy is not installed; "
            "unset REPRO_NUMERIC or install numpy"
        )
    return name


def set_backend(name: Optional[str]) -> None:
    """Force the numeric backend for this process.

    ``None`` clears the override, restoring the ``REPRO_NUMERIC``
    environment variable (or the auto default).  Clears the scalar-side
    memo caches in :mod:`repro.core.blocks` so a backend switch can never
    serve values computed by the other backend.
    """
    global _backend_override
    _backend_override = None if name is None else _validate_backend(name)
    # Imported lazily: blocks imports this module at load time.
    from repro.core.blocks import block_energy_cache_clear

    block_energy_cache_clear()


def get_backend_override() -> Optional[str]:
    """The forced backend, or ``None`` when env/auto selection applies.

    Lets callers that temporarily switch backends (``repro bench``'s
    scalar-vs-numpy comparison) restore the caller's choice instead of
    clobbering it with the auto default.
    """
    return _backend_override


def get_backend() -> str:
    """The effective backend: override > ``$REPRO_NUMERIC`` > auto."""
    if _backend_override is not None:
        return _backend_override
    env = os.environ.get(BACKEND_ENV, "")
    if env.strip():
        return _validate_backend(env)
    return "numpy" if HAS_NUMPY else "scalar"


def use_numpy() -> bool:
    """True when the numpy numeric core should serve the hot paths."""
    return get_backend() == "numpy"


# ---------------------------------------------------------------------------
# BlockArrays: a task set as ndarrays, cached on content signature
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockArrays:
    """A task set's numeric content as deadline-sorted ndarrays.

    ``workload_prefix`` has ``n + 1`` entries with
    ``workload_prefix[i] = sum(workloads[:i])`` so any consecutive block's
    total workload is one subtraction.  Arrays are read-only views shared
    across every kernel call for the same task-set content.
    """

    releases: "np.ndarray"
    deadlines: "np.ndarray"
    workloads: "np.ndarray"
    workload_prefix: "np.ndarray"

    @property
    def n(self) -> int:
        return int(self.workloads.shape[0])


_ARRAYS_CACHE: "OrderedDict[Tuple, BlockArrays]" = OrderedDict()
_ARRAYS_CACHE_MAX = 1 << 14


def block_arrays_cache_clear() -> None:
    """Drop every cached :class:`BlockArrays` (test isolation)."""
    _ARRAYS_CACHE.clear()


def _freeze(arr: "np.ndarray") -> "np.ndarray":
    arr.setflags(write=False)
    return arr


def _cache_put(key: Tuple, arrays: BlockArrays) -> None:
    _ARRAYS_CACHE[key] = arrays
    if len(_ARRAYS_CACHE) > _ARRAYS_CACHE_MAX:
        _ARRAYS_CACHE.popitem(last=False)


def block_arrays(tasks: TaskSet) -> BlockArrays:
    """The (cached) :class:`BlockArrays` for a task set's content.

    Keyed on :meth:`repro.models.task.TaskSet.energy_signature`, so two
    sets with identical numeric content share one array build regardless
    of naming or object identity.
    """
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    key = tasks.energy_signature()
    hit = _ARRAYS_CACHE.get(key)
    if hit is not None:
        _ARRAYS_CACHE.move_to_end(key)
        return hit
    raw = np.asarray(key, dtype=np.float64).reshape(len(key), 3)
    workloads = raw[:, 2].copy()
    prefix = np.empty(len(key) + 1, dtype=np.float64)
    prefix[0] = 0.0
    np.cumsum(workloads, out=prefix[1:])
    arrays = BlockArrays(
        releases=_freeze(raw[:, 0].copy()),
        deadlines=_freeze(raw[:, 1].copy()),
        workloads=_freeze(workloads),
        workload_prefix=_freeze(prefix),
    )
    _cache_put(key, arrays)
    return arrays


def register_subset_arrays(parent: TaskSet, start: int, stop: int) -> None:
    """Pre-seed the arrays cache for ``parent.subset(start, stop)``.

    The agreeable DP prices O(n^2) consecutive blocks of one parent set;
    each block's arrays are slices of the parent's, so building them from
    views skips the per-subset tuple unpacking.  Deadline order is
    preserved by slicing (the parent is already sorted), hence the slice
    *is* the subset's canonical array content.
    """
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    parent_key = parent.energy_signature()
    key = parent_key[start:stop]
    if key in _ARRAYS_CACHE:
        _ARRAYS_CACHE.move_to_end(key)
        return
    pa = block_arrays(parent)
    workloads = pa.workloads[start:stop]
    prefix = np.empty(stop - start + 1, dtype=np.float64)
    prefix[0] = 0.0
    np.cumsum(workloads, out=prefix[1:])
    arrays = BlockArrays(
        releases=pa.releases[start:stop],
        deadlines=pa.deadlines[start:stop],
        workloads=workloads,
        workload_prefix=_freeze(prefix),
    )
    _cache_put(key, arrays)


def prefetch_block_arrays(task_sets: Sequence[TaskSet]) -> int:
    """Batch entry point: warm the arrays cache for many task sets at once.

    The service micro-batcher calls this with every distinct task set of a
    coalesced batch before dispatching the individual solves, so the
    per-set array builds happen in one cache-friendly pass instead of
    being interleaved with DP probes.  Returns the number of fresh builds
    (0 on the scalar backend, where there is nothing to warm).
    """
    if not use_numpy():
        return 0
    built = 0
    for tasks in task_sets:
        key = tasks.energy_signature()
        if key in _ARRAYS_CACHE:
            _ARRAYS_CACHE.move_to_end(key)
        else:
            block_arrays(tasks)
            built += 1
    return built


# ---------------------------------------------------------------------------
# Block energy over (start, end) candidate arrays
# ---------------------------------------------------------------------------


def critical_speeds(arrays: BlockArrays, platform: Platform) -> "np.ndarray":
    """Task-clamped critical speeds ``s_0`` as an ``(n,)`` vector.

    Mirrors :meth:`repro.models.power.CorePowerModel.s0`:
    ``min(max(s_m, filled_speed), s_up)`` per task.
    """
    core = platform.core
    filled = arrays.workloads / (arrays.deadlines - arrays.releases)
    return np.minimum(np.maximum(core.s_m, filled), core.s_up)


def block_energy_batch(
    tasks: TaskSet,
    platform: Platform,
    starts: Sequence[float],
    ends: Sequence[float],
) -> "np.ndarray":
    """Block energies at K candidate busy intervals, as a ``(K,)`` vector.

    Array transcription of ``repro.core.blocks._block_energy_uncached``
    (same window clamps, same relative speed-cap tolerance, same graded
    penalties), broadcasting a ``(K, n)`` window matrix instead of looping
    tasks per candidate.
    """
    arr = block_arrays(tasks)
    core = platform.core
    s = np.asarray(starts, dtype=np.float64)
    e = np.asarray(ends, dtype=np.float64)
    lo = np.maximum(arr.releases[None, :], s[:, None])
    hi = np.minimum(arr.deadlines[None, :], e[:, None])
    window = hi - lo
    min_duration = arr.workloads / core.s_up
    infeasible = window < min_duration[None, :] * (1.0 - 1e-12) - 1e-12
    violation = np.where(infeasible, min_duration[None, :] - window, 0.0).sum(
        axis=1
    )
    eff_window = np.maximum(window, min_duration[None, :])
    if core.alpha == 0.0:
        duration = eff_window
    else:
        s0 = critical_speeds(arr, platform)
        preferred = np.maximum(arr.workloads / s0, min_duration)
        duration = np.minimum(preferred[None, :], eff_window)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        speed = arr.workloads[None, :] / duration
        terms = (core.alpha + core.beta * speed ** core.lam) * arr.workloads[
            None, :
        ] / speed
        # Infeasible tasks contribute penalty, not energy; zero their terms
        # so the row sum stays finite wherever the candidate is feasible.
        terms = np.where(infeasible, 0.0, terms)
        total = platform.memory.alpha_m * (e - s) + np.nansum(terms, axis=1)
    total = np.where(violation > 0.0, _PENALTY * (1.0 + violation), total)
    return np.where(e <= s, _PENALTY * (1.0 + (s - e)), total)


def placement_arrays(
    tasks: TaskSet, platform: Platform, start: float, end: float
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Per-task ``(start, duration, speed)`` vectors for one busy interval.

    Array transcription of ``repro.core.blocks._placements_at``: Type-II /
    stretched tasks fill their window, Type-I tasks run at critical speed
    from the window start.
    """
    arr = block_arrays(tasks)
    core = platform.core
    lo = np.maximum(arr.releases, start)
    hi = np.minimum(arr.deadlines, end)
    min_duration = arr.workloads / core.s_up
    eff_window = np.maximum(hi - lo, min_duration)
    if core.alpha == 0.0:
        duration = eff_window
    else:
        s0 = critical_speeds(arr, platform)
        preferred = np.maximum(arr.workloads / s0, min_duration)
        duration = np.minimum(preferred, eff_window)
    return lo, duration, arr.workloads / duration


# ---------------------------------------------------------------------------
# Section 7 overhead-aware geometry and candidate sweeps
# ---------------------------------------------------------------------------


def schedule_geometry_arrays(
    tasks: TaskSet, platform: Platform
) -> Tuple[float, "np.ndarray", "np.ndarray", "np.ndarray"]:
    """Vectorized ``repro.core.transition._schedule_geometry``.

    Returns ``(horizon, ends, workloads, order)`` where ``order`` is the
    stable natural-finish sort permutation (indices into the task set's
    deadline order) and ``ends`` / ``workloads`` are already permuted.
    """
    arr = block_arrays(tasks)
    core = platform.core
    release = float(arr.releases[0])
    if core.alpha == 0.0:
        ends = arr.deadlines - release
    else:
        outer = float(tasks.latest_deadline) - release
        # s_c per task: the constrained critical speed of Section 7.
        filled = arr.workloads / (arr.deadlines - arr.releases)
        candidate = np.minimum(np.maximum(core.s_m, filled), core.s_up)
        if core.s_m > 0.0:
            reference = np.full_like(candidate, min(core.s_m, core.s_up))
        else:
            reference = candidate
        amortizes = outer - arr.workloads / reference >= core.xi
        s_c = np.where(
            reference <= 0.0,
            candidate,
            np.where(amortizes, candidate, np.minimum(filled, core.s_up)),
        )
        ends = arr.workloads / s_c
    order = np.argsort(ends, kind="stable")
    ends = ends[order]
    return float(ends[-1]), ends, arr.workloads[order], order


#: Below this task count the ndarray kernels lose to plain Python: per-op
#: dispatch overhead (~a few microseconds) exceeds the whole loop's cost.
#: The Section 8 online sweeps replan over 1-8 pending tasks, so the
#: small-n path is the one that matters for the bench; both paths compute
#: the same formulas in the same order, so they agree bit-for-bit.
_SMALL_N = 64


@dataclass(frozen=True)
class OverheadScan:
    """Prefix/suffix decomposition of the Section 7 candidate objective.

    Splitting tasks at a candidate's busy end ``|I| - Delta`` (ends are
    sorted, so the split is one binary search) turns the per-task energy
    sum of ``overhead_energy_at_delta`` into closed prefix/suffix forms:
    tasks finishing naturally before the busy end contribute constants
    (``prefix_*``), tasks aligned to the busy end contribute
    ``count * alpha * busy_end`` plus ``beta * suffix_wlam * busy_end^(1-lam)``
    -- the Eq. (8) power-sum structure.  One scan build prices any number
    of sleep-length candidates in O(log n) each instead of O(n).

    ``ends`` / ``workloads`` / ``order`` are plain lists (callers iterate
    them in Python); the prefix/suffix tables are lists on the small-n
    path and ndarrays otherwise (``small`` flags which).
    """

    horizon: float
    ends: Sequence[float]
    workloads: Sequence[float]
    order: Sequence[int]
    #: prefix sums over natural-finish order; index i covers tasks [0, i)
    prefix_ends: Sequence[float]
    prefix_beta_nat: Sequence[float]
    #: ``None`` when core gap costs are identically zero (alpha or xi zero)
    prefix_gap_nat: Optional[Sequence[float]]
    #: ``None`` when no natural finish overspeeds (the usual case)
    prefix_overspeed: Optional[Sequence[int]]
    #: suffix sums; index i covers tasks [i, n)
    suffix_wlam: Sequence[float]
    suffix_max_w: Sequence[float]
    small: bool

    @property
    def n(self) -> int:
        return len(self.workloads)


def _overhead_scan_small(
    tasks: TaskSet, platform: Platform, rel_end: float
) -> OverheadScan:
    """Python build of the scan for small task counts."""
    core = platform.core
    release = tasks[0].release
    if core.alpha == 0.0:
        annotated = [
            (t.deadline - release, i, t.workload) for i, t in enumerate(tasks)
        ]
    else:
        # Inline CorePowerModel.s_c with s_m hoisted: the property
        # recomputes its root on every access, which dominates the scan
        # build at small n.  Same expressions, same values.
        outer = tasks.latest_deadline - release
        s_m, s_up, xi = core.s_m, core.s_up, core.xi
        reference = min(s_m, s_up) if s_m > 0.0 else None
        annotated = []
        for i, t in enumerate(tasks):
            w = t.workload
            candidate = min(max(s_m, t.filled_speed), s_up)
            ref = candidate if reference is None else reference
            if ref <= 0.0 or outer - w / ref >= xi:
                s_c = candidate
            else:
                s_c = min(t.filled_speed, s_up)
            annotated.append((w / s_c, i, w))
    horizon = max(end for end, _, _ in annotated)
    annotated.sort(key=lambda pair: pair[0])
    ends = [end for end, _, _ in annotated]
    order = [i for _, i, _ in annotated]
    workloads = [w for _, _, w in annotated]

    lam, beta = core.lam, core.beta
    one_lam = 1.0 - lam
    alpha, xi = core.alpha, core.xi
    up_thresh = core.s_up * (1.0 + 1e-9)
    gapped = alpha != 0.0 and xi != 0.0
    axi = alpha * xi
    prefix_ends = [0.0]
    prefix_beta_nat = [0.0]
    prefix_gap_nat = [0.0] if gapped else None
    overspeed = False
    acc_e = acc_b = acc_g = 0.0
    for end, w in zip(ends, workloads):
        acc_e += end
        prefix_ends.append(acc_e)
        acc_b += (beta * w ** lam) * end ** one_lam
        prefix_beta_nat.append(acc_b)
        if gapped:
            gap = rel_end - end
            acc_g += min(alpha * gap, axi) if gap > 0.0 else 0.0
            prefix_gap_nat.append(acc_g)
        if w / end > up_thresh:
            overspeed = True
    prefix_overspeed: Optional[List[int]] = None
    if overspeed:
        prefix_overspeed = [0]
        acc_o = 0
        for end, w in zip(ends, workloads):
            acc_o += 1 if w / end > up_thresh else 0
            prefix_overspeed.append(acc_o)
    n = len(ends)
    suffix_wlam = [0.0] * (n + 1)
    suffix_max_w = [0.0] * (n + 1)
    for j in range(n - 1, -1, -1):
        suffix_wlam[j] = suffix_wlam[j + 1] + workloads[j] ** lam
        suffix_max_w[j] = max(suffix_max_w[j + 1], workloads[j])
    return OverheadScan(
        horizon=horizon,
        ends=ends,
        workloads=workloads,
        order=order,
        prefix_ends=prefix_ends,
        prefix_beta_nat=prefix_beta_nat,
        prefix_gap_nat=prefix_gap_nat,
        prefix_overspeed=prefix_overspeed,
        suffix_wlam=suffix_wlam,
        suffix_max_w=suffix_max_w,
        small=True,
    )


def overhead_scan(
    tasks: TaskSet, platform: Platform, rel_end: float
) -> OverheadScan:
    """Build the :class:`OverheadScan` for one solve's geometry.

    ``rel_end`` is the release-relative accounting horizon; the natural
    tasks' break-even gap costs depend only on it, so they fold into a
    prefix sum here.
    """
    if len(tasks) <= _SMALL_N:
        return _overhead_scan_small(tasks, platform, rel_end)
    core = platform.core
    horizon, ends, workloads, order = schedule_geometry_arrays(tasks, platform)
    n = int(ends.shape[0])
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        wlam = workloads ** core.lam
        beta_nat = (core.beta * wlam) * ends ** (1.0 - core.lam)
        nat_over = workloads / ends > core.s_up * (1.0 + 1e-9)
        gapped = core.alpha != 0.0 and core.xi != 0.0
        if gapped:
            gaps = rel_end - ends
            gap_nat = np.where(
                gaps > 0.0,
                np.minimum(core.alpha * gaps, core.alpha * core.xi),
                0.0,
            )

    def prefix(values: "np.ndarray") -> "np.ndarray":
        out = np.empty(n + 1, dtype=values.dtype)
        out[0] = 0
        np.cumsum(values, out=out[1:])
        return out

    # suffix[i] covers tasks [i, n); suffix[n] stays the empty-set value.
    suffix_wlam = np.zeros(n + 1, dtype=np.float64)
    np.cumsum(wlam[::-1], out=suffix_wlam[n - 1 :: -1])
    suffix_max_w = np.zeros(n + 1, dtype=np.float64)
    np.maximum.accumulate(workloads[::-1], out=suffix_max_w[n - 1 :: -1])
    return OverheadScan(
        horizon=horizon,
        ends=ends.tolist(),
        workloads=workloads.tolist(),
        order=order.tolist(),
        prefix_ends=prefix(ends),
        prefix_beta_nat=prefix(beta_nat),
        prefix_gap_nat=prefix(gap_nat) if gapped else None,
        prefix_overspeed=prefix(nat_over.astype(np.int64))
        if bool(nat_over.any())
        else None,
        suffix_wlam=suffix_wlam,
        suffix_max_w=suffix_max_w,
        small=False,
    )


def _overhead_energy_small(
    scan: OverheadScan,
    platform: Platform,
    rel_end: float,
    deltas: Sequence[float],
) -> List[float]:
    """Python evaluation of the scan objective at each candidate."""
    from bisect import bisect_left

    core = platform.core
    memory = platform.memory
    horizon = scan.horizon
    ends = scan.ends
    n = scan.n
    alpha, beta = core.alpha, core.beta
    one_lam = 1.0 - core.lam
    axi = alpha * core.xi
    am, am_xi = memory.alpha_m, memory.alpha_m * memory.xi_m
    up_thresh = core.s_up * (1.0 + 1e-9)
    pe, pb = scan.prefix_ends, scan.prefix_beta_nat
    pg, po = scan.prefix_gap_nat, scan.prefix_overspeed
    sw, sm = scan.suffix_wlam, scan.suffix_max_w
    gapped = pg is not None
    out: List[float] = []
    for delta in deltas:
        busy = horizon - delta
        if busy <= 0.0:
            out.append(_INF)
            continue
        k = bisect_left(ends, busy)
        if (po is not None and po[k] > 0) or sm[k] > up_thresh * busy:
            out.append(_INF)
            continue
        aligned = n - k
        total = (
            am * busy
            + alpha * pe[k]
            + pb[k]
            + alpha * aligned * busy
            + sw[k] * (beta * busy ** one_lam)
        )
        trailing = rel_end - busy
        if trailing > 0.0:
            if am != 0.0:
                total += min(am * trailing, am_xi)
            if gapped:
                total += aligned * min(alpha * trailing, axi)
        if gapped:
            total += pg[k]
        out.append(total)
    return out


def overhead_energy_batch(
    scan: OverheadScan,
    platform: Platform,
    rel_end: float,
    deltas: Sequence[float],
) -> List[float]:
    """Section 7 total energies at K sleep-length candidates.

    Semantically matches
    :func:`repro.core.transition.overhead_energy_at_delta` over the scan's
    geometry: memory busy cost plus break-even-priced gaps plus per-task
    execution energy (``alpha * finish + beta * w^lam * finish^(1-lam)``
    per task, the algebraic form of ``execution_energy(w, w/finish)``),
    ``inf`` where the candidate forces an overspeed or a non-positive busy
    interval.  Returns plain floats; the selection loop is Python either
    way.
    """
    if scan.small:
        return _overhead_energy_small(scan, platform, rel_end, deltas)
    core = platform.core
    memory = platform.memory
    deltas = np.asarray(deltas, dtype=np.float64)
    busy_end = scan.horizon - deltas
    split = np.searchsorted(np.asarray(scan.ends), busy_end, side="left")
    aligned = scan.n - split
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        overspeed = scan.suffix_max_w[split] > core.s_up * (1.0 + 1e-9) * busy_end
        if scan.prefix_overspeed is not None:
            overspeed |= scan.prefix_overspeed[split] > 0
        total = (
            memory.alpha_m * busy_end
            + core.alpha * scan.prefix_ends[split]
            + scan.prefix_beta_nat[split]
            + core.alpha * aligned * busy_end
            + scan.suffix_wlam[split] * (core.beta * busy_end ** (1.0 - core.lam))
        )
        trailing = rel_end - busy_end
        positive = trailing > 0.0
        if memory.alpha_m != 0.0:
            total += np.where(
                positive,
                np.minimum(memory.alpha_m * trailing, memory.alpha_m * memory.xi_m),
                0.0,
            )
        if scan.prefix_gap_nat is not None:
            total += scan.prefix_gap_nat[split]
            total += aligned * np.where(
                positive,
                np.minimum(core.alpha * trailing, core.alpha * core.xi),
                0.0,
            )
    total = np.where(overspeed, _INF, total)
    return np.where(busy_end <= 0.0, _INF, total).tolist()

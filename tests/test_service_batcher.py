"""Batcher tests: coalescing, backend pinning, cache reuse, error isolation."""

from __future__ import annotations

import time

import pytest

from repro.core import vectorized
from repro.experiments.cache import ResultCache, service_request_key
from repro.models import Task, TaskSet, paper_platform
from repro.service import protocol
from repro.service.batcher import Batcher, batch_key, form_batches
from repro.service.metrics import service_metrics
from repro.service.protocol import SolveRequest, canonical_result_bytes
from repro.service.queue import QueueEntry


def make_entry(request_id, *, tasks=None, platform=None, numeric=None, scheme="auto"):
    tasks = tasks if tasks is not None else TaskSet(
        [Task(0.0, 40.0, 8000.0, "a"), Task(0.0, 70.0, 15000.0, "b")]
    )
    request = SolveRequest(
        id=str(request_id),
        tasks=tasks,
        platform=platform if platform is not None else paper_platform(),
        scheme=scheme,
        numeric=numeric,
    )
    return QueueEntry(request=request, enqueued_at=time.monotonic())


@pytest.fixture
def batcher(tmp_path):
    instance = Batcher(cache=ResultCache(str(tmp_path / "cache")), metrics=service_metrics())
    yield instance
    instance.shutdown()


class TestFormBatches:
    def test_compatible_requests_coalesce(self):
        entries = [make_entry(i) for i in range(4)]
        batches = form_batches(entries, max_batch=8)
        assert len(batches) == 1
        assert [e.request.id for e in batches[0]] == ["0", "1", "2", "3"]

    def test_different_platforms_split(self):
        other = paper_platform(alpha_m=2000.0)
        entries = [make_entry(0), make_entry(1, platform=other), make_entry(2)]
        batches = form_batches(entries, max_batch=8)
        assert [[e.request.id for e in b] for b in batches] == [["0", "2"], ["1"]]

    def test_different_backends_split(self):
        entries = [
            make_entry(0, numeric="scalar"),
            make_entry(1, numeric="numpy"),
            make_entry(2, numeric="scalar"),
        ]
        assert batch_key(entries[0].request) != batch_key(entries[1].request)
        batches = form_batches(entries, max_batch=8)
        assert [[e.request.id for e in b] for b in batches] == [["0", "2"], ["1"]]

    def test_oversized_group_splits_within_bound(self):
        entries = [make_entry(i) for i in range(10)]
        batches = form_batches(entries, max_batch=4)
        assert all(1 <= len(b) <= 4 for b in batches)
        flattened = [e.request.id for b in batches for e in b]
        assert flattened == [str(i) for i in range(10)]  # order preserved
        # An even 50-item group splits into two batches of 25, not 32 + 18.
        fifty = form_batches([make_entry(i) for i in range(50)], max_batch=32)
        assert [len(b) for b in fifty] == [25, 25]

    def test_bad_max_batch_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            form_batches([], max_batch=0)


class TestRunBatch:
    def test_responses_pair_with_entries(self, batcher):
        entries = [make_entry(i) for i in range(3)]
        results = batcher.run_batch(entries)
        assert [entry.request.id for entry, _ in results] == ["0", "1", "2"]
        for _, response in results:
            assert response["ok"] is True
            assert response["provenance"]["batch_size"] == 3

    def test_cache_hit_is_byte_identical_to_fresh_solve(self, batcher):
        [(_, first)] = batcher.run_batch([make_entry("x")])
        [(_, second)] = batcher.run_batch([make_entry("y")])  # same tasks/platform
        assert first["provenance"]["cache"] == "miss"
        assert second["provenance"]["cache"] == "hit"
        assert canonical_result_bytes(first["result"]) == canonical_result_bytes(
            second["result"]
        )

    def test_cache_key_separates_scheme_and_backend(self):
        platform = paper_platform()
        config = [[0.0, 40.0, 8000.0, "a"]]
        keys = {
            service_request_key(platform, config, "common-release", "scalar"),
            service_request_key(platform, config, "agreeable", "scalar"),
            service_request_key(platform, config, "common-release", "numpy"),
        }
        assert len(keys) == 3

    def test_no_cache_mode_reports_off(self):
        batcher = Batcher(cache=None, metrics=service_metrics())
        try:
            [(_, response)] = batcher.run_batch([make_entry("x")])
        finally:
            batcher.shutdown()
        assert response["provenance"]["cache"] == "off"

    def test_infeasible_request_fails_alone(self, batcher):
        sporadic = TaskSet(
            [
                Task(0.0, 50.0, 4000.0, "x"),
                Task(60.0, 90.0, 3000.0, "y"),
                Task(30.0, 200.0, 2000.0, "z"),
            ]
        )
        entries = [
            make_entry("good"),
            make_entry("bad", tasks=sporadic, scheme="common-release"),
        ]
        results = {entry.request.id: resp for entry, resp in batcher.run_batch(entries)}
        assert results["good"]["ok"] is True
        assert results["bad"]["ok"] is False
        assert results["bad"]["error"]["code"] == protocol.E_INFEASIBLE

    def test_batch_matches_direct_execute(self, batcher):
        entry = make_entry("x")
        [(_, response)] = batcher.run_batch([entry])
        direct = protocol.execute_request(entry.request)
        assert canonical_result_bytes(response["result"]) == canonical_result_bytes(
            direct
        )

    @pytest.mark.skipif(not vectorized.HAS_NUMPY, reason="needs numpy")
    def test_backend_pinned_and_restored(self, batcher):
        before = vectorized.get_backend()
        pinned = "numpy" if before == "scalar" else "scalar"
        [(_, response)] = batcher.run_batch([make_entry("x", numeric=pinned)])
        assert response["provenance"]["backend"] == pinned
        assert vectorized.get_backend() == before

    def test_numpy_unavailable_rejected_cleanly(self, batcher, monkeypatch):
        monkeypatch.setattr(vectorized, "HAS_NUMPY", False)
        [(_, response)] = batcher.run_batch([make_entry("x", numeric="numpy")])
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.E_BAD_REQUEST
        assert "numpy" in response["error"]["message"]

    def test_metrics_recorded(self, batcher):
        batcher.run_batch([make_entry(i) for i in range(2)])
        snapshot = batcher.metrics.snapshot()
        assert snapshot["repro_batches_total"]["value"] == 1
        assert snapshot["repro_batch_size"]["max"] == 2
        assert snapshot["repro_batched_requests_total"]["value"] == 2
        assert snapshot["repro_responses_total"]["value"] == 2

    def test_empty_batch_is_noop(self, batcher):
        assert batcher.run_batch([]) == []

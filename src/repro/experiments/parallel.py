"""Parallel, cache-aware experiment engine.

The Section 8 sweeps are embarrassingly parallel: every work unit (one
seed of one parameter point, priced under all three policies) is
independent.  :func:`run_series` fans units across a
``ProcessPoolExecutor`` and folds them back per point with
:func:`repro.experiments.runner.reduce_units`, which always reduces in
seed order -- so the aggregated output is bit-identical to the serial
loop no matter how completion interleaves.

Work units that cross a process boundary must pickle, which rules out
the ad-hoc lambdas the exhibit modules historically used as trace
factories.  The *trace specs* below are frozen module-level dataclasses
that (a) pickle, (b) reproduce the exact legacy seed mapping
(``seed * stride + offset``), and (c) expose ``trace_config()`` -- the
canonical description the result cache hashes into its keys.  Any
callable still works with ``max_workers=1``; the engine raises a clear
error when an unpicklable factory meets a process pool.

Warm restarts: pass a :class:`repro.experiments.cache.ResultCache` and
every already-simulated cell is read back from disk instead of
re-simulated, so interrupted or partially-parameter-changed sweeps only
pay for missing cells.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.fptas import get_solver_epsilon, get_solver_tier
from repro.core.vectorized import get_backend
from repro.experiments.cache import ResultCache
from repro.experiments.runner import (
    POLICY_ORDER,
    SeriesResult,
    UnitResult,
    reduce_units,
    simulate_unit,
)
from repro.models.platform import Platform
from repro.models.task import Task
from repro.workloads.dspstone import dspstone_trace
from repro.workloads.synthetic import synthetic_tasks

__all__ = [
    "DspstoneTraceSpec",
    "SyntheticTraceSpec",
    "PointSpec",
    "WorkerProcess",
    "chunk_evenly",
    "pin_worker_state",
    "resolve_workers",
    "run_unit",
    "run_series",
]


# ---------------------------------------------------------------------------
# Picklable, cache-keyable trace factories
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DspstoneTraceSpec:
    """Figure 6 trace factory: DSPstone instance streams.

    ``__call__(seed)`` generates with effective seed
    ``seed * seed_stride + seed_offset`` -- the historical per-point
    decorrelation mapping, kept verbatim so results match the legacy
    lambdas bit for bit.
    """

    benchmark: str
    utilization_factor: float
    n: int
    streams: int = 1
    seed_stride: int = 1
    seed_offset: int = 0

    def effective_seed(self, seed: int) -> int:
        return seed * self.seed_stride + self.seed_offset

    def __call__(self, seed: int) -> List[Task]:
        return dspstone_trace(
            self.benchmark,
            utilization_factor=self.utilization_factor,
            n=self.n,
            seed=self.effective_seed(seed),
            streams=self.streams,
        )

    def trace_config(self) -> Dict[str, object]:
        return {
            "kind": "dspstone",
            "benchmark": self.benchmark,
            "utilization_factor": self.utilization_factor,
            "n": self.n,
            "streams": self.streams,
            "seed_stride": self.seed_stride,
            "seed_offset": self.seed_offset,
        }


@dataclass(frozen=True)
class SyntheticTraceSpec:
    """Figure 7 trace factory: Section 8.1.2 sporadic tasks."""

    n: int
    max_interarrival: float
    seed_stride: int = 1
    seed_offset: int = 0

    def effective_seed(self, seed: int) -> int:
        return seed * self.seed_stride + self.seed_offset

    def __call__(self, seed: int) -> List[Task]:
        return synthetic_tasks(
            n=self.n,
            max_interarrival=self.max_interarrival,
            seed=self.effective_seed(seed),
        )

    def trace_config(self) -> Dict[str, object]:
        return {
            "kind": "synthetic",
            "n": self.n,
            "max_interarrival": self.max_interarrival,
            "seed_stride": self.seed_stride,
            "seed_offset": self.seed_offset,
        }


@dataclass(frozen=True)
class PointSpec:
    """One parameter point of a series: label + trace factory + platform."""

    label: str
    trace_factory: Callable[[int], Sequence[Task]]
    platform: Platform


# ---------------------------------------------------------------------------
# Unit execution (shared by the serial loop and pool workers)
# ---------------------------------------------------------------------------


def _unit_cache_keys(
    spec: PointSpec, seed: int, cache: Optional[ResultCache]
) -> Optional[Dict[str, str]]:
    """Cache keys for every policy of one unit, or ``None`` when uncacheable.

    Factories without a ``trace_config()`` description cannot be hashed
    reliably, so their units always simulate.
    """
    if cache is None:
        return None
    config_of = getattr(spec.trace_factory, "trace_config", None)
    if config_of is None:
        return None
    config = config_of()
    return {
        policy: cache.unit_key(spec.platform, config, seed, policy)
        for policy in POLICY_ORDER
    }


def run_unit(
    spec: PointSpec,
    seed: int,
    cache: Optional[ResultCache] = None,
    horizon: Optional[Tuple[float, float]] = None,
) -> UnitResult:
    """Execute one work unit, consulting/populating the result cache.

    A unit is served from cache only when *all three* policies hit, so a
    cached unit never mixes stored and freshly simulated energies.
    """
    keys = _unit_cache_keys(spec, seed, cache)
    if keys is not None:
        start = time.perf_counter()
        stored = [cache.get(keys[policy]) for policy in POLICY_ORDER]
        if all(entry is not None for entry in stored):
            return UnitResult(
                seed=seed,
                totals=tuple(entry["total"] for entry in stored),
                memory=tuple(entry["memory"] for entry in stored),
                wall_ms=(time.perf_counter() - start) * 1000.0,
                solver_calls=0,
                from_cache=True,
            )
    unit = simulate_unit(
        spec.trace_factory, spec.platform, seed, label=spec.label, horizon=horizon
    )
    if keys is not None:
        for index, policy in enumerate(POLICY_ORDER):
            cache.put(
                keys[policy],
                {"total": unit.totals[index], "memory": unit.memory[index]},
            )
    return unit


def pin_worker_state(backend: str, solver: Tuple[str, float]) -> None:
    """Pin the process-wide numeric backend and solver tier (idempotent).

    The parent's effective state rides in the submission payload and is
    pinned on the worker side: a spawn-context worker does not inherit a
    programmatic :func:`repro.core.vectorized.set_backend` override, and
    a silent backend switch would fragment the shared result cache (its
    keys are backend-scoped).  A ``jit`` request degrades per worker
    exactly as in the parent -- one structured warning, then
    numpy/scalar.  The solver tier ``(tier, epsilon)`` is pinned the same
    way for the same reason: cache keys are tier-scoped, and an fptas
    sweep must stay fptas inside every worker.
    """
    from repro.core import fptas, vectorized

    if vectorized.get_backend() != backend:
        vectorized.set_backend(backend)
    tier, epsilon = solver
    if (fptas.get_solver_tier(), fptas.get_solver_epsilon()) != (tier, epsilon):
        fptas.set_solver_tier(tier, epsilon)


def _pool_entry_chunk(args) -> List[Tuple[int, int, UnitResult]]:
    """Module-level pool target: ``(chunk, cache, horizon, backend, solver)``
    with ``chunk = [(point_index, seed, spec), ...]``.

    Batching several units per submission amortizes the pickle/IPC cost
    of a pool round-trip, which at ~10 ms per unit otherwise eats the
    parallel speedup (the 0.95x regression in early bench trajectories).
    Backend/solver pinning per :func:`pin_worker_state`.
    """
    chunk, cache, horizon, backend, solver = args
    pin_worker_state(backend, solver)
    return [
        (point_index, seed, run_unit(spec, seed, cache, horizon))
        for point_index, seed, spec in chunk
    ]


# ---------------------------------------------------------------------------
# Series engine
# ---------------------------------------------------------------------------


# Below this many units the pool's startup cost cannot pay for itself:
# run inline even when more workers were requested.
_INLINE_UNITS = 8
# Submissions per worker: enough chunks for load balancing across units of
# uneven cost, few enough to keep the per-submission IPC overhead amortized.
_CHUNKS_PER_WORKER = 4


def resolve_workers(max_workers: Optional[int]) -> int:
    """``None`` -> every core; ``N >= 1`` -> N; anything else is an error."""
    if max_workers is None:
        return os.cpu_count() or 1
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1 or None, got {max_workers}")
    return max_workers


def chunk_evenly(items: Sequence, workers: int, chunks_per_worker: int = _CHUNKS_PER_WORKER):
    """Split ``items`` into ~``workers * chunks_per_worker`` contiguous chunks.

    The submission granularity both this engine and the service batcher
    use: enough chunks for load balancing across units of uneven cost,
    few enough that per-submission dispatch overhead stays amortized.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    chunk_size = max(1, math.ceil(len(items) / (workers * chunks_per_worker)))
    return [items[start : start + chunk_size] for start in range(0, len(items), chunk_size)]


def _mp_context():
    """Prefer fork: workers inherit the imported library instantly."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class WorkerProcess:
    """One long-lived solver process with pinned backend/solver state.

    The sweeps above use throwaway pools -- fork, chunk, join.  The
    sharded solve service needs the opposite lifetime: a worker that
    survives across micro-batches, so the module-level memo caches
    (``BlockArrays``, the block-energy memo, compiled jit kernels) warmed
    by one batch are still hot for the next one routed to the same shard.
    This wraps a single-process :class:`ProcessPoolExecutor` whose
    initializer pins the parent's effective numeric backend and solver
    tier via :func:`pin_worker_state` (spawn-context workers inherit
    neither).

    ``warm=True`` (the default) performs a blocking no-op round-trip at
    construction so the child process exists -- and, under a fork
    context, snapshots the parent -- *before* the caller starts an event
    loop or other threads around it.
    """

    def __init__(
        self,
        *,
        backend: Optional[str] = None,
        solver: Optional[Tuple[str, float]] = None,
        warm: bool = True,
    ):
        self.backend = backend if backend is not None else get_backend()
        self.solver = (
            solver
            if solver is not None
            else (get_solver_tier(), get_solver_epsilon())
        )
        self._pool = ProcessPoolExecutor(
            max_workers=1,
            mp_context=_mp_context(),
            initializer=pin_worker_state,
            initargs=(self.backend, self.solver),
        )
        if warm:
            # pin_worker_state is idempotent; this round-trip only forces
            # the fork to happen now.
            self._pool.submit(pin_worker_state, self.backend, self.solver).result()

    def submit(self, fn, *args):
        """Submit ``fn(*args)`` to the worker; returns its Future."""
        return self._pool.submit(fn, *args)

    def call(self, fn, *args):
        """Blocking convenience: ``submit`` and wait for the result."""
        return self._pool.submit(fn, *args).result()

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


def run_series(
    name: str,
    specs: Sequence[PointSpec],
    *,
    seeds: int,
    max_workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    horizon: Optional[Tuple[float, float]] = None,
) -> SeriesResult:
    """Run every (point, seed) work unit of a series and aggregate.

    ``max_workers=1`` keeps everything in-process (today's serial loop,
    still consulting the cache when one is given); ``None`` uses every
    core.  Tiny runs (``<= 8`` units) also stay in-process -- forking a
    pool costs more than it saves there.  Units are distributed across
    *all* points of the series, so a wide sweep saturates the pool even
    when ``seeds < max_workers``, and are submitted in chunks so the
    per-submission IPC overhead is amortized.
    Aggregation reduces each point's units in seed order -- outputs are
    bit-identical across worker counts and cache states.
    """
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    workers = resolve_workers(max_workers)
    jobs = [
        (point_index, seed)
        for point_index in range(len(specs))
        for seed in range(seeds)
    ]
    results: Dict[Tuple[int, int], UnitResult] = {}
    if workers <= 1 or len(jobs) <= _INLINE_UNITS:
        for point_index, seed in jobs:
            results[(point_index, seed)] = run_unit(
                specs[point_index], seed, cache, horizon
            )
    else:
        units = [
            (point_index, seed, specs[point_index]) for point_index, seed in jobs
        ]
        chunks = chunk_evenly(units, workers)
        backend = get_backend()
        solver = (get_solver_tier(), get_solver_epsilon())
        payloads = [
            (chunk, cache, horizon, backend, solver) for chunk in chunks
        ]
        try:
            pickle.dumps(payloads[0])
        except Exception as exc:
            raise ValueError(
                "parallel execution needs picklable work units; trace "
                "factories must be module-level callables such as "
                "DspstoneTraceSpec/SyntheticTraceSpec, not lambdas or "
                f"closures (pickling failed with: {exc}); "
                "use max_workers=1 for ad-hoc factories"
            ) from exc
        with ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)), mp_context=_mp_context()
        ) as pool:
            pending = {
                pool.submit(_pool_entry_chunk, payload) for payload in payloads
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    for point_index, seed, unit in future.result():
                        results[(point_index, seed)] = unit
    series = SeriesResult(name=name)
    for point_index, spec in enumerate(specs):
        units = [results[(point_index, seed)] for seed in range(seeds)]
        series.points.append(reduce_units(spec.label, units))
    return series

"""Versioned JSON wire format for the solve service.

One request / response per line (JSON-lines).  The protocol is layered on
:mod:`repro.serialization` -- task lists and schedules cross the wire in
exactly the formats the CLI already reads and writes, including the
``schema`` version field and its unknown-field-ignored forward-compat
rule.

A solve request names a platform, a task set, a scheme and (optionally) a
numeric backend, a priority lane and a deadline::

    {"v": 1, "id": "r1", "kind": "solve", "scheme": "auto",
     "lane": "interactive", "numeric": "numpy",
     "platform": {"alpha_m": 4000.0, "xi_m": 40.0, "num_cores": 8},
     "tasks": [{"name": "a", "release": 0, "deadline": 50, "workload": 2000}],
     "timeout_ms": 5000}

A successful response carries the deterministic solver output under
``result`` (scheme, schedule, itemized energy) plus server-side ``timing``
and ``provenance`` (cache hit/miss, backend, batch size) as siblings, so
:func:`canonical_result_bytes` over ``result`` is byte-identical between a
served request and a direct in-process :func:`execute_request` call::

    {"v": 1, "id": "r1", "ok": true, "result": {...},
     "timing": {"queue_ms": 0.4, "solve_ms": 1.9},
     "provenance": {"backend": "numpy", "cache": "miss", "batch_size": 3}}

Failures use the shared error envelope (also emitted by the CLI's
``--json-errors`` flag)::

    {"v": 1, "id": "r1", "ok": false,
     "error": {"code": "QUEUE_FULL", "message": "...", "retry_after_ms": 250}}

Other request kinds: ``ping``, ``metrics``, ``cancel`` (``{"target": id}``)
and ``drain``.  See docs/SERVICE.md for the full specification.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import __version__
from repro.baselines import AvrPolicy, RaceToIdlePolicy, mbkp, mbkps
from repro.core import (
    SdemOnlinePolicy,
    solve_agreeable,
    solve_common_release,
    solve_common_release_with_overhead,
)
from repro.core.fptas import (
    DEFAULT_EPSILON,
    SOLVER_TIERS,
    pinned_solver,
    solve_agreeable_fptas,
    solve_common_release_fptas,
)
from repro.energy import EnergyBreakdown, account
from repro.models.memory import MemoryModel
from repro.models.platform import Platform, paper_platform
from repro.models.power import CorePowerModel
from repro.models.task import Task, TaskSet
from repro.serialization import schedule_to_payload, tasks_from_payload
from repro.sim import simulate

__all__ = [
    "PROTOCOL_VERSION",
    "OFFLINE_SCHEMES",
    "ONLINE_SCHEMES",
    "SCHEMES",
    "LANES",
    "LANE_INTERACTIVE",
    "LANE_SWEEP",
    "E_BAD_REQUEST",
    "E_UNSUPPORTED_VERSION",
    "E_UNKNOWN_SCHEME",
    "E_INFEASIBLE",
    "E_QUEUE_FULL",
    "E_SHEDDING",
    "E_DRAINING",
    "E_DEADLINE_EXCEEDED",
    "E_CANCELLED",
    "E_INTERNAL",
    "ProtocolError",
    "SolveRequest",
    "platform_to_wire",
    "platform_from_wire",
    "request_from_wire",
    "resolve_scheme",
    "execute_request",
    "energy_to_wire",
    "energy_from_wire",
    "canonical_result_bytes",
    "error_envelope",
    "ok_response",
    "error_response",
    "encode_line",
    "decode_line",
]

#: Wire protocol major version; bumped on incompatible changes.  Servers
#: reject requests whose ``v`` is higher than what they speak; fields they
#: do not recognise are ignored (same forward-compat rule as the
#: serialization schema).
PROTOCOL_VERSION = 1

OFFLINE_SCHEMES = ("auto", "common-release", "common-release-overhead", "agreeable")
ONLINE_SCHEMES = ("sdem-on", "mbkp", "mbkps", "avr", "race")
SCHEMES = OFFLINE_SCHEMES + ONLINE_SCHEMES

LANE_INTERACTIVE = "interactive"
LANE_SWEEP = "sweep"
LANES = (LANE_INTERACTIVE, LANE_SWEEP)

# Error codes of the shared envelope (docs/SERVICE.md lists semantics).
E_BAD_REQUEST = "BAD_REQUEST"
E_UNSUPPORTED_VERSION = "UNSUPPORTED_VERSION"
E_UNKNOWN_SCHEME = "UNKNOWN_SCHEME"
E_INFEASIBLE = "INFEASIBLE"
E_QUEUE_FULL = "QUEUE_FULL"
E_SHEDDING = "SHEDDING"
E_DRAINING = "DRAINING"
E_DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
E_CANCELLED = "CANCELLED"
E_INTERNAL = "INTERNAL"


class ProtocolError(Exception):
    """A request that cannot be served, with its wire error code."""

    def __init__(self, code: str, message: str, retry_after_ms: Optional[float] = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms

    def envelope(self) -> Dict[str, object]:
        return error_envelope(self.code, self.message, self.retry_after_ms)


# ---------------------------------------------------------------------------
# Platform wire format
# ---------------------------------------------------------------------------

_PLATFORM_DEFAULTS = paper_platform()


def platform_to_wire(platform: Platform) -> Dict[str, object]:
    """Every parameter of ``platform`` as a flat JSON object."""
    core, memory = platform.core, platform.memory
    return {
        "beta": core.beta,
        "lam": core.lam,
        "alpha": core.alpha,
        "s_up": core.s_up,
        "s_min": core.s_min,
        "xi": core.xi,
        "alpha_m": memory.alpha_m,
        "xi_m": memory.xi_m,
        "num_cores": platform.num_cores,
    }


def platform_from_wire(wire: Optional[Dict[str, object]]) -> Platform:
    """Build a platform from a (possibly partial) wire object.

    Missing fields take the paper's Table 4 star defaults; unknown fields
    are ignored (forward compat).  ``None`` means the default platform.
    """
    if wire is None:
        return _PLATFORM_DEFAULTS
    if not isinstance(wire, dict):
        raise ProtocolError(E_BAD_REQUEST, "platform must be a JSON object")
    defaults = platform_to_wire(_PLATFORM_DEFAULTS)

    def pick(name: str) -> float:
        value = wire.get(name, defaults[name])
        try:
            return float(value)
        except (TypeError, ValueError):
            raise ProtocolError(
                E_BAD_REQUEST, f"platform.{name} must be a number, got {value!r}"
            ) from None

    num_cores = wire.get("num_cores", defaults["num_cores"])
    if num_cores is not None:
        try:
            num_cores = int(num_cores)
        except (TypeError, ValueError):
            raise ProtocolError(
                E_BAD_REQUEST,
                f"platform.num_cores must be an integer or null, got {num_cores!r}",
            ) from None
    try:
        core = CorePowerModel(
            beta=pick("beta"),
            lam=pick("lam"),
            alpha=pick("alpha"),
            s_up=pick("s_up"),
            s_min=pick("s_min"),
            xi=pick("xi"),
        )
        memory = MemoryModel(alpha_m=pick("alpha_m"), xi_m=pick("xi_m"))
        return Platform(core=core, memory=memory, num_cores=num_cores)
    except ValueError as exc:
        raise ProtocolError(E_BAD_REQUEST, f"invalid platform: {exc}") from exc


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass
class SolveRequest:
    """A parsed, validated solve request."""

    id: str
    tasks: TaskSet
    platform: Platform = field(default_factory=lambda: _PLATFORM_DEFAULTS)
    scheme: str = "auto"
    lane: str = LANE_INTERACTIVE
    numeric: Optional[str] = None
    timeout_ms: Optional[float] = None
    solver: str = "exact"
    epsilon: Optional[float] = None

    def tasks_config(self) -> List[List[object]]:
        """Canonical (deadline-sorted) task description for cache keys.

        Names are part of the key: they appear verbatim in the response
        schedule, so two numerically identical sets with different names
        must not share a cache entry.
        """
        return [[t.release, t.deadline, t.workload, t.name] for t in self.tasks]


def request_from_wire(wire: Dict[str, object]) -> SolveRequest:
    """Validate a decoded ``solve`` request object.

    Raises :class:`ProtocolError` with an actionable message on any
    malformed field; unknown fields are ignored.
    """
    if not isinstance(wire, dict):
        raise ProtocolError(E_BAD_REQUEST, "request must be a JSON object")
    version = wire.get("v", PROTOCOL_VERSION)
    if not isinstance(version, int) or version < 1:
        raise ProtocolError(E_BAD_REQUEST, f"v must be a positive integer, got {version!r}")
    if version > PROTOCOL_VERSION:
        raise ProtocolError(
            E_UNSUPPORTED_VERSION,
            f"request speaks protocol v{version}; this server speaks v{PROTOCOL_VERSION}",
        )
    request_id = wire.get("id")
    if not isinstance(request_id, (str, int)) or (
        isinstance(request_id, str) and not request_id
    ):
        raise ProtocolError(E_BAD_REQUEST, "id must be a non-empty string or an integer")
    scheme = wire.get("scheme", "auto")
    if scheme not in SCHEMES:
        raise ProtocolError(
            E_UNKNOWN_SCHEME,
            f"unknown scheme {scheme!r}; valid: {', '.join(SCHEMES)}",
        )
    lane = wire.get("lane", LANE_INTERACTIVE)
    if lane not in LANES:
        raise ProtocolError(
            E_BAD_REQUEST, f"unknown lane {lane!r}; valid: {', '.join(LANES)}"
        )
    numeric = wire.get("numeric")
    if numeric is not None and numeric not in ("scalar", "numpy", "jit"):
        raise ProtocolError(
            E_BAD_REQUEST,
            f"numeric must be 'scalar', 'numpy' or 'jit', got {numeric!r}",
        )
    solver = wire.get("solver", "exact")
    if solver not in SOLVER_TIERS:
        raise ProtocolError(
            E_BAD_REQUEST,
            f"solver must be one of {', '.join(SOLVER_TIERS)}, got {solver!r}",
        )
    epsilon = wire.get("epsilon")
    if solver == "exact":
        if epsilon is not None:
            raise ProtocolError(
                E_BAD_REQUEST, "epsilon only applies to solver 'fptas'"
            )
    else:
        if epsilon is None:
            epsilon = DEFAULT_EPSILON
        try:
            epsilon = float(epsilon)
        except (TypeError, ValueError):
            raise ProtocolError(
                E_BAD_REQUEST, f"epsilon must be a number, got {epsilon!r}"
            ) from None
        if not 0.0 < epsilon <= 2.0:
            raise ProtocolError(
                E_BAD_REQUEST, f"epsilon must be in (0, 2], got {epsilon!r}"
            )
    timeout_ms = wire.get("timeout_ms")
    if timeout_ms is not None:
        try:
            timeout_ms = float(timeout_ms)
        except (TypeError, ValueError):
            raise ProtocolError(
                E_BAD_REQUEST, f"timeout_ms must be a number, got {timeout_ms!r}"
            ) from None
        if timeout_ms <= 0.0:
            raise ProtocolError(E_BAD_REQUEST, "timeout_ms must be positive")
    try:
        task_list = tasks_from_payload(wire)
    except ValueError as exc:
        raise ProtocolError(E_BAD_REQUEST, f"invalid tasks: {exc}") from exc
    try:
        tasks = TaskSet(task_list)
    except ValueError as exc:
        raise ProtocolError(E_BAD_REQUEST, f"invalid task set: {exc}") from exc
    return SolveRequest(
        id=str(request_id),
        tasks=tasks,
        platform=platform_from_wire(wire.get("platform")),
        scheme=str(scheme),
        lane=str(lane),
        numeric=numeric,
        timeout_ms=timeout_ms,
        solver=str(solver),
        epsilon=epsilon,
    )


# ---------------------------------------------------------------------------
# Execution (the single solver dispatch the server and direct callers share)
# ---------------------------------------------------------------------------


def resolve_scheme(request: SolveRequest) -> str:
    """Resolve ``auto`` to the concrete scheme the solver stack will run.

    Mirrors the ``repro solve`` CLI: overhead-aware common release when the
    platform has transition overheads, plain Section 4 otherwise; Section 5
    for agreeable sets; SDEM-ON simulation for anything else.  Explicit
    offline schemes raise :data:`E_INFEASIBLE` when the task set does not
    satisfy their structural precondition.
    """
    tasks, platform = request.tasks, request.platform
    overheads = platform.memory.xi_m > 0.0 or platform.core.xi > 0.0
    if request.scheme == "auto":
        if tasks.has_common_release():
            return "common-release-overhead" if overheads else "common-release"
        if tasks.is_agreeable():
            return "agreeable"
        return "sdem-on"
    if request.scheme in ("common-release", "common-release-overhead"):
        if not tasks.has_common_release():
            raise ProtocolError(
                E_INFEASIBLE,
                f"scheme {request.scheme!r} needs a common release time; "
                "use scheme 'agreeable' or an online scheme for this set",
            )
    elif request.scheme == "agreeable":
        if not tasks.is_agreeable():
            raise ProtocolError(
                E_INFEASIBLE,
                "scheme 'agreeable' needs agreeable deadlines (sorting by "
                "release also sorts by deadline); use an online scheme",
            )
    return request.scheme


_ONLINE_POLICY_FACTORIES = {
    "sdem-on": lambda platform: SdemOnlinePolicy(platform),
    "mbkp": lambda platform: mbkp(platform),
    "mbkps": lambda platform: mbkps(platform),
    "avr": lambda platform: AvrPolicy(platform),
    "race": lambda platform: RaceToIdlePolicy(platform),
}


def energy_to_wire(breakdown: EnergyBreakdown) -> Dict[str, float]:
    """The itemized breakdown plus its derived totals."""
    return {
        "core_dynamic": breakdown.core_dynamic,
        "core_static_active": breakdown.core_static_active,
        "core_idle": breakdown.core_idle,
        "memory_active": breakdown.memory_active,
        "memory_idle": breakdown.memory_idle,
        "memory_sleep_time": breakdown.memory_sleep_time,
        "memory_busy_time": breakdown.memory_busy_time,
        "total": breakdown.total,
    }


def energy_from_wire(wire: Dict[str, object]) -> EnergyBreakdown:
    """Rebuild a breakdown from its wire form (derived totals ignored)."""
    return EnergyBreakdown(
        core_dynamic=float(wire["core_dynamic"]),
        core_static_active=float(wire["core_static_active"]),
        core_idle=float(wire["core_idle"]),
        memory_active=float(wire["memory_active"]),
        memory_idle=float(wire["memory_idle"]),
        memory_sleep_time=float(wire["memory_sleep_time"]),
        memory_busy_time=float(wire["memory_busy_time"]),
    )


def execute_request(request: SolveRequest) -> Dict[str, object]:
    """Run the solver stack for one request and return the ``result`` payload.

    This is the deterministic part of a response: the resolved scheme, the
    schedule (in the serialization schema), the itemized energy and the
    scheme-specific extras.  The caller is responsible for pinning the
    numeric backend (`request.numeric`) process-wide before calling; the
    batcher does this per batch.  The solver tier is request-scoped and
    pinned here: offline schemes dispatch to the fptas solvers directly,
    online schemes pick the tier up inside every replan.  Exact-tier
    payloads are byte-identical to the pre-tier protocol; fptas payloads
    additionally carry ``solver`` and ``epsilon``.
    """
    tasks, platform = request.tasks, request.platform
    scheme = resolve_scheme(request)
    use_fptas = request.solver == "fptas"
    horizon = (tasks.earliest_release, tasks.latest_deadline)
    result: Dict[str, object] = {"scheme": scheme}
    with pinned_solver(request.solver, request.epsilon):
        if scheme in _ONLINE_POLICY_FACTORIES:
            policy = _ONLINE_POLICY_FACTORIES[scheme](platform)
            sim = simulate(policy, tasks, platform, horizon=horizon)
            schedule = sim.schedule
            result["energy"] = energy_to_wire(sim.breakdown)
            result["peak_concurrency"] = sim.peak_concurrency
        else:
            overheads = platform.memory.xi_m > 0.0 or platform.core.xi > 0.0
            if scheme in ("common-release", "common-release-overhead"):
                if use_fptas:
                    solution = solve_common_release_fptas(tasks, platform)
                elif scheme == "common-release":
                    solution = solve_common_release(tasks, platform)
                else:
                    solution = solve_common_release_with_overhead(
                        tasks, platform
                    )
                result["delta"] = solution.delta
                result["predicted_energy"] = solution.predicted_energy
            else:  # agreeable
                if use_fptas:
                    solution = solve_agreeable_fptas(
                        tasks, platform, include_transition_overhead=overheads
                    )
                else:
                    solution = solve_agreeable(
                        tasks, platform, include_transition_overhead=overheads
                    )
                result["num_blocks"] = solution.num_blocks
                result["predicted_energy"] = solution.predicted_energy
            schedule = solution.schedule()
            breakdown = account(schedule, platform, horizon=horizon)
            result["energy"] = energy_to_wire(breakdown)
    result["schedule"] = schedule_to_payload(schedule)
    result["horizon"] = [horizon[0], horizon[1]]
    if use_fptas:
        result["solver"] = "fptas"
        result["epsilon"] = request.epsilon
    return result


def canonical_result_bytes(result: Dict[str, object]) -> bytes:
    """Canonical encoding of a ``result`` payload for byte-identity checks.

    Key-sorted, compact JSON; floats use shortest-repr so values that
    round-trip through the wire or the result cache compare equal.
    """
    return json.dumps(result, sort_keys=True, separators=(",", ":")).encode("utf-8")


# ---------------------------------------------------------------------------
# Responses and framing
# ---------------------------------------------------------------------------


def error_envelope(
    code: str,
    message: str,
    retry_after_ms: Optional[float] = None,
    *,
    shard: Optional[int] = None,
) -> Dict[str, object]:
    """The shared error object (service responses and CLI ``--json-errors``).

    ``shard`` names the shard that rejected the request on a sharded
    server (backpressure is per-shard there, so "which shard shed" is the
    actionable half of a SHEDDING/QUEUE_FULL diagnosis); single-shard
    servers omit the key, keeping their envelopes byte-stable.
    """
    envelope: Dict[str, object] = {"code": code, "message": message}
    if retry_after_ms is not None:
        envelope["retry_after_ms"] = retry_after_ms
    if shard is not None:
        envelope["shard"] = shard
    return envelope


def ok_response(
    request_id: str,
    result: Dict[str, object],
    *,
    timing: Optional[Dict[str, float]] = None,
    provenance: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A success response; ``timing``/``provenance`` ride outside ``result``
    so the deterministic payload stays byte-comparable."""
    response: Dict[str, object] = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "result": result,
    }
    if timing is not None:
        response["timing"] = timing
    if provenance is not None:
        response["provenance"] = provenance
    return response


def error_response(
    request_id: Optional[str],
    code: str,
    message: str,
    retry_after_ms: Optional[float] = None,
    *,
    shard: Optional[int] = None,
) -> Dict[str, object]:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error_envelope(code, message, retry_after_ms, shard=shard),
    }


def ping_response(request_id: str) -> Dict[str, object]:
    return ok_response(
        request_id, {"pong": True, "protocol": PROTOCOL_VERSION, "repro": __version__}
    )


def encode_line(obj: Dict[str, object]) -> bytes:
    """One wire frame: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, object]:
    """Decode one frame; raises :class:`ProtocolError` on garbage."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(E_BAD_REQUEST, f"undecodable frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(E_BAD_REQUEST, "frame must be a JSON object")
    return obj

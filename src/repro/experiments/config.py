"""Shared experiment configuration (paper Section 8.1.3 and Table 4).

Starred Table 4 defaults: ``x = 400 ms``, ``alpha_m = 4 W``,
``xi_m = 40 ms``.  The platform is eight ARM Cortex-A57 cores plus a 50 nm
DRAM (see :func:`repro.models.platform.paper_platform`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.models.platform import Platform, paper_platform

__all__ = [
    "U_SWEEP",
    "X_SWEEP_MS",
    "ALPHA_M_SWEEP_MW",
    "XI_M_SWEEP_MS",
    "DEFAULT_X_MS",
    "DEFAULT_ALPHA_M_MW",
    "DEFAULT_XI_M_MS",
    "DEFAULT_SEEDS",
    "DEFAULT_NUM_CORES",
    "DEFAULT_TRACE_LENGTH",
    "DEFAULT_MAX_WORKERS",
    "experiment_platform",
]

#: Benchmark utilization factors (Fig. 6); larger U = lower utilization.
U_SWEEP: List[int] = [2, 3, 4, 5, 6, 7, 8, 9]

#: Maximum inter-arrival times in ms (Table 4 row 1; Fig. 7 x-axis).
X_SWEEP_MS: List[float] = [100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0]

#: Memory static power sweep in mW (Table 4 row 2: 1..8 W).
ALPHA_M_SWEEP_MW: List[float] = [1000.0 * k for k in range(1, 9)]

#: Memory break-even times in ms (Table 4 row 3).
XI_M_SWEEP_MS: List[float] = [15.0, 20.0, 25.0, 30.0, 40.0, 50.0, 60.0, 70.0]

DEFAULT_X_MS: float = 400.0  # Table 4 star
DEFAULT_ALPHA_M_MW: float = 4000.0  # Table 4 star (4 W)
DEFAULT_XI_M_MS: float = 40.0  # Table 4 star

#: "For each data point in all task sets, we randomly generate 10
#: different cases, and use the average value" (Section 8.2).
DEFAULT_SEEDS: int = 10

DEFAULT_NUM_CORES: int = 8

#: Tasks per synthetic trace (long enough that edge effects average out;
#: the paper does not state its trace length).
DEFAULT_TRACE_LENGTH: int = 50

#: Default experiment-engine fan-out: 1 = in-process serial loop (safe
#: everywhere, bit-identical to any other setting); ``None`` = every core.
DEFAULT_MAX_WORKERS: Optional[int] = 1


def experiment_platform(
    *,
    alpha_m: float = DEFAULT_ALPHA_M_MW,
    xi_m: float = DEFAULT_XI_M_MS,
    num_cores: int = DEFAULT_NUM_CORES,
) -> Platform:
    """The Section 8 platform with the requested memory parameters."""
    return paper_platform(alpha_m=alpha_m, xi_m=xi_m, num_cores=num_cores)

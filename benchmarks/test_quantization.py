"""Discrete-voltage gap check (paper Section 3's Ishihara-Yasuura claim).

"With these techniques and with the number of voltage levels increasing
in recent years, there will be no big gap between the continuous voltage
and discrete voltage."  Quantify it: quantize the Section 4 optimum onto
level grids of increasing resolution and report the dynamic-energy
overhead, plus the end-to-end effect on an online SDEM-ON run.
"""

from __future__ import annotations

from repro.baselines import QuantizedPolicy
from repro.core import SdemOnlinePolicy, a57_levels, quantization_overhead, solve_common_release
from repro.experiments import experiment_platform
from repro.models import Task, TaskSet
from repro.sim import simulate
from repro.workloads import synthetic_tasks

from conftest import emit


def test_quantization_gap_shrinks_with_levels(benchmark):
    platform = experiment_platform().with_num_cores(None).zero_transition_overheads()
    tasks = TaskSet(
        [
            Task(0.0, 40.0, 8000.0, "a"),
            Task(0.0, 70.0, 15000.0, "b"),
            Task(0.0, 100.0, 4000.0, "c"),
            Task(0.0, 55.0, 11000.0, "d"),
        ]
    )
    schedule = solve_common_release(tasks, platform).schedule()

    def run():
        return [
            (count, quantization_overhead(schedule, a57_levels(count), platform.core))
            for count in (3, 5, 9, 13, 25, 49)
        ]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Quantization overhead vs level-grid size (Section 4 optimum)",
        (
            f"  {count:3d} levels: dynamic energy +{r.overhead_ratio * 100.0:6.3f}%"
            for count, r in reports
        ),
    )
    ratios = [r.overhead_ratio for _, r in reports]
    assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] < 0.01  # under 1% at 49 levels: "no big gap"


def test_online_quantization_end_to_end(benchmark, seeds):
    platform = experiment_platform()
    levels = a57_levels(13)

    def run():
        cont = disc = 0.0
        for seed in range(seeds):
            trace = synthetic_tasks(n=30, max_interarrival=300.0, seed=seed)
            horizon = (
                min(t.release for t in trace),
                max(t.deadline for t in trace),
            )
            cont += simulate(
                SdemOnlinePolicy(platform), trace, platform, horizon=horizon
            ).total_energy / seeds
            disc += simulate(
                QuantizedPolicy(SdemOnlinePolicy(platform), levels),
                trace,
                platform,
                horizon=horizon,
            ).total_energy / seeds
        return cont, disc

    cont, disc = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "SDEM-ON continuous vs 13-level DVFS (avg system energy)",
        [
            f"  continuous {cont / 1000.0:10.2f} mJ",
            f"  13 levels  {disc / 1000.0:10.2f} mJ  "
            f"({(disc / cont - 1.0) * 100.0:+.2f}%)",
        ],
    )
    assert abs(disc / cont - 1.0) < 0.05

"""Average Rate (AVR) baseline -- Yao, Demers, Shenker (1995).

AVR is the other classical online speed-scaling policy the multi-core
literature the paper builds on extends (Albers et al. prove a
``(3 lam)^lam / 2 + 2^lam`` competitive ratio for its multi-processor
version).  Per core, the speed at time ``t`` is the sum of the *densities*
``w_i / (d_i - r_i)`` of all jobs whose feasible window contains ``t``,
and the processor runs EDF among released, unfinished jobs at that speed.
AVR is always feasible (it allocates at least each job's density over its
whole window) but over-provisions compared to Optimal Available.

Included as an extra baseline/ablation: like MBKP it is memory-oblivious,
but its speed profile is spikier, which changes how much common idle time
survives for the memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from repro.energy.accounting import SleepPolicy
from repro.models.platform import Platform
from repro.models.task import Task
from repro.schedule.timeline import ExecutionInterval

__all__ = ["AvrPolicy"]

_EPS = 1e-9


@dataclass
class _AvrJob:
    name: str
    release: float
    deadline: float
    workload: float
    remaining: float

    @property
    def density(self) -> float:
        return self.workload / (self.deadline - self.release)


@dataclass
class _AvrCore:
    jobs: Dict[str, _AvrJob] = field(default_factory=dict)


class AvrPolicy:
    """Per-core Average Rate with round-robin task assignment."""

    def __init__(
        self,
        platform: Platform,
        *,
        num_cores: Optional[int] = None,
        memory_policy: SleepPolicy = SleepPolicy.NEVER,
        core_policy: SleepPolicy = SleepPolicy.BREAK_EVEN,
    ):
        count = num_cores if num_cores is not None else platform.num_cores
        if count is None:
            raise ValueError("AVR needs a finite core count")
        self.platform = platform
        self.memory_policy = memory_policy
        self.core_policy = core_policy
        self._cores = [_AvrCore() for _ in range(count)]
        self._rr_next = 0

    # -- OnlinePolicy interface ------------------------------------------------

    def on_arrival(self, now: float, tasks: Sequence[Task]) -> None:
        for task in tasks:
            core = self._cores[self._rr_next]
            self._rr_next = (self._rr_next + 1) % len(self._cores)
            if task.name in core.jobs:
                raise ValueError(f"duplicate online task name {task.name!r}")
            core.jobs[task.name] = _AvrJob(
                task.name, task.release, task.deadline, task.workload, task.workload
            )

    def run_until(
        self, now: float, until: float
    ) -> List[Tuple[int, ExecutionInterval]]:
        out: List[Tuple[int, ExecutionInterval]] = []
        for index, core in enumerate(self._cores):
            out.extend(
                (index, interval)
                for interval in self._run_core(core, now, until)
            )
        return out

    # -- internals -----------------------------------------------------------------

    def _run_core(
        self, core: _AvrCore, now: float, until: float
    ) -> List[ExecutionInterval]:
        intervals: List[ExecutionInterval] = []
        if not core.jobs:
            return intervals
        # Hard stop for open-ended runs: all work finishes by the last
        # deadline, after which the loop has nothing to do.
        limit = until
        if math.isinf(limit):
            limit = max(job.deadline for job in core.jobs.values())
        t = now
        while t < limit - _EPS:
            live = [j for j in core.jobs.values() if j.remaining > _EPS]
            if not live:
                break
            # AVR speed: densities of windows containing t.
            speed = sum(
                j.density for j in core.jobs.values() if j.release <= t < j.deadline
            )
            speed = min(speed, self.platform.core.s_up)
            # Next point the speed profile or job set can change.
            breakpoints = [limit]
            breakpoints.extend(
                j.deadline for j in core.jobs.values() if j.deadline > t + _EPS
            )
            segment_end = min(breakpoints)
            ready = [j for j in live if j.release <= t + _EPS]
            if not ready or speed <= 0.0:
                t = segment_end
                continue
            job = min(ready, key=lambda j: (j.deadline, j.name))
            finish = t + job.remaining / speed
            end = min(finish, segment_end)
            if end <= t + _EPS:
                job.remaining = 0.0
                continue
            intervals.append(ExecutionInterval(job.name, t, end, speed))
            job.remaining -= speed * (end - t)
            t = end
        # Drop fully completed jobs whose window has also closed -- their
        # density no longer matters.
        done = [
            name
            for name, j in core.jobs.items()
            if j.remaining <= _EPS and j.deadline <= t + _EPS
        ]
        for name in done:
            del core.jobs[name]
        return intervals

"""Shared fixtures for the SDEM reproduction test suite."""

from __future__ import annotations

import pytest

from repro.models import (
    CorePowerModel,
    MemoryModel,
    Platform,
    Task,
    TaskSet,
    paper_platform,
)


@pytest.fixture
def simple_core() -> CorePowerModel:
    """A round-number core model: P(s) = 100 + 1.0 * s^3 (mW, MHz)."""
    return CorePowerModel(beta=1.0, lam=3.0, alpha=100.0, s_up=1000.0)


@pytest.fixture
def zero_alpha_core() -> CorePowerModel:
    """Round-number core with negligible static power (Sections 4.1/5.1)."""
    return CorePowerModel(beta=1.0, lam=3.0, alpha=0.0, s_up=1000.0)


@pytest.fixture
def simple_memory() -> MemoryModel:
    return MemoryModel(alpha_m=50.0, xi_m=0.0)


@pytest.fixture
def simple_platform(simple_core, simple_memory) -> Platform:
    return Platform(core=simple_core, memory=simple_memory)


@pytest.fixture
def zero_alpha_platform(zero_alpha_core, simple_memory) -> Platform:
    return Platform(core=zero_alpha_core, memory=simple_memory)


@pytest.fixture
def a57_platform() -> Platform:
    """The Section 8 evaluation platform (transition overheads zeroed)."""
    return paper_platform(xi=0.0, xi_m=0.0)


@pytest.fixture
def common_release_tasks() -> TaskSet:
    """Three common-release tasks with staggered deadlines."""
    return TaskSet(
        [
            Task(0.0, 10.0, 20.0, "T1"),
            Task(0.0, 20.0, 30.0, "T2"),
            Task(0.0, 40.0, 10.0, "T3"),
        ]
    )


@pytest.fixture
def agreeable_tasks() -> TaskSet:
    """Four agreeable-deadline tasks forming two natural clusters."""
    return TaskSet(
        [
            Task(0.0, 15.0, 25.0, "T1"),
            Task(5.0, 25.0, 30.0, "T2"),
            Task(60.0, 80.0, 20.0, "T3"),
            Task(65.0, 95.0, 35.0, "T4"),
        ]
    )

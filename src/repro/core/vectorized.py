"""Vectorized NumPy numeric core for the block / case-scan hot paths.

The scalar solvers in :mod:`repro.core.blocks`,
:mod:`repro.core.common_release` and :mod:`repro.core.transition` are the
*reference* implementations: they follow the paper's per-task loops
line by line and every fidelity test pins them against the closed forms.
Profiling (see docs/PERFORMANCE.md) shows the dominant cost of a Section 8
sweep is exactly those loops, re-entered thousands of times by the
golden-section / coordinate-descent probes of the O(n^4)/O(n^5) DPs.

This module provides the batched counterparts:

* :class:`BlockArrays` -- a task set's releases / deadlines / workloads as
  ndarrays (deadline-sorted, matching ``TaskSet`` order) plus workload
  prefix sums, built once per content signature and LRU-cached;
* :func:`block_energy_batch` -- the graded-penalty block energy of
  ``repro.core.blocks._block_energy_uncached`` evaluated at a whole array
  of ``(start, end)`` candidates in one shot;
* :func:`placement_arrays` -- the per-task best-response placement vectors
  behind ``_placements_at``;
* :func:`overhead_energy_batch` -- the Section 7 break-even-aware energy of
  ``repro.core.transition.overhead_energy_at_delta`` over an array of
  sleep-length candidates;
* :func:`schedule_geometry_arrays` -- the vectorized constrained-critical-
  speed geometry (natural finish times) behind ``_schedule_geometry``.

Backend selection is process-wide: ``REPRO_NUMERIC=scalar|numpy|jit`` in
the environment, or :func:`set_backend` for programmatic control (the
CLI's ``--numeric`` flag).  When unset, the numpy backend is used whenever
numpy imports; the scalar path needs nothing beyond the standard library.
The ``jit`` backend layers the compiled kernels of
:mod:`repro.core.kernels` (numba or cffi-compiled C) on top of the numpy
engine paths; when no compiled provider is importable the request
degrades to numpy (or scalar) with a single :class:`JitUnavailableWarning
<repro.core.kernels.JitUnavailableWarning>` instead of failing mid-run.
The property tests in ``tests/test_numeric_backends.py`` and
``tests/test_jit_backend.py`` assert all backends agree to 1e-9 on
randomized task sets, so paper-fidelity tests keep pinning the closed
forms no matter which backend runs them.
"""

from __future__ import annotations

import math
import os
from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less CI legs
    np = None  # type: ignore[assignment]

from repro.models.platform import Platform
from repro.models.task import TaskSet

__all__ = [
    "HAS_NUMPY",
    "BACKEND_ENV",
    "available_backends",
    "get_backend",
    "get_backend_override",
    "set_backend",
    "use_numpy",
    "use_jit",
    "BlockArrays",
    "block_arrays",
    "block_arrays_cache_clear",
    "block_arrays_cache_size",
    "register_subset_arrays",
    "prefetch_block_arrays",
    "block_energy_batch",
    "placement_arrays",
    "schedule_geometry_arrays",
    "OverheadScan",
    "overhead_scan",
    "overhead_energy_batch",
    "overhead_solve_small",
    "TimelineArrays",
    "timeline_arrays",
    "accounting_batch",
    "uniform_from_draws",
    "running_sum",
    "fft_trace_columns",
    "synthetic_trace_columns",
    "agreeable_trace_columns",
    "segments_feasible_batch",
]

HAS_NUMPY = np is not None

#: Environment variable selecting the numeric backend.
BACKEND_ENV = "REPRO_NUMERIC"

_PENALTY = 1e30
_INF = float("inf")

_BACKENDS = ("scalar", "numpy", "jit")
_backend_override: Optional[str] = None
_jit_fallback_warned = False


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this process.

    ``numpy`` appears only when numpy imports; ``jit`` only when a
    compiled kernel provider loads *and* passes its self-check (see
    :func:`repro.core.kernels.available`).
    """
    names = ["scalar"]
    if HAS_NUMPY:
        names.append("numpy")
    from repro.core import kernels

    if kernels.available():
        names.append("jit")
    return tuple(names)


def _jit_fallback() -> str:
    """Resolve an unavailable ``jit`` request to the next-best backend.

    Emits one structured :class:`~repro.core.kernels.JitUnavailableWarning`
    per process (satellite: degradation must never crash mid-run, and must
    not spam a warning per solve).
    """
    global _jit_fallback_warned
    from repro.core import kernels

    fallback = "numpy" if HAS_NUMPY else "scalar"
    if not _jit_fallback_warned:
        _jit_fallback_warned = True
        import warnings

        warnings.warn(
            "numeric backend 'jit' requested but no compiled kernel "
            f"provider is usable ({kernels.load_error()}); falling back "
            f"to '{fallback}'",
            kernels.JitUnavailableWarning,
            stacklevel=3,
        )
    return fallback


def _validate_backend(name: str) -> str:
    name = name.strip().lower()
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown numeric backend {name!r}; valid: {', '.join(_BACKENDS)}"
        )
    if name == "numpy" and not HAS_NUMPY:
        raise RuntimeError(
            "numeric backend 'numpy' requested but numpy is not installed; "
            "unset REPRO_NUMERIC or install numpy"
        )
    if name == "jit":
        from repro.core import kernels

        if not kernels.available():
            return _jit_fallback()
    return name


def set_backend(name: Optional[str]) -> None:
    """Force the numeric backend for this process.

    ``None`` clears the override, restoring the ``REPRO_NUMERIC``
    environment variable (or the auto default).  Clears the scalar-side
    memo caches in :mod:`repro.core.blocks` so a backend switch can never
    serve values computed by the other backend.
    """
    global _backend_override
    _backend_override = None if name is None else _validate_backend(name)
    # Imported lazily: blocks imports this module at load time.
    from repro.core.blocks import block_energy_cache_clear

    block_energy_cache_clear()


def get_backend_override() -> Optional[str]:
    """The forced backend, or ``None`` when env/auto selection applies.

    Lets callers that temporarily switch backends (``repro bench``'s
    scalar-vs-numpy comparison) restore the caller's choice instead of
    clobbering it with the auto default.
    """
    return _backend_override


def get_backend() -> str:
    """The effective backend: override > ``$REPRO_NUMERIC`` > auto."""
    if _backend_override is not None:
        return _backend_override
    env = os.environ.get(BACKEND_ENV, "")
    if env.strip():
        return _validate_backend(env)
    return "numpy" if HAS_NUMPY else "scalar"


def use_numpy() -> bool:
    """True when the numpy numeric core should serve the hot paths.

    The ``jit`` backend rides the numpy engine paths (simulation,
    accounting, batched geometry) and only swaps the solver inner loops
    for compiled kernels, so it answers True here whenever numpy is
    importable.
    """
    backend = get_backend()
    if backend == "jit":
        return HAS_NUMPY
    return backend == "numpy"


def use_jit() -> bool:
    """True when the compiled kernels should serve the solver inner loops."""
    return get_backend() == "jit"


# ---------------------------------------------------------------------------
# BlockArrays: a task set as ndarrays, cached on content signature
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockArrays:
    """A task set's numeric content as deadline-sorted ndarrays.

    ``workload_prefix`` has ``n + 1`` entries with
    ``workload_prefix[i] = sum(workloads[:i])`` so any consecutive block's
    total workload is one subtraction.  Arrays are read-only views shared
    across every kernel call for the same task-set content.
    """

    releases: "np.ndarray"
    deadlines: "np.ndarray"
    workloads: "np.ndarray"
    workload_prefix: "np.ndarray"

    @property
    def n(self) -> int:
        return int(self.workloads.shape[0])


_ARRAYS_CACHE: "OrderedDict[Tuple, BlockArrays]" = OrderedDict()
_ARRAYS_CACHE_MAX = 1 << 14


def block_arrays_cache_clear() -> None:
    """Drop every cached :class:`BlockArrays` (test isolation)."""
    _ARRAYS_CACHE.clear()


def block_arrays_cache_size() -> int:
    """Task sets currently memoized (shard workers flush this at drain)."""
    return len(_ARRAYS_CACHE)


def _freeze(arr: "np.ndarray") -> "np.ndarray":
    arr.setflags(write=False)
    return arr


def _cache_put(key: Tuple, arrays: BlockArrays) -> None:
    _ARRAYS_CACHE[key] = arrays
    if len(_ARRAYS_CACHE) > _ARRAYS_CACHE_MAX:
        _ARRAYS_CACHE.popitem(last=False)


def block_arrays(tasks: TaskSet) -> BlockArrays:
    """The (cached) :class:`BlockArrays` for a task set's content.

    Keyed on :meth:`repro.models.task.TaskSet.energy_signature`, so two
    sets with identical numeric content share one array build regardless
    of naming or object identity.
    """
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    key = tasks.energy_signature()
    hit = _ARRAYS_CACHE.get(key)
    if hit is not None:
        _ARRAYS_CACHE.move_to_end(key)
        return hit
    raw = np.asarray(key, dtype=np.float64).reshape(len(key), 3)
    workloads = raw[:, 2].copy()
    prefix = np.empty(len(key) + 1, dtype=np.float64)
    prefix[0] = 0.0
    np.cumsum(workloads, out=prefix[1:])
    arrays = BlockArrays(
        releases=_freeze(raw[:, 0].copy()),
        deadlines=_freeze(raw[:, 1].copy()),
        workloads=_freeze(workloads),
        workload_prefix=_freeze(prefix),
    )
    _cache_put(key, arrays)
    return arrays


def register_subset_arrays(parent: TaskSet, start: int, stop: int) -> None:
    """Pre-seed the arrays cache for ``parent.subset(start, stop)``.

    The agreeable DP prices O(n^2) consecutive blocks of one parent set;
    each block's arrays are slices of the parent's, so building them from
    views skips the per-subset tuple unpacking.  Deadline order is
    preserved by slicing (the parent is already sorted), hence the slice
    *is* the subset's canonical array content.
    """
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    parent_key = parent.energy_signature()
    key = parent_key[start:stop]
    if key in _ARRAYS_CACHE:
        _ARRAYS_CACHE.move_to_end(key)
        return
    pa = block_arrays(parent)
    workloads = pa.workloads[start:stop]
    prefix = np.empty(stop - start + 1, dtype=np.float64)
    prefix[0] = 0.0
    np.cumsum(workloads, out=prefix[1:])
    arrays = BlockArrays(
        releases=pa.releases[start:stop],
        deadlines=pa.deadlines[start:stop],
        workloads=workloads,
        workload_prefix=_freeze(prefix),
    )
    _cache_put(key, arrays)


def prefetch_block_arrays(task_sets: Sequence[TaskSet]) -> int:
    """Batch entry point: warm the arrays cache for many task sets at once.

    The service micro-batcher calls this with every distinct task set of a
    coalesced batch before dispatching the individual solves, so the
    per-set array builds happen in one cache-friendly pass instead of
    being interleaved with DP probes.  Returns the number of fresh builds
    (0 on the scalar backend, where there is nothing to warm).
    """
    if not use_numpy():
        return 0
    built = 0
    for tasks in task_sets:
        key = tasks.energy_signature()
        if key in _ARRAYS_CACHE:
            _ARRAYS_CACHE.move_to_end(key)
        else:
            block_arrays(tasks)
            built += 1
    return built


# ---------------------------------------------------------------------------
# Block energy over (start, end) candidate arrays
# ---------------------------------------------------------------------------


def critical_speeds(arrays: BlockArrays, platform: Platform) -> "np.ndarray":
    """Task-clamped critical speeds ``s_0`` as an ``(n,)`` vector.

    Mirrors :meth:`repro.models.power.CorePowerModel.s0`:
    ``min(max(s_m, filled_speed), s_up)`` per task.
    """
    core = platform.core
    filled = arrays.workloads / (arrays.deadlines - arrays.releases)
    return np.minimum(np.maximum(core.s_m, filled), core.s_up)


def block_energy_batch(
    tasks: TaskSet,
    platform: Platform,
    starts: Sequence[float],
    ends: Sequence[float],
) -> "np.ndarray":
    """Block energies at K candidate busy intervals, as a ``(K,)`` vector.

    Array transcription of ``repro.core.blocks._block_energy_uncached``
    (same window clamps, same relative speed-cap tolerance, same graded
    penalties), broadcasting a ``(K, n)`` window matrix instead of looping
    tasks per candidate.  Under the ``jit`` backend the compiled scalar
    transcription evaluates each candidate instead (bit-identical to the
    scalar reference; callers still receive an ndarray).
    """
    if get_backend() == "jit":
        from repro.core import kernels

        values = kernels.block_energy_batch(tasks, platform, starts, ends)
        return np.asarray(values, dtype=np.float64)
    arr = block_arrays(tasks)
    core = platform.core
    s = np.asarray(starts, dtype=np.float64)
    e = np.asarray(ends, dtype=np.float64)
    lo = np.maximum(arr.releases[None, :], s[:, None])
    hi = np.minimum(arr.deadlines[None, :], e[:, None])
    window = hi - lo
    min_duration = arr.workloads / core.s_up
    infeasible = window < min_duration[None, :] * (1.0 - 1e-12) - 1e-12
    violation = np.where(infeasible, min_duration[None, :] - window, 0.0).sum(
        axis=1
    )
    eff_window = np.maximum(window, min_duration[None, :])
    if core.alpha == 0.0:
        duration = eff_window
    else:
        s0 = critical_speeds(arr, platform)
        preferred = np.maximum(arr.workloads / s0, min_duration)
        duration = np.minimum(preferred[None, :], eff_window)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        speed = arr.workloads[None, :] / duration
        terms = (core.alpha + core.beta * speed ** core.lam) * arr.workloads[
            None, :
        ] / speed
        # Infeasible tasks contribute penalty, not energy; zero their terms
        # so the row sum stays finite wherever the candidate is feasible.
        terms = np.where(infeasible, 0.0, terms)
        total = platform.memory.alpha_m * (e - s) + np.nansum(terms, axis=1)
    total = np.where(violation > 0.0, _PENALTY * (1.0 + violation), total)
    return np.where(e <= s, _PENALTY * (1.0 + (s - e)), total)


def placement_arrays(
    tasks: TaskSet, platform: Platform, start: float, end: float
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Per-task ``(start, duration, speed)`` vectors for one busy interval.

    Array transcription of ``repro.core.blocks._placements_at``: Type-II /
    stretched tasks fill their window, Type-I tasks run at critical speed
    from the window start.
    """
    arr = block_arrays(tasks)
    core = platform.core
    lo = np.maximum(arr.releases, start)
    hi = np.minimum(arr.deadlines, end)
    min_duration = arr.workloads / core.s_up
    eff_window = np.maximum(hi - lo, min_duration)
    if core.alpha == 0.0:
        duration = eff_window
    else:
        s0 = critical_speeds(arr, platform)
        preferred = np.maximum(arr.workloads / s0, min_duration)
        duration = np.minimum(preferred, eff_window)
    return lo, duration, arr.workloads / duration


# ---------------------------------------------------------------------------
# Section 7 overhead-aware geometry and candidate sweeps
# ---------------------------------------------------------------------------


def schedule_geometry_arrays(
    tasks: TaskSet, platform: Platform
) -> Tuple[float, "np.ndarray", "np.ndarray", "np.ndarray"]:
    """Vectorized ``repro.core.transition._schedule_geometry``.

    Returns ``(horizon, ends, workloads, order)`` where ``order`` is the
    stable natural-finish sort permutation (indices into the task set's
    deadline order) and ``ends`` / ``workloads`` are already permuted.
    """
    arr = block_arrays(tasks)
    core = platform.core
    release = float(arr.releases[0])
    if core.alpha == 0.0:
        ends = arr.deadlines - release
    else:
        outer = float(tasks.latest_deadline) - release
        # s_c per task: the constrained critical speed of Section 7.
        filled = arr.workloads / (arr.deadlines - arr.releases)
        candidate = np.minimum(np.maximum(core.s_m, filled), core.s_up)
        if core.s_m > 0.0:
            reference = np.full_like(candidate, min(core.s_m, core.s_up))
        else:
            reference = candidate
        amortizes = outer - arr.workloads / reference >= core.xi
        s_c = np.where(
            reference <= 0.0,
            candidate,
            np.where(amortizes, candidate, np.minimum(filled, core.s_up)),
        )
        ends = arr.workloads / s_c
    order = np.argsort(ends, kind="stable")
    ends = ends[order]
    return float(ends[-1]), ends, arr.workloads[order], order


#: Below this task count the ndarray kernels lose to plain Python: per-op
#: dispatch overhead (~a few microseconds) exceeds the whole loop's cost.
#: The Section 8 online sweeps replan over 1-8 pending tasks, so the
#: small-n path is the one that matters for the bench; both paths compute
#: the same formulas in the same order, so they agree bit-for-bit.
_SMALL_N = 64


@dataclass(frozen=True)
class OverheadScan:
    """Prefix/suffix decomposition of the Section 7 candidate objective.

    Splitting tasks at a candidate's busy end ``|I| - Delta`` (ends are
    sorted, so the split is one binary search) turns the per-task energy
    sum of ``overhead_energy_at_delta`` into closed prefix/suffix forms:
    tasks finishing naturally before the busy end contribute constants
    (``prefix_*``), tasks aligned to the busy end contribute
    ``count * alpha * busy_end`` plus ``beta * suffix_wlam * busy_end^(1-lam)``
    -- the Eq. (8) power-sum structure.  One scan build prices any number
    of sleep-length candidates in O(log n) each instead of O(n).

    ``ends`` / ``workloads`` / ``order`` are plain lists (callers iterate
    them in Python); the prefix/suffix tables are lists on the small-n
    path and ndarrays otherwise (``small`` flags which).
    """

    horizon: float
    ends: Sequence[float]
    workloads: Sequence[float]
    order: Sequence[int]
    #: prefix sums over natural-finish order; index i covers tasks [0, i)
    prefix_ends: Sequence[float]
    prefix_beta_nat: Sequence[float]
    #: ``None`` when core gap costs are identically zero (alpha or xi zero)
    prefix_gap_nat: Optional[Sequence[float]]
    #: ``None`` when no natural finish overspeeds (the usual case)
    prefix_overspeed: Optional[Sequence[int]]
    #: suffix sums; index i covers tasks [i, n)
    suffix_wlam: Sequence[float]
    suffix_max_w: Sequence[float]
    small: bool

    @property
    def n(self) -> int:
        return len(self.workloads)


def _overhead_scan_small(
    tasks: TaskSet, platform: Platform, rel_end: float
) -> OverheadScan:
    """Python build of the scan for small task counts."""
    core = platform.core
    release = tasks[0].release
    if core.alpha == 0.0:
        annotated = [
            (t.deadline - release, i, t.workload) for i, t in enumerate(tasks)
        ]
    else:
        # Inline CorePowerModel.s_c with s_m hoisted: the property
        # recomputes its root on every access, which dominates the scan
        # build at small n.  Same expressions, same values.
        outer = tasks.latest_deadline - release
        s_m, s_up, xi = core.s_m, core.s_up, core.xi
        reference = min(s_m, s_up) if s_m > 0.0 else None
        annotated = []
        for i, t in enumerate(tasks):
            w = t.workload
            filled = w / (t.deadline - t.release)
            candidate = min(max(s_m, filled), s_up)
            ref = candidate if reference is None else reference
            if ref <= 0.0 or outer - w / ref >= xi:
                s_c = candidate
            else:
                s_c = min(filled, s_up)
            annotated.append((w / s_c, i, w))
    annotated.sort(key=lambda pair: pair[0])
    ends, order, workloads = zip(*annotated)
    horizon = ends[-1]

    lam, beta = core.lam, core.beta
    one_lam = 1.0 - lam
    alpha, xi = core.alpha, core.xi
    up_thresh = core.s_up * (1.0 + 1e-9)
    gapped = alpha != 0.0 and xi != 0.0
    axi = alpha * xi
    prefix_ends = [0.0]
    prefix_beta_nat = [0.0]
    prefix_gap_nat = [0.0] if gapped else None
    overspeed = False
    acc_e = acc_b = acc_g = 0.0
    for end, w in zip(ends, workloads):
        acc_e += end
        prefix_ends.append(acc_e)
        acc_b += (beta * w ** lam) * end ** one_lam
        prefix_beta_nat.append(acc_b)
        if gapped:
            gap = rel_end - end
            acc_g += min(alpha * gap, axi) if gap > 0.0 else 0.0
            prefix_gap_nat.append(acc_g)
        if w / end > up_thresh:
            overspeed = True
    prefix_overspeed: Optional[List[int]] = None
    if overspeed:
        prefix_overspeed = [0]
        acc_o = 0
        for end, w in zip(ends, workloads):
            acc_o += 1 if w / end > up_thresh else 0
            prefix_overspeed.append(acc_o)
    n = len(ends)
    suffix_wlam = [0.0] * (n + 1)
    suffix_max_w = [0.0] * (n + 1)
    for j in range(n - 1, -1, -1):
        suffix_wlam[j] = suffix_wlam[j + 1] + workloads[j] ** lam
        suffix_max_w[j] = max(suffix_max_w[j + 1], workloads[j])
    return OverheadScan(
        horizon=horizon,
        ends=ends,
        workloads=workloads,
        order=order,
        prefix_ends=prefix_ends,
        prefix_beta_nat=prefix_beta_nat,
        prefix_gap_nat=prefix_gap_nat,
        prefix_overspeed=prefix_overspeed,
        suffix_wlam=suffix_wlam,
        suffix_max_w=suffix_max_w,
        small=True,
    )


def overhead_scan(
    tasks: TaskSet, platform: Platform, rel_end: float
) -> OverheadScan:
    """Build the :class:`OverheadScan` for one solve's geometry.

    ``rel_end`` is the release-relative accounting horizon; the natural
    tasks' break-even gap costs depend only on it, so they fold into a
    prefix sum here.
    """
    if len(tasks) <= _SMALL_N:
        return _overhead_scan_small(tasks, platform, rel_end)
    core = platform.core
    horizon, ends, workloads, order = schedule_geometry_arrays(tasks, platform)
    n = int(ends.shape[0])
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        wlam = workloads ** core.lam
        beta_nat = (core.beta * wlam) * ends ** (1.0 - core.lam)
        nat_over = workloads / ends > core.s_up * (1.0 + 1e-9)
        gapped = core.alpha != 0.0 and core.xi != 0.0
        if gapped:
            gaps = rel_end - ends
            gap_nat = np.where(
                gaps > 0.0,
                np.minimum(core.alpha * gaps, core.alpha * core.xi),
                0.0,
            )

    def prefix(values: "np.ndarray") -> "np.ndarray":
        out = np.empty(n + 1, dtype=values.dtype)
        out[0] = 0
        np.cumsum(values, out=out[1:])
        return out

    # suffix[i] covers tasks [i, n); suffix[n] stays the empty-set value.
    suffix_wlam = np.zeros(n + 1, dtype=np.float64)
    np.cumsum(wlam[::-1], out=suffix_wlam[n - 1 :: -1])
    suffix_max_w = np.zeros(n + 1, dtype=np.float64)
    np.maximum.accumulate(workloads[::-1], out=suffix_max_w[n - 1 :: -1])
    return OverheadScan(
        horizon=horizon,
        ends=ends.tolist(),
        workloads=workloads.tolist(),
        order=order.tolist(),
        prefix_ends=prefix(ends),
        prefix_beta_nat=prefix(beta_nat),
        prefix_gap_nat=prefix(gap_nat) if gapped else None,
        prefix_overspeed=prefix(nat_over.astype(np.int64))
        if bool(nat_over.any())
        else None,
        suffix_wlam=suffix_wlam,
        suffix_max_w=suffix_max_w,
        small=False,
    )


def _overhead_energy_small(
    scan: OverheadScan,
    platform: Platform,
    rel_end: float,
    deltas: Sequence[float],
) -> List[float]:
    """Python evaluation of the scan objective at each candidate."""
    core = platform.core
    memory = platform.memory
    horizon = scan.horizon
    ends = scan.ends
    n = scan.n
    alpha, beta = core.alpha, core.beta
    one_lam = 1.0 - core.lam
    axi = alpha * core.xi
    am, am_xi = memory.alpha_m, memory.alpha_m * memory.xi_m
    up_thresh = core.s_up * (1.0 + 1e-9)
    pe, pb = scan.prefix_ends, scan.prefix_beta_nat
    pg, po = scan.prefix_gap_nat, scan.prefix_overspeed
    sw, sm = scan.suffix_wlam, scan.suffix_max_w
    gapped = pg is not None
    out: List[float] = []
    for delta in deltas:
        busy = horizon - delta
        if busy <= 0.0:
            out.append(_INF)
            continue
        k = bisect_left(ends, busy)
        if (po is not None and po[k] > 0) or sm[k] > up_thresh * busy:
            out.append(_INF)
            continue
        aligned = n - k
        total = (
            am * busy
            + alpha * pe[k]
            + pb[k]
            + alpha * aligned * busy
            + sw[k] * (beta * busy ** one_lam)
        )
        trailing = rel_end - busy
        if trailing > 0.0:
            if am != 0.0:
                total += min(am * trailing, am_xi)
            if gapped:
                total += aligned * min(alpha * trailing, axi)
        if gapped:
            total += pg[k]
        out.append(total)
    return out


def overhead_energy_batch(
    scan: OverheadScan,
    platform: Platform,
    rel_end: float,
    deltas: Sequence[float],
) -> List[float]:
    """Section 7 total energies at K sleep-length candidates.

    Semantically matches
    :func:`repro.core.transition.overhead_energy_at_delta` over the scan's
    geometry: memory busy cost plus break-even-priced gaps plus per-task
    execution energy (``alpha * finish + beta * w^lam * finish^(1-lam)``
    per task, the algebraic form of ``execution_energy(w, w/finish)``),
    ``inf`` where the candidate forces an overspeed or a non-positive busy
    interval.  Returns plain floats; the selection loop is Python either
    way.
    """
    if scan.small:
        if get_backend() == "jit":
            from repro.core import kernels

            return kernels.overhead_energy_small(scan, platform, rel_end, deltas)
        return _overhead_energy_small(scan, platform, rel_end, deltas)
    core = platform.core
    memory = platform.memory
    deltas = np.asarray(deltas, dtype=np.float64)
    busy_end = scan.horizon - deltas
    split = np.searchsorted(np.asarray(scan.ends), busy_end, side="left")
    aligned = scan.n - split
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        overspeed = scan.suffix_max_w[split] > core.s_up * (1.0 + 1e-9) * busy_end
        if scan.prefix_overspeed is not None:
            overspeed |= scan.prefix_overspeed[split] > 0
        total = (
            memory.alpha_m * busy_end
            + core.alpha * scan.prefix_ends[split]
            + scan.prefix_beta_nat[split]
            + core.alpha * aligned * busy_end
            + scan.suffix_wlam[split] * (core.beta * busy_end ** (1.0 - core.lam))
        )
        trailing = rel_end - busy_end
        positive = trailing > 0.0
        if memory.alpha_m != 0.0:
            total += np.where(
                positive,
                np.minimum(memory.alpha_m * trailing, memory.alpha_m * memory.xi_m),
                0.0,
            )
        if scan.prefix_gap_nat is not None:
            total += scan.prefix_gap_nat[split]
            total += aligned * np.where(
                positive,
                np.minimum(core.alpha * trailing, core.alpha * core.xi),
                0.0,
            )
    total = np.where(overspeed, _INF, total)
    return np.where(busy_end <= 0.0, _INF, total).tolist()


def overhead_solve_small(
    tasks: TaskSet, platform: Platform, rel_end: float
) -> Tuple[
    float,
    Sequence[float],
    Sequence[int],
    Optional[Tuple[float, float, int]],
]:
    """Fused small-n Section 7 solve: geometry, scan and candidate sweep.

    The online replan loop solves thousands of 1-8 task instances, where
    the cost is pure Python call overhead rather than arithmetic; fusing
    :func:`_overhead_scan_small`, the transition-module case loop and
    :func:`_overhead_energy_small` into one frame erases that overhead.
    Every formula and evaluation order matches the unfused path (identical
    floats, identical candidate fold), which the backend property tests
    pin.

    Returns ``(horizon, natural_ends, order, best)`` with ``best`` the
    ``(delta, energy, case_index)`` winner -- or ``None`` when ``rel_end``
    precedes the schedule end, which the caller turns into the same
    ``ValueError`` the unfused path raises.
    """
    core = platform.core
    memory = platform.memory
    release = tasks[0].release
    if core.alpha == 0.0:
        annotated = [
            (t.deadline - release, i, t.workload) for i, t in enumerate(tasks)
        ]
    else:
        outer = tasks.latest_deadline - release
        s_m, s_up, xi = core.s_m, core.s_up, core.xi
        reference = min(s_m, s_up) if s_m > 0.0 else None
        annotated = []
        for i, t in enumerate(tasks):
            w = t.workload
            filled = w / (t.deadline - t.release)
            candidate = min(max(s_m, filled), s_up)
            ref = candidate if reference is None else reference
            if ref <= 0.0 or outer - w / ref >= xi:
                s_c = candidate
            else:
                s_c = min(filled, s_up)
            annotated.append((w / s_c, i, w))
    annotated.sort(key=lambda pair: pair[0])
    ends, order, workloads = zip(*annotated)
    horizon = ends[-1]
    if rel_end < horizon - 1e-9:
        return horizon, ends, order, None

    lam, beta = core.lam, core.beta
    one_lam = 1.0 - lam
    alpha, xi = core.alpha, core.xi
    s_up = core.s_up
    up_thresh = s_up * (1.0 + 1e-9)
    gapped = alpha != 0.0 and xi != 0.0
    axi = alpha * xi
    pe = [0.0]
    pb = [0.0]
    pg = [0.0] if gapped else None
    overspeed = False
    acc_e = acc_b = acc_g = 0.0
    for end, w in zip(ends, workloads):
        acc_e += end
        pe.append(acc_e)
        acc_b += (beta * w ** lam) * end ** one_lam
        pb.append(acc_b)
        if gapped:
            gap = rel_end - end
            if gap > 0.0:
                ag = alpha * gap
                acc_g += ag if ag < axi else axi
            pg.append(acc_g)
        if w / end > up_thresh:
            overspeed = True
    po: Optional[List[int]] = None
    if overspeed:
        po = [0]
        acc_o = 0
        for end, w in zip(ends, workloads):
            acc_o += 1 if w / end > up_thresh else 0
            po.append(acc_o)
    n = len(ends)
    sw = [0.0] * (n + 1)
    sm = [0.0] * (n + 1)
    for j in range(n - 1, -1, -1):
        sw[j] = sw[j + 1] + workloads[j] ** lam
        wj = workloads[j]
        prev = sm[j + 1]
        sm[j] = prev if prev >= wj else wj

    alpha_m = memory.alpha_m
    am_xi = alpha_m * memory.xi_m
    shift = rel_end - horizon
    beta_lam = beta * (lam - 1.0)
    inv_lam = 1.0 / lam
    kinks = (0.0, xi - shift, memory.xi_m - shift)
    delta_bp = [_INF] + [horizon - c for c in ends]

    best: Optional[Tuple[float, float, int]] = None
    for i in range(1, n + 1):
        lo = delta_bp[i]
        cap = horizon - sm[i - 1] / s_up
        hi = delta_bp[i - 1]
        if cap < hi:
            hi = cap
        if horizon < hi:
            hi = horizon
        if hi < lo:
            continue
        aligned = n - i + 1
        candidates = {lo, hi if math.isfinite(hi) else lo}
        factor = beta_lam * sw[i - 1]
        for coeff in (
            aligned * alpha + alpha_m,  # both sleep
            alpha_m,  # cores idle awake
            aligned * alpha,  # memory stays awake
        ):
            if coeff > 0.0:
                point = horizon - (factor / coeff) ** inv_lam
                if point < lo:
                    point = lo
                if point > hi:
                    point = hi
                candidates.add(point)
        for kink in kinks:
            if lo <= kink <= hi:
                candidates.add(kink)
        for delta in sorted(candidates):
            busy = horizon - delta
            if busy <= 0.0:
                energy = _INF
            else:
                k = bisect_left(ends, busy)
                if (po is not None and po[k] > 0) or sm[k] > up_thresh * busy:
                    energy = _INF
                else:
                    behind = n - k
                    energy = (
                        alpha_m * busy
                        + alpha * pe[k]
                        + pb[k]
                        + alpha * behind * busy
                        + sw[k] * (beta * busy ** one_lam)
                    )
                    trailing = rel_end - busy
                    if trailing > 0.0:
                        if alpha_m != 0.0:
                            mt = alpha_m * trailing
                            energy += mt if mt < am_xi else am_xi
                        if gapped:
                            ct = alpha * trailing
                            energy += behind * (ct if ct < axi else axi)
                    if gapped:
                        energy += pg[k]
            if best is None or energy < best[1] - 1e-12:
                best = (delta, energy, i)
    return horizon, ends, order, best


# ---------------------------------------------------------------------------
# Batched timeline / accounting kernel (the non-solver work-unit share)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TimelineArrays:
    """A priced schedule as structure-of-arrays segment columns.

    One row per execution segment, sorted by ``(core, start)`` so each
    core's segments are contiguous and chronological -- the layout every
    kernel below assumes.  ``horizon`` is the accounting window the
    segments will be priced over.
    """

    cores: "np.ndarray"
    starts: "np.ndarray"
    ends: "np.ndarray"
    speeds: "np.ndarray"
    horizon: Tuple[float, float]

    @property
    def n(self) -> int:
        return int(self.starts.shape[0])


def timeline_arrays(
    segments: Sequence[Tuple[int, float, float, float]],
    horizon: Tuple[float, float],
) -> TimelineArrays:
    """Build the segment-table columns for ``(core, start, end, speed)`` rows."""
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    raw = np.asarray(
        [(c, s, e, v) for c, s, e, v in segments], dtype=np.float64
    ).reshape(len(segments), 4)
    order = np.lexsort((raw[:, 1], raw[:, 0]))
    raw = raw[order]
    return TimelineArrays(
        cores=raw[:, 0].astype(np.int64),
        starts=raw[:, 1],
        ends=raw[:, 2],
        speeds=raw[:, 3],
        horizon=horizon,
    )


def _coalesce_keyed(
    keys: "np.ndarray", starts: "np.ndarray", ends: "np.ndarray", eps: float
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Merge ``(start, end)`` spans within each key group.

    Inputs must be sorted by ``(key, start)``.  Spans closer than ``eps``
    coalesce, mirroring :func:`repro.schedule.timeline.merge_intervals`.
    Returns ``(span_keys, span_starts, span_ends)``.
    """
    if starts.shape[0] == 0:
        return keys[:0], starts[:0], ends[:0]
    # Offsetting every span by its key times a spacer larger than the whole
    # time range makes the groups disjoint on one axis, so a single
    # cumulative-max pass merges all groups at once.
    span = float(ends.max() - min(starts.min(), 0.0)) + 1.0
    shift = keys.astype(np.float64) * (2.0 * span + 2.0 * eps)
    s = starts + shift
    e = ends + shift
    reach = np.maximum.accumulate(e)
    new_span = np.empty(s.shape[0], dtype=bool)
    new_span[0] = True
    new_span[1:] = s[1:] > reach[:-1] + eps
    first = np.flatnonzero(new_span)
    merged_end = np.maximum.reduceat(e, first)
    return keys[first], s[first] - shift[first], merged_end - shift[first]


def _gap_lengths_keyed(
    keys: "np.ndarray",
    span_starts: "np.ndarray",
    span_ends: "np.ndarray",
    horizon: Tuple[float, float],
    eps: float,
) -> "np.ndarray":
    """Idle-gap lengths per key group within ``horizon``, concatenated.

    Inputs are merged spans sorted by ``(key, start)``.  Gap *positions*
    never matter to the pricing policies -- only lengths do -- so the
    kernel returns one flat vector: interior gaps between consecutive
    spans of the same key plus the two horizon-edge gaps of every key.
    Mirrors :func:`repro.schedule.timeline.complement_within`, including
    the clamping of spans that poke past the horizon and the ``eps``
    suppression of hairline gaps.
    """
    lo, hi = horizon
    s = np.clip(span_starts, lo, hi)
    e = np.clip(span_ends, lo, hi)
    keep = e > s
    keys, s, e = keys[keep], s[keep], e[keep]
    if s.shape[0] == 0:
        return np.full(int(np.unique(keys).shape[0]) or 0, hi - lo)
    same = keys[1:] == keys[:-1]
    interior = (s[1:] - e[:-1])[same]
    first = np.empty(keys.shape[0], dtype=bool)
    first[0] = True
    first[1:] = ~same
    head = s[first] - lo
    tail = hi - e[np.append(np.flatnonzero(first)[1:] - 1, keys.shape[0] - 1)]
    gaps = np.concatenate([interior, head, tail])
    return gaps[gaps > eps]


def _price_gaps(
    gaps: "np.ndarray", static_power: float, break_even: float, policy: str
) -> Tuple[float, float]:
    """``(energy, sleep_time)`` over gap lengths under one sleep policy.

    ``policy`` is a :class:`repro.energy.accounting.SleepPolicy` value
    string; the enum itself lives upstream of this module.
    """
    if policy == "never":
        return float(static_power * gaps.sum()), 0.0
    if policy == "always":
        return (
            float(static_power * break_even * gaps.shape[0]),
            float(gaps.sum()),
        )
    sleeps = gaps >= break_even
    count = float(np.count_nonzero(sleeps))
    energy = static_power * break_even * count + static_power * float(
        gaps[~sleeps].sum()
    )
    return float(energy), float(gaps[sleeps].sum())


def accounting_batch(
    arrays: TimelineArrays,
    platform: Platform,
    *,
    memory_policies: Sequence[str],
    core_policy: str,
    eps: float = 1e-9,
) -> List[Tuple[float, float, float, float, float, float, float]]:
    """Price one segment table under several memory sleep policies at once.

    Returns one ``(core_dynamic, core_static_active, core_idle,
    memory_active, memory_idle, memory_sleep_time, memory_busy_time)``
    tuple per entry of ``memory_policies`` -- the field order of
    :class:`repro.energy.accounting.EnergyBreakdown`.  The core-side terms
    and the memory busy union are computed once and shared, which is what
    lets the experiment pipeline price MBKPS and MBKP from a single
    simulated schedule.

    Matches the scalar accountant to within float re-association (sums are
    pairwise here, sequential there); ``repro.energy.accounting`` owns the
    dispatch and keeps the scalar path as the bit-exact reference.
    """
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    core_model = platform.core
    memory_model = platform.memory
    durations = arrays.ends - arrays.starts
    core_dynamic = float(
        (core_model.beta * arrays.speeds**core_model.lam * durations).sum()
    )
    core_static_active = float(core_model.alpha * durations.sum())

    span_cores, span_starts, span_ends = _coalesce_keyed(
        arrays.cores, arrays.starts, arrays.ends, eps
    )
    core_idle = 0.0
    if core_model.alpha > 0.0:
        core_gaps = _gap_lengths_keyed(
            span_cores, span_starts, span_ends, arrays.horizon, eps
        )
        core_idle, _ = _price_gaps(
            core_gaps, core_model.alpha, core_model.xi, core_policy
        )

    # Memory view: union across cores = merge the per-core spans again
    # under one key.  They are re-sorted by start first (span_starts is
    # sorted within each core, not globally).
    union_order = np.argsort(span_starts, kind="stable")
    zeros = np.zeros(span_starts.shape[0], dtype=np.int64)
    _, busy_starts, busy_ends = _coalesce_keyed(
        zeros, span_starts[union_order], span_ends[union_order], eps
    )
    memory_busy_time = float((busy_ends - busy_starts).sum())
    memory_active = memory_model.alpha_m * memory_busy_time
    memory_gaps = _gap_lengths_keyed(
        np.zeros(busy_starts.shape[0], dtype=np.int64),
        busy_starts,
        busy_ends,
        arrays.horizon,
        eps,
    )
    out: List[Tuple[float, float, float, float, float, float, float]] = []
    for policy in memory_policies:
        memory_idle, memory_sleep_time = _price_gaps(
            memory_gaps, memory_model.alpha_m, memory_model.xi_m, policy
        )
        out.append(
            (
                core_dynamic,
                core_static_active,
                core_idle,
                memory_active,
                memory_idle,
                memory_sleep_time,
                memory_busy_time,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Batched trace-generation arithmetic
# ---------------------------------------------------------------------------


def uniform_from_draws(
    draws: Sequence[float], a: float, b: float
) -> "np.ndarray":
    """Map unit draws to ``Uniform(a, b)`` exactly as ``random.uniform``.

    CPython computes ``a + (b - a) * random()``; evaluating the same
    expression elementwise in float64 is IEEE-identical, so a trace built
    from pre-drawn unit variates matches the scalar generator bit for bit.
    """
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    return a + (b - a) * np.asarray(draws, dtype=np.float64)


def running_sum(values: Sequence[float], initial: float = 0.0) -> "np.ndarray":
    """Running clock: ``out[0] = initial``, ``out[i] = out[i-1] + values[i-1]``.

    ``np.cumsum`` accumulates left to right exactly like a ``+=`` loop,
    and ``initial`` is folded in as the first accumulation term (not added
    afterwards, which would re-associate the sum), so the result is
    bit-identical to the scalar clock advance it replaces.
    """
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    seq = np.empty(len(values) + 1, dtype=np.float64)
    seq[0] = initial
    seq[1:] = values
    return seq.cumsum()


def fft_trace_columns(
    phase_draws: Sequence[float],
    workload_draws: Sequence[float],
    period_draws: Sequence[float],
    *,
    streams: int,
    base_kilocycles: float,
    jitter: float,
    reference_mhz: float,
    utilization_factor: float,
    phase_range: Tuple[float, float],
    period_jitter: Tuple[float, float],
) -> Tuple[List[float], List[float], List[float]]:
    """Batched ``(releases, spans, workloads)`` for one DSPstone FFT trace.

    The caller pre-draws the unit variates in the scalar generator's exact
    call order (phases first, then one workload + one period draw per
    instance); every arithmetic step below reproduces the scalar
    expressions with the same association, so the columns -- and therefore
    the :class:`~repro.models.task.Task` objects built from them -- are
    bit-identical to the per-task loop.  Instance ``i`` belongs to stream
    ``i % streams``; each stream's release clock is a running sum of its
    own period increments seeded by its phase.
    """
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    workloads = base_kilocycles * uniform_from_draws(
        workload_draws, 1.0 - jitter, 1.0 + jitter
    )
    spans = workloads / reference_mhz
    increments = (
        spans
        * utilization_factor
        * uniform_from_draws(period_draws, *period_jitter)
    )
    phases = uniform_from_draws(phase_draws, *phase_range)
    releases = np.empty(workloads.shape[0], dtype=np.float64)
    for stream in range(streams):
        lane = increments[stream::streams]
        releases[stream::streams] = running_sum(
            lane, initial=float(phases[stream])
        )[:-1]
    return releases.tolist(), spans.tolist(), workloads.tolist()


def synthetic_trace_columns(
    gap_draws: Sequence[float],
    span_draws: Sequence[float],
    workload_draws: Sequence[float],
    *,
    min_interarrival: float,
    max_interarrival: float,
    span_range: Tuple[float, float],
    workload_range: Tuple[float, float],
) -> Tuple[List[float], List[float], List[float]]:
    """Batched ``(releases, spans, workloads)`` for one synthetic trace.

    Same bit-identity contract as :func:`fft_trace_columns`: the caller
    supplies the unit draws in scalar call order (``gap_draws`` has one
    entry per task after the first), and the release clock accumulates the
    inter-arrival gaps exactly like the scalar ``t +=`` loop.
    """
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    spans = uniform_from_draws(span_draws, *span_range)
    workloads = uniform_from_draws(workload_draws, *workload_range)
    gaps = uniform_from_draws(gap_draws, min_interarrival, max_interarrival)
    releases = running_sum(gaps, initial=0.0)
    return releases.tolist(), spans.tolist(), workloads.tolist()


def agreeable_trace_columns(
    gap_draws: Sequence[float],
    span_draws: Sequence[float],
    workload_draws: Sequence[float],
    *,
    min_interarrival: float,
    max_interarrival: float,
    span_range: Tuple[float, float],
    workload_range: Tuple[float, float],
) -> Tuple[List[float], List[float], List[float]]:
    """Batched ``(releases, deadlines, workloads)`` for an agreeable trace.

    Same draw protocol as :func:`synthetic_trace_columns`, but the deadline
    column is the running maximum of ``release + span`` so deadlines are
    non-decreasing in release order -- the *agreeable* shape the fptas tier
    solves in a single offline call.  ``np.maximum.accumulate`` applies the
    same exact comparisons as a scalar ``max`` clamp, so the columns are
    bit-identical to the scalar loop in
    :func:`repro.workloads.synthetic.agreeable_trace`.
    """
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    spans = uniform_from_draws(span_draws, *span_range)
    workloads = uniform_from_draws(workload_draws, *workload_range)
    gaps = uniform_from_draws(gap_draws, min_interarrival, max_interarrival)
    releases = running_sum(gaps, initial=0.0)
    deadlines = np.maximum.accumulate(releases + spans)
    return releases.tolist(), deadlines.tolist(), workloads.tolist()


def segments_feasible_batch(
    releases: Sequence[float],
    deadlines: Sequence[float],
    workload_need: Sequence[float],
    seg_task: Sequence[int],
    seg_starts: Sequence[float],
    seg_ends: Sequence[float],
    seg_speeds: Sequence[float],
    seg_cores: Sequence[int],
    *,
    max_speed: float,
    rel_tol: float,
    abs_tol: float,
) -> bool:
    """Vectorized feasibility predicate over a segment table.

    Array counterpart of the checks in
    :func:`repro.schedule.validation.validate_segments`: per-segment
    release/deadline/speed bounds, per-task executed-workload totals and
    per-core non-overlap.  ``seg_task`` holds per-segment indices into the
    task columns.  Returns ``False`` on any violation -- the caller
    re-runs the scalar validator to raise the precise error.
    """
    if np is None:  # pragma: no cover - callers gate on use_numpy()
        raise RuntimeError("numpy is not available")
    releases = np.asarray(releases, dtype=np.float64)
    deadlines = np.asarray(deadlines, dtype=np.float64)
    workload_need = np.asarray(workload_need, dtype=np.float64)
    seg_task = np.asarray(seg_task, dtype=np.int64)
    starts = np.asarray(seg_starts, dtype=np.float64)
    ends = np.asarray(seg_ends, dtype=np.float64)
    speeds = np.asarray(seg_speeds, dtype=np.float64)
    cores = np.asarray(seg_cores, dtype=np.int64)
    if bool((starts < releases[seg_task] - abs_tol).any()):
        return False
    if bool((ends > deadlines[seg_task] + abs_tol).any()):
        return False
    if bool((speeds > max_speed * (1.0 + rel_tol) + abs_tol).any()):
        return False
    executed = np.zeros(releases.shape[0], dtype=np.float64)
    np.add.at(executed, seg_task, speeds * (ends - starts))
    tolerance = np.maximum(abs_tol, rel_tol * workload_need)
    if bool((np.abs(executed - workload_need) > tolerance).any()):
        return False
    order = np.lexsort((starts, cores))
    o_cores, o_starts, o_ends = cores[order], starts[order], ends[order]
    same_core = o_cores[1:] == o_cores[:-1]
    overlap = o_starts[1:] < o_ends[:-1] - abs_tol
    return not bool((same_core & overlap).any())

"""Classical single-core DVS speed-scaling substrate.

The MBKP baseline of Section 8 is "the online multi-core DVS algorithm of
Albers et al. (2007)"; that line of work builds on the Yao-Demers-Shenker
machinery, so this package provides it from scratch:

* :func:`repro.speed_scaling.yds.yds_schedule` -- the offline YDS critical-
  interval algorithm (optimal single-core preemptive speed scaling);
* :func:`repro.speed_scaling.online.optimal_available_plan` -- the Optimal
  Available (OA) online policy: at every arrival, recompute the YDS-optimal
  schedule of the remaining work and follow it.
"""

from repro.speed_scaling.yds import JobPiece, yds_schedule, yds_energy
from repro.speed_scaling.online import optimal_available_plan, staircase_speeds

__all__ = [
    "JobPiece",
    "yds_schedule",
    "yds_energy",
    "optimal_available_plan",
    "staircase_speeds",
]

"""``repro.replay``: the open-loop streaming workload subsystem.

Everything else in the repo reproduces *closed-loop* figures: a fixed
sweep of (point, seed) work units, timed cold and warm.  This package
measures the system as a **server**: a seeded open-loop arrival process
(:mod:`repro.replay.arrivals`) emits sporadic jobs with deadlines,
independent of how fast the sink answers; a replayer
(:mod:`repro.replay.sinks`) drives them through the in-process SDEM-ON
online replan path or the ``repro.service`` TCP server; and a latency/SLO
harness (:mod:`repro.replay.harness`) reports per-job queueing + solve
latency percentiles, deadline-miss and shed counts, energy per job, and
the maximum sustainable offered rate at a P99 SLO.

Entry points: ``repro replay`` (CLI) and ``repro bench --slice
streaming`` (the trajectory-gated bench slice).  See docs/STREAMING.md.
"""

from repro.replay.arrivals import (
    ARRIVAL_MODES,
    ArrivalSpec,
    Job,
    mmpp_jobs,
    offered_rate_jobs_s,
    poisson_jobs,
    trace_jobs,
)
from repro.replay.harness import (
    LatencyStats,
    RampPoint,
    ReplayReport,
    find_max_sustainable_rate,
    open_loop_latency_ms,
    percentile,
    run_replay,
    table_digest,
)
from repro.replay.sinks import (
    JOB_STATUSES,
    JobRecord,
    ReplayOutcome,
    replay_inprocess,
    replay_service,
)

__all__ = [
    "ARRIVAL_MODES",
    "ArrivalSpec",
    "JOB_STATUSES",
    "Job",
    "JobRecord",
    "LatencyStats",
    "RampPoint",
    "ReplayOutcome",
    "ReplayReport",
    "find_max_sustainable_rate",
    "mmpp_jobs",
    "offered_rate_jobs_s",
    "open_loop_latency_ms",
    "percentile",
    "poisson_jobs",
    "replay_inprocess",
    "replay_service",
    "run_replay",
    "table_digest",
    "trace_jobs",
]

"""Local optimal solution of one agreeable-deadline task block (Section 5.1.1
and 5.2.1).

A *block* is a maximal memory busy interval ``[s', e']`` in which a subset
``tau'`` of the task set executes.  Given the busy interval, every task's
best response is independent:

* its execution window is ``[max(r_k, s'), min(d_k, e')]`` -- precisely the
  paper's four processing cases (1) ``[s', d_k]``, (2) ``[r_k, d_k]``,
  (3) ``[s', e']`` and (4) ``[r_k, e']``, depending on which clamps bind;
* with ``alpha = 0`` the task stretches over the whole window (slower is
  always cheaper);
* with ``alpha != 0`` it runs for ``min(window, w/s_0)`` -- the paper's
  Type-I tasks (critical speed ``s_0``, window slack left over) versus
  Type-II tasks (aligned with the busy interval).

The resulting block energy

    E(s', e') = alpha_m * (e' - s') + sum_k bestE_k(window_k(s', e'))

is *jointly convex* in ``(s', e')``: each window length is a concave
piecewise-affine function of the endpoints and ``bestE_k`` is convex and
non-increasing, so the composition is convex.  Two solvers are provided:

``method='descent'``
    direct 2-D convex minimization (coordinate descent plus diagonal
    sweeps to step across the axis-unaligned kinks at Type-I/Type-II
    boundaries), the library's fast default;
``method='pairs'``
    the paper's (i, j)-pair enumeration.  For ``alpha = 0`` each pair cell
    is solved with the first-order conditions of Eqs. (12)-(14) (monotone
    bisection, plus a 2-D solve for the coupled Eq. (13) cells); for
    ``alpha != 0`` each cell runs Algorithm 1's five iterative steps.

The test suite certifies both against a dense numeric reference.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Literal, Optional, Sequence, Tuple

from repro.core import vectorized
from repro.models.platform import Platform
from repro.models.task import Task, TaskSet
from repro.schedule.timeline import ExecutionInterval, Schedule
from repro.units import UJ, unit
from repro.utils.solvers import (
    bisect_increasing,
    bisect_increasing_batch,
    golden_section_minimize,
    golden_section_minimize_batch,
    record_solver_call,
)

__all__ = [
    "TaskPlacement",
    "BlockSolution",
    "solve_block",
    "block_energy",
    "block_energy_cache_info",
    "block_energy_cache_clear",
]

_INF = float("inf")
_PENALTY = 1e30

# ---------------------------------------------------------------------------
# Memoization of the hot numeric layer (see docs/PERFORMANCE.md)
#
# The descent and pair solvers re-evaluate the block energy at *exactly*
# repeated (start, end) points -- line searches re-probe their anchor and
# bracket endpoints, and the O(n^2) agreeable DP prices overlapping subsets
# -- so a content-keyed LRU pays for itself many times over.  Keys combine
# the TaskSet's cached value signature with the (hashable, frozen) Platform
# and the raw endpoint floats; values are plain floats, so cached and
# uncached paths are bit-identical.
# ---------------------------------------------------------------------------

_ENERGY_CACHE: "OrderedDict[Tuple, float]" = OrderedDict()
_ENERGY_CACHE_MAX = 1 << 17
_SOLUTION_CACHE: "OrderedDict[Tuple, BlockSolution]" = OrderedDict()
_SOLUTION_CACHE_MAX = 1 << 12
_CACHE_STATS = {"energy_hits": 0, "energy_misses": 0, "solution_hits": 0, "solution_misses": 0}


def block_energy_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters for the block-level memo caches."""
    info = dict(_CACHE_STATS)
    info["energy_entries"] = len(_ENERGY_CACHE)
    info["solution_entries"] = len(_SOLUTION_CACHE)
    return info


def block_energy_cache_clear() -> None:
    """Drop all memoized block energies and solutions (test isolation)."""
    _ENERGY_CACHE.clear()
    _SOLUTION_CACHE.clear()
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


@dataclass(frozen=True)
class TaskPlacement:
    """One task's execution inside a block."""

    name: str
    start: float
    end: float
    speed: float


@dataclass(frozen=True)
class BlockSolution:
    """Optimal single-block schedule for a task subset.

    ``energy`` is the block's system energy: memory awake over
    ``[start, end]`` plus every member core's execution energy (cores
    sleep for free outside execution in the ``xi = 0`` model).
    """

    tasks: TaskSet
    start: float
    end: float
    energy: float
    placements: Tuple[TaskPlacement, ...]

    @property
    def length(self) -> float:
        return self.end - self.start

    def schedule(self) -> Schedule:
        """One core per task (unbounded-core model)."""
        return Schedule.one_task_per_core(
            ExecutionInterval(p.name, p.start, p.end, p.speed)
            for p in self.placements
        )


# ---------------------------------------------------------------------------
# Per-task best response and block energy
# ---------------------------------------------------------------------------


def _window(task: Task, start: float, end: float) -> Tuple[float, float]:
    return max(task.release, start), min(task.deadline, end)


def _best_duration(task: Task, platform: Platform, window: float) -> float:
    """Energy-minimal execution duration within a window of given length."""
    core = platform.core
    if core.alpha == 0.0:
        return window
    return min(max(task.workload / core.s0(task), task.workload / core.s_up), window)


@unit(UJ)
def block_energy(
    tasks: TaskSet, platform: Platform, start: float, end: float
) -> float:
    """Block energy at busy interval ``[start, end]`` (inf if infeasible).

    Memoized in a content-keyed LRU: the solvers re-probe repeated
    endpoints constantly (see the module-level cache note), and the memo
    returns the identical float the raw evaluation would.
    """
    key = (vectorized.get_backend(), tasks.energy_signature(), platform, start, end)
    cached = _ENERGY_CACHE.get(key)
    if cached is not None:
        _ENERGY_CACHE.move_to_end(key)
        _CACHE_STATS["energy_hits"] += 1
        return cached
    value = _block_energy_uncached(tasks, platform, start, end)
    _CACHE_STATS["energy_misses"] += 1
    record_solver_call("block_energy")
    _ENERGY_CACHE[key] = value
    if len(_ENERGY_CACHE) > _ENERGY_CACHE_MAX:
        _ENERGY_CACHE.popitem(last=False)
    return value


def _block_energy_uncached(
    tasks: TaskSet, platform: Platform, start: float, end: float
) -> float:
    """The raw evaluation behind :func:`block_energy`.

    Dispatches on the numeric backend: :func:`_block_energy_scalar` below
    is the reference loop; the numpy path evaluates the same expression via
    :func:`repro.core.vectorized.block_energy_batch` (a batch of one); the
    jit path calls the compiled transcription directly, skipping the
    ndarray round trip.
    """
    if vectorized.use_jit():
        from repro.core import kernels

        return kernels.block_energy(tasks, platform, start, end)
    if vectorized.use_numpy():
        return float(
            vectorized.block_energy_batch(tasks, platform, (start,), (end,))[0]
        )
    return _block_energy_scalar(tasks, platform, start, end)


def _block_energy_scalar(
    tasks: TaskSet, platform: Platform, start: float, end: float
) -> float:
    """Reference scalar block energy.

    Infeasibility (empty window or forced overspeed) is reported as a large
    *graded* penalty so convex descent is steered back into the feasible
    region instead of facing a flat wall.
    """
    if end <= start:
        return _PENALTY * (1.0 + (start - end))
    core = platform.core
    total = platform.memory.alpha_m * (end - start)
    violation = 0.0
    for task in tasks:
        lo, hi = _window(task, start, end)
        window = hi - lo
        min_duration = task.workload / core.s_up
        # Relative tolerance: optimizers legitimately land exactly on the
        # speed-cap boundary, where float dust must not flip feasibility.
        if window < min_duration * (1.0 - 1e-12) - 1e-12:
            violation += min_duration - window
            continue
        duration = _best_duration(task, platform, max(window, min_duration))
        total += core.execution_energy(task.workload, task.workload / duration)
    if violation > 0.0:
        return _PENALTY * (1.0 + violation)
    return total


def _placements_at(
    tasks: TaskSet, platform: Platform, start: float, end: float
) -> Tuple[TaskPlacement, ...]:
    """Materialize per-task placements for busy interval ``[start, end]``.

    Type-II / stretched tasks fill their window; Type-I tasks (``alpha !=
    0`` with slack) run at critical speed from the start of their window.
    """
    if vectorized.use_numpy():
        los, durations, speeds = vectorized.placement_arrays(
            tasks, platform, start, end
        )
        return tuple(
            TaskPlacement(task.name, lo, lo + duration, speed)
            for task, lo, duration, speed in zip(
                tasks, los.tolist(), durations.tolist(), speeds.tolist()
            )
        )
    placements: List[TaskPlacement] = []
    for task in tasks:
        lo, hi = _window(task, start, end)
        min_duration = task.workload / platform.core.s_up
        duration = _best_duration(task, platform, max(hi - lo, min_duration))
        placements.append(
            TaskPlacement(task.name, lo, lo + duration, task.workload / duration)
        )
    return tuple(placements)


# ---------------------------------------------------------------------------
# method='descent': direct 2-D convex minimization
# ---------------------------------------------------------------------------


def _minimize_2d(
    func: Callable[[float, float], float],
    x_bounds: Tuple[float, float],
    y_bounds: Tuple[float, float],
    starts: Sequence[Tuple[float, float]],
    *,
    tol: float = 1e-9,
    max_rounds: int = 80,
) -> Tuple[float, float, float]:
    """Coordinate + diagonal descent for convex objectives with kinks.

    After each coordinate round, two diagonal line searches (directions
    ``(1, 1)`` and ``(-1, 1)``) are performed; this escapes the
    axis-unaligned kinks introduced by the Type-I/Type-II boundary
    ``window == w / s_0``, where pure coordinate descent can stall.
    """
    x_lo, x_hi = x_bounds
    y_lo, y_hi = y_bounds

    def line(x: float, y: float, dx: float, dy: float) -> Tuple[float, float, float]:
        t_lo, t_hi = -_INF, _INF
        for lo, hi, v, dv in ((x_lo, x_hi, x, dx), (y_lo, y_hi, y, dy)):
            if dv > 0:
                t_lo = max(t_lo, (lo - v) / dv)
                t_hi = min(t_hi, (hi - v) / dv)
            elif dv < 0:
                t_lo = max(t_lo, (hi - v) / dv)
                t_hi = min(t_hi, (lo - v) / dv)
        if t_hi <= t_lo:
            return x, y, func(x, y)
        t, value = golden_section_minimize(
            lambda s: func(x + s * dx, y + s * dy), t_lo, t_hi, tol=tol
        )
        # Never step to a point worse than where we stand (the input point
        # is not among golden's probes, and near penalty cliffs the line
        # minimum can be razor-thin).
        here = func(x, y)
        if here <= value:
            return x, y, here
        return x + t * dx, y + t * dy, value

    best: Optional[Tuple[float, float, float]] = None
    for sx, sy in starts:
        x = min(max(sx, x_lo), x_hi)
        y = min(max(sy, y_lo), y_hi)
        value = func(x, y)
        for _ in range(max_rounds):
            x, y, value_a = line(x, y, 1.0, 0.0)
            x, y, value_b = line(x, y, 0.0, 1.0)
            x, y, value_c = line(x, y, 1.0, 1.0)
            x, y, new_value = line(x, y, -1.0, 1.0)
            if value - new_value <= max(tol, tol * abs(value)):
                value = min(value, new_value)
                break
            value = new_value
        if best is None or value < best[2]:
            best = (x, y, value)
    assert best is not None
    return best


def _minimize_2d_batch(
    tasks: TaskSet,
    platform: Platform,
    x_bounds: Sequence[Tuple[float, float]],
    y_bounds: Sequence[Tuple[float, float]],
    starts: Sequence[Tuple[float, float]],
    *,
    tol: float = 1e-9,
    max_rounds: int = 80,
) -> Tuple[List[float], List[float], List[float]]:
    """Batched :func:`_minimize_2d`: K independent descents advance together.

    Element ``k`` runs the same coordinate + diagonal rounds as the scalar
    descent over its own box from its own start, but every golden-section
    iteration evaluates all still-active elements' probes in a single
    :func:`repro.core.vectorized.block_energy_batch` call.  Used for the
    multi-start descent (one element per start) and the coupled Eq. (13)
    pair cells (one element per cell).
    """
    np = vectorized.np
    x_lo = np.asarray([b[0] for b in x_bounds], dtype=np.float64)
    x_hi = np.asarray([b[1] for b in x_bounds], dtype=np.float64)
    y_lo = np.asarray([b[0] for b in y_bounds], dtype=np.float64)
    y_hi = np.asarray([b[1] for b in y_bounds], dtype=np.float64)
    x = np.minimum(
        np.maximum(np.asarray([s[0] for s in starts], dtype=np.float64), x_lo), x_hi
    )
    y = np.minimum(
        np.maximum(np.asarray([s[1] for s in starts], dtype=np.float64), y_lo), y_hi
    )

    def energy(xs: "vectorized.np.ndarray", ys: "vectorized.np.ndarray"):
        return vectorized.block_energy_batch(tasks, platform, xs, ys)

    def line(idx: "vectorized.np.ndarray", dx: float, dy: float):
        """Advance elements ``idx`` along ``(dx, dy)``; return their values."""
        xi, yi = x[idx], y[idx]
        t_lo = np.full(idx.shape[0], -_INF)
        t_hi = np.full(idx.shape[0], _INF)
        for lo_b, hi_b, v, dv in (
            (x_lo[idx], x_hi[idx], xi, dx),
            (y_lo[idx], y_hi[idx], yi, dy),
        ):
            if dv > 0:
                t_lo = np.maximum(t_lo, (lo_b - v) / dv)
                t_hi = np.minimum(t_hi, (hi_b - v) / dv)
            elif dv < 0:
                t_lo = np.maximum(t_lo, (hi_b - v) / dv)
                t_hi = np.minimum(t_hi, (lo_b - v) / dv)
        here = energy(xi, yi)
        movable = np.flatnonzero(t_hi > t_lo)
        if movable.shape[0] == 0:
            return here

        def along(ts, owners):
            o = movable[owners]
            return energy(xi[o] + ts * dx, yi[o] + ts * dy)

        t_best, t_val = golden_section_minimize_batch(
            along, t_lo[movable], t_hi[movable], tol=tol
        )
        # Same stay-guard as the scalar `line`: never step to a point worse
        # than where we stand.
        move = t_val < here[movable]
        m = movable[move]
        x[idx[m]] = xi[m] + t_best[move] * dx
        y[idx[m]] = yi[m] + t_best[move] * dy
        out = here.copy()
        out[m] = t_val[move]
        return out

    value = energy(x, y)
    active = np.ones(x.shape[0], dtype=bool)
    for _ in range(max_rounds):
        idx = np.flatnonzero(active)
        if idx.shape[0] == 0:
            break
        line(idx, 1.0, 0.0)
        line(idx, 0.0, 1.0)
        line(idx, 1.0, 1.0)
        new_value = line(idx, -1.0, 1.0)
        old = value[idx]
        done = old - new_value <= np.maximum(tol, tol * np.abs(old))
        value[idx] = np.where(done, np.minimum(old, new_value), new_value)
        active[idx[done]] = False
    return x.tolist(), y.tolist(), value.tolist()


def _solve_block_descent(tasks: TaskSet, platform: Platform) -> BlockSolution:
    first, last = tasks[0], tasks[-1]
    s_lo, s_hi = tasks.earliest_release, first.deadline
    e_lo, e_hi = last.release, tasks.latest_deadline
    starts = [
        (s_lo, e_hi),
        (0.5 * (s_lo + s_hi), 0.5 * (e_lo + e_hi)),
        (s_lo, e_lo if e_lo > s_lo else e_hi),
        (s_hi, e_hi),
    ]
    if vectorized.use_jit():
        # One compiled call runs all starts' descents (same line-search
        # sequence as _minimize_2d over the memoized scalar objective).
        from repro.core import kernels

        start, end, energy = kernels.solve_block_descent(
            tasks, platform, (s_lo, s_hi), (e_lo, e_hi), starts
        )
    elif vectorized.use_numpy():
        xs, ys, values = _minimize_2d_batch(
            tasks,
            platform,
            [(s_lo, s_hi)] * len(starts),
            [(e_lo, e_hi)] * len(starts),
            starts,
        )
        best: Optional[Tuple[float, float, float]] = None
        for x, y, value in zip(xs, ys, values):
            if best is None or value < best[2]:
                best = (x, y, value)
        assert best is not None
        start, end, energy = best
    else:
        start, end, energy = _minimize_2d(
            lambda s, e: block_energy(tasks, platform, s, e),
            (s_lo, s_hi),
            (e_lo, e_hi),
            starts,
        )
    if energy >= _PENALTY:
        raise ValueError("block infeasible: some task cannot meet its deadline")
    return BlockSolution(
        tasks=tasks,
        start=start,
        end=end,
        energy=energy,
        placements=_placements_at(tasks, platform, start, end),
    )


# ---------------------------------------------------------------------------
# method='pairs': the paper's (i, j)-pair enumeration
# ---------------------------------------------------------------------------


def _pair_cells(tasks: TaskSet) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]]]:
    """The (i, j) cell decomposition of the (s', e') rectangle.

    ``s'`` cells are delimited by the sorted releases (clipped to
    ``[r_1, d_1]``); ``e'`` cells by the sorted deadlines (clipped to
    ``[r_n', d_n']``).  Inside one cell the identity of the paper's
    processing case is fixed for every task, which is exactly the (i, j)
    pair structure of Lemma 3.
    """
    first, last = tasks[0], tasks[-1]
    s_min, s_max = tasks.earliest_release, first.deadline
    e_min, e_max = last.release, tasks.latest_deadline

    s_points = sorted({min(max(r, s_min), s_max) for r in tasks.releases()})
    s_points = sorted(set(s_points) | {s_min, s_max})
    e_points = sorted({min(max(d, e_min), e_max) for d in tasks.deadlines()})
    e_points = sorted(set(e_points) | {e_min, e_max})

    s_cells = [(a, b) for a, b in zip(s_points, s_points[1:]) if b > a]
    e_cells = [(a, b) for a, b in zip(e_points, e_points[1:]) if b > a]
    if not s_cells:  # all releases coincide
        s_cells = [(s_min, s_min)]
    if not e_cells:
        e_cells = [(e_max, e_max)]
    return s_cells, e_cells


def _solve_cell_alpha_zero(
    tasks: TaskSet,
    platform: Platform,
    s_cell: Tuple[float, float],
    e_cell: Tuple[float, float],
) -> Tuple[float, float, float]:
    """Lemma 3 inside one (i, j) cell, ``alpha = 0``.

    Tasks whose release is <= the cell's s' range start at ``s'`` (head
    tasks); tasks whose deadline is >= the cell's e' range end at ``e'``
    (tail tasks); when no task is both, the objective separates and the
    first-order conditions

        sum_head (w / (d - s'))**lam = alpha_m / (beta (lam - 1))
        sum_tail (w / (e' - r))**lam = alpha_m / (beta (lam - 1))

    are solved by monotone bisection; otherwise (the Eq. (13) coupling) a
    2-D descent inside the cell is used.
    """
    core = platform.core
    lam, beta = core.lam, core.beta
    alpha_m = platform.memory.alpha_m
    s_lo, s_hi = s_cell
    e_lo, e_hi = e_cell

    mid_s = 0.5 * (s_lo + s_hi)
    mid_e = 0.5 * (e_lo + e_hi)
    head = [t for t in tasks if t.release <= mid_s]
    tail = [t for t in tasks if t.deadline >= mid_e]
    coupled = set(t.name for t in head) & set(t.name for t in tail)

    if coupled:
        x, y, value = _minimize_2d(
            lambda s, e: block_energy(tasks, platform, s, e),
            s_cell,
            e_cell,
            [(mid_s, mid_e)],
        )
        return x, y, value

    target = alpha_m / (beta * (lam - 1.0))

    # dE/ds' is proportional to sum_head (w/(d-s'))^lam - target, which is
    # increasing in s' (windows shrink, blowing up at s' -> d).
    def head_slope(s: float) -> float:
        acc = 0.0
        for t in head:
            len_k = t.deadline - s
            if len_k <= 0:
                return _INF
            acc += (t.workload / len_k) ** lam
        return acc - target

    def tail_condition(e: float) -> float:
        # dE/de' is proportional to target - sum (w/(e'-r))^lam, which is
        # increasing in e' (the power sum shrinks as the windows widen).
        acc = 0.0
        for t in tail:
            len_k = e - t.release
            if len_k <= 0:
                return -_INF
            acc += (t.workload / len_k) ** lam
        return target - acc

    # Speed caps tighten the admissible endpoint ranges: every head task
    # needs window (d_k - s') >= w_k / s_up, every tail task needs
    # (e' - r_k) >= w_k / s_up.
    s_cap = min(
        (t.deadline - t.workload / core.s_up for t in head), default=s_hi
    )
    e_cap = max(
        (t.release + t.workload / core.s_up for t in tail), default=e_lo
    )
    s_hi_eff = min(s_hi, s_cap)
    e_lo_eff = max(e_lo, e_cap)
    if s_hi_eff < s_lo or e_lo_eff > e_hi:
        return s_lo, e_hi, _INF  # cell infeasible under the speed cap
    if head:
        s_star = bisect_increasing(head_slope, s_lo, s_hi_eff)
    else:
        s_star = s_hi_eff  # no head task: larger s' only shrinks memory time
    if tail:
        e_star = bisect_increasing(lambda e: tail_condition(e), e_lo_eff, e_hi)
    else:
        e_star = e_lo_eff
    value = block_energy(tasks, platform, s_star, e_star)
    return s_star, e_star, value


def _solve_cell_alpha_nonzero(
    tasks: TaskSet,
    platform: Platform,
    s_cell: Tuple[float, float],
    e_cell: Tuple[float, float],
) -> Tuple[float, float, float]:
    """Algorithm 1's five iterative steps inside one (i, j) cell.

    Maintains a partition of the subset into *active* tasks (assumed
    aligned with the busy interval) and *evicted* Type-I tasks (pinned at
    their critical speed ``s_0``).  Each iteration re-minimizes the
    aligned-tasks energy (Step 1 / Step 4's Eq. (15)) over the cell box
    and evicts tasks whose implied speed drops below ``s_0`` (Steps 2-3)
    or, in the second phase, re-solves for the over-``s_1`` tasks and
    prolongs the rest (Steps 4-5).  Evicted tasks contribute their fixed
    ``s_0`` energy plus a feasibility requirement that the busy interval
    keep covering their ``w / s_0`` execution; by Lemma 5 the interval
    only grows, so eviction is permanent.
    """
    core = platform.core
    alpha_m = platform.memory.alpha_m

    evicted: set = set()
    evicted_energy = 0.0

    def aligned_energy(s: float, e: float) -> float:
        """Eq. (15)-style energy: active tasks fill their windows."""
        if e <= s:
            return _PENALTY * (1.0 + (s - e))
        total = alpha_m * (e - s)
        violation = 0.0
        for t in tasks:
            lo, hi = _window(t, s, e)
            window = hi - lo
            if t.name in evicted:
                need = t.workload / core.s0(t)
                if window < need * (1.0 - 1e-12) - 1e-12:
                    violation += need - window
                continue
            floor = t.workload / core.s_up
            if window < floor * (1.0 - 1e-12) - 1e-12:
                violation += floor - window
                continue
            total += core.execution_energy(
                t.workload, t.workload / max(window, floor)
            )
        if violation > 0.0:
            return _PENALTY * (1.0 + violation)
        return total + evicted_energy

    def minimize_over_cell(subset_only: Optional[set] = None) -> Tuple[float, float, float]:
        if subset_only is None:
            objective = aligned_energy
        else:
            def objective(s: float, e: float) -> float:
                if e <= s:
                    return _PENALTY * (1.0 + (s - e))
                total = alpha_m * (e - s)
                violation = 0.0
                for t in tasks:
                    if t.name not in subset_only:
                        continue
                    lo, hi = _window(t, s, e)
                    window = hi - lo
                    if window < t.workload / core.s_up:
                        violation += t.workload / core.s_up - window
                        continue
                    total += core.execution_energy(t.workload, t.workload / window)
                if violation > 0.0:
                    return _PENALTY * (1.0 + violation)
                return total
        mid = (0.5 * (s_cell[0] + s_cell[1]), 0.5 * (e_cell[0] + e_cell[1]))
        return _minimize_2d(objective, s_cell, e_cell, [mid, (s_cell[0], e_cell[1])])

    # -- Steps 1-3: evict below-s0 tasks until stable ------------------------
    s_cur, e_cur, _ = minimize_over_cell()
    for _ in range(len(tasks) + 1):
        newly = []
        for t in tasks:
            if t.name in evicted:
                continue
            lo, hi = _window(t, s_cur, e_cur)
            window = hi - lo
            if window <= 0:
                continue
            if t.workload / window < core.s0(t) - 1e-12:
                newly.append(t)
        if not newly:
            break
        for t in newly:
            evicted.add(t.name)
            evicted_energy += core.execution_energy(t.workload, core.s0(t))
        s_cur, e_cur, _ = minimize_over_cell()

    # -- Steps 4-5: shrink over-s1 tasks until stable -------------------------
    for _ in range(len(tasks) + 1):
        over_s1 = set()
        for t in tasks:
            if t.name in evicted:
                continue
            lo, hi = _window(t, s_cur, e_cur)
            window = hi - lo
            if window <= 0:
                continue
            if t.workload / window > core.s1(t, alpha_m) + 1e-9:
                over_s1.add(t.name)
        if not over_s1:
            break
        s_new, e_new, _ = minimize_over_cell(subset_only=over_s1)
        # Prolong the other aligned tasks to the new (longer) interval and
        # evict any that fall below s_0.
        s_cur, e_cur = min(s_cur, s_new), max(e_cur, e_new)
        changed = False
        for t in tasks:
            if t.name in evicted:
                continue
            lo, hi = _window(t, s_cur, e_cur)
            window = hi - lo
            if window > 0 and t.workload / window < core.s0(t) - 1e-12:
                evicted.add(t.name)
                evicted_energy += core.execution_energy(t.workload, core.s0(t))
                changed = True
        if changed:
            s_cur, e_cur, _ = minimize_over_cell()

    # Polish the fixed point against the canonical convex cell objective.
    # The Step-5 prolongation only ever *expands* the interval (Lemma 5) and
    # is not re-minimized when it triggers without an eviction, so when a
    # task sits exactly on the s_1 threshold (stationarity puts the filling
    # task there) the loop can exit on an over-extended interval.  The cell
    # objective is convex, so one descent from the fixed point can only
    # improve and lands on the true cell optimum.
    return _minimize_2d(
        lambda s, e: block_energy(tasks, platform, s, e),
        s_cell,
        e_cell,
        [(s_cur, e_cur)],
    )


def _sweep_cells_alpha_zero_numpy(
    tasks: TaskSet,
    platform: Platform,
    s_cells: List[Tuple[float, float]],
    e_cells: List[Tuple[float, float]],
) -> Optional[Tuple[float, float, float]]:
    """Lemma 3's (i, j) sweep with every cell advanced in batch (alpha = 0).

    Mirrors :func:`_solve_cell_alpha_zero` cell by cell: coupled cells run
    the batched 2-D descent, uncoupled cells solve their two decoupled
    first-order conditions -- and because the s'-condition depends only on
    the s-cell and the e'-condition only on the e-cell, the S*E cells need
    just S + E monotone root finds, each advanced together by
    :func:`repro.utils.solvers.bisect_increasing_batch`.
    """
    np = vectorized.np
    arr = vectorized.block_arrays(tasks)
    core = platform.core
    lam, beta = core.lam, core.beta
    alpha_m = platform.memory.alpha_m
    target = alpha_m / (beta * (lam - 1.0))
    releases, deadlines, workloads = arr.releases, arr.deadlines, arr.workloads
    min_duration = workloads / core.s_up

    s_lo = np.asarray([c[0] for c in s_cells], dtype=np.float64)
    s_hi = np.asarray([c[1] for c in s_cells], dtype=np.float64)
    e_lo = np.asarray([c[0] for c in e_cells], dtype=np.float64)
    e_hi = np.asarray([c[1] for c in e_cells], dtype=np.float64)
    mid_s = 0.5 * (s_lo + s_hi)
    mid_e = 0.5 * (e_lo + e_hi)
    head_mask = releases[None, :] <= mid_s[:, None]  # (S, n)
    tail_mask = deadlines[None, :] >= mid_e[:, None]  # (E, n)
    coupled = (
        head_mask.astype(np.float64) @ tail_mask.astype(np.float64).T
    ) > 0.5  # (S, E): some task is both head and tail

    # Speed caps tighten the admissible endpoint ranges (same defaults as
    # the scalar cell solver: inf/-inf collapse to s_hi/e_lo).
    s_cap = np.where(
        head_mask, deadlines[None, :] - min_duration[None, :], _INF
    ).min(axis=1)
    e_cap = np.where(
        tail_mask, releases[None, :] + min_duration[None, :], -_INF
    ).max(axis=1)
    s_hi_eff = np.minimum(s_hi, s_cap)
    e_lo_eff = np.maximum(e_lo, e_cap)
    s_ok = s_hi_eff >= s_lo
    e_ok = e_lo_eff <= e_hi

    s_star = s_hi_eff.copy()  # no head task: larger s' only shrinks memory time
    s_rows = np.flatnonzero(s_ok & head_mask.any(axis=1))
    if s_rows.shape[0]:

        def head_slope(xs, idx):
            mask = head_mask[s_rows[idx]]
            lens = deadlines[None, :] - xs[:, None]
            bad = (mask & (lens <= 0.0)).any(axis=1)
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                powed = np.where(
                    mask & (lens > 0.0),
                    (workloads[None, :] / lens) ** lam,
                    0.0,
                )
            return np.where(bad, _INF, powed.sum(axis=1) - target)

        if vectorized.use_jit():
            from repro.core import kernels

            masks = np.ascontiguousarray(
                head_mask[s_rows], dtype=np.uint8
            ).tobytes()
            s_star[s_rows] = kernels.powersum_roots(
                deadlines.tolist(),
                workloads.tolist(),
                masks,
                int(s_rows.shape[0]),
                s_lo[s_rows].tolist(),
                s_hi_eff[s_rows].tolist(),
                target,
                lam,
                0,
            )
        else:
            s_star[s_rows] = bisect_increasing_batch(
                head_slope, s_lo[s_rows], s_hi_eff[s_rows]
            )

    e_star = e_lo_eff.copy()
    e_rows = np.flatnonzero(e_ok & tail_mask.any(axis=1))
    if e_rows.shape[0]:

        def tail_condition(xs, idx):
            mask = tail_mask[e_rows[idx]]
            lens = xs[:, None] - releases[None, :]
            bad = (mask & (lens <= 0.0)).any(axis=1)
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                powed = np.where(
                    mask & (lens > 0.0),
                    (workloads[None, :] / lens) ** lam,
                    0.0,
                )
            return np.where(bad, -_INF, target - powed.sum(axis=1))

        if vectorized.use_jit():
            from repro.core import kernels

            masks = np.ascontiguousarray(
                tail_mask[e_rows], dtype=np.uint8
            ).tobytes()
            e_star[e_rows] = kernels.powersum_roots(
                releases.tolist(),
                workloads.tolist(),
                masks,
                int(e_rows.shape[0]),
                e_lo_eff[e_rows].tolist(),
                e_hi[e_rows].tolist(),
                target,
                lam,
                1,
            )
        else:
            e_star[e_rows] = bisect_increasing_batch(
                tail_condition, e_lo_eff[e_rows], e_hi[e_rows]
            )

    num_s, num_e = s_lo.shape[0], e_lo.shape[0]
    consider = e_hi[None, :] > s_lo[:, None]  # the scalar empty-interval skip
    feasible = s_ok[:, None] & e_ok[None, :]
    px = np.where(feasible, s_star[:, None], s_lo[:, None])
    py = np.where(feasible, e_star[None, :], e_hi[None, :])
    values = np.full((num_s, num_e), _INF)
    ui, uj = np.nonzero(consider & feasible & ~coupled)
    if ui.shape[0]:
        values[ui, uj] = vectorized.block_energy_batch(
            tasks, platform, s_star[ui], e_star[uj]
        )
    ci, cj = np.nonzero(consider & coupled)
    if ci.shape[0]:
        xs, ys, cv = _minimize_2d_batch(
            tasks,
            platform,
            list(zip(s_lo[ci].tolist(), s_hi[ci].tolist())),
            list(zip(e_lo[cj].tolist(), e_hi[cj].tolist())),
            list(zip(mid_s[ci].tolist(), mid_e[cj].tolist())),
        )
        values[ci, cj] = cv
        px[ci, cj] = xs
        py[ci, cj] = ys

    # Same selection order as the scalar nested loop (first strict win).
    best: Optional[Tuple[float, float, float]] = None
    values_l, px_l, py_l = values.tolist(), px.tolist(), py.tolist()
    consider_l = consider.tolist()
    for si in range(num_s):
        for ej in range(num_e):
            if not consider_l[si][ej]:
                continue
            value = values_l[si][ej]
            if best is None or value < best[2]:
                best = (px_l[si][ej], py_l[si][ej], value)
    return best


def _solve_block_pairs(tasks: TaskSet, platform: Platform) -> BlockSolution:
    s_cells, e_cells = _pair_cells(tasks)
    if platform.core.alpha == 0.0 and vectorized.use_numpy():
        best = _sweep_cells_alpha_zero_numpy(tasks, platform, s_cells, e_cells)
    else:
        # alpha != 0 runs Algorithm 1's eviction loops, whose data-dependent
        # control flow stays scalar under every backend.
        solve_cell = (
            _solve_cell_alpha_zero
            if platform.core.alpha == 0.0
            else _solve_cell_alpha_nonzero
        )
        best = None
        for s_cell in s_cells:
            for e_cell in e_cells:
                if e_cell[1] <= s_cell[0]:
                    continue  # empty busy interval everywhere in this cell
                start, end, value = solve_cell(tasks, platform, s_cell, e_cell)
                if best is None or value < best[2]:
                    best = (start, end, value)
    if best is None or best[2] >= _PENALTY:
        raise ValueError("block infeasible: some task cannot meet its deadline")
    start, end, energy = best
    # Re-price via the canonical per-task best response so 'pairs' and
    # 'descent' report identical semantics for the same interval.
    energy = block_energy(tasks, platform, start, end)
    return BlockSolution(
        tasks=tasks,
        start=start,
        end=end,
        energy=energy,
        placements=_placements_at(tasks, platform, start, end),
    )


def solve_block(
    tasks: TaskSet,
    platform: Platform,
    *,
    method: Literal["descent", "pairs"] = "descent",
) -> BlockSolution:
    """Minimize one block's system energy over its busy interval.

    Requires an agreeable subset (Section 5 model).  See the module
    docstring for the two methods.

    Solutions are memoized by (task signature, platform, method):
    :class:`BlockSolution` is immutable, and the agreeable DP plus repeated
    sweeps over the same instances (ablations, online replanning) re-request
    identical blocks.
    """
    if not tasks.is_agreeable():
        raise ValueError("block solving requires agreeable deadlines")
    if method not in ("descent", "pairs"):
        raise ValueError(f"unknown method {method!r}")
    key = (vectorized.get_backend(), tasks.signature(), platform, method)
    cached = _SOLUTION_CACHE.get(key)
    if cached is not None:
        _SOLUTION_CACHE.move_to_end(key)
        _CACHE_STATS["solution_hits"] += 1
        return cached
    _CACHE_STATS["solution_misses"] += 1
    record_solver_call("solve_block")
    if method == "descent":
        solution = _solve_block_descent(tasks, platform)
    else:
        solution = _solve_block_pairs(tasks, platform)
    _SOLUTION_CACHE[key] = solution
    if len(_SOLUTION_CACHE) > _SOLUTION_CACHE_MAX:
        _SOLUTION_CACHE.popitem(last=False)
    return solution

"""Shared scaffolding for the ``repro.lint`` tests.

The engine derives rule scoping from dotted module names, which in turn
come from the file layout under the analysis root.  ``run_lint`` writes a
fake repo tree (``src/repro/...``, ``tests/...``) into a temp directory
and runs the real engine over it, so every test exercises discovery,
parsing, scoping, pragmas and fingerprinting end to end rather than
poking rule internals.
"""

from __future__ import annotations

import os
import textwrap
from typing import Dict, List, Optional, Sequence

from repro.lint.engine import Finding, all_rules, analyze_paths


def write_tree(root: str, files: Dict[str, str]) -> None:
    """Write ``{relative path: source}`` under ``root``."""
    for rel, source in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(textwrap.dedent(source))


def run_lint(
    root: str,
    files: Dict[str, str],
    *,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Write ``files`` under ``root`` and lint the whole tree."""
    write_tree(root, files)
    _, findings = analyze_paths([root], root=root, rules=all_rules(rules))
    return findings


def rule_ids(findings: Sequence[Finding]) -> List[str]:
    return [finding.rule for finding in findings]

"""Numeric solvers used by the SDEM optimization schemes.

Every closed-form scheme in the paper reduces to one of three numeric
primitives:

* a monotone root find for first-order conditions such as
  ``sum_k (w_k / (d_k - x))**lam = alpha_m / (beta * (lam - 1))``
  (Section 5.1.1) -- :func:`bisect_increasing`;
* a one-dimensional convex minimization over a closed interval
  (the per-case energy functions ``E_i(Delta)`` of Sections 4.1/4.2) --
  :func:`minimize_convex_1d`;
* a two-dimensional convex minimization over a box for the coupled
  Eq. (13) blocks where the middle Case-3 tasks tie ``Delta_1`` and
  ``Delta_2`` together -- :func:`minimize_convex_2d_box`.

All solvers are deterministic and allocation-light; they are called inside
O(n^4)/O(n^5) dynamic programs, so constant factors matter.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Tuple

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


def bisect_increasing(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Find the root of an increasing function on ``[lo, hi]``.

    The function is assumed (weakly) increasing.  If ``func(lo) >= 0`` the
    root is clamped to ``lo``; if ``func(hi) <= 0`` it is clamped to ``hi``.
    This clamping behaviour is exactly what the paper's boundary analysis
    requires: when the unconstrained extreme value falls outside the feasible
    domain, the boundary point is the constrained optimum.

    Parameters
    ----------
    func:
        Increasing function of one variable.
    lo, hi:
        Bracket endpoints, ``lo <= hi``.
    tol:
        Absolute tolerance on the argument.
    max_iter:
        Iteration cap; with ``tol=1e-12`` and millisecond-scale domains the
        loop terminates far earlier.
    """
    if lo > hi:
        raise ValueError(f"empty bracket: lo={lo} > hi={hi}")
    flo = func(lo)
    if flo >= 0.0:
        return lo
    fhi = func(hi)
    if fhi <= 0.0:
        return hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if hi - lo <= tol:
            return mid
        fmid = func(mid)
        if fmid < 0.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def golden_section_minimize(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> Tuple[float, float]:
    """Minimize a unimodal function on ``[lo, hi]``.

    Returns ``(argmin, min_value)``.  Golden-section search needs no
    derivatives, which keeps the per-case energy functions of Sections
    4.1/4.2 usable even at the piecewise joints where they are continuous
    but not differentiable.
    """
    if lo > hi:
        raise ValueError(f"empty interval: lo={lo} > hi={hi}")
    if hi - lo <= tol:
        x = 0.5 * (lo + hi)
        return x, func(x)
    a, b = lo, hi
    x1 = b - _GOLDEN * (b - a)
    x2 = a + _GOLDEN * (b - a)
    f1, f2 = func(x1), func(x2)
    # Track the best point ever *evaluated*: when the minimum sits on a
    # cliff edge (graded-penalty feasibility boundaries in the block
    # solvers), the final bracket's midpoint can land a hair inside the
    # penalty region even though a probe already hit the true minimum.
    best = min(((x1, f1), (x2, f2)), key=lambda item: item[1])
    for _ in range(max_iter):
        if b - a <= tol:
            break
        if f1 <= f2:
            b, x2, f2 = x2, x1, f1
            x1 = b - _GOLDEN * (b - a)
            f1 = func(x1)
            if f1 < best[1]:
                best = (x1, f1)
        else:
            a, x1, f1 = x1, x2, f2
            x2 = a + _GOLDEN * (b - a)
            f2 = func(x2)
            if f2 < best[1]:
                best = (x2, f2)
    # Include the midpoint and the endpoints: a constrained optimum
    # frequently sits on the feasible-domain boundary (the paper's
    # "just-fit"/"invalid" cases).
    mid = 0.5 * (a + b)
    candidates = [best, (mid, func(mid)), (lo, func(lo)), (hi, func(hi))]
    return min(candidates, key=lambda item: item[1])


def minimize_convex_1d(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-10,
) -> Tuple[float, float]:
    """Minimize a convex function on ``[lo, hi]``; returns ``(argmin, value)``.

    Thin wrapper over :func:`golden_section_minimize` (convex implies
    unimodal) kept as a separate name so call sites document their convexity
    assumption.
    """
    return golden_section_minimize(func, lo, hi, tol=tol)


def minimize_convex_2d_box(
    func: Callable[[float, float], float],
    x_bounds: Tuple[float, float],
    y_bounds: Tuple[float, float],
    *,
    tol: float = 1e-9,
    max_rounds: int = 60,
) -> Tuple[float, float, float]:
    """Minimize a jointly convex function over an axis-aligned box.

    Coordinate descent with exact (golden-section) line minimizations.  For a
    convex function over a box, coordinate descent converges to the global
    box-constrained minimum because the only non-smoothness we encounter is
    at the box faces.  Returns ``(x, y, value)``.

    Used for the Eq. (13)/(15) blocks where Case-3 tasks couple
    ``Delta_1`` and ``Delta_2`` through the term
    ``(d_n' - Delta_1 - Delta_2) ** (1 - lam)``.
    """
    x_lo, x_hi = x_bounds
    y_lo, y_hi = y_bounds
    if x_lo > x_hi or y_lo > y_hi:
        raise ValueError("empty box")
    x = 0.5 * (x_lo + x_hi)
    y = 0.5 * (y_lo + y_hi)
    value = func(x, y)
    for _ in range(max_rounds):
        new_x, _ = golden_section_minimize(lambda t: func(t, y), x_lo, x_hi, tol=tol)
        new_y, _ = golden_section_minimize(lambda t: func(new_x, t), y_lo, y_hi, tol=tol)
        new_value = func(new_x, new_y)
        moved = abs(new_x - x) + abs(new_y - y)
        x, y = new_x, new_y
        if value - new_value <= tol and moved <= tol:
            value = min(value, new_value)
            break
        value = new_value
    return x, y, value


def weighted_power_sum(weights: Sequence[float], exponent: float) -> float:
    """Return ``sum(w ** exponent for w in weights)``.

    Tiny helper shared by the closed forms Eq. (4) and Eq. (8); isolated so
    tests can property-check it against numpy.
    """
    return float(sum(w ** exponent for w in weights))

"""Tests for the system-wide energy accountant (the SDEM objective)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.energy import SleepPolicy, account
from repro.models import CorePowerModel, MemoryModel, Platform
from repro.schedule import ExecutionInterval, Schedule


def iv(task, start, end, speed):
    return ExecutionInterval(task, start, end, speed)


@pytest.fixture
def platform():
    core = CorePowerModel(beta=1.0, lam=3.0, alpha=10.0, s_up=1000.0, xi=2.0)
    memory = MemoryModel(alpha_m=50.0, xi_m=4.0)
    return Platform(core, memory)


class TestCoreEnergy:
    def test_dynamic_energy_integrates_power(self, platform):
        sched = Schedule.from_assignments([[iv("a", 0, 2, 3.0)]])
        bd = account(sched, platform, horizon=(0.0, 2.0))
        assert bd.core_dynamic == pytest.approx(27.0 * 2.0)
        assert bd.core_static_active == pytest.approx(10.0 * 2.0)

    def test_idle_core_break_even_policy(self, platform):
        # One busy ms then a 9 ms gap: sleeping costs alpha*xi = 20 < 90.
        sched = Schedule.from_assignments([[iv("a", 0, 1, 1.0)]])
        bd = account(sched, platform, horizon=(0.0, 10.0))
        assert bd.core_idle == pytest.approx(10.0 * 2.0)

    def test_idle_core_short_gap_stays_awake(self, platform):
        sched = Schedule.from_assignments([[iv("a", 0, 1, 1.0)]])
        bd = account(sched, platform, horizon=(0.0, 2.0))
        # 1 ms gap < xi=2: idling awake (10 uJ) beats a transition (20 uJ).
        assert bd.core_idle == pytest.approx(10.0)

    def test_never_policy_charges_full_gap(self, platform):
        sched = Schedule.from_assignments([[iv("a", 0, 1, 1.0)]])
        bd = account(
            sched, platform, horizon=(0.0, 10.0), core_policy=SleepPolicy.NEVER
        )
        assert bd.core_idle == pytest.approx(10.0 * 9.0)

    def test_unused_core_contributes_nothing(self, platform):
        sched = Schedule.from_assignments([[iv("a", 0, 1, 1.0)], []])
        one = account(sched, platform, horizon=(0.0, 10.0))
        solo = account(
            Schedule.from_assignments([[iv("a", 0, 1, 1.0)]]),
            platform,
            horizon=(0.0, 10.0),
        )
        assert one.total == pytest.approx(solo.total)

    def test_zero_alpha_core_idle_is_free(self):
        platform = Platform(
            CorePowerModel(beta=1.0, lam=3.0, alpha=0.0),
            MemoryModel(alpha_m=50.0),
        )
        sched = Schedule.from_assignments([[iv("a", 0, 1, 1.0)]])
        bd = account(
            sched, platform, horizon=(0.0, 100.0), core_policy=SleepPolicy.NEVER
        )
        assert bd.core_idle == 0.0


class TestMemoryEnergy:
    def test_memory_active_over_busy_union(self, platform):
        sched = Schedule.from_assignments([[iv("a", 0, 4, 1.0)], [iv("b", 2, 6, 1.0)]])
        bd = account(sched, platform, horizon=(0.0, 6.0))
        assert bd.memory_busy_time == pytest.approx(6.0)
        assert bd.memory_active == pytest.approx(300.0)
        assert bd.memory_idle == 0.0

    def test_memory_policies_on_long_gap(self, platform):
        sched = Schedule.from_assignments([[iv("a", 0, 1, 1.0)]])
        horizon = (0.0, 21.0)  # 20 ms gap, xi_m = 4 ms
        never = account(
            sched, platform, horizon=horizon, memory_policy=SleepPolicy.NEVER
        )
        always = account(
            sched, platform, horizon=horizon, memory_policy=SleepPolicy.ALWAYS
        )
        smart = account(
            sched, platform, horizon=horizon, memory_policy=SleepPolicy.BREAK_EVEN
        )
        assert never.memory_idle == pytest.approx(50.0 * 20.0)
        assert always.memory_idle == pytest.approx(50.0 * 4.0)
        assert smart.memory_idle == pytest.approx(50.0 * 4.0)
        assert never.memory_sleep_time == 0.0
        assert smart.memory_sleep_time == pytest.approx(20.0)

    def test_always_policy_wastes_energy_on_short_gaps(self, platform):
        # Two busy spans with a 1 ms gap; ALWAYS pays 4 ms of transition.
        sched = Schedule.from_assignments([[iv("a", 0, 1, 1.0), iv("b", 2, 3, 1.0)]])
        always = account(
            sched, platform, horizon=(0.0, 3.0), memory_policy=SleepPolicy.ALWAYS
        )
        smart = account(
            sched, platform, horizon=(0.0, 3.0), memory_policy=SleepPolicy.BREAK_EVEN
        )
        assert always.memory_idle == pytest.approx(200.0)
        assert smart.memory_idle == pytest.approx(50.0)
        assert always.total > smart.total

    def test_aligned_idle_beats_scattered_idle(self, platform):
        """The paper's central effect: common idle must be *aligned* to help.

        Same per-core busy time; in the aligned schedule both cores work
        [0, 4], in the scattered one they alternate so memory never rests.
        """
        aligned = Schedule.from_assignments(
            [[iv("a", 0, 4, 1.0)], [iv("b", 0, 4, 1.0)]]
        )
        scattered = Schedule.from_assignments(
            [[iv("a", 0, 4, 1.0)], [iv("b", 4, 8, 1.0)]]
        )
        h = (0.0, 12.0)
        e_aligned = account(aligned, platform, horizon=h)
        e_scattered = account(scattered, platform, horizon=h)
        assert e_aligned.memory_total < e_scattered.memory_total
        assert e_aligned.memory_sleep_time > e_scattered.memory_sleep_time


class TestBreakdownArithmetic:
    def test_totals_add_up(self, platform):
        sched = Schedule.from_assignments([[iv("a", 0, 2, 5.0)], [iv("b", 1, 4, 2.0)]])
        bd = account(sched, platform, horizon=(0.0, 10.0))
        assert bd.total == pytest.approx(bd.core_total + bd.memory_total)
        assert bd.core_total == pytest.approx(
            bd.core_dynamic + bd.core_static_active + bd.core_idle
        )

    def test_breakdown_addition(self, platform):
        sched = Schedule.from_assignments([[iv("a", 0, 2, 5.0)]])
        bd = account(sched, platform, horizon=(0.0, 4.0))
        doubled = bd + bd
        assert doubled.total == pytest.approx(2.0 * bd.total)
        assert doubled.memory_sleep_time == pytest.approx(2.0 * bd.memory_sleep_time)

    @given(speed=st.floats(0.5, 100.0), duration=st.floats(0.1, 50.0))
    def test_single_task_closed_form(self, speed, duration):
        """account() must equal the paper's per-task energy expression."""
        core = CorePowerModel(beta=2.0, lam=3.0, alpha=7.0)
        memory = MemoryModel(alpha_m=11.0)
        platform = Platform(core, memory)
        sched = Schedule.from_assignments([[iv("t", 0.0, duration, speed)]])
        bd = account(sched, platform, horizon=(0.0, duration))
        expected = (2.0 * speed**3 + 7.0) * duration + 11.0 * duration
        assert bd.total == pytest.approx(expected, rel=1e-9)

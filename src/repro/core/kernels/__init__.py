"""Compiled solver kernels backing the ``REPRO_NUMERIC=jit`` backend.

This package owns every numba/cffi import in the tree (lint rule BCK004
enforces that) and hides provider selection behind a tiny protocol:

* :func:`load` resolves a provider once per process -- numba preferred,
  cffi-compiled C as fallback -- and **self-checks** it against the pure
  Python references before accepting it.  A provider whose output drifts
  from the reference by even one bit on the row-identity-critical kernels
  is demoted, so "jit available" always implies "jit agrees".
* :func:`available` / :func:`load_error` report the outcome;
  :func:`warm_up` forces compilation outside timed regions;
  :func:`cache_dir` / :func:`clear` manage the on-disk compile cache.
* The module-level wrappers (:func:`overhead_solve_small`,
  :func:`block_energy`, :func:`block_energy_batch`,
  :func:`solve_block_descent`, :func:`overhead_energy_small`,
  :func:`powersum_roots`) adapt task-set/platform objects to the raw
  array protocol, caching the flattened platform parameters.

The package deliberately uses no numpy of its own (the providers handle
their array layouts), so the jit backend still functions -- and degrades
cleanly -- on hosts without numpy.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.kernels._csource import REPRO_KERNELS_ABI, REPRO_MAX_SMALL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.vectorized import OverheadScan
    from repro.models.platform import Platform
    from repro.models.task import TaskSet

__all__ = [
    "JitUnavailableWarning",
    "REPRO_KERNELS_ABI",
    "REPRO_MAX_SMALL",
    "available",
    "block_energy",
    "block_energy_batch",
    "cache_dir",
    "clear",
    "load",
    "load_error",
    "overhead_energy_small",
    "overhead_solve_small",
    "powersum_roots",
    "provider_name",
    "solve_block_descent",
    "warm_up",
]


class JitUnavailableWarning(RuntimeWarning):
    """Structured warning for jit-backend degradation (never an error)."""


_lock = threading.Lock()
_provider: Optional[Any] = None
_load_attempted = False
_load_error: Optional[str] = None

_PARAMS_LIMIT = 64
_params_cache: dict = {}
_last_platform: Optional[Any] = None
_last_params: Tuple[float, ...] = ()


def _platform_params(platform: "Platform") -> Tuple[float, ...]:
    """Flattened ``(alpha, beta, lam, s_m, s_up, xi, alpha_m, xi_m)``.

    ``s_m`` is hoisted here because the property recomputes its root on
    every access; Platform is frozen/hashable so the cache is sound.  The
    identity fast path skips even the dataclass hash: the replan loop
    solves thousands of instances against one Platform object, and
    hashing it dominates a sub-10us kernel call.
    """
    global _last_platform, _last_params
    if platform is _last_platform:
        return _last_params
    hit = _params_cache.get(platform)
    if hit is None:
        core = platform.core
        memory = platform.memory
        hit = (
            core.alpha,
            core.beta,
            core.lam,
            core.s_m,
            core.s_up,
            core.xi,
            memory.alpha_m,
            memory.xi_m,
        )
        if len(_params_cache) >= _PARAMS_LIMIT:
            _params_cache.clear()
        _params_cache[platform] = hit
    _last_platform = platform
    _last_params = hit
    return hit


# ---------------------------------------------------------------------------
# Provider resolution + self-check
# ---------------------------------------------------------------------------


def _reference_platforms() -> List["Platform"]:
    from repro.models.platform import paper_platform

    shared = paper_platform(num_cores=None, xi=5.0)
    return [shared, shared.negligible_core_static()]


def _reference_tasksets() -> List["TaskSet"]:
    from repro.models.task import Task, TaskSet

    return [
        TaskSet([Task(0.0, 50.0, 30000.0)]),
        TaskSet(
            [
                Task(0.0, 40.0, 20000.0, name="a"),
                Task(0.0, 60.0, 45000.0, name="b"),
                Task(0.0, 60.0, 15000.0, name="c"),
            ]
        ),
        TaskSet(
            [
                Task(0.0, 30.0, 9000.0),
                Task(0.0, 55.0, 40000.0),
                Task(0.0, 80.0, 52000.0),
                Task(0.0, 80.0, 11000.0),
                Task(0.0, 120.0, 70000.0),
            ]
        ),
    ]


def _self_check(provider: Any) -> Optional[str]:
    """Compare provider output against the Python references.

    Returns an error description on the first mismatch, ``None`` when the
    provider is trustworthy.  The overhead solve and block energy must be
    *bit-identical* (they drive cross-backend row identity); the descent
    and root finds may differ by at most 1e-9 (their output feeds rounded
    schedule rows).
    """
    from repro.core import blocks, vectorized

    platforms = _reference_platforms()
    tasksets = _reference_tasksets()
    for platform in platforms:
        params = _platform_params(platform)
        for tasks in tasksets:
            sig = tasks.energy_signature()
            rel_end = tasks.latest_deadline - tasks[0].release + 25.0
            expected = vectorized.overhead_solve_small(tasks, platform, rel_end)
            got = provider.overhead_solve_small(
                sig, tasks.latest_deadline, params, rel_end
            )
            if got != expected:
                return (
                    f"overhead_solve_small mismatch on n={len(tasks)}: "
                    f"{got!r} != {expected!r}"
                )
            span = tasks.latest_deadline - tasks.earliest_release
            probes = [
                (tasks.earliest_release, tasks.latest_deadline),
                (tasks.earliest_release + 0.25 * span, tasks.latest_deadline),
                (tasks.earliest_release, tasks.earliest_release + 0.1 * span),
                (tasks.latest_deadline, tasks.earliest_release),
            ]
            starts = [p[0] for p in probes]
            ends = [p[1] for p in probes]
            got_be = provider.block_energy_batch(sig, params, starts, ends)
            expected_be = [
                blocks._block_energy_scalar(tasks, platform, s, e)
                for s, e in probes
            ]
            if list(got_be) != expected_be:
                return (
                    f"block_energy_batch mismatch on n={len(tasks)}: "
                    f"{got_be!r} != {expected_be!r}"
                )

    platform = platforms[0]
    params = _platform_params(platform)
    tasks = tasksets[1]
    sig = tasks.energy_signature()
    s_lo, s_hi = tasks.earliest_release, tasks[0].deadline
    e_lo, e_hi = tasks[-1].release, tasks.latest_deadline
    mid = 0.5 * (s_lo + e_hi)
    starts = [(s_lo, e_hi), (mid, mid), (s_lo, e_lo if e_lo > s_lo else e_hi), (s_hi, e_hi)]
    expected_xy = blocks._minimize_2d(
        lambda s, e: blocks._block_energy_scalar(tasks, platform, s, e),
        (s_lo, s_hi),
        (e_lo, e_hi),
        starts,
    )
    got_xy = provider.solve_block_descent(
        sig, params, (s_lo, s_hi), (e_lo, e_hi), starts, 1e-9, 80
    )
    if any(abs(g - e) > 1e-9 for g, e in zip(got_xy, expected_xy)):
        return f"solve_block_descent mismatch: {got_xy!r} != {expected_xy!r}"

    from repro.utils.solvers import bisect_increasing

    deadlines = [t.deadline for t in tasks]
    workloads = [t.workload for t in tasks]
    lam = platform.core.lam
    target = 4.0e9
    mask = bytes([1, 1, 0])

    def head_slope(start: float) -> float:
        acc = 0.0
        for flag, d, w in zip(mask, deadlines, workloads):
            if not flag:
                continue
            length = d - start
            if length <= 0.0:
                return float("inf")
            acc += (w / length) ** lam
        return acc - target

    expected_root = bisect_increasing(head_slope, 0.0, deadlines[0])
    got_root = provider.powersum_roots(
        deadlines, workloads, mask, 1, [0.0], [deadlines[0]], target, lam,
        0, 1e-12, 200,
    )[0]
    if abs(got_root - expected_root) > 1e-9:
        return f"powersum_roots mismatch: {got_root!r} != {expected_root!r}"
    return None


def _resolve_provider() -> Tuple[Optional[Any], Optional[str]]:
    errors: List[str] = []
    for label, factory in (
        ("numba", "_numba_provider"),
        ("cffi", "_cffi_provider"),
    ):
        try:
            module = __import__(
                f"repro.core.kernels.{factory}", fromlist=["build"]
            )
            candidate = module.build()
        except Exception as exc:  # pragma: no cover - provider-dependent
            errors.append(f"{label}: {type(exc).__name__}: {exc}")
            continue
        try:
            failure = _self_check(candidate)
        except Exception as exc:  # pragma: no cover - provider-dependent
            failure = f"self-check raised {type(exc).__name__}: {exc}"
        if failure is None:
            return candidate, None
        errors.append(f"{label}: {failure}")  # pragma: no cover
    return None, "; ".join(errors) if errors else "no providers registered"


def load() -> bool:
    """Resolve and self-check a provider once per process; True on success."""
    global _provider, _load_attempted, _load_error
    if _load_attempted:
        return _provider is not None
    with _lock:
        if _load_attempted:
            return _provider is not None
        provider, error = _resolve_provider()
        _provider = provider
        _load_error = error
        _load_attempted = True
    return _provider is not None


def available() -> bool:
    """True when a self-checked compiled provider is loaded (loads lazily)."""
    return load()


def provider_name() -> Optional[str]:
    """``"numba"`` / ``"cffi"`` after a successful load, else ``None``."""
    return getattr(_provider, "name", None) if load() else None


def load_error() -> Optional[str]:
    """Why the jit tier is unavailable (``None`` when it is available)."""
    load()
    return _load_error


def clear() -> None:
    """Forget the resolved provider and its caches (tests, reconfiguration).

    Does not delete on-disk compile artifacts -- those are content
    addressed (see :func:`cache_dir`) and reused safely across processes.
    """
    global _provider, _load_attempted, _load_error, _last_platform, _last_params
    with _lock:
        if _provider is not None and hasattr(_provider, "clear_caches"):
            _provider.clear_caches()
        _provider = None
        _load_attempted = False
        _load_error = None
        _params_cache.clear()
        _last_platform = None
        _last_params = ()


def cache_dir() -> Optional[str]:
    """On-disk compile-cache directory for the cffi build (None if cffi
    cannot even be imported)."""
    try:
        from repro.core.kernels import _cffi_provider
    except Exception:  # pragma: no cover - host-dependent
        return None
    return _cffi_provider.cache_dir()


def warm_up() -> Optional[str]:
    """Force provider resolution + compilation now; returns provider name.

    Benches call this before timing so first-call JIT/compile cost never
    pollutes measured numbers.  Harmless no-op when jit is unavailable.
    """
    if not load():
        return None
    from repro.models.task import Task, TaskSet

    platform = _reference_platforms()[0]
    tasks = TaskSet([Task(0.0, 50.0, 30000.0), Task(0.0, 90.0, 40000.0)])
    overhead_solve_small(tasks, platform, 120.0)
    block_energy(tasks, platform, 0.0, 90.0)
    solve_block_descent(
        tasks, platform, (0.0, 50.0), (0.0, 90.0), [(0.0, 90.0)]
    )
    powersum_roots(
        [t.deadline for t in tasks],
        [t.workload for t in tasks],
        bytes([1, 1]),
        1,
        [0.0],
        [40.0],
        1.0e9,
        platform.core.lam,
        0,
    )
    return provider_name()


# ---------------------------------------------------------------------------
# Kernel wrappers (object -> raw-array adaptation)
# ---------------------------------------------------------------------------


def overhead_solve_small(
    tasks: "TaskSet", platform: "Platform", rel_end: float
) -> Tuple[float, Sequence[float], Sequence[int], Optional[Tuple[float, float, int]]]:
    """Compiled Section 7 fused solve; drop-in for
    :func:`repro.core.vectorized.overhead_solve_small`."""
    assert _provider is not None
    return _provider.overhead_solve_small(
        tasks.energy_signature(),
        tasks.latest_deadline,
        _platform_params(platform),
        rel_end,
    )


def block_energy(
    tasks: "TaskSet", platform: "Platform", start: float, end: float
) -> float:
    """Compiled single block-energy evaluation (batch of one)."""
    assert _provider is not None
    return _provider.block_energy_batch(
        tasks.energy_signature(), _platform_params(platform), [start], [end]
    )[0]


def block_energy_batch(
    tasks: "TaskSet",
    platform: "Platform",
    starts: Sequence[float],
    ends: Sequence[float],
) -> List[float]:
    """Compiled block energies at K ``(start, end)`` candidates."""
    assert _provider is not None
    return _provider.block_energy_batch(
        tasks.energy_signature(), _platform_params(platform), starts, ends
    )


def solve_block_descent(
    tasks: "TaskSet",
    platform: "Platform",
    x_bounds: Tuple[float, float],
    y_bounds: Tuple[float, float],
    starts: Sequence[Tuple[float, float]],
    *,
    tol: float = 1e-9,
    max_rounds: int = 80,
) -> Tuple[float, float, float]:
    """Compiled coordinate+diagonal descent over the block objective."""
    assert _provider is not None
    return _provider.solve_block_descent(
        tasks.energy_signature(),
        _platform_params(platform),
        x_bounds,
        y_bounds,
        starts,
        tol,
        max_rounds,
    )


def overhead_energy_small(
    scan: "OverheadScan",
    platform: "Platform",
    rel_end: float,
    deltas: Sequence[float],
) -> List[float]:
    """Compiled scan-objective evaluation at each candidate delta."""
    assert _provider is not None
    return _provider.overhead_energy_small(
        scan.ends,
        scan.prefix_ends,
        scan.prefix_beta_nat,
        scan.prefix_gap_nat,
        scan.prefix_overspeed,
        scan.suffix_wlam,
        scan.suffix_max_w,
        scan.horizon,
        _platform_params(platform),
        rel_end,
        deltas,
    )


def powersum_roots(
    values: Sequence[float],
    workloads: Sequence[float],
    masks: bytes,
    count: int,
    lo: Sequence[float],
    hi: Sequence[float],
    target: float,
    lam: float,
    mode: int,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> List[float]:
    """Compiled batched bisection over the alpha=0 power-sum closures.

    ``mode`` 0 treats ``values`` as deadlines (head slope), 1 as releases
    (tail condition); ``masks`` is ``count * len(values)`` bytes of 0/1
    row-major membership flags.
    """
    assert _provider is not None
    return _provider.powersum_roots(
        values, workloads, masks, count, lo, hi, target, lam, mode, tol, max_iter
    )

"""Tests for the workload generators (Section 8.1)."""

from __future__ import annotations

import random

import pytest

from repro.models import TaskSet
from repro.workloads import (
    FFT_1024_KILOCYCLES,
    REFERENCE_MHZ,
    dspstone_trace,
    fft_instance_kilocycles,
    matmul_instance_kilocycles,
    synthetic_tasks,
    utilization_of,
)
from repro.workloads.synthetic import SPAN_RANGE_MS, WORKLOAD_RANGE_KC


class TestSyntheticTasks:
    def test_deterministic_by_seed(self):
        a = synthetic_tasks(n=20, max_interarrival=400.0, seed=5)
        b = synthetic_tasks(n=20, max_interarrival=400.0, seed=5)
        assert [(t.release, t.deadline, t.workload) for t in a] == [
            (t.release, t.deadline, t.workload) for t in b
        ]

    def test_different_seeds_differ(self):
        a = synthetic_tasks(n=20, max_interarrival=400.0, seed=5)
        b = synthetic_tasks(n=20, max_interarrival=400.0, seed=6)
        assert [t.workload for t in a] != [t.workload for t in b]

    def test_parameter_ranges_respected(self):
        tasks = synthetic_tasks(n=200, max_interarrival=300.0, seed=1)
        for t in tasks:
            assert WORKLOAD_RANGE_KC[0] <= t.workload <= WORKLOAD_RANGE_KC[1]
            assert SPAN_RANGE_MS[0] <= t.span <= SPAN_RANGE_MS[1]
        gaps = [
            b.release - a.release for a, b in zip(tasks, tasks[1:])
        ]
        assert all(0.0 <= g <= 300.0 + 1e-9 for g in gaps)

    def test_releases_sorted(self):
        tasks = synthetic_tasks(n=50, max_interarrival=100.0, seed=2)
        releases = [t.release for t in tasks]
        assert releases == sorted(releases)

    def test_feasible_on_paper_platform(self):
        """Every generated task must fit under 1900 MHz (paper assumption)."""
        tasks = synthetic_tasks(n=300, max_interarrival=100.0, seed=3)
        assert TaskSet(tasks).is_feasible_at(1900.0)

    def test_smaller_x_means_higher_utilization(self):
        dense = synthetic_tasks(n=100, max_interarrival=100.0, seed=7)
        sparse = synthetic_tasks(n=100, max_interarrival=800.0, seed=7)
        u_dense = utilization_of(dense, num_cores=8, speed=1000.0)
        u_sparse = utilization_of(sparse, num_cores=8, speed=1000.0)
        assert u_dense > u_sparse

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            synthetic_tasks(n=0, max_interarrival=100.0, seed=1)
        with pytest.raises(ValueError):
            synthetic_tasks(n=5, max_interarrival=0.0, seed=1)
        with pytest.raises(ValueError):
            synthetic_tasks(n=5, max_interarrival=10.0, seed=1, min_interarrival=20.0)


class TestDspstone:
    def test_fft_workload_near_model(self):
        rng = random.Random(0)
        for _ in range(50):
            w = fft_instance_kilocycles(rng)
            assert 10 * FFT_1024_KILOCYCLES * 0.95 <= w <= 10 * FFT_1024_KILOCYCLES * 1.05

    def test_matmul_workload_positive_and_varied(self):
        rng = random.Random(0)
        values = {round(matmul_instance_kilocycles(rng), 3) for _ in range(30)}
        assert len(values) > 20
        assert all(v > 0 for v in values)

    def test_trace_span_equals_processing_time_at_reference_clock(self):
        trace = dspstone_trace("fft", utilization_factor=3.0, n=10, seed=1)
        for t in trace:
            assert t.span == pytest.approx(t.workload / REFERENCE_MHZ, rel=1e-12)

    def test_sporadic_period_scales_with_u(self):
        """Per-stream inter-arrival must be at least span * U."""
        for u in (2.0, 9.0):
            trace = dspstone_trace(
                "fft", utilization_factor=u, n=12, seed=4, streams=1
            )
            for a, b in zip(trace, trace[1:]):
                assert b.release - a.release >= a.span * u * (1.0 - 1e-9)

    def test_streams_interleave(self):
        trace = dspstone_trace("matmul", utilization_factor=4.0, n=16, seed=9, streams=8)
        starts = sorted(t.release for t in trace)
        # Eight phase-shifted streams: the first eight releases all land
        # within the initial phase window, well before one period elapses.
        assert starts[7] - starts[0] < 15.0

    def test_deterministic_by_seed(self):
        a = dspstone_trace("fft", utilization_factor=2.0, n=10, seed=3)
        b = dspstone_trace("fft", utilization_factor=2.0, n=10, seed=3)
        assert [(t.release, t.workload) for t in a] == [
            (t.release, t.workload) for t in b
        ]

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(ValueError):
            dspstone_trace("sobel", utilization_factor=2.0, n=4, seed=0)

    def test_feasible_on_paper_platform(self):
        trace = dspstone_trace("fft", utilization_factor=2.0, n=40, seed=2, streams=8)
        assert TaskSet(trace).is_feasible_at(1900.0)

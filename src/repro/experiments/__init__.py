"""Experiment harness regenerating every table and figure of Section 8.

One module per exhibit; each returns structured results and can emit CSV
plus an ASCII rendering (matplotlib is unavailable offline).  The mapping
from exhibits to modules lives in DESIGN.md's per-experiment index.

Execution goes through the parallel, cache-aware engine in
:mod:`repro.experiments.parallel`; every exhibit accepts ``max_workers``
and ``cache`` and produces bit-identical results for any setting (see
docs/PERFORMANCE.md).
"""

from repro.experiments.cache import (
    CODE_SALT,
    CacheStats,
    ResultCache,
    default_cache_root,
    platform_fingerprint,
    unit_key,
)
from repro.experiments.config import (
    ALPHA_M_SWEEP_MW,
    DEFAULT_ALPHA_M_MW,
    DEFAULT_MAX_WORKERS,
    DEFAULT_SEEDS,
    DEFAULT_X_MS,
    DEFAULT_XI_M_MS,
    U_SWEEP,
    X_SWEEP_MS,
    XI_M_SWEEP_MS,
    experiment_platform,
)
from repro.experiments.runner import (
    ComparisonPoint,
    SeriesResult,
    UnitResult,
    compare_policies,
    reduce_units,
    render_ascii_chart,
    simulate_unit,
    write_csv,
)
from repro.experiments.parallel import (
    DspstoneTraceSpec,
    PointSpec,
    SyntheticTraceSpec,
    resolve_workers,
    run_series,
    run_unit,
)
from repro.experiments.fig6 import fig6_specs, run_fig6
from repro.experiments.fig7 import fig7_grid_specs, run_fig7a, run_fig7b
from repro.experiments.tables import table1_rows, table3_rows, table4_rows

__all__ = [
    "ALPHA_M_SWEEP_MW",
    "DEFAULT_ALPHA_M_MW",
    "DEFAULT_MAX_WORKERS",
    "DEFAULT_SEEDS",
    "DEFAULT_X_MS",
    "DEFAULT_XI_M_MS",
    "U_SWEEP",
    "X_SWEEP_MS",
    "XI_M_SWEEP_MS",
    "experiment_platform",
    "CODE_SALT",
    "CacheStats",
    "ResultCache",
    "default_cache_root",
    "platform_fingerprint",
    "unit_key",
    "ComparisonPoint",
    "SeriesResult",
    "UnitResult",
    "compare_policies",
    "reduce_units",
    "render_ascii_chart",
    "simulate_unit",
    "write_csv",
    "DspstoneTraceSpec",
    "PointSpec",
    "SyntheticTraceSpec",
    "resolve_workers",
    "run_series",
    "run_unit",
    "fig6_specs",
    "run_fig6",
    "fig7_grid_specs",
    "run_fig7a",
    "run_fig7b",
    "table1_rows",
    "table3_rows",
    "table4_rows",
]

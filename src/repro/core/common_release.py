"""Optimal SDEM schemes for common-release-time tasks (paper Section 4).

Both regimes share one geometric picture: all tasks are released at a common
instant (normalized to 0 below, shifted back on output), each runs on its own
core, and the memory sleeps for a single period of length ``Delta`` at the
*right end* of the maximal interval ``I``.  Choosing ``Delta`` trades core
energy (larger ``Delta`` squeezes the aligned tasks to higher speed) against
memory leakage (larger ``Delta`` means less memory-awake time).  The paper
partitions the ``Delta`` axis into ``n`` cases at the breakpoints
``delta_i`` and minimizes the per-case convex energy in closed form.

``alpha = 0`` (Section 4.1)
    Breakpoints ``delta_i = d_n - d_i``.  In Case ``i`` tasks ``1..i-1``
    run at their filled speed and tasks ``i..n`` are *aligned*: stretched
    over ``[0, |I| - Delta]``.  The per-case optimum is Eq. (4); the global
    optimum can be located by a linear scan (Theorem 2) or a binary search
    over cases (Lemma 1, giving O(n log n) total).

``alpha != 0`` (Section 4.2)
    Every task has a *critical speed* ``s_0 = min(max(s_m, s_f), s_up)``;
    run alone it would finish at ``c_i = w_i / s_0``.  Breakpoints are
    ``delta_i = |I| - c_i`` with ``|I| = c_n = max c``.  In Case ``i``
    tasks with ``c_j < |I| - Delta`` keep their critical speed (their core
    then sleeps); the rest are aligned.  The per-case optimum is Eq. (8);
    Theorem 3 scans all ``n`` cases (O(n^2) naively, O(n) here thanks to
    prefix/suffix sums after the O(n log n) sort).

The returned solution carries both the paper's *predicted* energy (the
closed-form value) and a concrete :class:`~repro.schedule.timeline.Schedule`
that the generic accountant prices to the same number -- the test suite
asserts that equality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Tuple

from repro.core import vectorized
from repro.models.platform import Platform
from repro.models.task import Task, TaskSet
from repro.schedule.timeline import ExecutionInterval, Schedule
from repro.utils.solvers import record_solver_call

__all__ = [
    "CommonReleaseSolution",
    "solve_common_release",
    "solve_common_release_alpha_zero",
    "solve_common_release_alpha_nonzero",
]

_INF = float("inf")


@dataclass(frozen=True)
class CommonReleaseSolution:
    """Result of a Section 4 scheme.

    Attributes
    ----------
    tasks:
        The (deadline- or completion-sorted) input task set.
    release:
        The common release instant (original time axis).
    interval_end:
        End of the maximal interval ``I`` on the original axis:
        ``release + d_n`` in the ``alpha = 0`` regime,
        ``release + c_n`` when ``alpha != 0``.
    delta:
        Optimal memory sleep length at the right of ``I`` (ms).
    case_index:
        1-based paper case the optimum fell in (``i`` such that
        ``delta_i <= Delta < delta_{i-1}``).
    finish_times:
        Task name -> completion instant on the original time axis.
    speeds:
        Task name -> constant execution speed (MHz).
    predicted_energy:
        System energy in uJ per the paper's closed forms (memory active
        exactly while some core runs; cores/memory sleep for free).
    alpha_zero:
        Which regime produced this solution.
    """

    tasks: TaskSet
    release: float
    interval_end: float
    delta: float
    case_index: int
    finish_times: Dict[str, float]
    speeds: Dict[str, float]
    predicted_energy: float
    alpha_zero: bool

    @property
    def memory_busy_length(self) -> float:
        """``|I| - Delta``: how long the memory must stay awake."""
        return (self.interval_end - self.release) - self.delta

    def schedule(self) -> Schedule:
        """Materialize the solution: one task per core, started at release."""
        placements = []
        for task in self.tasks:
            end = self.finish_times[task.name]
            speed = self.speeds[task.name]
            placements.append(
                ExecutionInterval(task.name, self.release, end, speed)
            )
        return Schedule.one_task_per_core(placements)


def _prepare_common_release(tasks: TaskSet) -> float:
    """Validate the common-release precondition and return the release."""
    if not tasks.has_common_release():
        raise ValueError(
            "Section 4 schemes require a common release time; got releases "
            f"{sorted(set(tasks.releases()))}"
        )
    return tasks[0].release


# ---------------------------------------------------------------------------
# Section 4.1: alpha = 0
# ---------------------------------------------------------------------------


def solve_common_release_alpha_zero(
    tasks: TaskSet,
    platform: Platform,
    *,
    method: Literal["scan", "binary"] = "scan",
) -> CommonReleaseSolution:
    """Optimal scheme for common-release tasks with negligible core static
    power (paper Section 4.1, Theorem 2 / Lemma 1).

    ``method='scan'`` walks all ``n`` cases (linear after sorting);
    ``method='binary'`` binary-searches them using the paper's
    valid / just-fit / invalid classification.  Both return the same
    solution; the scan is the test suite's reference for the search.
    """
    record_solver_call("common_release")
    core = platform.core
    alpha_m = platform.memory.alpha_m
    release = _prepare_common_release(tasks)
    if not tasks.is_feasible_at(core.s_up):
        raise ValueError("task set infeasible even at s_up")

    n = len(tasks)
    # Relative deadlines on the normalized axis (release = 0).
    deadlines = [t.deadline - release for t in tasks]
    workloads = [t.workload for t in tasks]
    horizon = deadlines[-1]  # |I| = d_n

    if method == "scan" and vectorized.use_numpy():
        delta_opt, energy_opt, case_idx = _scan_alpha_zero_numpy(
            deadlines, workloads, horizon, core, alpha_m
        )
        return _build_alpha_zero_solution(
            tasks, platform, release, horizon, delta_opt, energy_opt, case_idx
        )

    # delta_i = d_n - d_i for i in 1..n (1-based); delta_0 = +inf.
    delta_bp = [_INF] + [horizon - d for d in deadlines]
    lam = core.lam
    beta = core.beta

    # Prefix energy of filled-speed tasks: prefix[i] = sum_{j<=i} w^lam d_j^(1-lam)
    prefix = [0.0] * (n + 1)
    for j in range(1, n + 1):
        prefix[j] = prefix[j - 1] + workloads[j - 1] ** lam * deadlines[j - 1] ** (
            1.0 - lam
        )
    # Suffix power sum: suffix[i] = sum_{j>=i} w_j^lam (1-based i).
    suffix = [0.0] * (n + 2)
    for j in range(n, 0, -1):
        suffix[j] = suffix[j + 1] + workloads[j - 1] ** lam
    # Suffix max workload for the speed cap on aligned tasks.
    suffix_max_w = [0.0] * (n + 2)
    for j in range(n, 0, -1):
        suffix_max_w[j] = max(suffix_max_w[j + 1], workloads[j - 1])

    def case_energy(i: int, delta: float) -> float:
        """Total energy of Case i at sleep length ``delta``."""
        busy = horizon - delta
        return (
            alpha_m * busy
            + beta * prefix[i - 1]
            + beta * suffix[i] * busy ** (1.0 - lam)
        )

    def case_extreme(i: int) -> float:
        """Unconstrained minimizer Delta_mi of Case i (paper Eq. (4)).

        With ``alpha_m = 0`` sleeping is worthless and the energy is
        decreasing in the busy length, so the stationary point degenerates
        to ``-inf`` (every case clamps to its lower boundary).
        """
        if alpha_m == 0.0:
            return -_INF
        return horizon - (beta * (lam - 1.0) * suffix[i] / alpha_m) ** (1.0 / lam)

    def case_bounds(i: int) -> Tuple[float, float]:
        """Feasible Delta range of Case i, tightened by the speed cap."""
        lo = delta_bp[i]
        hi = delta_bp[i - 1]
        cap = horizon - suffix_max_w[i] / core.s_up
        return lo, min(hi, cap)

    def case_local_optimum(i: int) -> Optional[Tuple[float, float]]:
        """(delta*, energy*) of Case i, or None if speed-infeasible."""
        lo, hi = case_bounds(i)
        if hi < lo:
            return None
        delta = min(max(case_extreme(i), lo), hi)
        return delta, case_energy(i, delta)

    if method == "scan":
        best: Optional[Tuple[float, float, int]] = None
        for i in range(1, n + 1):
            local = case_local_optimum(i)
            if local is None:
                continue
            delta, energy = local
            if best is None or energy < best[1] - 1e-12:
                best = (delta, energy, i)
        if best is None:  # pragma: no cover - guarded by feasibility check
            raise RuntimeError("no feasible case found")
        delta_opt, energy_opt, case_idx = best
    elif method == "binary":
        delta_opt, energy_opt, case_idx = _binary_search_cases(
            n, case_extreme, case_bounds, case_energy, delta_bp
        )
    else:
        raise ValueError(f"unknown method {method!r}")

    return _build_alpha_zero_solution(
        tasks, platform, release, horizon, delta_opt, energy_opt, case_idx
    )


def _scan_alpha_zero_numpy(
    deadlines: List[float],
    workloads: List[float],
    horizon: float,
    core,
    alpha_m: float,
) -> Tuple[float, float, int]:
    """Theorem 2's case scan with every per-case quantity batched.

    Array transcription of the scalar scan: the prefix/suffix accumulation
    order matches (``cumsum`` is sequential), each case's energy/extreme
    expression is written in the same operation order, and the selection
    rule is the same first-strict-win walk -- so both backends return the
    same case away from 1e-12-degenerate ties.
    """
    np = vectorized.np
    lam, beta = core.lam, core.beta
    n = len(workloads)
    d = np.asarray(deadlines, dtype=np.float64)
    w = np.asarray(workloads, dtype=np.float64)
    wlam = w ** lam
    # prefix[i] at index i (0..n); suffix/suffix_max at index i-1 (i = 1..n).
    prefix = np.concatenate(([0.0], np.cumsum(wlam * d ** (1.0 - lam))))
    suffix = np.cumsum(wlam[::-1])[::-1]
    suffix_max_w = np.maximum.accumulate(w[::-1])[::-1]
    delta_bp = horizon - d
    lo = delta_bp
    hi = np.minimum(
        np.concatenate(([_INF], delta_bp[:-1])),
        horizon - suffix_max_w / core.s_up,
    )
    if alpha_m == 0.0:
        extreme = np.full(n, -_INF)
    else:
        extreme = horizon - (beta * (lam - 1.0) * suffix / alpha_m) ** (1.0 / lam)
    delta = np.minimum(np.maximum(extreme, lo), hi)
    busy = horizon - delta
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        energy = (
            alpha_m * busy + beta * prefix[:-1] + beta * suffix * busy ** (1.0 - lam)
        )
    best: Optional[Tuple[float, float, int]] = None
    rows = zip((hi >= lo).tolist(), delta.tolist(), energy.tolist())
    for index, (feasible, delta_i, energy_i) in enumerate(rows):
        if not feasible:
            continue
        if best is None or energy_i < best[1] - 1e-12:
            best = (delta_i, energy_i, index + 1)
    if best is None:  # pragma: no cover - guarded by feasibility check
        raise RuntimeError("no feasible case found")
    return best


def _binary_search_cases(
    n: int,
    case_extreme,
    case_bounds,
    case_energy,
    delta_bp: List[float],
) -> Tuple[float, float, int]:
    """Lemma 1's binary search over cases.

    Classification of Case ``i`` against its Delta domain
    ``[delta_i, delta_{i-1})`` (speed-capped):

    * *valid* -- the (capped) extreme value lies inside: answer found;
    * *just-fit* -- it lies below ``delta_i``: the optimum wants a smaller
      ``Delta``, so search the higher-index half (Cases i..n);
    * *invalid* -- it lies at/above ``delta_{i-1}``: search Cases 1..i.

    Every probed boundary candidate is recorded, so if the search exits
    without a valid case the best boundary (the just-fit solution the lemma
    names) is returned.
    """
    lo_case, hi_case = 1, n
    best: Optional[Tuple[float, float, int]] = None

    def consider(delta: float, energy: float, i: int) -> None:
        nonlocal best
        if best is None or energy < best[1] - 1e-12:
            best = (delta, energy, i)

    while lo_case <= hi_case:
        i = (lo_case + hi_case) // 2
        lo, hi = case_bounds(i)
        if hi < lo:
            # Speed-infeasible: Delta must shrink -> higher case indices.
            lo_case = i + 1
            continue
        extreme = case_extreme(i)
        capped = min(max(extreme, lo), hi)
        consider(capped, case_energy(i, capped), i)
        if extreme < delta_bp[i]:
            # just-fit: optimum wants smaller Delta.
            lo_case = i + 1
        elif extreme >= delta_bp[i - 1]:
            # invalid: optimum wants larger Delta.
            hi_case = i - 1
        else:
            # valid (possibly speed-capped): unique global optimum.
            return capped, case_energy(i, capped), i
    if best is None:
        raise RuntimeError("no feasible case found")
    return best


def _build_alpha_zero_solution(
    tasks: TaskSet,
    platform: Platform,
    release: float,
    horizon: float,
    delta: float,
    energy: float,
    case_idx: int,
) -> CommonReleaseSolution:
    busy_end_rel = horizon - delta
    finish: Dict[str, float] = {}
    speeds: Dict[str, float] = {}
    for task in tasks:
        d_rel = task.deadline - release
        end_rel = min(d_rel, busy_end_rel)
        finish[task.name] = release + end_rel
        speeds[task.name] = task.workload / end_rel
    return CommonReleaseSolution(
        tasks=tasks,
        release=release,
        interval_end=release + horizon,
        delta=delta,
        case_index=case_idx,
        finish_times=finish,
        speeds=speeds,
        predicted_energy=energy,
        alpha_zero=True,
    )


# ---------------------------------------------------------------------------
# Section 4.2: alpha != 0
# ---------------------------------------------------------------------------


def solve_common_release_alpha_nonzero(
    tasks: TaskSet,
    platform: Platform,
) -> CommonReleaseSolution:
    """Optimal scheme for common-release tasks with non-negligible core
    static power (paper Section 4.2, Theorem 3).

    Tasks are first priced at their critical speed ``s_0``; the case scan
    over the completion-time breakpoints then finds the sleep length
    ``Delta`` balancing the aligned cores + memory against the
    critical-speed cores.  The reported ``predicted_energy`` is the *total*
    system energy: the paper's Eq. (7) omits the (case-dependent) constant
    contributed by the critical-speed tasks, which must be added back when
    comparing across cases.
    """
    record_solver_call("common_release")
    core = platform.core
    if core.alpha <= 0.0:
        raise ValueError("alpha must be positive; use the alpha=0 scheme")
    alpha = core.alpha
    alpha_m = platform.memory.alpha_m
    lam, beta = core.lam, core.beta
    release = _prepare_common_release(tasks)
    if not tasks.is_feasible_at(core.s_up):
        raise ValueError("task set infeasible even at s_up")

    if vectorized.use_numpy():
        return _solve_alpha_nonzero_numpy(tasks, platform, release)

    # Sort by completion time at critical speed (paper's indexing).
    order = sorted(tasks, key=lambda t: t.workload / core.s0(t))
    n = len(order)
    s0 = [core.s0(t) for t in order]
    completion = [t.workload / s for t, s in zip(order, s0)]
    workloads = [t.workload for t in order]
    horizon = completion[-1]  # |I|^(alpha) = c_n

    delta_bp = [_INF] + [horizon - c for c in completion]

    # prefix_fixed[i] = sum_{j <= i} (beta s0_j^lam + alpha) * c_j
    prefix_fixed = [0.0] * (n + 1)
    for j in range(1, n + 1):
        prefix_fixed[j] = prefix_fixed[j - 1] + (
            beta * s0[j - 1] ** lam + alpha
        ) * completion[j - 1]
    suffix_wlam = [0.0] * (n + 2)
    suffix_max_w = [0.0] * (n + 2)
    for j in range(n, 0, -1):
        suffix_wlam[j] = suffix_wlam[j + 1] + workloads[j - 1] ** lam
        suffix_max_w[j] = max(suffix_max_w[j + 1], workloads[j - 1])

    def case_energy(i: int, delta: float) -> float:
        busy = horizon - delta
        aligned = n - i + 1
        return (
            (aligned * alpha + alpha_m) * busy
            + beta * suffix_wlam[i] * busy ** (1.0 - lam)
            + prefix_fixed[i - 1]
        )

    def case_extreme(i: int) -> float:
        aligned = n - i + 1
        return horizon - (
            beta * (lam - 1.0) * suffix_wlam[i] / (aligned * alpha + alpha_m)
        ) ** (1.0 / lam)

    best: Optional[Tuple[float, float, int]] = None
    for i in range(1, n + 1):
        lo = delta_bp[i]
        cap = horizon - suffix_max_w[i] / core.s_up
        hi = min(delta_bp[i - 1], cap)
        if hi < lo:
            # Some aligned task would exceed s_up everywhere in this case
            # (Theorem 3: "skip and go to the next case").
            continue
        delta = min(max(case_extreme(i), lo), hi)
        energy = case_energy(i, delta)
        if best is None or energy < best[1] - 1e-12:
            best = (delta, energy, i)
    if best is None:  # pragma: no cover - guarded by feasibility check
        raise RuntimeError("no feasible case found")
    delta_opt, energy_opt, case_idx = best

    busy_end_rel = horizon - delta_opt
    finish: Dict[str, float] = {}
    speeds: Dict[str, float] = {}
    for task, c, s in zip(order, completion, s0):
        if c <= busy_end_rel + 1e-12:
            finish[task.name] = release + c
            speeds[task.name] = s
        else:
            finish[task.name] = release + busy_end_rel
            speeds[task.name] = task.workload / busy_end_rel
    return CommonReleaseSolution(
        tasks=tasks,
        release=release,
        interval_end=release + horizon,
        delta=delta_opt,
        case_index=case_idx,
        finish_times=finish,
        speeds=speeds,
        predicted_energy=energy_opt,
        alpha_zero=False,
    )


def _solve_alpha_nonzero_numpy(
    tasks: TaskSet, platform: Platform, release: float
) -> CommonReleaseSolution:
    """Theorem 3's case scan, batched over all ``n`` cases at once.

    Same transcription discipline as :func:`_scan_alpha_zero_numpy`: the
    critical speeds, completion order (stable argsort matches the scalar
    stable sort), prefix/suffix accumulations and per-case expressions all
    reproduce the scalar operation order.
    """
    np = vectorized.np
    core = platform.core
    alpha, alpha_m = core.alpha, platform.memory.alpha_m
    lam, beta = core.lam, core.beta
    arr = vectorized.block_arrays(tasks)
    s0_all = vectorized.critical_speeds(arr, platform)
    completion_all = arr.workloads / s0_all
    perm = np.argsort(completion_all, kind="stable")
    completion = completion_all[perm]
    s0 = s0_all[perm]
    w = arr.workloads[perm]
    n = int(w.shape[0])
    horizon = float(completion[-1])  # |I|^(alpha) = c_n

    delta_bp = horizon - completion
    prefix_fixed = np.concatenate(
        ([0.0], np.cumsum((beta * s0 ** lam + alpha) * completion))
    )
    suffix_wlam = np.cumsum((w ** lam)[::-1])[::-1]
    suffix_max_w = np.maximum.accumulate(w[::-1])[::-1]
    aligned = np.arange(n, 0, -1, dtype=np.float64)  # n - i + 1 for i = 1..n

    lo = delta_bp
    hi = np.minimum(
        np.concatenate(([_INF], delta_bp[:-1])),
        horizon - suffix_max_w / core.s_up,
    )
    static = aligned * alpha + alpha_m
    extreme = horizon - (beta * (lam - 1.0) * suffix_wlam / static) ** (1.0 / lam)
    delta = np.minimum(np.maximum(extreme, lo), hi)
    busy = horizon - delta
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        energy = (
            static * busy
            + beta * suffix_wlam * busy ** (1.0 - lam)
            + prefix_fixed[:-1]
        )
    best: Optional[Tuple[float, float, int]] = None
    rows = zip((hi >= lo).tolist(), delta.tolist(), energy.tolist())
    for index, (feasible, delta_i, energy_i) in enumerate(rows):
        if not feasible:
            continue
        if best is None or energy_i < best[1] - 1e-12:
            best = (delta_i, energy_i, index + 1)
    if best is None:  # pragma: no cover - guarded by feasibility check
        raise RuntimeError("no feasible case found")
    delta_opt, energy_opt, case_idx = best

    busy_end_rel = horizon - delta_opt
    order = [tasks[int(k)] for k in perm.tolist()]
    finish: Dict[str, float] = {}
    speeds: Dict[str, float] = {}
    for task, c, s in zip(order, completion.tolist(), s0.tolist()):
        if c <= busy_end_rel + 1e-12:
            finish[task.name] = release + c
            speeds[task.name] = s
        else:
            finish[task.name] = release + busy_end_rel
            speeds[task.name] = task.workload / busy_end_rel
    return CommonReleaseSolution(
        tasks=tasks,
        release=release,
        interval_end=release + horizon,
        delta=delta_opt,
        case_index=case_idx,
        finish_times=finish,
        speeds=speeds,
        predicted_energy=energy_opt,
        alpha_zero=False,
    )


def solve_common_release(
    tasks: TaskSet,
    platform: Platform,
    *,
    method: Literal["scan", "binary"] = "scan",
) -> CommonReleaseSolution:
    """Dispatch to the ``alpha = 0`` or ``alpha != 0`` scheme."""
    if platform.core.alpha == 0.0:
        return solve_common_release_alpha_zero(tasks, platform, method=method)
    return solve_common_release_alpha_nonzero(tasks, platform)

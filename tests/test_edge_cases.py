"""Edge-case tests across modules: degenerate instances, boundary
parameters, and error paths the main suites do not reach.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core import (
    solve_agreeable,
    solve_block,
    solve_common_release,
    solve_common_release_with_overhead,
    solve_partitioned_common_release,
)
from repro.core.bounded import solve_bounded_common_deadline
from repro.energy import account
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import validate_schedule


def make_platform(alpha=0.0, alpha_m=10.0, s_up=1000.0, num_cores=None):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=s_up),
        MemoryModel(alpha_m=alpha_m),
        num_cores=num_cores,
    )


class TestSingleTaskInstances:
    @pytest.mark.parametrize("alpha", [0.0, 2.0])
    def test_single_task_all_schemes_agree(self, alpha):
        """One task: §4, §5 and the block solver must coincide."""
        platform = make_platform(alpha=alpha)
        ts = TaskSet([Task(0.0, 80.0, 3000.0, "only")])
        cr = solve_common_release(ts, platform)
        ag = solve_agreeable(ts, platform)
        bl = solve_block(ts, platform)
        assert cr.predicted_energy == pytest.approx(ag.predicted_energy, rel=1e-5)
        assert cr.predicted_energy == pytest.approx(bl.energy, rel=1e-5)

    def test_task_with_zero_slack(self):
        """A task whose filled speed equals s_up: only one schedule."""
        platform = make_platform(s_up=1000.0)
        ts = TaskSet([Task(0.0, 5.0, 5000.0, "tight")])
        sol = solve_common_release(ts, platform)
        assert sol.speeds["tight"] == pytest.approx(1000.0)
        assert sol.delta == pytest.approx(0.0, abs=1e-9)


class TestIdenticalTasks:
    def test_many_identical_tasks_share_one_alignment(self):
        platform = make_platform(alpha=2.0)
        ts = TaskSet([Task(0.0, 50.0, 1000.0, f"t{k}") for k in range(6)])
        sol = solve_common_release(ts, platform)
        speeds = set(round(s, 9) for s in sol.speeds.values())
        assert len(speeds) == 1  # symmetric tasks, symmetric solution

    def test_duplicate_deadline_breakpoints(self):
        """Repeated deadlines create zero-width cases; must not crash."""
        platform = make_platform()
        ts = TaskSet(
            [
                Task(0.0, 30.0, 500.0),
                Task(0.0, 30.0, 700.0),
                Task(0.0, 30.0, 900.0),
                Task(0.0, 60.0, 400.0),
                Task(0.0, 60.0, 100.0),
            ]
        )
        for method in ("scan", "binary"):
            sol = solve_common_release(ts, platform, method=method)
            validate_schedule(sol.schedule(), ts, max_speed=1000.0)


class TestExtremePlatforms:
    def test_zero_memory_power(self):
        """alpha_m = 0: Delta is irrelevant; everything stretches."""
        platform = make_platform(alpha=0.0, alpha_m=0.0)
        ts = TaskSet([Task(0.0, 50.0, 1000.0), Task(0.0, 100.0, 2000.0)])
        sol = solve_common_release(ts, platform)
        for task in ts:
            assert sol.speeds[task.name] == pytest.approx(
                task.filled_speed, rel=1e-6
            )

    def test_enormous_exponent(self):
        platform = Platform(
            CorePowerModel(beta=1e-9, lam=6.0, alpha=0.0, s_up=1000.0),
            MemoryModel(alpha_m=10.0),
        )
        ts = TaskSet([Task(0.0, 50.0, 1000.0), Task(0.0, 100.0, 2000.0)])
        sol = solve_common_release(ts, platform)
        bd = account(
            sol.schedule(), platform, horizon=(0.0, 100.0)
        )
        assert bd.total == pytest.approx(sol.predicted_energy, rel=1e-9)

    def test_near_unity_exponent(self):
        platform = Platform(
            CorePowerModel(beta=1e-4, lam=1.05, alpha=0.0, s_up=1000.0),
            MemoryModel(alpha_m=10.0),
        )
        ts = TaskSet([Task(0.0, 50.0, 1000.0)])
        sol = solve_common_release(ts, platform)
        assert math.isfinite(sol.predicted_energy)


class TestOverheadBoundaries:
    def test_overhead_break_even_exactly_at_gap(self):
        """xi_m exactly equal to the available gap: sleep and stay-awake
        tie; either answer must price identically."""
        platform = Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1000.0),
            MemoryModel(alpha_m=10.0, xi_m=50.0),
        )
        ts = TaskSet([Task(0.0, 100.0, 50000.0, "t")])  # busy >= 50ms
        sol = solve_common_release_with_overhead(ts, platform)
        assert math.isfinite(sol.predicted_energy)

    def test_zero_workload_horizon_edge(self):
        """Tiny workload, huge deadline: sleep dominates everything."""
        platform = Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=310.0, s_up=1900.0, xi=5.0),
            MemoryModel(alpha_m=4000.0, xi_m=40.0),
        )
        ts = TaskSet([Task(0.0, 10000.0, 1.0, "blip")])
        sol = solve_common_release_with_overhead(ts, platform)
        sched = sol.schedule()
        bd = account(sched, platform, horizon=(0.0, 10000.0))
        assert bd.total == pytest.approx(sol.predicted_energy, rel=1e-6)


class TestPartitionedVsExactBounded:
    def test_common_deadline_consistency(self):
        """On common-deadline inputs the partitioned heuristic's chains
        run at uniform speed, so it must match the Theorem 1 solver."""
        rng = random.Random(23)
        for _ in range(5):
            n = rng.randint(3, 8)
            ts = TaskSet(
                [Task(0.0, 60.0, rng.uniform(500.0, 4000.0), f"t{k}") for k in range(n)]
            )
            platform = make_platform(num_cores=2, alpha_m=50.0)
            exact = solve_bounded_common_deadline(ts, platform, method="exact")
            part = solve_partitioned_common_release(ts, platform, method="exact")
            assert part.predicted_energy == pytest.approx(
                exact.predicted_energy, rel=1e-3
            )


class TestValidationTolerance:
    def test_feasibility_tolerates_float_dust_at_sup(self):
        ts = TaskSet([Task(0.0, 1.0, 1000.0 * (1.0 + 5e-10), "edge")])
        assert ts.is_feasible_at(1000.0)

    def test_feasibility_rejects_real_violations(self):
        ts = TaskSet([Task(0.0, 1.0, 1001.0, "bad")])
        assert not ts.is_feasible_at(1000.0)

"""Race-to-idle baseline: run at full speed immediately, then sleep.

The opposite pole to MBKP's "stretch everything": every task executes at
``s_up`` the moment it is released, each on its own core, and both the
cores and the memory sleep whenever idle (break-even aware).  Useful in
examples and ablations to demonstrate the title's tension -- with a hungry
memory, racing wins; with frugal memory and hot cores, stretching wins;
SDEM's optimum sits in between.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.energy.accounting import SleepPolicy
from repro.models.platform import Platform
from repro.models.task import Task
from repro.schedule.timeline import ExecutionInterval
from repro.sim.cores import CoreAllocator

__all__ = ["RaceToIdlePolicy"]

_EPS = 1e-9


@dataclass
class _Run:
    name: str
    start: float
    end: float
    speed: float


class RaceToIdlePolicy:
    """Execute every task at a fixed speed (default ``s_up``) on release."""

    def __init__(
        self,
        platform: Platform,
        *,
        speed: Optional[float] = None,
        num_cores: Optional[int] = None,
    ):
        self.platform = platform
        self.speed = speed if speed is not None else platform.core.s_up
        if self.speed <= 0.0 or self.speed > platform.core.s_up:
            raise ValueError(f"speed must lie in (0, s_up], got {self.speed}")
        self.memory_policy = SleepPolicy.BREAK_EVEN
        self.core_policy = SleepPolicy.BREAK_EVEN
        self._allocator = CoreAllocator(
            num_cores if num_cores is not None else platform.num_cores
        )
        self._runs: List[_Run] = []

    def on_arrival(self, now: float, tasks: Sequence[Task]) -> None:
        for task in tasks:
            speed = self.speed
            duration = task.workload / speed
            if now + duration > task.deadline + _EPS:
                raise ValueError(
                    f"{task.name}: infeasible even at speed {speed}"
                )
            self._runs.append(_Run(task.name, now, now + duration, speed))

    def run_until(
        self, now: float, until: float
    ) -> List[Tuple[int, ExecutionInterval]]:
        out: List[Tuple[int, ExecutionInterval]] = []
        kept: List[_Run] = []
        for run in self._runs:
            start = max(run.start, now)
            end = min(run.end, until)
            if end > start + _EPS:
                core = self._allocator.acquire(run.name, run.start)
                out.append(
                    (core, ExecutionInterval(run.name, start, end, run.speed))
                )
            if run.end > until + _EPS:
                kept.append(run)
            else:
                self._allocator.release(run.name, at=run.end)
        self._runs = kept
        return out

"""System and task models for the SDEM problem (paper Section 3).

Units used throughout the library (see DESIGN.md Section 7):

* time: milliseconds (ms)
* speed: MHz -- with workloads expressed in kilocycles, ``duration_ms =
  workload_kc / speed_mhz`` holds exactly because 1 MHz = 1 kilocycle/ms
* workload: kilocycles (kc)
* power: milliwatts (mW)
* energy: microjoules (uJ = mW * ms)
"""

from repro.models.task import Task, TaskSet
from repro.models.power import CorePowerModel
from repro.models.memory import MemoryModel
from repro.models.platform import (
    Platform,
    arm_cortex_a57,
    dram_50nm,
    paper_platform,
)

__all__ = [
    "Task",
    "TaskSet",
    "CorePowerModel",
    "MemoryModel",
    "Platform",
    "arm_cortex_a57",
    "dram_50nm",
    "paper_platform",
]

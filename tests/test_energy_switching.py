"""Tests for the DVS frequency-switch overhead accounting."""

from __future__ import annotations

import pytest

from repro.energy import count_speed_switches, switching_energy
from repro.schedule import ExecutionInterval, Schedule


def iv(task, start, end, speed):
    return ExecutionInterval(task, start, end, speed)


class TestCountSwitches:
    def test_constant_speed_no_switches(self):
        sched = Schedule.from_assignments(
            [[iv("a", 0, 2, 100.0), iv("b", 2, 5, 100.0)]]
        )
        assert count_speed_switches(sched) == [0]

    def test_back_to_back_speed_change(self):
        sched = Schedule.from_assignments(
            [[iv("a", 0, 2, 100.0), iv("b", 2, 5, 200.0)]]
        )
        assert count_speed_switches(sched) == [1]

    def test_gap_same_speed_free_by_default(self):
        sched = Schedule.from_assignments(
            [[iv("a", 0, 2, 100.0), iv("b", 4, 6, 100.0)]]
        )
        assert count_speed_switches(sched) == [0]

    def test_gap_different_speed_counts_once(self):
        sched = Schedule.from_assignments(
            [[iv("a", 0, 2, 100.0), iv("b", 4, 6, 300.0)]]
        )
        assert count_speed_switches(sched) == [1]

    def test_idle_boundaries_pessimistic_mode(self):
        sched = Schedule.from_assignments(
            [[iv("a", 0, 2, 100.0), iv("b", 4, 6, 100.0)]]
        )
        assert count_speed_switches(sched, count_idle_boundaries=True) == [2]

    def test_per_core_counts(self):
        sched = Schedule.from_assignments(
            [
                [iv("a", 0, 1, 100.0), iv("b", 1, 2, 150.0), iv("c", 2, 3, 100.0)],
                [iv("d", 0, 5, 800.0)],
            ]
        )
        assert count_speed_switches(sched) == [2, 0]


class TestSwitchingEnergy:
    def test_total_energy(self):
        sched = Schedule.from_assignments(
            [[iv("a", 0, 1, 100.0), iv("b", 1, 2, 150.0)]]
        )
        report = switching_energy(sched, 25.0)
        assert report.total_switches == 1
        assert report.total_energy == pytest.approx(25.0)

    def test_rejects_negative_cost(self):
        sched = Schedule.from_assignments([[iv("a", 0, 1, 100.0)]])
        with pytest.raises(ValueError):
            switching_energy(sched, -1.0)

    def test_offline_scheme_switches_rarely(self):
        """The paper's claim: non-preemptive offline schemes keep each
        task at one speed, so switches are at most one per task."""
        from repro.core import solve_common_release
        from repro.models import Task, TaskSet, paper_platform

        platform = paper_platform(xi=0.0, xi_m=0.0)
        tasks = TaskSet(
            [Task(0.0, 40.0, 8000.0), Task(0.0, 70.0, 15000.0), Task(0.0, 100.0, 4000.0)]
        )
        sched = solve_common_release(tasks, platform).schedule()
        # One task per core, one interval each: zero switches anywhere.
        assert sum(count_speed_switches(sched)) == 0

    def test_saving_survives_switch_overhead(self):
        """SDEM-ON's win over MBKP survives charging every speed switch."""
        from repro.baselines import mbkp
        from repro.core import SdemOnlinePolicy
        from repro.models import paper_platform
        from repro.sim import simulate
        from repro.workloads import synthetic_tasks

        platform = paper_platform()
        trace = synthetic_tasks(n=30, max_interarrival=300.0, seed=2)
        horizon = (min(t.release for t in trace), max(t.deadline for t in trace))
        on = simulate(SdemOnlinePolicy(platform), trace, platform, horizon=horizon)
        kp = simulate(mbkp(platform), trace, platform, horizon=horizon)
        per_switch = 100.0  # a generous 100 uJ per re-leveling
        on_total = on.total_energy + switching_energy(
            on.schedule, per_switch
        ).total_energy
        kp_total = kp.total_energy + switching_energy(
            kp.schedule, per_switch
        ).total_energy
        assert on_total < kp_total

"""Shared experiment plumbing: run the three policies, aggregate, render.

Every Section 8 exhibit reduces to the same inner loop -- simulate a trace
under SDEM-ON, MBKPS and MBKP over an identical horizon, average savings
across seeds -- so it lives here once.

The loop is decomposed into *work units*: one unit = one seed of one
parameter point, priced under all three policies (:func:`simulate_unit`).
Units are embarrassingly parallel; the engine in
:mod:`repro.experiments.parallel` fans them across worker processes and
:func:`reduce_units` folds them back **in seed order**, so serial,
parallel and warm-cache runs produce bit-identical
:class:`ComparisonPoint` aggregates (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import mbkp, mbkps
from repro.core.online import SdemOnlinePolicy
from repro.energy.accounting import SleepPolicy, account_segments
from repro.models.platform import Platform
from repro.models.task import Task
from repro.schedule.validation import validate_segments
from repro.sim.engine import prepare_trace, simulate_segments
from repro.utils.solvers import solver_call_total, solver_seconds_total

__all__ = [
    "POLICY_ORDER",
    "ComparisonPoint",
    "SeriesResult",
    "UnitResult",
    "compare_policies",
    "reduce_units",
    "simulate_unit",
    "write_csv",
    "render_ascii_chart",
]

#: Fixed policy evaluation/aggregation order; cache entries and
#: :class:`UnitResult` tuples index into it.
POLICY_ORDER: Tuple[str, str, str] = ("sdem", "mbkps", "mbkp")


def _build_policy(name: str, platform: Platform):
    if name == "sdem":
        return SdemOnlinePolicy(platform)
    if name == "mbkps":
        return mbkps(platform)
    if name == "mbkp":
        return mbkp(platform)
    raise ValueError(f"unknown policy {name!r}")


@dataclass(frozen=True)
class ComparisonPoint:
    """Averaged three-way comparison at one parameter point.

    Savings are relative to MBKP, as in Figures 6-7:
    ``saving = (1 - E_algo / E_mbkp) * 100`` (percent).
    ``sdem_saving_samples`` carries the per-seed system savings so reports
    can state the spread (the paper reports means only).

    ``wall_ms``/``solver_ms``/``solver_calls``/``cached_units`` are engine
    telemetry summed over the point's work units; they are *not* part of
    the CSV rows by default so that serial, parallel and warm-cache runs
    stay byte-identical.
    """

    label: str
    sdem_total: float
    mbkps_total: float
    mbkp_total: float
    sdem_memory: float
    mbkps_memory: float
    mbkp_memory: float
    sdem_saving_samples: Tuple[float, ...] = ()
    wall_ms: float = 0.0
    solver_ms: float = 0.0
    solver_calls: int = 0
    cached_units: int = 0

    @property
    def sdem_system_saving(self) -> float:
        return (1.0 - self.sdem_total / self.mbkp_total) * 100.0

    @property
    def mbkps_system_saving(self) -> float:
        return (1.0 - self.mbkps_total / self.mbkp_total) * 100.0

    @property
    def sdem_memory_saving(self) -> float:
        return (1.0 - self.sdem_memory / self.mbkp_memory) * 100.0

    @property
    def mbkps_memory_saving(self) -> float:
        return (1.0 - self.mbkps_memory / self.mbkp_memory) * 100.0

    @property
    def sdem_vs_mbkps_improvement(self) -> float:
        """The paper's headline metric: SDEM-ON's saving over MBKPS."""
        return (1.0 - self.sdem_total / self.mbkps_total) * 100.0

    def saving_spread(self):
        """Per-seed spread of SDEM-ON's saving vs MBKP (95% CI helper).

        Returns a :class:`repro.analysis.stats.SampleStats` or ``None``
        when per-seed samples were not recorded.
        """
        if not self.sdem_saving_samples:
            return None
        from repro.analysis.stats import summarize

        return summarize(self.sdem_saving_samples)


@dataclass
class SeriesResult:
    """One exhibit's worth of comparison points."""

    name: str
    points: List[ComparisonPoint] = field(default_factory=list)

    def rows(self, *, include_timing: bool = False) -> List[Dict[str, float | str]]:
        """Tabular rows, one per point.

        ``include_timing`` appends the engine telemetry columns
        (wall-clock, solver calls, cached units).  They are off by default
        because they vary run to run while every other column is
        deterministic across serial/parallel/warm-cache executions.
        """
        out: List[Dict[str, float | str]] = []
        for p in self.points:
            row: Dict[str, float | str] = {
                "point": p.label,
                "sdem_system_saving_pct": round(p.sdem_system_saving, 3),
                "mbkps_system_saving_pct": round(p.mbkps_system_saving, 3),
                "sdem_memory_saving_pct": round(p.sdem_memory_saving, 3),
                "mbkps_memory_saving_pct": round(p.mbkps_memory_saving, 3),
                "sdem_vs_mbkps_pct": round(p.sdem_vs_mbkps_improvement, 3),
                "sdem_total_uj": round(p.sdem_total, 1),
                "mbkps_total_uj": round(p.mbkps_total, 1),
                "mbkp_total_uj": round(p.mbkp_total, 1),
            }
            spread = p.saving_spread()
            row["sdem_saving_ci95_pct"] = (
                round(spread.ci95_halfwidth, 3) if spread is not None else ""
            )
            if include_timing:
                row["wall_ms"] = round(p.wall_ms, 1)
                row["solver_ms"] = round(p.solver_ms, 1)
                row["solver_calls"] = p.solver_calls
                row["cached_units"] = p.cached_units
            out.append(row)
        return out

    def mean_improvement(self) -> float:
        """Average SDEM-ON vs MBKPS system-energy improvement (percent)."""
        if not self.points:
            return 0.0
        return sum(p.sdem_vs_mbkps_improvement for p in self.points) / len(
            self.points
        )

    def total_wall_ms(self) -> float:
        """Summed per-unit wall-clock across every point (telemetry)."""
        return sum(p.wall_ms for p in self.points)

    def total_solver_ms(self) -> float:
        """Summed wall-clock spent inside solver entry points (telemetry).

        Accumulated per unit around the online replan's solve calls, so it
        survives process-pool boundaries; ``repro bench`` reports the
        solver / engine / other wall split from this.
        """
        return sum(p.solver_ms for p in self.points)


# ---------------------------------------------------------------------------
# Work units
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UnitResult:
    """One seed of one parameter point, priced under all three policies.

    ``totals``/``memory`` are indexed by :data:`POLICY_ORDER`.  The tuple
    form keeps units picklable and compact for the process pool.
    """

    seed: int
    totals: Tuple[float, float, float]
    memory: Tuple[float, float, float]
    wall_ms: float = 0.0
    solver_ms: float = 0.0
    solver_calls: int = 0
    from_cache: bool = False


def simulate_unit(
    trace_factory: Callable[[int], Sequence[Task]],
    platform: Platform,
    seed: int,
    *,
    label: str = "",
    horizon: Optional[Tuple[float, float]] = None,
) -> UnitResult:
    """Simulate one seed under every policy over an identical horizon.

    ``trace_factory(seed)`` must return a fresh, non-empty trace; all
    three policies see the *same* trace and horizon.  ``horizon``
    overrides the default ``[min release, max deadline]`` window (a
    single-task trace degenerates to that task's own feasible region,
    which is still a valid window).

    This is the experiment fast path: each policy is driven once via
    :func:`repro.sim.engine.simulate_segments` and priced straight off its
    raw segment table -- no per-policy
    :class:`~repro.schedule.timeline.Schedule` is materialized.  Because
    MBKP and MBKPS emit the *same* schedule (they differ only in how idle
    memory is priced -- see :mod:`repro.baselines.mbkp`), the baseline is
    simulated once and priced under both memory policies over one shared
    segment table.
    """
    trace = list(trace_factory(seed))
    if not trace:
        where = f" at point {label!r}" if label else ""
        raise ValueError(
            f"trace_factory(seed={seed}) returned an empty trace{where}: "
            "compare_policies needs at least one task per seed to define "
            "a comparison horizon; pass an explicit horizon=(start, end) "
            "or fix the generator"
        )
    if horizon is None:
        horizon = (
            min(t.release for t in trace),
            max(t.deadline for t in trace),
        )
    start = time.perf_counter()
    calls_before = solver_call_total()
    seconds_before = solver_seconds_total()
    max_speed = platform.core.s_up
    prepared = prepare_trace(trace, horizon)

    sdem_run = simulate_segments(SdemOnlinePolicy(platform), prepared=prepared)
    validate_segments(sdem_run.segments, sdem_run.task_set, max_speed=max_speed)
    (sdem,) = account_segments(
        sdem_run.segments,
        platform,
        horizon=horizon,
        memory_policies=(SleepPolicy.BREAK_EVEN,),
        core_policy=SleepPolicy.BREAK_EVEN,
    )

    baseline_run = simulate_segments(mbkps(platform), prepared=prepared)
    validate_segments(
        baseline_run.segments, baseline_run.task_set, max_speed=max_speed
    )
    priced_mbkps, priced_mbkp = account_segments(
        baseline_run.segments,
        platform,
        horizon=horizon,
        memory_policies=(SleepPolicy.ALWAYS, SleepPolicy.NEVER),
        core_policy=SleepPolicy.BREAK_EVEN,
    )

    return UnitResult(
        seed=seed,
        totals=(sdem.total, priced_mbkps.total, priced_mbkp.total),
        memory=(
            sdem.memory_total,
            priced_mbkps.memory_total,
            priced_mbkp.memory_total,
        ),
        wall_ms=(time.perf_counter() - start) * 1000.0,
        solver_ms=(solver_seconds_total() - seconds_before) * 1000.0,
        solver_calls=solver_call_total() - calls_before,
    )


def reduce_units(label: str, units: Sequence[UnitResult]) -> ComparisonPoint:
    """Fold per-seed units into one averaged point, **in seed order**.

    The accumulation order is fixed so the floating-point sums -- and
    therefore every derived percentage -- are bit-identical no matter
    which engine (serial loop, process pool, warm cache) produced the
    units.
    """
    if not units:
        raise ValueError(f"point {label!r} has no work units to reduce")
    ordered = sorted(units, key=lambda u: u.seed)
    sums = [0.0, 0.0, 0.0]
    mems = [0.0, 0.0, 0.0]
    saving_samples: List[float] = []
    for unit in ordered:
        for index in range(3):
            sums[index] += unit.totals[index]
            mems[index] += unit.memory[index]
        saving_samples.append((1.0 - unit.totals[0] / unit.totals[2]) * 100.0)
    seeds = len(ordered)
    return ComparisonPoint(
        label=label,
        sdem_total=sums[0] / seeds,
        mbkps_total=sums[1] / seeds,
        mbkp_total=sums[2] / seeds,
        sdem_memory=mems[0] / seeds,
        mbkps_memory=mems[1] / seeds,
        mbkp_memory=mems[2] / seeds,
        sdem_saving_samples=tuple(saving_samples),
        wall_ms=sum(u.wall_ms for u in ordered),
        solver_ms=sum(u.solver_ms for u in ordered),
        solver_calls=sum(u.solver_calls for u in ordered),
        cached_units=sum(1 for u in ordered if u.from_cache),
    )


def compare_policies(
    label: str,
    trace_factory: Callable[[int], Sequence[Task]],
    platform: Platform,
    *,
    seeds: int,
    max_workers: Optional[int] = 1,
    cache=None,
    horizon: Optional[Tuple[float, float]] = None,
) -> ComparisonPoint:
    """Average SDEM-ON / MBKPS / MBKP over ``seeds`` traces.

    ``trace_factory(seed)`` must return a fresh trace; all three policies
    see the *same* trace and horizon per seed.

    ``max_workers=1`` (the default) runs the in-process serial loop;
    ``None`` uses every core and ``N`` caps the process pool
    (:mod:`repro.experiments.parallel`).  ``cache`` is an optional
    :class:`repro.experiments.cache.ResultCache`; cached cells skip
    simulation entirely.  Results are identical in all configurations.
    """
    if max_workers == 1 and cache is None:
        units = [
            simulate_unit(trace_factory, platform, seed, label=label, horizon=horizon)
            for seed in range(seeds)
        ]
        return reduce_units(label, units)
    from repro.experiments.parallel import PointSpec, run_series

    series = run_series(
        label,
        [PointSpec(label=label, trace_factory=trace_factory, platform=platform)],
        seeds=seeds,
        max_workers=max_workers,
        cache=cache,
        horizon=horizon,
    )
    return series.points[0]


def write_csv(series: SeriesResult, path: str) -> None:
    """Write an exhibit's rows to a CSV file."""
    rows = series.rows()
    if not rows:
        raise ValueError(f"series {series.name!r} has no points")
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def render_ascii_chart(
    title: str,
    points: Sequence[Tuple[str, Dict[str, float]]],
    *,
    width: int = 50,
) -> str:
    """Render grouped horizontal bars (one group per x-axis point).

    ``points`` is ``[(label, {series: value}), ...]``; values are percent
    savings, clamped at 0 for display.  When every value is (numerically)
    zero or negative there is nothing to scale the bars against, so the
    rows state that explicitly instead of normalizing against a floor and
    drawing misleading full-width bars.
    """
    out = io.StringIO()
    out.write(f"{title}\n")
    all_values = [v for _, series in points for v in series.values()]
    top = max(all_values, default=0.0)
    if top <= 1e-9:
        for label, series in points:
            out.write(f"  {label}\n")
            for name, value in series.items():
                out.write(
                    f"    {name:<10s} |{' ' * width}| "
                    f"{value:7.2f}% (all values ~0)\n"
                )
        return out.getvalue()
    for label, series in points:
        out.write(f"  {label}\n")
        for name, value in series.items():
            filled = int(round(max(value, 0.0) / top * width))
            out.write(
                f"    {name:<10s} |{'#' * filled}{' ' * (width - filled)}| "
                f"{value:7.2f}%\n"
            )
    return out.getvalue()

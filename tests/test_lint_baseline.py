"""Baseline round-trip: write, suppress, go stale, reject corruption."""

from __future__ import annotations

import json

import pytest

from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.lint.runner import run_check
from tests.lint_helpers import run_lint, write_tree

VIOLATION = """
    import time

    def stamp():
        return time.time()
"""

CLEAN = """
    import time

    def measure():
        return time.monotonic()
"""


def test_missing_baseline_is_empty(tmp_path):
    baseline = load_baseline(str(tmp_path / "nope.json"))
    assert baseline.entries == {}


def test_round_trip_suppresses_existing_findings(tmp_path):
    findings = run_lint(
        str(tmp_path), {"src/repro/m.py": VIOLATION}, rules=["DET001"]
    )
    assert len(findings) == 1
    baseline_path = str(tmp_path / "baseline.json")
    assert write_baseline(baseline_path, findings) == 1

    report = run_check(
        [str(tmp_path / "src")],
        cwd=str(tmp_path),
        rules=["DET001"],
        baseline_path=baseline_path,
    )
    assert report.findings == []
    assert len(report.suppressed) == 1
    assert report.stale_entries == []
    assert report.exit_code == 0


def test_new_violation_still_fails_with_baseline(tmp_path):
    findings = run_lint(
        str(tmp_path), {"src/repro/m.py": VIOLATION}, rules=["DET001"]
    )
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(baseline_path, findings)

    # A second, different violation appears after the baseline was cut.
    write_tree(
        str(tmp_path),
        {"src/repro/fresh.py": "import time\nNOW = time.time()\n"},
    )
    report = run_check(
        [str(tmp_path / "src")],
        cwd=str(tmp_path),
        rules=["DET001"],
        baseline_path=baseline_path,
    )
    assert [f.path for f in report.findings] == ["src/repro/fresh.py"]
    assert report.exit_code == 1


def test_fixed_finding_reported_stale(tmp_path):
    findings = run_lint(
        str(tmp_path), {"src/repro/m.py": VIOLATION}, rules=["DET001"]
    )
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(baseline_path, findings)

    write_tree(str(tmp_path), {"src/repro/m.py": CLEAN})  # fix it
    report = run_check(
        [str(tmp_path / "src")],
        cwd=str(tmp_path),
        rules=["DET001"],
        baseline_path=baseline_path,
    )
    assert report.findings == []
    assert len(report.stale_entries) == 1
    assert report.exit_code == 0


def test_write_baseline_via_runner_then_clean(tmp_path):
    write_tree(str(tmp_path), {"src/repro/m.py": VIOLATION})
    baseline_path = str(tmp_path / "baseline.json")
    wrote = run_check(
        [str(tmp_path / "src")],
        cwd=str(tmp_path),
        rules=["DET001"],
        baseline_path=baseline_path,
        update_baseline=True,
    )
    assert wrote.baseline_written == 1
    assert wrote.exit_code == 0

    rerun = run_check(
        [str(tmp_path / "src")],
        cwd=str(tmp_path),
        rules=["DET001"],
        baseline_path=baseline_path,
    )
    assert rerun.exit_code == 0


def test_baseline_file_is_reviewable_json(tmp_path):
    findings = run_lint(
        str(tmp_path), {"src/repro/m.py": VIOLATION}, rules=["DET001"]
    )
    baseline_path = tmp_path / "baseline.json"
    write_baseline(str(baseline_path), findings)
    payload = json.loads(baseline_path.read_text())
    assert payload["schema"] == 1
    assert payload["tool"] == "repro-lint"
    entry = payload["entries"][0]
    assert set(entry) == {"fingerprint", "rule", "path", "message"}


def test_corrupt_baseline_raises(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    with pytest.raises(BaselineError, match="cannot read"):
        load_baseline(str(bad))


def test_foreign_json_rejected(tmp_path):
    alien = tmp_path / "baseline.json"
    alien.write_text(json.dumps({"something": "else"}))
    with pytest.raises(BaselineError, match="tool marker"):
        load_baseline(str(alien))


def test_schema_mismatch_rejected(tmp_path):
    future = tmp_path / "baseline.json"
    future.write_text(json.dumps({"tool": "repro-lint", "schema": 99, "entries": []}))
    with pytest.raises(BaselineError, match="schema"):
        load_baseline(str(future))

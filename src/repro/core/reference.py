"""Slow reference optimizers used to certify the fast schemes.

These deliberately avoid the paper's case analysis.  They express the SDEM
objective directly as a function of the free variables (the memory sleep
length ``Delta`` for Section 4; the block busy interval ``[s', e']`` for
Section 5 subsets; the block partition for the Section 5 DP) and minimize
it by dense grid search plus local golden-section refinement.  On small
instances they find the global optimum to high accuracy, which lets the
test suite assert the optimality claims of Theorems 2-4 empirically.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.models.platform import Platform
from repro.models.task import Task, TaskSet
from repro.utils.solvers import golden_section_minimize

__all__ = [
    "common_release_energy_at_delta",
    "reference_common_release",
    "block_energy_alpha_zero",
    "block_energy_alpha_nonzero",
    "reference_block",
    "reference_agreeable",
]


# ---------------------------------------------------------------------------
# Section 4 reference: energy as a direct function of Delta
# ---------------------------------------------------------------------------


def common_release_energy_at_delta(
    tasks: TaskSet, platform: Platform, delta: float
) -> float:
    """Total energy of the best schedule with memory sleep length ``delta``.

    Given ``Delta``, each task's best response is independent:

    * ``alpha = 0``: finish at ``min(d_i, |I| - Delta)`` (slower is always
      cheaper, but the core must be idle during the common sleep window);
    * ``alpha != 0``: finish at ``min(c_i, |I| - Delta)`` where ``c_i`` is
      the critical-speed completion -- running slower than ``s_0`` never
      helps once the core can sleep for free.

    Returns ``inf`` when ``delta`` would force some task above ``s_up``.
    """
    core = platform.core
    release = tasks[0].release
    if core.alpha == 0.0:
        horizon = tasks.latest_deadline - release
        natural_end = [t.deadline - release for t in tasks]
    else:
        natural_end = [t.workload / core.s0(t) for t in tasks]
        horizon = max(natural_end)
    busy_end = horizon - delta
    if busy_end <= 0.0:
        return math.inf
    total = platform.memory.alpha_m * busy_end
    for task, natural in zip(tasks, natural_end):
        end = min(natural, busy_end)
        speed = task.workload / end
        if speed > core.s_up * (1.0 + 1e-9):
            return math.inf
        total += core.execution_energy(task.workload, speed)
    return total


def _grid_refine_minimize(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    grid: int = 4000,
) -> Tuple[float, float]:
    """Dense grid search + golden refinement of a 1-D function."""
    best_x, best_v = lo, func(lo)
    step = (hi - lo) / grid
    xs = [lo + k * step for k in range(grid + 1)]
    vals = [func(x) for x in xs]
    for x, v in zip(xs, vals):
        if v < best_v:
            best_x, best_v = x, v
    window_lo = max(lo, best_x - 2.0 * step)
    window_hi = min(hi, best_x + 2.0 * step)
    x_ref, v_ref = golden_section_minimize(func, window_lo, window_hi)
    if v_ref < best_v:
        return x_ref, v_ref
    return best_x, best_v


def reference_common_release(
    tasks: TaskSet, platform: Platform, *, grid: int = 4000
) -> Tuple[float, float]:
    """Globally minimize the Section 4 objective over ``Delta`` numerically.

    Returns ``(delta*, energy*)``.
    """
    core = platform.core
    release = tasks[0].release
    if core.alpha == 0.0:
        horizon = tasks.latest_deadline - release
    else:
        horizon = max(t.workload / core.s0(t) for t in tasks)
    hi = horizon - max(t.workload for t in tasks) / core.s_up
    func = lambda d: common_release_energy_at_delta(tasks, platform, d)
    return _grid_refine_minimize(func, 0.0, max(hi, 0.0), grid=grid)


# ---------------------------------------------------------------------------
# Section 5 reference: block energy as a function of [s', e']
# ---------------------------------------------------------------------------


def block_energy_alpha_zero(
    tasks: TaskSet, platform: Platform, start: float, end: float
) -> float:
    """Energy of one block occupying exactly ``[start, end]``, ``alpha = 0``.

    Every task is stretched over its whole available window
    ``[max(r, start), min(d, end)]`` (with no static power, slower is
    always better).  The memory stays awake for the whole block.  Returns
    ``inf`` when infeasible (empty window or overspeed).
    """
    if end <= start:
        return math.inf
    core = platform.core
    total = platform.memory.alpha_m * (end - start)
    for task in tasks:
        lo = max(task.release, start)
        hi = min(task.deadline, end)
        window = hi - lo
        if window <= 0.0:
            return math.inf
        speed = task.workload / window
        if speed > core.s_up * (1.0 + 1e-9):
            return math.inf
        total += core.execution_energy(task.workload, speed)
    return total


def block_energy_alpha_nonzero(
    tasks: TaskSet, platform: Platform, start: float, end: float
) -> float:
    """Energy of one block occupying ``[start, end]``, ``alpha != 0``.

    Each task independently picks its cheapest duration inside its window
    ``[max(r, start), min(d, end)]``: the critical-speed duration
    ``w / s_0`` clamped to the window (the energy is convex in the
    duration, so clamping is exact).  The memory stays awake for the whole
    block; each core sleeps (for free, ``xi = 0``) outside its execution.
    """
    if end <= start:
        return math.inf
    core = platform.core
    total = platform.memory.alpha_m * (end - start)
    for task in tasks:
        lo = max(task.release, start)
        hi = min(task.deadline, end)
        window = hi - lo
        if window <= 0.0:
            return math.inf
        min_duration = task.workload / core.s_up
        if min_duration > window * (1.0 + 1e-9):
            return math.inf
        s0 = core.s0(task)
        duration = min(max(task.workload / s0, min_duration), window)
        total += core.execution_energy(task.workload, task.workload / duration)
    return total


def reference_block(
    tasks: TaskSet,
    platform: Platform,
    *,
    grid: int = 160,
) -> Tuple[float, float, float]:
    """Globally minimize one block's energy over ``(s', e')`` numerically.

    Returns ``(start*, end*, energy*)``.  Grid search over the 2-D
    rectangle ``[r_1, d_1] x [r_n, d_n]`` with local coordinate-descent
    refinement.  Exponential in nothing but slow; use small instances.
    """
    core = platform.core
    energy_fn = (
        block_energy_alpha_zero if core.alpha == 0.0 else block_energy_alpha_nonzero
    )
    first, last = tasks[0], tasks[-1]
    s_lo, s_hi = tasks.earliest_release, first.deadline
    e_lo, e_hi = last.release, tasks.latest_deadline
    best = (s_lo, e_hi, energy_fn(tasks, platform, s_lo, e_hi))
    for i in range(grid + 1):
        start = s_lo + (s_hi - s_lo) * i / grid
        for j in range(grid + 1):
            end = e_lo + (e_hi - e_lo) * j / grid
            value = energy_fn(tasks, platform, start, end)
            if value < best[2]:
                best = (start, end, value)
    # Local refinement via alternating golden-section sweeps.
    start, end, value = best
    for _ in range(12):
        step_s = (s_hi - s_lo) / grid
        step_e = (e_hi - e_lo) / grid
        start, _ = golden_section_minimize(
            lambda s: energy_fn(tasks, platform, s, end),
            max(s_lo, start - step_s),
            min(s_hi, start + step_s),
        )
        end, new_value = golden_section_minimize(
            lambda e: energy_fn(tasks, platform, start, e),
            max(e_lo, end - step_e),
            min(e_hi, end + step_e),
        )
        if value - new_value <= 1e-10:
            value = min(value, new_value)
            break
        value = new_value
    return start, end, value


# ---------------------------------------------------------------------------
# Section 5 reference: exhaustive block partition
# ---------------------------------------------------------------------------


def reference_agreeable(
    tasks: TaskSet,
    platform: Platform,
    *,
    grid: int = 120,
    block_overhead: float = 0.0,
) -> float:
    """Exhaustively optimal agreeable-deadline energy on small instances.

    Enumerates every partition of the deadline order into consecutive
    blocks (Lemma 4 justifies consecutiveness), prices each block with
    :func:`reference_block`, and returns the best total.  ``block_overhead``
    adds a constant per block (the Section 7 ``alpha_m * xi_m`` term).
    """
    n = len(tasks)
    block_cost: dict[Tuple[int, int], float] = {}
    for p in range(n):
        for q in range(p + 1, n + 1):
            subset = tasks.subset(p, q)
            _, _, value = reference_block(subset, platform, grid=grid)
            block_cost[(p, q)] = value
    best = [math.inf] * (n + 1)
    best[0] = 0.0
    for q in range(1, n + 1):
        for p in range(q):
            candidate = best[p] + block_cost[(p, q)] + block_overhead
            if candidate < best[q]:
                best[q] = candidate
    return best[n]

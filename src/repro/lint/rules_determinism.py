"""Determinism rules (DET0xx): bit-reproducibility of results and keys.

The experiment engine's core contract (PR 1-2) is that reruns are
byte-identical: cache keys are content hashes over canonical JSON, result
rows reduce in seed order, and the scalar/numpy backends agree.  Every
rule here targets a way that contract has broken (or nearly broken) in
practice:

* ``DET001`` -- wall-clock reads (``time.time``/``datetime.now``) leak
  non-reproducible values into whatever consumes them;
* ``DET002`` -- module-level ``random.*`` draws from hidden global state
  instead of an explicit seeded ``random.Random``;
* ``DET003`` -- hashing JSON without ``sort_keys=True`` keys the cache on
  dict insertion order;
* ``DET004`` -- iterating a ``set`` feeds arbitrary ordering into rows,
  CSV output or key material;
* ``DET005`` -- ``==`` between computed floats in solver code, where the
  scalar and numpy backends agree to 1e-9 but not to the last ulp.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import (
    Finding,
    Project,
    Rule,
    SourceModule,
    dotted_call_name,
    register,
)

__all__ = [
    "WallClockRule",
    "UnseededRandomRule",
    "UnsortedKeyJsonRule",
    "SetIterationRule",
    "FloatEqualityRule",
]

@register
class WallClockRule(Rule):
    id = "DET001"
    family = "determinism"
    description = (
        "wall-clock read (time.time/datetime.now/...) in library code; "
        "results must not depend on when they were computed"
    )
    hint = (
        "use time.monotonic()/time.perf_counter() for intervals; if a "
        "timestamp must appear in output, pass it in explicitly or add a "
        "'# repro-lint: allow[DET001] <reason>' pragma"
    )
    include_tests = True

    _BANNED = {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_call_name(node.func, module.aliases)
            if name in self._BANNED:
                yield self.finding(
                    module, node, f"wall-clock call {name}() is not reproducible"
                )


@register
class UnseededRandomRule(Rule):
    id = "DET002"
    family = "determinism"
    description = (
        "module-level random.* call draws from hidden global state; "
        "randomness must flow through an explicit seeded random.Random"
    )
    hint = (
        "construct rng = random.Random(seed) at the boundary and thread "
        "it through (see repro.workloads for the pattern)"
    )
    include_tests = True

    _ALLOWED = {"random.Random"}

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_call_name(node.func, module.aliases)
            if name is None or name in self._ALLOWED:
                continue
            if name == "random" or not name.startswith("random."):
                continue
            # Only the module's own helpers: random.Random instances are
            # usually locals whose dotted name does not begin with
            # "random.", so anything left here is the global-state API.
            yield self.finding(
                module,
                node,
                f"{name}() uses the process-global RNG (unseeded between runs)",
            )


@register
class UnsortedKeyJsonRule(Rule):
    id = "DET003"
    family = "determinism"
    description = (
        "json.dumps without sort_keys=True in a function that hashes: "
        "cache keys must use canonical JSON"
    )
    hint = "pass sort_keys=True (and separators=(',', ':')) before hashing"
    include_tests = True

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            dumps: list[ast.Call] = []
            hashes = False
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_call_name(node.func, module.aliases)
                if name is None:
                    continue
                if name.startswith("hashlib."):
                    hashes = True
                elif name == "json.dumps" and not self._sorted_keys(node):
                    dumps.append(node)
            if not hashes:
                continue
            for node in dumps:
                yield self.finding(
                    module,
                    node,
                    "json.dumps without sort_keys=True in a hashing function; "
                    "the digest depends on dict insertion order",
                )

    @staticmethod
    def _sorted_keys(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "sort_keys":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is True
            if keyword.arg is None:
                return True  # **kwargs: cannot prove, do not flag
        return False


@register
class SetIterationRule(Rule):
    id = "DET004"
    family = "determinism"
    description = (
        "iteration over a set: ordering is arbitrary and varies with "
        "PYTHONHASHSEED, so any derived sequence is not reproducible"
    )
    hint = "wrap in sorted(...) or iterate the original ordered source"
    include_tests = True

    #: Builtins whose output order mirrors iteration order.
    _ORDER_SINKS = {"list", "tuple", "enumerate", "iter"}

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter):
                    yield self._flag(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if self._is_set_expr(generator.iter):
                        yield self._flag(module, generator.iter)
            elif isinstance(node, ast.Call):
                name = dotted_call_name(node.func, module.aliases)
                if name in self._ORDER_SINKS and node.args:
                    if self._is_set_expr(node.args[0]):
                        yield self._flag(module, node.args[0])
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and self._is_set_expr(node.args[0])
                ):
                    yield self._flag(module, node.args[0])

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _flag(self, module: SourceModule, node: ast.AST) -> Finding:
        return self.finding(
            module, node, "iteration over a set has arbitrary order"
        )


@register
class FloatEqualityRule(Rule):
    id = "DET005"
    family = "determinism"
    description = (
        "float equality against a computed value in solver code; the "
        "scalar and numpy backends agree to 1e-9, not to the last ulp"
    )
    hint = (
        "compare with an explicit tolerance (abs(a - b) <= tol or "
        "math.isclose); exact compares are only safe against a stored "
        "sentinel such as 0.0"
    )
    packages = ("repro.core", "repro.utils", "repro.energy")
    include_tests = False

    #: Exact comparison against these literals is the sanctioned
    #: "parameter explicitly disabled / untouched default" idiom.
    _SENTINELS = (0.0, 1.0, -1.0)

    _ARITH = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.Mod, ast.FloorDiv)

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for side in [node.left] + list(node.comparators):
                reason = self._computed_float(side)
                if reason:
                    yield self.finding(
                        module,
                        node,
                        f"exact float comparison against {reason}",
                    )
                    break

    def _computed_float(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._ARITH):
            return "an arithmetic expression"
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            if node.value not in self._SENTINELS:
                return f"the float literal {node.value!r}"
        if isinstance(node, ast.UnaryOp):
            return self._computed_float(node.operand)
        return None

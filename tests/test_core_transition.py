"""Tests for the Section 7 transition-overhead-aware scheme (Theorem 5)."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    overhead_energy_at_delta,
    solve_common_release,
    solve_common_release_with_overhead,
)
from repro.energy import SleepPolicy, account
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import validate_schedule
from repro.utils.solvers import golden_section_minimize


def make_platform(alpha=2.0, alpha_m=10.0, xi=0.0, xi_m=0.0):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=1000.0, xi=xi),
        MemoryModel(alpha_m=alpha_m, xi_m=xi_m),
    )


def random_tasks(rng: random.Random, n: int) -> TaskSet:
    return TaskSet(
        Task(0.0, rng.uniform(10.0, 120.0), rng.uniform(100.0, 5000.0))
        for _ in range(n)
    )


def reference_min(tasks, platform, grid=6000):
    """Dense scan of the overhead-aware energy over Delta."""
    core = platform.core
    if core.alpha == 0.0:
        horizon = tasks.latest_deadline - tasks[0].release
    else:
        outer = tasks.latest_deadline - tasks[0].release
        horizon = max(t.workload / core.s_c(t, outer) for t in tasks)
    best = float("inf")
    for k in range(grid + 1):
        delta = horizon * k / (grid + 1)
        best = min(best, overhead_energy_at_delta(tasks, platform, delta))
    return best


class TestZeroOverheadConsistency:
    """With xi = xi_m = 0 the scheme must reduce to the Section 4 optimum."""

    @pytest.mark.parametrize("alpha", [0.0, 2.0])
    def test_matches_section4(self, alpha):
        platform = make_platform(alpha=alpha)
        rng = random.Random(3)
        for _ in range(8):
            ts = random_tasks(rng, rng.randint(1, 7))
            with_ov = solve_common_release_with_overhead(ts, platform)
            plain = solve_common_release(ts, platform)
            assert with_ov.predicted_energy == pytest.approx(
                plain.predicted_energy, rel=1e-6
            )


class TestOverheadScheme:
    @pytest.mark.parametrize(
        "xi,xi_m", [(0.0, 5.0), (3.0, 0.0), (4.0, 8.0), (20.0, 30.0)]
    )
    def test_matches_dense_reference(self, xi, xi_m):
        platform = make_platform(alpha=2.0, xi=xi, xi_m=xi_m)
        rng = random.Random(7)
        for _ in range(6):
            ts = random_tasks(rng, rng.randint(1, 6))
            sol = solve_common_release_with_overhead(ts, platform)
            ref = reference_min(ts, platform)
            assert sol.predicted_energy == pytest.approx(ref, rel=1e-4)
            assert sol.predicted_energy <= ref * (1.0 + 1e-9)

    def test_predicted_energy_matches_accountant(self):
        platform = make_platform(alpha=2.0, xi=4.0, xi_m=8.0)
        ts = TaskSet(
            [Task(0.0, 40.0, 800.0), Task(0.0, 70.0, 1500.0), Task(0.0, 100.0, 400.0)]
        )
        sol = solve_common_release_with_overhead(ts, platform)
        sched = sol.schedule()
        validate_schedule(sched, ts, max_speed=1000.0)
        bd = account(
            sched,
            platform,
            horizon=(0.0, ts.latest_deadline),
            memory_policy=SleepPolicy.BREAK_EVEN,
            core_policy=SleepPolicy.BREAK_EVEN,
        )
        assert bd.total == pytest.approx(sol.predicted_energy, rel=1e-9)

    def test_huge_break_even_forbids_sleep(self):
        """xi_m larger than any possible gap: Delta -> 0 is optimal
        (memory never sleeps; Table 3 bottom row)."""
        platform = make_platform(alpha=2.0, xi=1e9, xi_m=1e9)
        ts = TaskSet([Task(0.0, 100.0, 1000.0), Task(0.0, 80.0, 2000.0)])
        sol = solve_common_release_with_overhead(ts, platform)
        # With sleeping useless, the schedule should not compress tasks
        # beyond their constrained critical speed s_c = s_f here.
        for task in ts:
            assert sol.speeds[task.name] == pytest.approx(
                task.filled_speed, rel=1e-6
            )

    def test_small_break_even_behaves_like_free(self):
        platform_free = make_platform(alpha=2.0, xi=0.0, xi_m=0.0)
        platform_tiny = make_platform(alpha=2.0, xi=1e-7, xi_m=1e-7)
        ts = TaskSet([Task(0.0, 100.0, 1000.0), Task(0.0, 80.0, 2000.0)])
        free = solve_common_release(ts, platform_free)
        tiny = solve_common_release_with_overhead(ts, platform_tiny)
        assert tiny.predicted_energy == pytest.approx(
            free.predicted_energy, rel=1e-4
        )

    def test_energy_monotone_in_break_even(self):
        """A larger xi_m can never reduce the optimal energy."""
        ts = TaskSet([Task(0.0, 60.0, 1500.0), Task(0.0, 90.0, 800.0)])
        prev = -1.0
        for xi_m in [0.0, 5.0, 10.0, 20.0, 40.0, 80.0]:
            platform = make_platform(alpha=2.0, xi_m=xi_m)
            energy = solve_common_release_with_overhead(ts, platform).predicted_energy
            assert energy >= prev - 1e-9
            prev = energy

    def test_rejects_non_common_release(self):
        platform = make_platform()
        ts = TaskSet([Task(0, 10, 5), Task(1, 20, 5)])
        with pytest.raises(ValueError, match="common release"):
            solve_common_release_with_overhead(ts, platform)


class TestTable3Regimes:
    """Reconstruct the four rows of Table 3 with constructed instances."""

    def _solve(self, xi, xi_m, alpha_m=10.0):
        platform = make_platform(alpha=2.0, alpha_m=alpha_m, xi=xi, xi_m=xi_m)
        ts = TaskSet([Task(0.0, 100.0, 2000.0), Task(0.0, 100.0, 1500.0)])
        return solve_common_release_with_overhead(ts, platform), platform, ts

    def test_row1_delta_above_both_break_evens_sleeps(self):
        sol, platform, ts = self._solve(xi=1.0, xi_m=1.0)
        assert sol.delta > max(platform.core.xi, platform.memory.xi_m)
        free = solve_common_release(ts, make_platform(alpha=2.0))
        # Small overheads barely move the optimum.
        assert sol.delta == pytest.approx(free.delta, rel=0.2)

    def test_row4_delta_below_both_break_evens_no_sleep(self):
        sol, platform, ts = self._solve(xi=1e8, xi_m=1e8)
        assert sol.delta == pytest.approx(0.0, abs=1e-6)

    def test_row2_memory_break_even_dominates(self):
        """xi <= Delta < xi_m: cores may sleep but the memory should not."""
        sol, platform, ts = self._solve(xi=0.0, xi_m=1e8)
        # Memory sleeping is hopeless -> stay awake -> Delta = 0 and tasks
        # run at their (constrained) critical speeds.
        assert sol.delta == pytest.approx(0.0, abs=1e-6)

    def test_row3_core_break_even_dominates(self):
        """xi_m <= Delta < xi: memory sleeps, cores idle awake.

        The optimum then follows the Eq. (4)-style stationary point (only
        alpha_m in the coefficient), not the Eq. (8) one.
        """
        sol, platform, ts = self._solve(xi=1e8, xi_m=0.0)
        ref = reference_min(ts, platform)
        assert sol.predicted_energy == pytest.approx(ref, rel=1e-5)
        assert sol.delta > 0.0

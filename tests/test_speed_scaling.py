"""Tests for the YDS / Optimal Available speed-scaling substrate."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from scipy.optimize import minimize

from repro.speed_scaling import (
    optimal_available_plan,
    staircase_speeds,
    yds_energy,
    yds_schedule,
)


def numeric_optimal_energy(jobs, lam=3.0, beta=1.0):
    """Convex-programming reference for the YDS optimum.

    Discretize at the release/deadline event points; allocate work
    ``x[j, k]`` of job j to interval k (allowed only inside the job's
    window); processor dynamic energy is ``sum_k L_k * (W_k / L_k)**lam``
    which is jointly convex in the allocations.
    """
    points = sorted({t for _, r, d, _ in jobs for t in (r, d)})
    intervals = [
        (a, b) for a, b in zip(points, points[1:]) if b > a
    ]
    lengths = np.array([b - a for a, b in intervals])
    allowed = np.array(
        [
            [1.0 if (r <= a + 1e-12 and b <= d + 1e-12) else 0.0 for a, b in intervals]
            for _, r, d, _ in jobs
        ]
    )
    workloads = np.array([w for _, _, _, w in jobs])
    nj, nk = allowed.shape

    def objective(x):
        x = x.reshape(nj, nk) * allowed
        per_interval = x.sum(axis=0)
        return float(np.sum(lengths * (per_interval / lengths) ** lam)) * beta

    constraints = [
        {
            "type": "eq",
            "fun": (lambda x, j=j: (x.reshape(nj, nk) * allowed)[j].sum() - workloads[j]),
        }
        for j in range(nj)
    ]
    x0 = np.zeros((nj, nk))
    for j in range(nj):
        mask = allowed[j] > 0
        x0[j, mask] = workloads[j] / mask.sum()
    result = minimize(
        objective,
        x0.ravel(),
        method="SLSQP",
        bounds=[(0.0, None)] * (nj * nk),
        constraints=constraints,
        options={"maxiter": 500, "ftol": 1e-12},
    )
    assert result.success, result.message
    return result.fun


class TestYdsSchedule:
    def test_single_job_fills_window(self):
        pieces = yds_schedule([("a", 0.0, 10.0, 50.0)])
        assert len(pieces) == 1
        assert pieces[0].start == pytest.approx(0.0)
        assert pieces[0].end == pytest.approx(10.0)
        assert pieces[0].speed == pytest.approx(5.0)

    def test_common_release_staircase(self):
        # Jobs (w=30, d=3) and (w=10, d=10): group1 = {a} at 10, then b at
        # (10)/(10-3) ~ 1.43.
        pieces = yds_schedule([("a", 0.0, 3.0, 30.0), ("b", 0.0, 10.0, 10.0)])
        by_name = {p.name: p for p in pieces}
        assert by_name["a"].speed == pytest.approx(10.0)
        assert by_name["b"].speed == pytest.approx(10.0 / 7.0)

    def test_nested_urgent_job_splits_outer(self):
        # Outer lazy job [0, 10] w=10; inner urgent [4, 6] w=20.
        pieces = yds_schedule([("outer", 0, 10, 10.0), ("inner", 4, 6, 20.0)])
        inner = [p for p in pieces if p.name == "inner"]
        assert len(inner) == 1
        assert inner[0].speed == pytest.approx(10.0)
        assert (inner[0].start, inner[0].end) == (4.0, 6.0)
        outer_pieces = [p for p in pieces if p.name == "outer"]
        assert sum(p.workload for p in outer_pieces) == pytest.approx(10.0)
        # Outer runs at (10)/(10-2) = 1.25 outside the blocked span.
        for p in outer_pieces:
            assert p.speed == pytest.approx(1.25)
            assert p.end <= 4.0 + 1e-9 or p.start >= 6.0 - 1e-9

    def test_workload_conservation_and_window_respect(self):
        rng = random.Random(5)
        for _ in range(20):
            jobs = []
            for j in range(rng.randint(1, 6)):
                r = rng.uniform(0, 50)
                d = r + rng.uniform(1, 30)
                jobs.append((f"j{j}", r, d, rng.uniform(1, 100)))
            pieces = yds_schedule(jobs)
            done = {}
            for p in pieces:
                done[p.name] = done.get(p.name, 0.0) + p.workload
            for name, r, d, w in jobs:
                assert done[name] == pytest.approx(w, rel=1e-6)
            spans = {name: (r, d) for name, r, d, _ in jobs}
            for p in pieces:
                r, d = spans[p.name]
                assert p.start >= r - 1e-6
                assert p.end <= d + 1e-6
            # Single processor: pieces must not overlap.
            ordered = sorted(pieces, key=lambda p: p.start)
            for a, b in zip(ordered, ordered[1:]):
                assert a.end <= b.start + 1e-6

    def test_energy_matches_convex_reference(self):
        rng = random.Random(11)
        for _ in range(5):
            jobs = []
            for j in range(rng.randint(2, 4)):
                r = rng.uniform(0, 10)
                d = r + rng.uniform(2, 10)
                jobs.append((f"j{j}", r, d, rng.uniform(1, 20)))
            fast = yds_energy(jobs, beta=1.0, lam=3.0)
            ref = numeric_optimal_energy(jobs)
            assert fast == pytest.approx(ref, rel=1e-3)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            yds_schedule([("a", 5.0, 5.0, 1.0)])


class TestStaircase:
    def test_single_job(self):
        speeds = staircase_speeds([("a", 10.0, 50.0)], now=0.0)
        assert speeds == [("a", pytest.approx(5.0))]

    def test_matches_general_yds(self):
        rng = random.Random(23)
        for _ in range(15):
            now = rng.uniform(0, 5)
            jobs = [
                (f"j{k}", now + rng.uniform(1, 40), rng.uniform(1, 100))
                for k in range(rng.randint(1, 6))
            ]
            stair = dict(staircase_speeds(jobs, now))
            general = yds_schedule(
                [(name, now, d, w) for name, d, w in jobs]
            )
            speeds = {}
            for p in general:
                speeds.setdefault(p.name, p.speed)
            for name in stair:
                assert stair[name] == pytest.approx(speeds[name], rel=1e-6)

    def test_speeds_non_increasing_in_execution_order(self):
        rng = random.Random(31)
        for _ in range(10):
            jobs = [
                (f"j{k}", rng.uniform(1, 40), rng.uniform(1, 100))
                for k in range(rng.randint(2, 8))
            ]
            speeds = [s for _, s in staircase_speeds(jobs, now=0.0)]
            assert all(a >= b - 1e-9 for a, b in zip(speeds, speeds[1:]))

    def test_rejects_past_deadline(self):
        with pytest.raises(ValueError):
            staircase_speeds([("a", 1.0, 5.0)], now=2.0)


class TestOptimalAvailablePlan:
    def test_segments_back_to_back_and_feasible(self):
        plan = optimal_available_plan(
            [("a", 10.0, 40.0), ("b", 30.0, 20.0)], now=2.0
        )
        assert plan[0].start == pytest.approx(2.0)
        for x, y in zip(plan, plan[1:]):
            assert y.start == pytest.approx(x.end)
        deadlines = {"a": 10.0, "b": 30.0}
        for piece in plan:
            assert piece.end <= deadlines[piece.name] + 1e-9

    def test_edf_order(self):
        plan = optimal_available_plan(
            [("late", 100.0, 10.0), ("soon", 5.0, 10.0)], now=0.0
        )
        assert plan[0].name == "soon"

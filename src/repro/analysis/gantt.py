"""ASCII Gantt rendering of SDEM schedules.

One row per core plus a ``MEM`` row showing the memory's busy union --
the visual version of the paper's Figures 1-4.  Execution cells carry the
first letter of the task name; the memory row shows ``#`` (busy) and
``.`` (common idle, i.e. potential sleep).

Example output::

    time    0.0                                          100.0
    core 0  |AAAAAAAAAA.................................|
    core 1  |BBBBBBBBBBBBBBBB...........................|
    MEM     |################...........................|
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.schedule.timeline import Schedule

__all__ = ["render_gantt"]


def _paint(
    row: List[str],
    spans: List[Tuple[float, float]],
    label: str,
    lo: float,
    scale: float,
) -> None:
    width = len(row)
    for start, end in spans:
        a = int((start - lo) * scale)
        b = max(int(round((end - lo) * scale)), a + 1)
        for k in range(max(a, 0), min(b, width)):
            row[k] = label


def render_gantt(
    schedule: Schedule,
    *,
    horizon: Optional[Tuple[float, float]] = None,
    width: int = 72,
    idle_char: str = ".",
) -> str:
    """Render ``schedule`` as an ASCII Gantt chart.

    Parameters
    ----------
    schedule:
        Any schedule; empty cores are shown as pure idle rows.
    horizon:
        Time window to draw; defaults to the schedule's busy span.
    width:
        Characters per row (time resolution = horizon / width).
    idle_char:
        Fill character for idle time.
    """
    if width < 8:
        raise ValueError("width must be at least 8 characters")
    busy = schedule.busy_union()
    if horizon is None:
        if not busy:
            raise ValueError("cannot render an empty schedule without a horizon")
        horizon = (busy[0][0], busy[-1][1])
    lo, hi = horizon
    if hi <= lo:
        raise ValueError(f"empty horizon ({lo}, {hi})")
    scale = width / (hi - lo)

    lines = [f"time    {lo:<10.1f}{'':{max(width - 20, 1)}}{hi:>10.1f}"]
    for index, core in enumerate(schedule.cores):
        row = [idle_char] * width
        for interval in core:
            label = (interval.task[:1] or "#").upper()
            _paint(row, [(interval.start, interval.end)], label, lo, scale)
        lines.append(f"core {index:<2d} |{''.join(row)}|")
    mem_row = [idle_char] * width
    _paint(mem_row, busy, "#", lo, scale)
    lines.append(f"MEM     |{''.join(mem_row)}|")
    return "\n".join(lines)

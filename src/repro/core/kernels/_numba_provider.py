"""numba provider: the preferred JIT tier when ``numba`` imports.

The kernel bodies are written as plain-Python/numpy scalar loops mirroring
:mod:`repro.core.kernels._csource` statement for statement, then wrapped
with ``numba.njit(cache=True, fastmath=False)`` at :func:`build` time.
Keeping the bodies importable without numba means the algorithm logic is
unit-testable on hosts where only cffi (or neither) is available; the
load-time self-check in :mod:`repro.core.kernels` still gates the jitted
artifacts before the provider is accepted, so an LLVM lowering that
changes the last bit demotes this provider to the cffi tier instead of
corrupting results.

``fastmath`` stays off for the same reason the C build uses
``-ffp-contract=off``: evaluation order is the contract.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # numba requires numpy; without it this provider is unavailable
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less hosts use cffi/scalar
    np = None  # type: ignore[assignment]

from repro.core.kernels._csource import REPRO_MAX_SMALL

__all__ = ["NumbaKernels", "build"]

_INF = float("inf")


# ---------------------------------------------------------------------------
# Plain-Python kernel bodies (njit-wrapped in build()).
# ---------------------------------------------------------------------------


def _block_energy_eval(rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m, start, end):  # type: ignore[no-untyped-def]
    if end <= start:
        return 1e30 * (1.0 + (start - end))
    total = alpha_m * (end - start)
    violation = 0.0
    for i in range(rel.shape[0]):
        lo = rel[i] if rel[i] > start else start
        hi = dl[i] if dl[i] < end else end
        window = hi - lo
        w = wl[i]
        min_duration = w / s_up
        if window < min_duration * (1.0 - 1e-12) - 1e-12:
            violation += min_duration - window
            continue
        eff = window if window > min_duration else min_duration
        if alpha == 0.0:
            duration = eff
        else:
            filled = w / (dl[i] - rel[i])
            s0 = s_m if s_m > filled else filled
            if s0 > s_up:
                s0 = s_up
            preferred = w / s0
            if preferred < min_duration:
                preferred = min_duration
            duration = preferred if preferred < eff else eff
        if w == 0.0:
            continue
        speed = w / duration
        total += (alpha + beta * speed**lam) * w / speed
    if violation > 0.0:
        return 1e30 * (1.0 + violation)
    return total


def _block_energy_batch(rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m, starts, ends, out):  # type: ignore[no-untyped-def]
    for p in range(starts.shape[0]):
        out[p] = _block_energy_eval(
            rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m,
            starts[p], ends[p],
        )


def _descent(rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m, x_lo, x_hi, y_lo, y_hi, sx, sy, tol, max_rounds, out):  # type: ignore[no-untyped-def]
    g = (5.0**0.5 - 1.0) / 2.0
    best_x = 0.0
    best_y = 0.0
    best_v = 0.0
    have = False
    for k in range(sx.shape[0]):
        x = sx[k]
        y = sy[k]
        if x < x_lo:
            x = x_lo
        if x > x_hi:
            x = x_hi
        if y < y_lo:
            y = y_lo
        if y > y_hi:
            y = y_hi
        value = _block_energy_eval(
            rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m, x, y
        )
        for _ in range(max_rounds):
            nv = value
            for step in range(4):
                if step == 0:
                    dx, dy = 1.0, 0.0
                elif step == 1:
                    dx, dy = 0.0, 1.0
                elif step == 2:
                    dx, dy = 1.0, 1.0
                else:
                    dx, dy = -1.0, 1.0
                t_lo = -_INF
                t_hi = _INF
                if dx > 0.0:
                    t = (x_lo - x) / dx
                    if t > t_lo:
                        t_lo = t
                    t = (x_hi - x) / dx
                    if t < t_hi:
                        t_hi = t
                elif dx < 0.0:
                    t = (x_hi - x) / dx
                    if t > t_lo:
                        t_lo = t
                    t = (x_lo - x) / dx
                    if t < t_hi:
                        t_hi = t
                if dy > 0.0:
                    t = (y_lo - y) / dy
                    if t > t_lo:
                        t_lo = t
                    t = (y_hi - y) / dy
                    if t < t_hi:
                        t_hi = t
                elif dy < 0.0:
                    t = (y_hi - y) / dy
                    if t > t_lo:
                        t_lo = t
                    t = (y_lo - y) / dy
                    if t < t_hi:
                        t_hi = t
                if t_hi <= t_lo:
                    nv = _block_energy_eval(
                        rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m, x, y
                    )
                    continue
                # golden section along (dx, dy), first-minimum-wins
                if t_hi - t_lo <= tol:
                    tb = 0.5 * (t_lo + t_hi)
                    val = _block_energy_eval(
                        rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m,
                        x + tb * dx, y + tb * dy,
                    )
                else:
                    a = t_lo
                    b = t_hi
                    x1 = b - g * (b - a)
                    x2 = a + g * (b - a)
                    f1 = _block_energy_eval(
                        rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m,
                        x + x1 * dx, y + x1 * dy,
                    )
                    f2 = _block_energy_eval(
                        rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m,
                        x + x2 * dx, y + x2 * dy,
                    )
                    if f1 <= f2:
                        tb = x1
                        val = f1
                    else:
                        tb = x2
                        val = f2
                    for _it in range(200):
                        if b - a <= tol:
                            break
                        if f1 <= f2:
                            b = x2
                            x2 = x1
                            f2 = f1
                            x1 = b - g * (b - a)
                            f1 = _block_energy_eval(
                                rel, dl, wl, alpha, beta, lam, s_m, s_up,
                                alpha_m, x + x1 * dx, y + x1 * dy,
                            )
                            if f1 < val:
                                val = f1
                                tb = x1
                        else:
                            a = x1
                            x1 = x2
                            f1 = f2
                            x2 = a + g * (b - a)
                            f2 = _block_energy_eval(
                                rel, dl, wl, alpha, beta, lam, s_m, s_up,
                                alpha_m, x + x2 * dx, y + x2 * dy,
                            )
                            if f2 < val:
                                val = f2
                                tb = x2
                    mid = 0.5 * (a + b)
                    for cand in (mid, t_lo, t_hi):
                        fv = _block_energy_eval(
                            rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m,
                            x + cand * dx, y + cand * dy,
                        )
                        if fv < val:
                            val = fv
                            tb = cand
                here = _block_energy_eval(
                    rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m, x, y
                )
                if here <= val:
                    nv = here
                    continue
                x = x + tb * dx
                y = y + tb * dy
                nv = val
            thresh = tol * abs(value)
            if tol > thresh:
                thresh = tol
            if value - nv <= thresh:
                if nv < value:
                    value = nv
                break
            value = nv
        if (not have) or value < best_v:
            have = True
            best_x = x
            best_y = y
            best_v = value
    out[0] = best_x
    out[1] = best_y
    out[2] = best_v


def _bisect_left(a, n, x):  # type: ignore[no-untyped-def]
    lo = 0
    hi = n
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] < x:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _overhead_objective(n, ends, pe, pb, pg, po, sw, sm, horizon, alpha, beta, one_lam, axi, alpha_m, am_xi, up_thresh, gapped, has_po, rel_end, delta):  # type: ignore[no-untyped-def]
    busy = horizon - delta
    if busy <= 0.0:
        return _INF
    k = _bisect_left(ends, n, busy)
    if (has_po and po[k] > 0) or sm[k] > up_thresh * busy:
        return _INF
    behind = n - k
    energy = (
        alpha_m * busy
        + alpha * pe[k]
        + pb[k]
        + alpha * behind * busy
        + sw[k] * (beta * busy**one_lam)
    )
    trailing = rel_end - busy
    if trailing > 0.0:
        if alpha_m != 0.0:
            mt = alpha_m * trailing
            energy += mt if mt < am_xi else am_xi
        if gapped:
            ct = alpha * trailing
            energy += behind * (ct if ct < axi else axi)
    if gapped:
        energy += pg[k]
    return energy


def _overhead_energy_small(n, ends, pe, pb, pg, po, sw, sm, horizon, alpha, beta, lam, xi, alpha_m, xi_m, s_up, rel_end, gapped, has_po, deltas, out):  # type: ignore[no-untyped-def]
    one_lam = 1.0 - lam
    axi = alpha * xi
    am_xi = alpha_m * xi_m
    up_thresh = s_up * (1.0 + 1e-9)
    for p in range(deltas.shape[0]):
        out[p] = _overhead_objective(
            n, ends, pe, pb, pg, po, sw, sm, horizon, alpha, beta,
            one_lam, axi, alpha_m, am_xi, up_thresh, gapped, has_po,
            rel_end, deltas[p],
        )


def _overhead_solve_small(n, rel, dl, wl, latest_deadline, alpha, beta, lam, s_m, s_up, xi, alpha_m, xi_m, rel_end, ends_out, order_out, best_out):  # type: ignore[no-untyped-def]
    ends = np.empty(n, dtype=np.float64)
    wls = np.empty(n, dtype=np.float64)
    order = np.empty(n, dtype=np.int64)
    release = rel[0]
    if alpha == 0.0:
        for i in range(n):
            ends[i] = dl[i] - release
            order[i] = i
            wls[i] = wl[i]
    else:
        outer = latest_deadline - release
        reference = s_m if s_m < s_up else s_up
        has_ref = s_m > 0.0
        for i in range(n):
            w = wl[i]
            filled = w / (dl[i] - rel[i])
            candidate = s_m if s_m > filled else filled
            if candidate > s_up:
                candidate = s_up
            ref = reference if has_ref else candidate
            if ref <= 0.0 or outer - w / ref >= xi:
                s_c = candidate
            else:
                s_c = filled if filled < s_up else s_up
            ends[i] = w / s_c
            order[i] = i
            wls[i] = w
    for i in range(1, n):
        ev = ends[i]
        ov = order[i]
        wv = wls[i]
        j = i - 1
        while j >= 0 and ends[j] > ev:
            ends[j + 1] = ends[j]
            order[j + 1] = order[j]
            wls[j + 1] = wls[j]
            j -= 1
        ends[j + 1] = ev
        order[j + 1] = ov
        wls[j + 1] = wv
    horizon = ends[n - 1]
    for i in range(n):
        ends_out[i] = ends[i]
        order_out[i] = order[i]
    if rel_end < horizon - 1e-9:
        return 1

    one_lam = 1.0 - lam
    up_thresh = s_up * (1.0 + 1e-9)
    gapped = alpha != 0.0 and xi != 0.0
    axi = alpha * xi
    pe = np.zeros(n + 1, dtype=np.float64)
    pb = np.zeros(n + 1, dtype=np.float64)
    pg = np.zeros(n + 1, dtype=np.float64)
    po = np.zeros(n + 1, dtype=np.int64)
    acc_e = 0.0
    acc_b = 0.0
    acc_g = 0.0
    overspeed = False
    for i in range(n):
        end = ends[i]
        w = wls[i]
        acc_e += end
        pe[i + 1] = acc_e
        acc_b += (beta * w**lam) * end**one_lam
        pb[i + 1] = acc_b
        if gapped:
            gap = rel_end - end
            if gap > 0.0:
                ag = alpha * gap
                acc_g += ag if ag < axi else axi
            pg[i + 1] = acc_g
        if w / end > up_thresh:
            overspeed = True
    if overspeed:
        acc_o = 0
        for i in range(n):
            if wls[i] / ends[i] > up_thresh:
                acc_o += 1
            po[i + 1] = acc_o
    sw = np.zeros(n + 1, dtype=np.float64)
    smx = np.zeros(n + 1, dtype=np.float64)
    for j in range(n - 1, -1, -1):
        wj = wls[j]
        prev = smx[j + 1]
        sw[j] = sw[j + 1] + wj**lam
        smx[j] = prev if prev >= wj else wj

    am_xi = alpha_m * xi_m
    shift = rel_end - horizon
    beta_lam = beta * (lam - 1.0)
    inv_lam = 1.0 / lam
    kinks = np.empty(3, dtype=np.float64)
    kinks[0] = 0.0
    kinks[1] = xi - shift
    kinks[2] = xi_m - shift

    found = False
    best_delta = 0.0
    best_energy = 0.0
    best_case = 0
    cand = np.empty(8, dtype=np.float64)
    coeffs = np.empty(3, dtype=np.float64)
    for i in range(1, n + 1):
        lo = horizon - ends[i - 1]
        cap = horizon - smx[i - 1] / s_up
        hi = _INF if i == 1 else horizon - ends[i - 2]
        if cap < hi:
            hi = cap
        if horizon < hi:
            hi = horizon
        if hi < lo:
            continue
        aligned = n - i + 1
        nc = 0
        cand[nc] = lo
        nc += 1
        cand[nc] = hi if np.isfinite(hi) else lo
        nc += 1
        factor = beta_lam * sw[i - 1]
        coeffs[0] = aligned * alpha + alpha_m
        coeffs[1] = alpha_m
        coeffs[2] = aligned * alpha
        for c in range(3):
            if coeffs[c] > 0.0:
                point = horizon - (factor / coeffs[c]) ** inv_lam
                if point < lo:
                    point = lo
                if point > hi:
                    point = hi
                cand[nc] = point
                nc += 1
        for c in range(3):
            if kinks[c] >= lo and kinks[c] <= hi:
                cand[nc] = kinks[c]
                nc += 1
        for a in range(1, nc):
            v = cand[a]
            b = a - 1
            while b >= 0 and cand[b] > v:
                cand[b + 1] = cand[b]
                b -= 1
            cand[b + 1] = v
        for c in range(nc):
            delta = cand[c]
            energy = _overhead_objective(
                n, ends, pe, pb, pg, po, sw, smx, horizon, alpha, beta,
                one_lam, axi, alpha_m, am_xi, up_thresh, gapped,
                overspeed, rel_end, delta,
            )
            if (not found) or energy < best_energy - 1e-12:
                found = True
                best_delta = delta
                best_energy = energy
                best_case = i
    if not found:
        return 2
    best_out[0] = best_delta
    best_out[1] = best_energy
    best_out[2] = float(best_case)
    return 0


def _powersum_roots(vals, wl, masks, lo_in, hi_in, target, lam, mode, tol, max_iter, out):  # type: ignore[no-untyped-def]
    n = vals.shape[0]
    for p in range(masks.shape[0]):
        lo = lo_in[p]
        hi = hi_in[p]
        flo = _powersum_eval(n, vals, wl, masks, p, lam, target, mode, lo)
        if flo >= 0.0:
            out[p] = lo
            continue
        fhi = _powersum_eval(n, vals, wl, masks, p, lam, target, mode, hi)
        if fhi <= 0.0:
            out[p] = hi
            continue
        done = False
        for _ in range(max_iter):
            mid = 0.5 * (lo + hi)
            if hi - lo <= tol:
                out[p] = mid
                done = True
                break
            fmid = _powersum_eval(n, vals, wl, masks, p, lam, target, mode, mid)
            if fmid < 0.0:
                lo = mid
            else:
                hi = mid
        if not done:
            out[p] = 0.5 * (lo + hi)


def _powersum_eval(n, vals, wl, masks, row, lam, target, mode, x):  # type: ignore[no-untyped-def]
    acc = 0.0
    if mode == 0:
        for i in range(n):
            if masks[row, i] == 0:
                continue
            length = vals[i] - x
            if length <= 0.0:
                return _INF
            acc += (wl[i] / length) ** lam
        return acc - target
    for i in range(n):
        if masks[row, i] == 0:
            continue
        length = x - vals[i]
        if length <= 0.0:
            return -_INF
        acc += (wl[i] / length) ** lam
    return target - acc


# ---------------------------------------------------------------------------
# Provider
# ---------------------------------------------------------------------------


_JITTED: Optional[Dict[str, Any]] = None


class NumbaKernels:
    """Raw-array kernel protocol backed by numba-jitted loops."""

    name = "numba"

    def __init__(self, jitted: Dict[str, Any]) -> None:
        self._fn = jitted
        self._sig_cache: Dict[Any, Any] = {}

    def _arrays(self, sig: Sequence[Tuple[float, float, float]]):  # type: ignore[no-untyped-def]
        key = sig if isinstance(sig, tuple) else tuple(sig)
        hit = self._sig_cache.get(key)
        if hit is None:
            rel = np.array([t[0] for t in key], dtype=np.float64)
            dl = np.array([t[1] for t in key], dtype=np.float64)
            wl = np.array([t[2] for t in key], dtype=np.float64)
            hit = (len(key), rel, dl, wl)
            self._sig_cache[key] = hit
            if len(self._sig_cache) > 4096:
                self._sig_cache.pop(next(iter(self._sig_cache)))
        return hit

    def clear_caches(self) -> None:
        self._sig_cache.clear()

    def overhead_solve_small(
        self,
        sig: Sequence[Tuple[float, float, float]],
        latest_deadline: float,
        params: Tuple[float, ...],
        rel_end: float,
    ) -> Tuple[float, Tuple[float, ...], Tuple[int, ...], Optional[Tuple[float, float, int]]]:
        n, rel, dl, wl = self._arrays(sig)
        alpha, beta, lam, s_m, s_up, xi, alpha_m, xi_m = params
        ends_out = np.empty(n, dtype=np.float64)
        order_out = np.empty(n, dtype=np.int64)
        best_out = np.empty(3, dtype=np.float64)
        rc = self._fn["overhead_solve_small"](
            n, rel, dl, wl, latest_deadline, alpha, beta, lam, s_m, s_up,
            xi, alpha_m, xi_m, rel_end, ends_out, order_out, best_out,
        )
        if rc not in (0, 1, 2):
            raise RuntimeError(f"overhead_solve_small kernel failed (rc={rc})")
        ends = tuple(float(v) for v in ends_out)
        order = tuple(int(v) for v in order_out)
        best: Optional[Tuple[float, float, int]] = None
        if rc == 0:
            best = (float(best_out[0]), float(best_out[1]), int(best_out[2]))
        return ends[-1], ends, order, best

    def overhead_energy_small(
        self,
        ends: Sequence[float],
        pe: Sequence[float],
        pb: Sequence[float],
        pg: Optional[Sequence[float]],
        po: Optional[Sequence[int]],
        sw: Sequence[float],
        sm: Sequence[float],
        horizon: float,
        params: Tuple[float, ...],
        rel_end: float,
        deltas: Sequence[float],
    ) -> List[float]:
        alpha, beta, lam, _s_m, s_up, xi, alpha_m, xi_m = params
        n = len(ends)
        gapped = pg is not None
        has_po = po is not None
        pg_a = np.asarray(pg if gapped else [0.0] * (n + 1), dtype=np.float64)
        po_a = np.asarray(po if has_po else [0] * (n + 1), dtype=np.int64)
        deltas_a = np.asarray(deltas, dtype=np.float64)
        out = np.empty(deltas_a.shape[0], dtype=np.float64)
        self._fn["overhead_energy_small"](
            n, np.asarray(ends, dtype=np.float64),
            np.asarray(pe, dtype=np.float64),
            np.asarray(pb, dtype=np.float64),
            pg_a, po_a,
            np.asarray(sw, dtype=np.float64),
            np.asarray(sm, dtype=np.float64),
            horizon, alpha, beta, lam, xi, alpha_m, xi_m, s_up,
            rel_end, gapped, has_po, deltas_a, out,
        )
        return [float(v) for v in out]

    def block_energy_batch(
        self,
        sig: Sequence[Tuple[float, float, float]],
        params: Tuple[float, ...],
        starts: Sequence[float],
        ends: Sequence[float],
    ) -> List[float]:
        _n, rel, dl, wl = self._arrays(sig)
        alpha, beta, lam, s_m, s_up, _xi, alpha_m, _xi_m = params
        starts_a = np.asarray(starts, dtype=np.float64)
        ends_a = np.asarray(ends, dtype=np.float64)
        out = np.empty(starts_a.shape[0], dtype=np.float64)
        self._fn["block_energy_batch"](
            rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m,
            starts_a, ends_a, out,
        )
        return [float(v) for v in out]

    def solve_block_descent(
        self,
        sig: Sequence[Tuple[float, float, float]],
        params: Tuple[float, ...],
        x_bounds: Tuple[float, float],
        y_bounds: Tuple[float, float],
        starts: Sequence[Tuple[float, float]],
        tol: float,
        max_rounds: int,
    ) -> Tuple[float, float, float]:
        _n, rel, dl, wl = self._arrays(sig)
        alpha, beta, lam, s_m, s_up, _xi, alpha_m, _xi_m = params
        sx = np.array([float(s[0]) for s in starts], dtype=np.float64)
        sy = np.array([float(s[1]) for s in starts], dtype=np.float64)
        out = np.empty(3, dtype=np.float64)
        self._fn["descent"](
            rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m,
            x_bounds[0], x_bounds[1], y_bounds[0], y_bounds[1],
            sx, sy, tol, max_rounds, out,
        )
        return float(out[0]), float(out[1]), float(out[2])

    def powersum_roots(
        self,
        values: Sequence[float],
        workloads: Sequence[float],
        masks: bytes,
        count: int,
        lo: Sequence[float],
        hi: Sequence[float],
        target: float,
        lam: float,
        mode: int,
        tol: float,
        max_iter: int,
    ) -> List[float]:
        n = len(values)
        masks_a = np.frombuffer(masks, dtype=np.uint8).reshape(count, n)
        out = np.empty(count, dtype=np.float64)
        self._fn["powersum_roots"](
            np.asarray(values, dtype=np.float64),
            np.asarray(workloads, dtype=np.float64),
            masks_a,
            np.asarray(lo, dtype=np.float64),
            np.asarray(hi, dtype=np.float64),
            target, lam, mode, tol, max_iter, out,
        )
        return [float(v) for v in out]


def build() -> NumbaKernels:
    """JIT-wrap the kernel bodies; raises when numba is unavailable.

    The helper functions (`_bisect_left`, `_block_energy_eval`,
    `_overhead_objective`, `_powersum_eval`) are called from other kernel
    bodies through module globals, which numba resolves lazily at first
    compilation -- so their jitted dispatchers are installed into this
    module permanently (idempotent; only happens when numba imports).
    """
    global _JITTED
    if np is None:
        raise ImportError("numba provider requires numpy")
    import numba  # deferred: the ImportError here is the availability gate

    if _JITTED is None:
        jit = numba.njit(cache=True, fastmath=False)
        module = globals()
        for name in (
            "_bisect_left",
            "_block_energy_eval",
            "_overhead_objective",
            "_powersum_eval",
        ):
            module[name] = jit(module[name])
        _JITTED = {
            "block_energy_batch": jit(_block_energy_batch),
            "descent": jit(_descent),
            "overhead_energy_small": jit(_overhead_energy_small),
            "overhead_solve_small": jit(_overhead_solve_small),
            "powersum_roots": jit(_powersum_roots),
        }
    return NumbaKernels(_JITTED)

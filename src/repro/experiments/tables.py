"""Table reproductions (paper Tables 1, 3 and 4).

These are analytic tables rather than measurements; regenerating them
checks that every claimed solver exists, runs, and lands in the regime the
paper assigns to it.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.core.agreeable import solve_agreeable
from repro.core.common_release import (
    solve_common_release_alpha_nonzero,
    solve_common_release_alpha_zero,
)
from repro.core.online import SdemOnlinePolicy
from repro.core.transition import solve_common_release_with_overhead
from repro.experiments.config import (
    ALPHA_M_SWEEP_MW,
    X_SWEEP_MS,
    XI_M_SWEEP_MS,
)
from repro.models.platform import Platform
from repro.models.power import CorePowerModel
from repro.models.memory import MemoryModel
from repro.models.task import Task, TaskSet
from repro.utils.solvers import solver_call_total

__all__ = ["table1_rows", "table3_rows", "table4_rows"]


def _tasks_common(n: int, seed: int = 0) -> TaskSet:
    import random

    rng = random.Random(seed)
    return TaskSet(
        Task(0.0, rng.uniform(10.0, 120.0), rng.uniform(100.0, 5000.0))
        for _ in range(n)
    )


def _tasks_agreeable(n: int, seed: int = 0) -> TaskSet:
    import random

    rng = random.Random(seed)
    releases = sorted(rng.uniform(0.0, 200.0) for _ in range(n))
    tasks, last_d = [], 0.0
    for r in releases:
        d = max(r + rng.uniform(10.0, 60.0), last_d + 1.0)
        tasks.append(Task(r, d, rng.uniform(100.0, 3000.0)))
        last_d = d
    return TaskSet(tasks)


def table1_rows(*, n: int = 10) -> List[Dict[str, str]]:
    """Regenerate Table 1: each subproblem's solver, demonstrated live.

    Each row names the task/system model, the implemented solver, its
    paper complexity, and a measured wall-clock plus the number of
    elementary 1-D solver invocations on an ``n``-task instance as
    evidence the path executes (and as a coarse check on the complexity
    column).
    """
    alpha0 = Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1900.0),
        MemoryModel(alpha_m=4000.0),
    )
    alpha1 = Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=310.0, s_up=1900.0),
        MemoryModel(alpha_m=4000.0),
    )
    overhead = Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=310.0, s_up=1900.0, xi=5.0),
        MemoryModel(alpha_m=4000.0, xi_m=40.0),
    )

    rows: List[Dict[str, str]] = []

    def timed(label, model, solver, complexity, section):
        calls_before = solver_call_total()
        start = time.perf_counter()
        solver()
        elapsed = (time.perf_counter() - start) * 1000.0
        rows.append(
            {
                "task_model": label,
                "system_model": model,
                "solution": complexity,
                "section": section,
                "measured_ms": f"{elapsed:.2f}",
                "solver_calls": str(solver_call_total() - calls_before),
            }
        )

    common = _tasks_common(n)
    agreeable = _tasks_agreeable(max(4, n // 2))
    timed(
        "common release",
        "alpha=0, xi_m=0",
        lambda: solve_common_release_alpha_zero(common, alpha0, method="binary"),
        "optimal, O(n log n)",
        "4.1",
    )
    timed(
        "common release",
        "alpha!=0, xi_m=0, xi=0",
        lambda: solve_common_release_alpha_nonzero(common, alpha1),
        "optimal, O(n^2)",
        "4.2",
    )
    timed(
        "agreeable deadline",
        "alpha=0, xi_m=0",
        lambda: solve_agreeable(agreeable, alpha0),
        "DP optimal, O(n^4)",
        "5.1",
    )
    timed(
        "agreeable deadline",
        "alpha!=0, xi_m=0, xi=0",
        lambda: solve_agreeable(agreeable, alpha1),
        "DP optimal, O(n^5)",
        "5.2",
    )
    timed(
        "general model",
        "alpha>=0, xi_m=0, xi=0",
        lambda: SdemOnlinePolicy(alpha1),
        "online heuristic (SDEM-ON)",
        "6",
    )
    timed(
        "all task models",
        "alpha>=0, xi_m!=0, xi!=0",
        lambda: solve_common_release_with_overhead(common, overhead),
        "extended schemes (Table 3 / per-block overhead DP)",
        "7",
    )
    return rows


def table3_rows() -> List[Dict[str, str]]:
    """Regenerate Table 3: optimal Delta under each break-even regime.

    Constructs one instance per row and reports the regime the solver
    lands in, mirroring the table's four cases.
    """
    tasks = TaskSet([Task(0.0, 100.0, 2000.0), Task(0.0, 100.0, 1500.0)])
    core = CorePowerModel(beta=1e-6, lam=3.0, alpha=2.0, s_up=1000.0)
    rows: List[Dict[str, str]] = []
    regimes = [
        ("Delta >= xi, xi_m", 1.0, 1.0, "Delta = Delta_mi (sleep both)"),
        ("xi <= Delta < xi_m", 0.0, 1e9, "Delta = 0, cores at s_c"),
        ("xi_m <= Delta < xi", 1e9, 0.0, "best of {Delta_mi, xi, 0}"),
        ("Delta < xi, xi_m", 1e9, 1e9, "Delta = 0, cores at s_c"),
    ]
    for case, xi, xi_m, expected in regimes:
        platform = Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=2.0, s_up=1000.0, xi=xi),
            MemoryModel(alpha_m=10.0, xi_m=xi_m),
        )
        sol = solve_common_release_with_overhead(tasks, platform)
        rows.append(
            {
                "case": case,
                "xi": f"{xi:g}",
                "xi_m": f"{xi_m:g}",
                "expected": expected,
                "delta_ms": f"{sol.delta:.3f}",
                "energy_uj": f"{sol.predicted_energy:.2f}",
            }
        )
    return rows


def table4_rows() -> List[Dict[str, str]]:
    """Regenerate Table 4: the experiment parameter grid."""
    rows = []
    for index in range(8):
        rows.append(
            {
                "point": str(index + 1),
                "x_ms": f"{X_SWEEP_MS[index]:g}",
                "alpha_m_w": f"{ALPHA_M_SWEEP_MW[index] / 1000.0:g}",
                "xi_m_ms": f"{XI_M_SWEEP_MS[index]:g}",
            }
        )
    return rows

"""End-to-end tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.cli import build_parser, main
from repro.models import Task
from repro.serialization import tasks_to_csv, tasks_to_json


@pytest.fixture
def task_csv(tmp_path):
    path = os.path.join(tmp_path, "tasks.csv")
    with open(path, "w") as handle:
        tasks_to_csv(
            [
                Task(0.0, 40.0, 8000.0, "a"),
                Task(0.0, 70.0, 15000.0, "b"),
            ],
            handle,
        )
    return path


@pytest.fixture
def agreeable_json(tmp_path):
    path = os.path.join(tmp_path, "tasks.json")
    with open(path, "w") as handle:
        handle.write(
            tasks_to_json(
                [
                    Task(0.0, 30.0, 5000.0, "a"),
                    Task(10.0, 60.0, 5000.0, "b"),
                    Task(200.0, 260.0, 5000.0, "c"),
                ]
            )
        )
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "nope"])


class TestSolve:
    def test_demo(self, capsys):
        assert main(["solve", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "Section 4" in out
        assert "MEM" in out
        assert "energy report" in out

    def test_csv_input(self, capsys, task_csv):
        assert main(["solve", "--tasks", task_csv]) == 0
        out = capsys.readouterr().out
        assert "memory sleep Delta" in out

    def test_agreeable_json_input(self, capsys, agreeable_json):
        assert main(["solve", "--tasks", agreeable_json]) == 0
        out = capsys.readouterr().out
        assert "Section 5" in out
        assert "block(s)" in out

    def test_overhead_scheme_selected(self, capsys):
        assert main(["solve", "--demo", "--xi-m", "40"]) == 0
        out = capsys.readouterr().out
        assert "Section 7" in out

    def test_missing_tasks_errors(self):
        with pytest.raises(SystemExit, match="--tasks"):
            main(["solve"])


class TestSimulate:
    @pytest.mark.parametrize("policy", ["sdem-on", "mbkp", "mbkps", "avr", "race"])
    def test_synthetic_trace_all_policies(self, capsys, policy):
        assert (
            main(
                [
                    "simulate",
                    "--policy",
                    policy,
                    "--n",
                    "10",
                    "--seed",
                    "4",
                    "--x",
                    "300",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert policy in out
        assert "total" in out

    def test_dspstone_trace(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--dspstone",
                    "fft",
                    "--u",
                    "4",
                    "--n",
                    "12",
                    "--policy",
                    "sdem-on",
                ]
            )
            == 0
        )
        assert "fft" not in capsys.readouterr().err

    def test_gantt_flag(self, capsys):
        assert (
            main(
                ["simulate", "--n", "5", "--gantt", "--width", "40", "--seed", "2"]
            )
            == 0
        )
        assert "MEM" in capsys.readouterr().out


class TestExhibits:
    def test_fig7a_reduced(self, capsys, tmp_path, monkeypatch):
        out_dir = os.path.join(tmp_path, "results")
        assert (
            main(["fig7a", "--seeds", "1", "--n", "15", "--out", out_dir]) == 0
        )
        assert os.path.exists(os.path.join(out_dir, "fig7a.csv"))
        assert "improvement" in capsys.readouterr().out

    def test_fig6_reduced(self, capsys, tmp_path):
        out_dir = os.path.join(tmp_path, "results")
        assert main(["fig6", "--seeds", "1", "--n", "16", "--out", out_dir]) == 0
        assert os.path.exists(os.path.join(out_dir, "fig6_fft.csv"))
        assert os.path.exists(os.path.join(out_dir, "fig6_matmul.txt"))

    def test_tables(self, capsys):
        assert main(["tables", "--n", "6"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out and "Table 4" in out

"""cffi provider: compiles :mod:`repro.core.kernels._csource` to a shared
object and exposes the raw-array kernel protocol.

Compile-cache layout
--------------------
Shared objects live under ``$REPRO_KERNEL_CACHE`` (or
``$XDG_CACHE_HOME/repro/kernels``, defaulting to
``~/.cache/repro/kernels``) in a directory named by the first 16 hex
digits of ``sha256(C source + cdef + ABI version + interpreter tag +
cffi version)``.  Any change to the C source, the declared interface or
the toolchain therefore lands in a fresh directory and stale objects are
simply never looked up again -- invalidation is content addressing, not
mtime comparison.  Builds happen in a ``tmp-<pid>`` sibling directory and
the finished object is moved into place with :func:`os.replace`, so
concurrent first calls (e.g. a pool of workers warming up together) race
benignly: every loser overwrites the winner's byte-identical file.

Thread safety: cffi releases the GIL while C runs, so output scratch
buffers are per-thread (:class:`threading.local`); the immutable input
arrays are shared behind a lock-guarded LRU keyed on the task-set
signature.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import shutil
import sys
import sysconfig
import threading
from collections import OrderedDict
from typing import Any, List, Optional, Sequence, Tuple

import cffi

from repro.core.kernels._csource import (
    CDEF,
    CSOURCE,
    REPRO_KERNELS_ABI,
    REPRO_MAX_SMALL,
)

__all__ = ["CffiKernels", "build", "cache_dir"]

_COMPILE_ARGS = ["-O2", "-ffp-contract=off"]
_SIG_CACHE_LIMIT = 4096

#: One task-set's immutable input arrays: (n, rel, dl, wl) cdata buffers.
_SigEntry = Tuple[int, Any, Any, Any]


def _cache_root() -> str:
    env = os.environ.get("REPRO_KERNEL_CACHE", "").strip()
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "kernels")


def _build_tag() -> str:
    payload = "\n".join(
        [
            CSOURCE,
            CDEF,
            f"abi={REPRO_KERNELS_ABI}",
            sys.implementation.cache_tag or sys.version,
            str(sysconfig.get_config_var("EXT_SUFFIX") or ""),
            getattr(cffi, "__version__", "?"),
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def cache_dir() -> str:
    """Directory holding (or destined to hold) this build's artifacts."""
    return os.path.join(_cache_root(), _build_tag())


def _compile(name: str, final_dir: str) -> str:
    ffi = cffi.FFI()
    ffi.cdef(CDEF)
    ffi.set_source(name, CSOURCE, extra_compile_args=_COMPILE_ARGS)
    tmp = f"{final_dir}.tmp-{os.getpid()}"
    os.makedirs(tmp, exist_ok=True)
    try:
        built = ffi.compile(tmpdir=tmp, verbose=False)
        os.makedirs(final_dir, exist_ok=True)
        target = os.path.join(final_dir, os.path.basename(built))
        os.replace(built, target)
        return target
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _import_extension(name: str, path: str) -> Any:
    loader = importlib.machinery.ExtensionFileLoader(name, path)
    spec = importlib.util.spec_from_loader(name, loader, origin=path)
    assert spec is not None
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    sys.modules[name] = module
    return module


def _load_compiled() -> Tuple[Any, Any]:
    tag = _build_tag()
    name = f"_repro_kernels_{tag}"
    cached = sys.modules.get(name)
    if cached is not None:
        return cached.ffi, cached.lib
    final_dir = os.path.join(_cache_root(), tag)
    so_path = None
    if os.path.isdir(final_dir):
        for entry in sorted(os.listdir(final_dir)):
            if entry.startswith(name) and entry.endswith(
                (".so", ".pyd", ".dylib")
            ):
                so_path = os.path.join(final_dir, entry)
                break
    if so_path is None:
        so_path = _compile(name, final_dir)
    module = _import_extension(name, so_path)
    return module.ffi, module.lib


class CffiKernels:
    """Raw-array kernel protocol backed by the compiled shared object."""

    name = "cffi"

    def __init__(self, ffi: Any, lib: Any) -> None:
        self._ffi = ffi
        self._lib = lib
        self._sig_cache: "OrderedDict[Any, _SigEntry]" = OrderedDict()
        self._sig_lock = threading.Lock()
        self._local = threading.local()

    # -- shared input / per-thread output buffers ---------------------------

    def _arrays(self, sig: Sequence[Tuple[float, float, float]]) -> _SigEntry:
        key = sig if isinstance(sig, tuple) else tuple(sig)
        with self._sig_lock:
            hit = self._sig_cache.get(key)
            if hit is not None:
                self._sig_cache.move_to_end(key)
                return hit
        ffi = self._ffi
        rel = ffi.new("double[]", [t[0] for t in key])
        dl = ffi.new("double[]", [t[1] for t in key])
        wl = ffi.new("double[]", [t[2] for t in key])
        entry: _SigEntry = (len(key), rel, dl, wl)
        with self._sig_lock:
            self._sig_cache[key] = entry
            while len(self._sig_cache) > _SIG_CACHE_LIMIT:
                self._sig_cache.popitem(last=False)
        return entry

    def _scratch(self) -> Tuple[Any, ...]:
        """Per-thread buffers: 3 inputs (rel/dl/wl), then outputs.

        The fused solve fills the input buffers in place instead of going
        through :meth:`_arrays`: the replan loop solves a fresh task set
        per call, so the signature LRU would miss every time and its
        hashing + ``ffi.new`` allocations are pure overhead there.
        """
        bufs = getattr(self._local, "bufs", None)
        if bufs is None:
            ffi = self._ffi
            bufs = (
                ffi.new("double[]", REPRO_MAX_SMALL),
                ffi.new("double[]", REPRO_MAX_SMALL),
                ffi.new("double[]", REPRO_MAX_SMALL),
                ffi.new("double[]", REPRO_MAX_SMALL),
                ffi.new("int[]", REPRO_MAX_SMALL),
                ffi.new("double[]", 3),
            )
            self._local.bufs = bufs
        return bufs

    def clear_caches(self) -> None:
        with self._sig_lock:
            self._sig_cache.clear()

    # -- kernel protocol ----------------------------------------------------

    def overhead_solve_small(
        self,
        sig: Sequence[Tuple[float, float, float]],
        latest_deadline: float,
        params: Tuple[float, ...],
        rel_end: float,
    ) -> Tuple[float, Tuple[float, ...], Tuple[int, ...], Optional[Tuple[float, float, int]]]:
        n = len(sig)
        if n > REPRO_MAX_SMALL:
            raise ValueError(
                f"fused overhead solve supports n <= {REPRO_MAX_SMALL}, got {n}"
            )
        rel, dl, wl, ends_buf, order_buf, best_buf = self._scratch()
        i = 0
        for r, d, w in sig:
            rel[i] = r
            dl[i] = d
            wl[i] = w
            i += 1
        alpha, beta, lam, s_m, s_up, xi, alpha_m, xi_m = params
        rc = self._lib.repro_overhead_solve_small(
            n, rel, dl, wl, latest_deadline,
            alpha, beta, lam, s_m, s_up, xi, alpha_m, xi_m,
            rel_end, ends_buf, order_buf, best_buf,
        )
        if rc not in (0, 1, 2):
            raise RuntimeError(f"overhead_solve_small kernel failed (rc={rc})")
        ends = tuple(ends_buf[0:n])
        order = tuple(order_buf[0:n])
        horizon = ends[-1]
        best: Optional[Tuple[float, float, int]] = None
        if rc == 0:
            best = (best_buf[0], best_buf[1], int(best_buf[2]))
        return horizon, ends, order, best

    def overhead_energy_small(
        self,
        ends: Sequence[float],
        pe: Sequence[float],
        pb: Sequence[float],
        pg: Optional[Sequence[float]],
        po: Optional[Sequence[int]],
        sw: Sequence[float],
        sm: Sequence[float],
        horizon: float,
        params: Tuple[float, ...],
        rel_end: float,
        deltas: Sequence[float],
    ) -> List[float]:
        ffi = self._ffi
        alpha, beta, lam, _s_m, s_up, xi, alpha_m, xi_m = params
        n = len(ends)
        k = len(deltas)
        ends_b = ffi.new("double[]", list(ends))
        pe_b = ffi.new("double[]", list(pe))
        pb_b = ffi.new("double[]", list(pb))
        pg_b = ffi.new("double[]", list(pg)) if pg is not None else ffi.NULL
        po_b = (
            ffi.new("long long[]", [int(v) for v in po])
            if po is not None
            else ffi.NULL
        )
        sw_b = ffi.new("double[]", list(sw))
        sm_b = ffi.new("double[]", list(sm))
        deltas_b = ffi.new("double[]", [float(d) for d in deltas])
        out = ffi.new("double[]", k)
        self._lib.repro_overhead_energy_small(
            n, ends_b, pe_b, pb_b, pg_b, po_b, sw_b, sm_b, horizon,
            alpha, beta, lam, xi, alpha_m, xi_m, s_up,
            rel_end, k, deltas_b, out,
        )
        return list(out[0:k])

    def block_energy_batch(
        self,
        sig: Sequence[Tuple[float, float, float]],
        params: Tuple[float, ...],
        starts: Sequence[float],
        ends: Sequence[float],
    ) -> List[float]:
        n, rel, dl, wl = self._arrays(sig)
        ffi = self._ffi
        alpha, beta, lam, s_m, s_up, _xi, alpha_m, _xi_m = params
        k = len(starts)
        starts_b = ffi.new("double[]", [float(v) for v in starts])
        ends_b = ffi.new("double[]", [float(v) for v in ends])
        out = ffi.new("double[]", k)
        self._lib.repro_block_energy_batch(
            n, rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m,
            k, starts_b, ends_b, out,
        )
        return list(out[0:k])

    def solve_block_descent(
        self,
        sig: Sequence[Tuple[float, float, float]],
        params: Tuple[float, ...],
        x_bounds: Tuple[float, float],
        y_bounds: Tuple[float, float],
        starts: Sequence[Tuple[float, float]],
        tol: float,
        max_rounds: int,
    ) -> Tuple[float, float, float]:
        n, rel, dl, wl = self._arrays(sig)
        ffi = self._ffi
        alpha, beta, lam, s_m, s_up, _xi, alpha_m, _xi_m = params
        sx = ffi.new("double[]", [float(s[0]) for s in starts])
        sy = ffi.new("double[]", [float(s[1]) for s in starts])
        out = ffi.new("double[]", 3)
        self._lib.repro_solve_block_descent(
            n, rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m,
            x_bounds[0], x_bounds[1], y_bounds[0], y_bounds[1],
            len(starts), sx, sy, tol, max_rounds, out,
        )
        return out[0], out[1], out[2]

    def powersum_roots(
        self,
        values: Sequence[float],
        workloads: Sequence[float],
        masks: bytes,
        count: int,
        lo: Sequence[float],
        hi: Sequence[float],
        target: float,
        lam: float,
        mode: int,
        tol: float,
        max_iter: int,
    ) -> List[float]:
        ffi = self._ffi
        n = len(values)
        vals_b = ffi.new("double[]", [float(v) for v in values])
        wl_b = ffi.new("double[]", [float(v) for v in workloads])
        masks_b = ffi.from_buffer("unsigned char[]", masks)
        lo_b = ffi.new("double[]", [float(v) for v in lo])
        hi_b = ffi.new("double[]", [float(v) for v in hi])
        out = ffi.new("double[]", count)
        self._lib.repro_powersum_roots(
            n, vals_b, wl_b, count, masks_b, lo_b, hi_b,
            target, lam, mode, tol, max_iter, out,
        )
        return list(out[0:count])


def build() -> CffiKernels:
    """Compile (or reuse the cached build) and return the provider."""
    ffi, lib = _load_compiled()
    return CffiKernels(ffi, lib)

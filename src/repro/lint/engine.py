"""The lint engine: source model, rule registry, walker, fingerprints.

Design
------

One :class:`SourceModule` per analyzed file carries the parsed AST (with
parent links), the dotted module name (``repro.service.queue``,
``tests.test_cli``) and the raw source lines.  A :class:`Project` bundles
every module so cross-module rules (lock-ordering graphs, the unit-tag
registry) see the whole picture in one pass.

Rules subclass :class:`Rule` and register with :func:`register`.  A rule
declares *scope* -- which dotted-package prefixes it applies to and
whether it runs on tests -- so "enforced hardest in ``experiments.cache``"
style policies live next to the check itself rather than in CLI flags.

Suppression is two-tier:

* inline pragma ``# repro-lint: allow[RULE_ID] reason`` on the finding's
  line (or the line above) for intentional, explained exceptions;
* the baseline file (:mod:`repro.lint.baseline`) for accepted legacy
  findings, keyed by a line-number-insensitive fingerprint so unrelated
  edits do not invalidate it.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.lint.config import LintConfig, load_config

__all__ = [
    "Finding",
    "SourceModule",
    "Project",
    "Rule",
    "register",
    "load_rules",
    "all_rules",
    "rule_catalogue",
    "analyze_paths",
    "iter_python_files",
    "module_name_for",
    "dotted_call_name",
    "import_aliases",
    "parent_chain",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: ``# repro-lint: allow[DET001] optional reason`` (also ``allow[*]``).
_PRAGMA = re.compile(r"#\s*repro-lint:\s*allow\[([A-Z0-9*]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    fingerprint: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        location = f"{self.path}:{self.line}:{self.col}"
        text = f"{location}: {self.rule} [{self.severity}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


class SourceModule:
    """One parsed Python file plus the metadata rules key on."""

    def __init__(self, path: str, rel: str, name: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.name = name
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_error = exc
            return
        self._link_parents(self.tree)
        self.aliases: Dict[str, str] = import_aliases(self.tree)

    @staticmethod
    def _link_parents(tree: ast.AST) -> None:
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                child.repro_parent = parent  # type: ignore[attr-defined]

    @property
    def is_test(self) -> bool:
        return self.name.startswith("tests.") or self.name == "tests"

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def allowed_by_pragma(self, rule_id: str, line: int) -> bool:
        """True when an allow-pragma on the line (or the one above) names
        ``rule_id`` or ``*``."""
        for candidate in (line, line - 1):
            for match in _PRAGMA.finditer(self.line_text(candidate)):
                if match.group(1) in (rule_id, "*"):
                    return True
        return False


class Project:
    """Every analyzed module, plus per-run shared rule state."""

    def __init__(
        self,
        modules: Sequence[SourceModule],
        config: Optional[LintConfig] = None,
    ) -> None:
        self.modules: List[SourceModule] = list(modules)
        #: Per-project rule configuration ([tool.repro-lint]).
        self.config: LintConfig = config if config is not None else LintConfig()
        #: Scratch space keyed by rule id for cross-module analyses.
        self.shared: Dict[str, object] = {}

    def module(self, name: str) -> Optional[SourceModule]:
        for mod in self.modules:
            if mod.name == name:
                return mod
        return None


class Rule:
    """Base class: subclass, set the metadata, implement ``check_module``
    (per-file rules) or override ``run`` (whole-project rules)."""

    id: str = ""
    family: str = ""
    severity: str = SEVERITY_ERROR
    description: str = ""
    hint: str = ""
    #: Dotted-name prefixes the rule applies to (None = every module).
    packages: Optional[Tuple[str, ...]] = None
    #: Whether the rule also runs on ``tests.*`` modules.
    include_tests: bool = False

    def applies_to(self, module: SourceModule) -> bool:
        if module.is_test:
            return self.include_tests
        if self.packages is None:
            return True
        return any(
            module.name == p or module.name.startswith(p + ".")
            for p in self.packages
        )

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.tree is None or not self.applies_to(module):
                continue
            yield from self.check_module(module, project)

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        return iter(())

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        message: str,
        *,
        hint: Optional[str] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.rel,
            line=line,
            col=col,
            message=message,
            hint=self.hint if hint is None else hint,
        )


class ParseErrorRule(Rule):
    """ENG001: a target file failed to parse (always on, never scoped)."""

    id = "ENG001"
    family = "engine"
    severity = SEVERITY_ERROR
    description = "target file contains a Python syntax error"
    hint = "fix the syntax error; unparseable files cannot be analyzed"
    include_tests = True

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.parse_error is None:
                continue
            exc = module.parse_error
            yield Finding(
                rule=self.id,
                severity=self.severity,
                path=module.rel,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
                hint=self.hint,
            )


_REGISTRY: Dict[str, Type[Rule]] = {}
_RULE_MODULES = (
    "repro.lint.rules_determinism",
    "repro.lint.rules_backend",
    "repro.lint.rules_concurrency",
    "repro.lint.rules_units",
)


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    existing = _REGISTRY.get(rule_cls.id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


register(ParseErrorRule)


def load_rules() -> None:
    """Import every rule module (idempotent); fills the registry."""
    import importlib

    for name in _RULE_MODULES:
        importlib.import_module(name)


def all_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered rules, optionally filtered by id/family.

    ``only`` entries match rule ids (``DET001``) or families
    (``determinism``), case-insensitively.  ENG001 always runs.
    """
    load_rules()
    selected: List[Rule] = []
    wanted = {token.strip().lower() for token in only or [] if token.strip()}
    if only is not None and not wanted:
        raise ValueError("--rules selected nothing: empty rule list")
    unknown = set(wanted)
    for rule_id in sorted(_REGISTRY):
        rule = _REGISTRY[rule_id]()
        keys = {rule.id.lower(), rule.family.lower()}
        if not wanted or keys & wanted or rule.id == ParseErrorRule.id:
            selected.append(rule)
        unknown -= keys
    if unknown:
        valid = {cls.id for cls in _REGISTRY.values()} | {
            cls.family for cls in _REGISTRY.values()
        }
        raise ValueError(
            f"unknown rule selector(s): {', '.join(sorted(unknown))}; "
            "valid ids/families: " + ", ".join(sorted(valid))
        )
    return selected


def rule_catalogue() -> List[Dict[str, str]]:
    """Id/family/severity/description for every registered rule."""
    load_rules()
    return [
        {
            "id": rule_cls.id,
            "family": rule_cls.family,
            "severity": rule_cls.severity,
            "description": rule_cls.description,
        }
        for rule_cls in (_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))
    ]


# ---------------------------------------------------------------------------
# Source discovery and module construction
# ---------------------------------------------------------------------------


def iter_python_files(target: str) -> Iterator[str]:
    """Yield ``.py`` files under ``target`` (a file or a directory tree)."""
    if os.path.isfile(target):
        if target.endswith(".py"):
            yield target
        return
    for dirpath, dirnames, filenames in os.walk(target):
        dirnames[:] = sorted(
            d for d in dirnames if not d.startswith(".") and d != "__pycache__"
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def module_name_for(path: str, root: str) -> str:
    """Dotted module name of ``path``: the part after a ``src/`` or repo
    root, with ``__init__`` collapsed onto the package."""
    rel = os.path.relpath(path, root)
    parts = rel.replace(os.sep, "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else os.path.basename(path)


def _read_source(path: str) -> str:
    with tokenize.open(path) as handle:  # honors PEP 263 coding cookies
        return handle.read()


def analyze_paths(
    targets: Sequence[str],
    *,
    root: str,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[Project, List[Finding]]:
    """Parse every file under ``targets`` and run the rules.

    Returns ``(project, findings)``; pragma-suppressed findings are
    already removed, baseline filtering is the caller's business.  Rule
    configuration is read from ``<root>/pyproject.toml`` (the
    ``[tool.repro-lint]`` table); a malformed table raises
    :class:`repro.lint.config.ConfigError` (a ``ValueError``, so the CLI
    reports it as a usage error).
    """
    modules: List[SourceModule] = []
    seen: set[str] = set()
    for target in targets:
        for path in iter_python_files(target):
            real = os.path.realpath(path)
            if real in seen:
                continue
            seen.add(real)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            modules.append(
                SourceModule(
                    path=path,
                    rel=rel,
                    name=module_name_for(path, root),
                    source=_read_source(path),
                )
            )
    project = Project(modules, config=load_config(root))
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    by_rel: Dict[str, SourceModule] = {m.rel: m for m in modules}
    for rule in active:
        for finding in rule.run(project):
            module = by_rel.get(finding.path)
            if module is not None and module.allowed_by_pragma(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return project, _fingerprint(findings, by_rel)


def _fingerprint(
    findings: List[Finding], modules: Dict[str, SourceModule]
) -> List[Finding]:
    """Attach line-number-insensitive fingerprints.

    ``sha256(rule | path | stripped source line | occurrence index)``:
    stable under insertions above the finding, distinct for repeated
    identical lines.
    """
    occurrence: Dict[Tuple[str, str, str], int] = {}
    out: List[Finding] = []
    for finding in findings:
        module = modules.get(finding.path)
        text = module.line_text(finding.line).strip() if module else ""
        key = (finding.rule, finding.path, text)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        digest = hashlib.sha256(
            "|".join([finding.rule, finding.path, text, str(index)]).encode("utf-8")
        ).hexdigest()[:16]
        out.append(
            Finding(
                rule=finding.rule,
                severity=finding.severity,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                hint=finding.hint,
                fingerprint=digest,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Shared AST helpers used by the rule modules
# ---------------------------------------------------------------------------


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted things they are bound to.

    ``import time`` -> ``{"time": "time"}``;
    ``from datetime import datetime as dt`` ->
    ``{"dt": "datetime.datetime"}``.  Only absolute imports are tracked;
    relative imports resolve to their stated module path.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{base}.{item.name}" if base else item.name
    return aliases


def dotted_call_name(
    node: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """Resolve ``Name``/``Attribute`` chains to a dotted path.

    ``datetime.now`` with ``from datetime import datetime`` resolves to
    ``datetime.datetime.now``; unresolvable shapes return ``None``.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    head = aliases.get(parts[0], parts[0])
    return ".".join([head] + parts[1:])


def parent_chain(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s ancestors (nearest first) via the engine's links."""
    current = getattr(node, "repro_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "repro_parent", None)

"""Feasibility validation of schedules against a task set and platform.

A schedule is *feasible* (paper Section 3) when every task completes its
workload inside its feasible region ``[r_i, d_i]`` without exceeding the
maximum speed, and no core runs two things at once.  The validator is the
test suite's ground truth: every scheme -- optimal, heuristic or baseline --
must emit schedules that pass it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.models.task import Task, TaskSet
from repro.schedule.timeline import ExecutionInterval, Schedule

__all__ = [
    "FeasibilityError",
    "validate_schedule",
    "validate_segments",
    "is_feasible",
]

_REL_TOL = 1e-6
_ABS_TOL = 1e-6


class FeasibilityError(AssertionError):
    """Raised when a schedule violates the SDEM feasibility conditions."""


def validate_schedule(
    schedule: Schedule,
    tasks: TaskSet,
    *,
    max_speed: float = float("inf"),
    require_non_preemptive: bool = False,
    rel_tol: float = _REL_TOL,
    abs_tol: float = _ABS_TOL,
) -> None:
    """Raise :class:`FeasibilityError` on any violated condition.

    Checks, in order:

    1. every execution interval names a known task;
    2. intervals respect release times and deadlines;
    3. no interval exceeds ``max_speed``;
    4. each task's executed workload matches its requirement;
    5. optionally, each task occupies exactly one interval on exactly one
       core (the offline non-preemptive, non-migrating model).

    Per-core non-overlap is enforced structurally by
    :class:`~repro.schedule.timeline.CoreTimeline`.
    """
    by_name: Dict[str, Task] = {task.name: task for task in tasks}
    if len(by_name) != len(tasks):
        raise FeasibilityError("task names are not unique")

    pieces: Dict[str, List[int]] = {name: [] for name in by_name}
    executed: Dict[str, float] = {name: 0.0 for name in by_name}

    for core_index, core in enumerate(schedule.cores):
        for interval in core:
            task = by_name.get(interval.task)
            if task is None:
                raise FeasibilityError(f"unknown task {interval.task!r} in schedule")
            if interval.start < task.release - abs_tol:
                raise FeasibilityError(
                    f"{interval.task}: starts at {interval.start} before "
                    f"release {task.release}"
                )
            if interval.end > task.deadline + abs_tol:
                raise FeasibilityError(
                    f"{interval.task}: ends at {interval.end} after "
                    f"deadline {task.deadline}"
                )
            if interval.speed > max_speed * (1.0 + rel_tol) + abs_tol:
                raise FeasibilityError(
                    f"{interval.task}: speed {interval.speed} exceeds "
                    f"s_up {max_speed}"
                )
            executed[interval.task] += interval.workload
            pieces[interval.task].append(core_index)

    for name, task in by_name.items():
        done = executed[name]
        need = task.workload
        if abs(done - need) > max(abs_tol, rel_tol * need):
            raise FeasibilityError(
                f"{name}: executed {done:.6f} kc of required {need:.6f} kc"
            )

    if require_non_preemptive:
        for name, cores_used in pieces.items():
            if len(cores_used) != 1:
                raise FeasibilityError(
                    f"{name}: split into {len(cores_used)} intervals in a "
                    "non-preemptive schedule"
                )
            # single interval implies single core; nothing else to check


def validate_segments(
    segments: Sequence[Tuple[int, ExecutionInterval]],
    tasks: TaskSet,
    *,
    max_speed: float = float("inf"),
    rel_tol: float = _REL_TOL,
    abs_tol: float = _ABS_TOL,
) -> None:
    """Validate raw ``(core, interval)`` segments without a Schedule.

    Applies the same conditions and tolerances as
    :func:`validate_schedule`, plus an explicit per-core overlap check:
    segment tables never pass through
    :class:`~repro.schedule.timeline.CoreTimeline`, which is what enforces
    non-overlap structurally on the full-fat path.  Used by the experiment
    fast path (:func:`repro.sim.engine.simulate_segments`).
    """
    by_name: Dict[str, Task] = {task.name: task for task in tasks}
    if len(by_name) != len(tasks):
        raise FeasibilityError("task names are not unique")

    # Imported lazily: repro.core pulls this module in through its package
    # init, before vectorized would be importable at module scope.
    from repro.core import vectorized

    if vectorized.use_numpy() and len(segments) > vectorized._SMALL_N:
        index_of = {name: i for i, name in enumerate(by_name)}
        seg_task = []
        for _, interval in segments:
            row = index_of.get(interval.task)
            if row is None:
                raise FeasibilityError(
                    f"unknown task {interval.task!r} in schedule"
                )
            seg_task.append(row)
        ordered_tasks = list(by_name.values())
        if vectorized.segments_feasible_batch(
            [t.release for t in ordered_tasks],
            [t.deadline for t in ordered_tasks],
            [t.workload for t in ordered_tasks],
            seg_task,
            [iv.start for _, iv in segments],
            [iv.end for _, iv in segments],
            [iv.speed for _, iv in segments],
            [core for core, _ in segments],
            max_speed=max_speed,
            rel_tol=rel_tol,
            abs_tol=abs_tol,
        ):
            return
        # A violation exists; fall through so the scalar loop below raises
        # the precise, human-readable error.

    executed: Dict[str, float] = {name: 0.0 for name in by_name}
    per_core: Dict[int, List[ExecutionInterval]] = {}

    for core_index, interval in segments:
        task = by_name.get(interval.task)
        if task is None:
            raise FeasibilityError(f"unknown task {interval.task!r} in schedule")
        if interval.start < task.release - abs_tol:
            raise FeasibilityError(
                f"{interval.task}: starts at {interval.start} before "
                f"release {task.release}"
            )
        if interval.end > task.deadline + abs_tol:
            raise FeasibilityError(
                f"{interval.task}: ends at {interval.end} after "
                f"deadline {task.deadline}"
            )
        if interval.speed > max_speed * (1.0 + rel_tol) + abs_tol:
            raise FeasibilityError(
                f"{interval.task}: speed {interval.speed} exceeds "
                f"s_up {max_speed}"
            )
        executed[interval.task] += interval.workload
        per_core.setdefault(core_index, []).append(interval)

    for name, task in by_name.items():
        done = executed[name]
        need = task.workload
        if abs(done - need) > max(abs_tol, rel_tol * need):
            raise FeasibilityError(
                f"{name}: executed {done:.6f} kc of required {need:.6f} kc"
            )

    # CoreTimeline's structural guarantee, reproduced for raw segments:
    # intervals on one core must not overlap (beyond float jitter).
    for core_index, intervals in per_core.items():
        ordered = sorted(intervals, key=lambda iv: iv.start)
        for before, after in zip(ordered, ordered[1:]):
            if after.start < before.end - abs_tol:
                raise FeasibilityError(
                    f"core {core_index}: {before.task} [{before.start}, "
                    f"{before.end}) overlaps {after.task} [{after.start}, "
                    f"{after.end})"
                )


def is_feasible(
    schedule: Schedule,
    tasks: TaskSet,
    *,
    max_speed: float = float("inf"),
    require_non_preemptive: bool = False,
) -> bool:
    """Boolean wrapper over :func:`validate_schedule`."""
    try:
        validate_schedule(
            schedule,
            tasks,
            max_speed=max_speed,
            require_non_preemptive=require_non_preemptive,
        )
    except FeasibilityError:
        return False
    return True

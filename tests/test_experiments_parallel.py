"""Tests for the parallel experiment engine and the result cache.

The load-bearing property is determinism: serial, parallel and
warm-cache runs of the same sweep must produce identical
``SeriesResult.rows()`` output, down to the last bit, because the
engine aggregates work units in seed order regardless of completion
order and the cache round-trips floats exactly.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.cache import (
    CODE_SALT,
    ResultCache,
    default_cache_root,
    platform_fingerprint,
    unit_key,
)
from repro.experiments.config import experiment_platform
from repro.experiments.fig6 import fig6_specs, run_fig6
from repro.experiments.fig7 import fig7_grid_specs
from repro.experiments.parallel import (
    DspstoneTraceSpec,
    PointSpec,
    SyntheticTraceSpec,
    resolve_workers,
    run_series,
    run_unit,
)
from repro.experiments.runner import compare_policies, simulate_unit
from repro.workloads.dspstone import dspstone_trace
from repro.workloads.synthetic import synthetic_tasks


@pytest.fixture
def small_specs():
    return fig6_specs("fft", u_values=[2, 4], instances=12)


class TestTraceSpecs:
    def test_dspstone_spec_matches_legacy_lambda(self):
        """The spec reproduces the historical fig6 seed mapping exactly."""
        u = 5
        spec = DspstoneTraceSpec(
            benchmark="fft",
            utilization_factor=float(u),
            n=12,
            streams=8,
            seed_stride=1009,
            seed_offset=u,
        )
        for seed in (0, 1, 7):
            legacy = dspstone_trace(
                "fft",
                utilization_factor=float(u),
                n=12,
                seed=seed * 1009 + u,
                streams=8,
            )
            assert spec(seed) == legacy

    def test_synthetic_spec_matches_legacy_lambda(self):
        """Same for the fig7 mapping ``seed * 7919 + int(x)``."""
        x = 400.0
        spec = SyntheticTraceSpec(
            n=10, max_interarrival=x, seed_stride=7919, seed_offset=int(x)
        )
        for seed in (0, 3):
            legacy = synthetic_tasks(n=10, max_interarrival=x, seed=seed * 7919 + int(x))
            assert spec(seed) == legacy

    def test_specs_pickle(self):
        import pickle

        spec = DspstoneTraceSpec(benchmark="fft", utilization_factor=2.0, n=4)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_trace_config_is_json_serializable(self):
        spec = SyntheticTraceSpec(n=10, max_interarrival=400.0)
        json.dumps(spec.trace_config())


class TestDeterminism:
    def test_serial_parallel_warm_cache_rows_identical(self, small_specs, tmp_path):
        """The issue's acceptance test: three engines, one answer."""
        cache = ResultCache(str(tmp_path / "cache"))
        serial = run_series("slice", small_specs, seeds=3, max_workers=1)
        parallel = run_series("slice", small_specs, seeds=3, max_workers=2)
        cold = run_series("slice", small_specs, seeds=3, max_workers=2, cache=cache)
        warm = run_series("slice", small_specs, seeds=3, max_workers=1, cache=cache)

        assert serial.rows() == parallel.rows() == cold.rows() == warm.rows()
        # The warm run really came from the cache.
        assert all(p.cached_units == 3 for p in warm.points)
        assert all(p.solver_calls == 0 for p in warm.points)

    def test_run_fig6_parallel_matches_serial(self):
        serial = run_fig6("fft", u_values=[3], seeds=2, instances=10, max_workers=1)
        par = run_fig6("fft", u_values=[3], seeds=2, instances=10, max_workers=2)
        assert serial.rows() == par.rows()

    def test_fig7_specs_deterministic_across_workers(self):
        specs = fig7_grid_specs([(4000.0, 40.0)], [400.0], trace_length=8)
        serial = run_series("g", specs, seeds=2, max_workers=1)
        par = run_series("g", specs, seeds=2, max_workers=2)
        assert serial.rows() == par.rows()

    def test_timing_columns_opt_in(self, small_specs):
        series = run_series("slice", small_specs, seeds=1, max_workers=1)
        plain = series.rows()[0]
        timed = series.rows(include_timing=True)[0]
        for column in ("wall_ms", "solver_calls", "cached_units"):
            assert column not in plain
            assert column in timed


class TestEngineEdges:
    def test_unpicklable_factory_raises_clear_error(self):
        platform = experiment_platform()
        spec = PointSpec(
            label="lambda",
            trace_factory=lambda seed: synthetic_tasks(
                n=4, max_interarrival=200.0, seed=seed
            ),
            platform=platform,
        )
        # Enough units to exceed the inline threshold, so the pool (and
        # hence the pickling check) actually engages.
        with pytest.raises(ValueError, match="picklable"):
            run_series("bad", [spec], seeds=12, max_workers=2)

    def test_tiny_unpicklable_run_stays_inline(self):
        platform = experiment_platform()
        spec = PointSpec(
            label="lambda",
            trace_factory=lambda seed: synthetic_tasks(
                n=4, max_interarrival=200.0, seed=seed
            ),
            platform=platform,
        )
        # <= 8 units run in-process even with max_workers=2, so an
        # unpicklable factory is fine.
        series = run_series("tiny", [spec], seeds=2, max_workers=2)
        assert len(series.points) == 1

    def test_lambda_factory_fine_in_process(self):
        platform = experiment_platform()
        spec = PointSpec(
            label="lambda",
            trace_factory=lambda seed: synthetic_tasks(
                n=4, max_interarrival=200.0, seed=seed
            ),
            platform=platform,
        )
        series = run_series("ok", [spec], seeds=2, max_workers=1)
        assert len(series.points) == 1

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_zero_seeds_rejected(self, small_specs):
        with pytest.raises(ValueError, match="seeds"):
            run_series("none", small_specs, seeds=0)

    def test_empty_trace_raises_clear_message(self):
        platform = experiment_platform()
        with pytest.raises(ValueError, match="empty trace"):
            simulate_unit(lambda seed: [], platform, 0, label="U=0")

    def test_compare_policies_empty_trace_message_names_point(self):
        platform = experiment_platform()
        with pytest.raises(ValueError, match="U=0"):
            compare_policies(
                label="U=0",
                trace_factory=lambda seed: [],
                platform=platform,
                seeds=1,
            )


class TestResultCache:
    def test_key_depends_on_every_component(self):
        platform = experiment_platform()
        other = experiment_platform(alpha_m=5000.0)
        config = {"kind": "synthetic", "n": 10}
        base = unit_key(platform, config, 0, "sdem")
        assert base == unit_key(platform, config, 0, "sdem")
        assert base != unit_key(other, config, 0, "sdem")
        assert base != unit_key(platform, {"kind": "synthetic", "n": 11}, 0, "sdem")
        assert base != unit_key(platform, config, 1, "sdem")
        assert base != unit_key(platform, config, 0, "mbkp")
        assert base != unit_key(platform, config, 0, "sdem", salt=CODE_SALT + "x")

    def test_platform_fingerprint_covers_memory_and_cores(self):
        fingerprint = platform_fingerprint(experiment_platform())
        assert {"alpha_m", "xi_m", "num_cores", "beta", "lam"} <= set(fingerprint)

    def test_roundtrip_preserves_float_bits(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        value = {"total": 0.1 + 0.2, "memory": 1e-17}
        cache.put("ab" + "0" * 62, value)
        got = cache.get("ab" + "0" * 62)
        assert got["total"] == value["total"]
        assert got["memory"] == value["memory"]

    def test_missing_and_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "cd" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, {"total": 1.0})
        path = os.path.join(cache.root, key[:2], key[2:] + ".json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.get(key) is None

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        for index in range(3):
            cache.put(f"{index:02x}" + "0" * 62, {"total": float(index)})
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert "entries" in stats.render()
        assert cache.clear() == 3
        assert cache.stats().entries == 0

    def test_default_cache_root_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_root("/somewhere/else") == str(tmp_path / "env")
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_root(str(tmp_path)) == str(tmp_path / ".cache")

    def test_run_unit_all_or_nothing(self, small_specs, tmp_path):
        """A unit only counts as cached when all three policies hit."""
        cache = ResultCache(str(tmp_path / "c"))
        spec = small_specs[0]
        first = run_unit(spec, 0, cache)
        assert not first.from_cache
        # Drop one policy's entry: the unit must re-simulate.
        config = spec.trace_factory.trace_config()
        key = cache.unit_key(spec.platform, config, 0, "mbkp")
        os.unlink(os.path.join(cache.root, key[:2], key[2:] + ".json"))
        partial = run_unit(spec, 0, cache)
        assert not partial.from_cache
        full = run_unit(spec, 0, cache)
        assert full.from_cache
        assert full.totals == first.totals
        assert full.memory == first.memory

    def test_cache_pickles_without_counters(self, tmp_path):
        import pickle

        cache = ResultCache(str(tmp_path / "c"))
        cache.misses = 5
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.root == cache.root
        assert clone.misses == 0

"""Figure 6b: system-wide energy saving vs utilization U (FFT & matmul).

Paper's reading: SDEM-ON saves ~23% system energy on average over MBKPS;
unlike the memory-only view of Fig. 6a, the *system* advantage is largest
when the system is busy (small U), because that is where balancing core
speed against memory sleep pays on both sides.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import U_SWEEP, run_fig6, write_csv

from conftest import emit


@pytest.mark.parametrize("bench", ["fft", "matmul"])
def test_fig6b_system_saving(benchmark, bench, seeds, full_scale, results_dir):
    u_values = U_SWEEP if full_scale else [2, 4, 6, 9]
    instances = 64 if full_scale else 32

    series = benchmark.pedantic(
        lambda: run_fig6(bench, u_values=u_values, seeds=seeds, instances=instances),
        rounds=1,
        iterations=1,
    )

    write_csv(series, os.path.join(results_dir, f"fig6b_{bench}.csv"))
    emit(
        f"Fig 6b ({bench}): system-wide energy saving vs MBKP (%)",
        (
            f"  {p.label:<6s} SDEM-ON {p.sdem_system_saving:7.2f}%   "
            f"MBKPS {p.mbkps_system_saving:7.2f}%   "
            f"SDEM-ON vs MBKPS {p.sdem_vs_mbkps_improvement:6.2f}%"
            for p in series.points
        ),
    )
    print(
        f"  mean SDEM-ON improvement over MBKPS: "
        f"{series.mean_improvement():.2f}% (paper: 23.45%)"
    )

    # Shape assertions from Section 8.2.
    for p in series.points:
        assert p.sdem_total < p.mbkps_total  # SDEM-ON wins everywhere
        assert p.sdem_total < p.mbkp_total
    # MBKPS does comparatively worse when the system is busy (U = first
    # point): fewer/shorter gaps to sleep and the same per-gap overhead.
    # (For matmul-sized tasks MBKPS sits below MBKP at *every* U -- its
    # ~20 ms gaps never amortize the 40 ms break-even.)
    first, last = series.points[0], series.points[-1]
    assert first.mbkps_system_saving < last.mbkps_system_saving + 20.0
    assert series.mean_improvement() > 0.0

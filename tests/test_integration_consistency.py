"""Cross-scheme integration tests.

These tie the whole library together: different solvers attacking the same
instance must relate in the ways the theory dictates --

* the online heuristic can never beat the offline optimum (it *equals* it
  on single-batch instances, because the relaxation is then exact);
* the agreeable DP can never lose to the online heuristic on agreeable
  traces (the DP is optimal among all schedules, online or not, in the
  free-transition model);
* every scheme's output is priced by the same accountant over the same
  horizon, so the comparisons are apples to apples.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import mbkp, mbkps
from repro.core import (
    SdemOnlinePolicy,
    solve_agreeable,
    solve_common_release,
)
from repro.energy import SleepPolicy, account
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.sim import simulate


def make_platform(alpha=0.0, alpha_m=20.0):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=1500.0),
        MemoryModel(alpha_m=alpha_m),
        num_cores=None,
    )


def random_agreeable_trace(rng: random.Random, n: int) -> list:
    releases = sorted(rng.uniform(0.0, 300.0) for _ in range(n))
    tasks, last_d = [], 0.0
    for k, r in enumerate(releases):
        d = max(r + rng.uniform(15.0, 90.0), last_d + 0.5)
        tasks.append(Task(r, d, rng.uniform(500.0, 4000.0), f"J{k}"))
        last_d = d
    return tasks


class TestOnlineVsOffline:
    @pytest.mark.parametrize("alpha", [0.0, 5.0])
    def test_online_equals_offline_on_single_batch(self, alpha):
        platform = make_platform(alpha=alpha)
        rng = random.Random(1)
        for _ in range(5):
            tasks = [
                Task(0.0, rng.uniform(20.0, 120.0), rng.uniform(500.0, 4000.0), f"J{k}")
                for k in range(rng.randint(1, 6))
            ]
            horizon = (0.0, max(t.deadline for t in tasks))
            online = simulate(
                SdemOnlinePolicy(platform), tasks, platform, horizon=horizon
            )
            offline = solve_common_release(TaskSet(tasks), platform)
            assert online.total_energy == pytest.approx(
                offline.predicted_energy, rel=1e-6
            )

    @pytest.mark.parametrize("alpha", [0.0, 5.0])
    def test_agreeable_dp_never_loses_to_online(self, alpha):
        """Offline optimal <= online heuristic on agreeable traces."""
        platform = make_platform(alpha=alpha)
        rng = random.Random(7)
        for _ in range(4):
            trace = random_agreeable_trace(rng, rng.randint(2, 6))
            ts = TaskSet(trace)
            horizon = (0.0, ts.latest_deadline)
            dp = solve_agreeable(ts, platform)
            offline_cost = account(
                dp.schedule(), platform, horizon=horizon
            ).total
            online = simulate(
                SdemOnlinePolicy(platform), trace, platform, horizon=horizon
            )
            assert offline_cost <= online.total_energy * (1.0 + 1e-6)

    def test_online_beats_baselines_on_agreeable_traces(self):
        platform = Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=5.0, s_up=1500.0),
            MemoryModel(alpha_m=20.0),
            num_cores=8,
        )
        rng = random.Random(11)
        for _ in range(3):
            trace = random_agreeable_trace(rng, 8)
            horizon = (0.0, max(t.deadline for t in trace))
            on = simulate(SdemOnlinePolicy(platform), trace, platform, horizon=horizon)
            kp = simulate(mbkp(platform), trace, platform, horizon=horizon)
            ks = simulate(mbkps(platform), trace, platform, horizon=horizon)
            assert on.total_energy <= kp.total_energy
            assert on.total_energy <= ks.total_energy


class TestAccountantUniformity:
    def test_same_schedule_same_price_for_all_policies(self):
        """MBKP and MBKPS must emit byte-identical schedules; the entire
        difference must be the memory accounting policy."""
        platform = Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=5.0, s_up=1500.0),
            MemoryModel(alpha_m=20.0, xi_m=3.0),
            num_cores=4,
        )
        rng = random.Random(13)
        trace = random_agreeable_trace(rng, 7)
        horizon = (0.0, max(t.deadline for t in trace))
        r_kp = simulate(mbkp(platform), trace, platform, horizon=horizon)
        r_ks = simulate(mbkps(platform), trace, platform, horizon=horizon)
        iv_kp = sorted(
            (iv.task, iv.start, iv.end, iv.speed)
            for iv in r_kp.schedule.all_intervals()
        )
        iv_ks = sorted(
            (iv.task, iv.start, iv.end, iv.speed)
            for iv in r_ks.schedule.all_intervals()
        )
        assert iv_kp == iv_ks
        assert r_kp.breakdown.core_total == pytest.approx(
            r_ks.breakdown.core_total
        )
        assert r_kp.breakdown.memory_total != pytest.approx(
            r_ks.breakdown.memory_total
        )

    def test_energy_monotone_in_alpha_m_for_fixed_schedule(self):
        platform_small = make_platform(alpha_m=1.0)
        platform_big = make_platform(alpha_m=50.0)
        tasks = TaskSet([Task(0.0, 50.0, 2000.0), Task(0.0, 90.0, 1500.0)])
        sched = solve_common_release(tasks, platform_small).schedule()
        horizon = (0.0, 90.0)
        small = account(sched, platform_small, horizon=horizon).total
        big = account(sched, platform_big, horizon=horizon).total
        assert big > small

    def test_optimal_energy_monotone_in_alpha_m(self):
        """The *optimal* energy is also monotone in memory power."""
        tasks = TaskSet([Task(0.0, 50.0, 2000.0), Task(0.0, 90.0, 1500.0)])
        previous = -1.0
        for alpha_m in [0.5, 2.0, 8.0, 32.0, 128.0]:
            sol = solve_common_release(tasks, make_platform(alpha_m=alpha_m))
            assert sol.predicted_energy > previous
            previous = sol.predicted_energy

    def test_optimal_delta_monotone_in_alpha_m(self):
        """Hungrier memory -> longer optimal sleep (never shorter)."""
        tasks = TaskSet([Task(0.0, 50.0, 2000.0), Task(0.0, 90.0, 1500.0)])
        previous = -1.0
        for alpha_m in [0.5, 2.0, 8.0, 32.0, 128.0]:
            sol = solve_common_release(tasks, make_platform(alpha_m=alpha_m))
            assert sol.delta >= previous - 1e-9
            previous = sol.delta


class TestEndToEndPipeline:
    def test_generate_solve_quantize_price(self):
        """The README pipeline: generate -> solve -> discretize -> price."""
        from repro.core.discrete import a57_levels, quantize_schedule
        from repro.models import paper_platform
        from repro.schedule import validate_schedule

        platform = paper_platform(xi=0.0, xi_m=0.0)
        tasks = TaskSet(
            [Task(0.0, 40.0, 8000.0, "a"), Task(0.0, 70.0, 15000.0, "b")]
        )
        solution = solve_common_release(tasks, platform)
        continuous = solution.schedule()
        validate_schedule(continuous, tasks, max_speed=1900.0)
        discrete = quantize_schedule(continuous, a57_levels())
        validate_schedule(discrete, tasks, max_speed=1900.0)
        horizon = (0.0, 70.0)
        e_cont = account(continuous, platform, horizon=horizon).total
        e_disc = account(discrete, platform, horizon=horizon).total
        # Quantization costs a little dynamic energy but may shorten busy
        # time (round-up); both effects are small.
        assert e_disc == pytest.approx(e_cont, rel=0.05)

"""Scalar-vs-numpy agreement for the vectorized numeric core.

The scalar solvers are the paper-fidelity reference; the numpy backend
(:mod:`repro.core.vectorized`) must reproduce them to 1e-9 relative on
randomized task sets -- energies, chosen sleep lengths, and per-task
speeds alike.  Every test here is skipped wholesale when numpy is not
importable (the scalar-only CI leg).
"""

from __future__ import annotations

import random

import pytest

from repro.core import vectorized
from repro.core.agreeable import solve_agreeable
from repro.core.blocks import block_energy, block_energy_cache_clear, solve_block
from repro.core.common_release import solve_common_release
from repro.core.transition import solve_common_release_with_overhead
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet

pytestmark = pytest.mark.skipif(
    not vectorized.HAS_NUMPY, reason="numpy backend unavailable"
)

REL_TOL = 1e-9


@pytest.fixture(autouse=True)
def _reset_backend():
    """Leave the process on auto selection no matter how a test exits."""
    yield
    vectorized.set_backend(None)


def make_platform(
    alpha: float,
    alpha_m: float = 10.0,
    s_up: float = 1000.0,
    xi: float = 0.0,
    xi_m: float = 0.0,
) -> Platform:
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=s_up, xi=xi),
        MemoryModel(alpha_m=alpha_m, xi_m=xi_m),
    )


def random_agreeable_tasks(rng: random.Random, n: int) -> TaskSet:
    releases = sorted(rng.uniform(0.0, 60.0) for _ in range(n))
    deadlines = []
    last_d = 0.0
    for r in releases:
        d = max(r + rng.uniform(5.0, 60.0), last_d + rng.uniform(0.1, 5.0))
        deadlines.append(d)
        last_d = d
    return TaskSet(
        Task(r, d, rng.uniform(50.0, 3000.0))
        for r, d in zip(releases, deadlines)
    )


def random_common_release_tasks(rng: random.Random, n: int) -> TaskSet:
    release = rng.uniform(0.0, 20.0)
    return TaskSet(
        Task(release, release + rng.uniform(5.0, 80.0), rng.uniform(50.0, 3000.0))
        for _ in range(n)
    )


def per_backend(solve):
    """Evaluate ``solve()`` under each backend with cold memo caches."""
    results = {}
    for backend in ("scalar", "numpy"):
        vectorized.set_backend(backend)
        block_energy_cache_clear()
        vectorized.block_arrays_cache_clear()
        results[backend] = solve()
    return results["scalar"], results["numpy"]


def assert_close(scalar: float, numpy: float) -> None:
    assert numpy == pytest.approx(scalar, rel=REL_TOL, abs=1e-9)


class TestBlockEnergyAgreement:
    @pytest.mark.parametrize("alpha", [0.0, 2.0])
    @pytest.mark.parametrize("seed", range(5))
    def test_block_energy_random(self, alpha, seed):
        rng = random.Random(1000 + seed)
        platform = make_platform(alpha)
        ts = random_agreeable_tasks(rng, rng.randint(1, 9))
        lo = min(t.release for t in ts)
        hi = max(t.deadline for t in ts)
        probes = [
            (lo + f * (hi - lo) * 0.3, hi - g * (hi - lo) * 0.3)
            for f, g in [(0.0, 0.0), (0.5, 0.5), (1.0, 0.2), (0.2, 1.0)]
        ]
        for start, end in probes:
            s_val, n_val = per_backend(
                lambda: block_energy(ts, platform, start, end)
            )
            assert_close(s_val, n_val)


class TestSolveBlockAgreement:
    @pytest.mark.parametrize("alpha", [0.0, 2.0])
    @pytest.mark.parametrize("method", ["descent", "pairs"])
    @pytest.mark.parametrize("seed", range(4))
    def test_solve_block_random(self, alpha, method, seed):
        rng = random.Random(2000 + seed)
        platform = make_platform(alpha)
        ts = random_agreeable_tasks(rng, rng.randint(1, 7))
        s_sol, n_sol = per_backend(
            lambda: solve_block(ts, platform, method=method)
        )
        # The optimum value must agree; the argmin may differ on a flat
        # stretch of the objective, so cross-check numpy's chosen busy
        # interval by re-pricing it with the scalar reference instead.
        assert_close(s_sol.energy, n_sol.energy)
        vectorized.set_backend("scalar")
        block_energy_cache_clear()
        repriced = block_energy(ts, platform, n_sol.start, n_sol.end)
        assert repriced == pytest.approx(n_sol.energy, rel=1e-6)


class TestCommonReleaseAgreement:
    @pytest.mark.parametrize("alpha", [0.0, 0.2])
    @pytest.mark.parametrize("seed", range(6))
    def test_solve_common_release_random(self, alpha, seed):
        rng = random.Random(3000 + seed)
        platform = make_platform(alpha)
        ts = random_common_release_tasks(rng, rng.randint(1, 9))
        s_sol, n_sol = per_backend(lambda: solve_common_release(ts, platform))
        assert_close(s_sol.predicted_energy, n_sol.predicted_energy)
        assert n_sol.delta == pytest.approx(s_sol.delta, rel=1e-6, abs=1e-6)
        for name, speed in s_sol.speeds.items():
            assert n_sol.speeds[name] == pytest.approx(speed, rel=REL_TOL)

    @pytest.mark.parametrize(
        "alpha,xi,xi_m",
        [(0.0, 0.0, 12.0), (0.2, 0.7, 12.0), (310.0, 0.0, 40.0)],
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_solve_with_overhead_random(self, alpha, xi, xi_m, seed):
        rng = random.Random(4000 + seed)
        s_up = 1900.0 if alpha > 1.0 else 1000.0
        platform = make_platform(
            alpha, alpha_m=40.0, s_up=s_up, xi=xi, xi_m=xi_m
        )
        ts = random_common_release_tasks(rng, rng.randint(1, 9))
        if not ts.is_feasible_at(platform.core.s_up):
            pytest.skip("draw infeasible at s_up")
        s_sol, n_sol = per_backend(
            lambda: solve_common_release_with_overhead(ts, platform)
        )
        assert_close(s_sol.predicted_energy, n_sol.predicted_energy)
        for name, speed in s_sol.speeds.items():
            assert n_sol.speeds[name] == pytest.approx(speed, rel=REL_TOL)


class TestAgreeableDpAgreement:
    @pytest.mark.parametrize("alpha", [0.0, 2.0])
    @pytest.mark.parametrize("seed", range(3))
    def test_solve_agreeable_random(self, alpha, seed):
        rng = random.Random(5000 + seed)
        platform = make_platform(alpha)
        ts = random_agreeable_tasks(rng, rng.randint(2, 7))
        s_sol, n_sol = per_backend(lambda: solve_agreeable(ts, platform))
        assert_close(s_sol.predicted_energy, n_sol.predicted_energy)
        assert n_sol.num_blocks == s_sol.num_blocks


class TestBackendSelection:
    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(vectorized.BACKEND_ENV, "scalar")
        vectorized.set_backend(None)
        assert vectorized.get_backend() == "scalar"
        monkeypatch.setenv(vectorized.BACKEND_ENV, "numpy")
        assert vectorized.get_backend() == "numpy"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(vectorized.BACKEND_ENV, "scalar")
        vectorized.set_backend("numpy")
        assert vectorized.use_numpy()
        assert vectorized.get_backend_override() == "numpy"
        vectorized.set_backend(None)
        assert vectorized.get_backend() == "scalar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown numeric backend"):
            vectorized.set_backend("cupy")

    def test_cache_key_depends_on_backend(self):
        from repro.experiments.cache import unit_key
        from repro.models import paper_platform

        platform = paper_platform()
        config = {"kind": "synthetic", "n": 4}
        vectorized.set_backend("scalar")
        scalar_key = unit_key(platform, config, 0, "sdem-on")
        vectorized.set_backend("numpy")
        numpy_key = unit_key(platform, config, 0, "sdem-on")
        assert scalar_key != numpy_key

#!/usr/bin/env python3
"""Server bursts: the Figure 7 sweep at example scale.

Synthetic sporadic request batches (Section 8.1.2 parameters) arrive at an
8-core server; we sweep the load knob ``x`` (max inter-arrival time) and
the DRAM size knob ``alpha_m`` and watch where SDEM-ON's advantage over
the memory-oblivious MBKP baseline comes from.

Run:  python examples/server_burst_scheduling.py
"""

from __future__ import annotations

from repro import SdemOnlinePolicy, mbkp, mbkps, simulate
from repro.experiments import experiment_platform
from repro.workloads import synthetic_tasks, utilization_of


def main() -> None:
    print("8-core server, 50-task synthetic traces, Table 4 parameters\n")
    header = (
        f"{'x (ms)':>7s} {'alpha_m':>8s} {'util':>6s} "
        f"{'SDEM-ON':>10s} {'MBKPS':>10s} {'MBKP':>10s} "
        f"{'saving':>8s} {'sleep%':>7s}"
    )
    print(header)
    for alpha_m_w in (1.0, 4.0, 8.0):
        for x in (100.0, 400.0, 800.0):
            platform = experiment_platform(alpha_m=alpha_m_w * 1000.0)
            trace = synthetic_tasks(n=50, max_interarrival=x, seed=42)
            horizon = (
                min(t.release for t in trace),
                max(t.deadline for t in trace),
            )
            on = simulate(SdemOnlinePolicy(platform), trace, platform, horizon=horizon)
            ks = simulate(mbkps(platform), trace, platform, horizon=horizon)
            kp = simulate(mbkp(platform), trace, platform, horizon=horizon)
            util = utilization_of(trace, num_cores=8, speed=platform.core.s_up)
            horizon_len = horizon[1] - horizon[0]
            sleep_pct = on.breakdown.memory_sleep_time / horizon_len * 100.0
            saving = (1.0 - on.total_energy / kp.total_energy) * 100.0
            print(
                f"{x:7.0f} {alpha_m_w:7.0f}W {util:6.3f} "
                f"{on.total_energy / 1000.0:9.1f}m {ks.total_energy / 1000.0:9.1f}m "
                f"{kp.total_energy / 1000.0:9.1f}m {saving:7.1f}% {sleep_pct:6.1f}%"
            )
        print()
    print("Reading the table: the saving over MBKP grows with both the")
    print("memory's appetite (alpha_m) and the amount of idle time (x);")
    print("SDEM-ON converts idle time into aligned DRAM sleep.")


if __name__ == "__main__":
    main()

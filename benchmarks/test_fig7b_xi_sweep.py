"""Figure 7b: synthetic tasks, (memory break-even time) x (utilization).

Paper's reading: SDEM-ON improves on MBKPS by ~10.52% on average and
"there is basically no difference with the varying of break-even time"
-- the improvement is flat in xi_m.
"""

from __future__ import annotations

import os

from repro.experiments import X_SWEEP_MS, XI_M_SWEEP_MS, run_fig7b, write_csv

from conftest import emit


def test_fig7b_xi_sweep(benchmark, seeds, full_scale, results_dir):
    xi_values = XI_M_SWEEP_MS if full_scale else [15.0, 40.0, 70.0]
    x_values = X_SWEEP_MS if full_scale else [100.0, 400.0, 800.0]
    trace_length = 50 if full_scale else 30

    series = benchmark.pedantic(
        lambda: run_fig7b(
            xi_m_values=xi_values,
            x_values=x_values,
            seeds=seeds,
            trace_length=trace_length,
        ),
        rounds=1,
        iterations=1,
    )

    write_csv(series, os.path.join(results_dir, "fig7b.csv"))
    emit(
        "Fig 7b: system energy saving vs MBKP (%) over xi_m x utilization",
        (
            f"  {p.label:<34s} SDEM-ON {p.sdem_system_saving:7.2f}%  "
            f"MBKPS {p.mbkps_system_saving:7.2f}%  "
            f"improvement {p.sdem_vs_mbkps_improvement:6.2f}%"
            for p in series.points
        ),
    )
    print(
        f"  mean SDEM-ON improvement over MBKPS: "
        f"{series.mean_improvement():.2f}% (paper: 10.52%)"
    )

    for p in series.points:
        assert p.sdem_total < p.mbkps_total
    assert series.mean_improvement() > 0.0

    # Flat in xi_m: group by xi_m and compare each group's mean improvement
    # against the overall mean; no group should stray wildly.
    n_x = len(x_values)
    overall = series.mean_improvement()
    for g in range(len(xi_values)):
        group = series.points[g * n_x : (g + 1) * n_x]
        group_mean = sum(p.sdem_vs_mbkps_improvement for p in group) / n_x
        assert abs(group_mean - overall) < 25.0

"""CON001-CON004: the solve service's locking-discipline rules."""

from __future__ import annotations

from tests.lint_helpers import run_lint, rule_ids


class TestLockOrderCON001:
    def test_opposite_nesting_orders_flagged(self, tmp_path):
        source = """
            import threading

            a_lock = threading.Lock()
            b_lock = threading.Lock()

            def forward():
                with a_lock:
                    with b_lock:
                        pass

            def backward():
                with b_lock:
                    with a_lock:
                        pass
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["CON001"]
        )
        assert "CON001" in rule_ids(findings)

    def test_consistent_order_allowed(self, tmp_path):
        source = """
            import threading

            a_lock = threading.Lock()
            b_lock = threading.Lock()

            def one():
                with a_lock:
                    with b_lock:
                        pass

            def two():
                with a_lock:
                    with b_lock:
                        pass
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["CON001"]
        )
        assert findings == []

    def test_multi_item_with_counts_as_ordered(self, tmp_path):
        source = """
            import threading

            a_lock = threading.Lock()
            b_lock = threading.Lock()

            def one():
                with a_lock, b_lock:
                    pass

            def two():
                with b_lock:
                    with a_lock:
                        pass
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["CON001"]
        )
        assert "CON001" in rule_ids(findings)

    def test_out_of_scope_package_not_flagged(self, tmp_path):
        source = """
            import threading

            a_lock = threading.Lock()
            b_lock = threading.Lock()

            def forward():
                with a_lock:
                    with b_lock:
                        pass

            def backward():
                with b_lock:
                    with a_lock:
                        pass
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/experiments/m.py": source}, rules=["CON001"]
        )
        assert findings == []


class TestLockAcrossAwaitCON002:
    def test_await_under_sync_lock_flagged(self, tmp_path):
        source = """
            import asyncio

            class Server:
                async def respond(self, payload):
                    with self._lock:
                        await self._send(payload)
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["CON002"]
        )
        assert rule_ids(findings) == ["CON002"]

    def test_async_with_allowed(self, tmp_path):
        source = """
            import asyncio

            class Server:
                async def respond(self, payload):
                    async with self._write_lock:
                        await self._send(payload)
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["CON002"]
        )
        assert findings == []

    def test_sync_function_not_flagged(self, tmp_path):
        source = """
            class Worker:
                def publish(self, payload):
                    with self._lock:
                        self._send(payload)
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["CON002"]
        )
        assert findings == []

    def test_nested_def_inside_with_not_flagged(self, tmp_path):
        source = """
            class Server:
                async def respond(self, payload):
                    with self._lock:
                        async def later():
                            await self._send(payload)
                        self._task = later
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["CON002"]
        )
        assert findings == []


class TestMetricsLockCON003:
    def test_unlocked_mutation_flagged(self, tmp_path):
        source = """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    self._count += 1
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/metrics.py": source}, rules=["CON003"]
        )
        assert rule_ids(findings) == ["CON003"]

    def test_locked_mutation_allowed(self, tmp_path):
        source = """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/metrics.py": source}, rules=["CON003"]
        )
        assert findings == []

    def test_subscript_assignment_flagged(self, tmp_path):
        source = """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._metrics = {}

                def register(self, name, metric):
                    self._metrics[name] = metric
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/metrics.py": source}, rules=["CON003"]
        )
        assert rule_ids(findings) == ["CON003"]

    def test_init_assignments_exempt(self, tmp_path):
        source = """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0
                    self._recent = []
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/metrics.py": source}, rules=["CON003"]
        )
        assert findings == []

    def test_lockless_class_exempt(self, tmp_path):
        source = """
            class Snapshot:
                def refresh(self, value):
                    self._value = value
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/metrics.py": source}, rules=["CON003"]
        )
        assert findings == []


class TestSwallowedExceptionCON004:
    def test_except_exception_pass_flagged(self, tmp_path):
        source = """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    pass
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["CON004"]
        )
        assert rule_ids(findings) == ["CON004"]

    def test_bare_except_continue_flagged(self, tmp_path):
        source = """
            def drain(items):
                for item in items:
                    try:
                        item.close()
                    except:
                        continue
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["CON004"]
        )
        assert rule_ids(findings) == ["CON004"]

    def test_handled_broad_except_allowed(self, tmp_path):
        source = """
            import logging

            def load(path):
                try:
                    return open(path).read()
                except Exception as exc:
                    logging.warning("load failed: %s", exc)
                    return None
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["CON004"]
        )
        assert findings == []

    def test_narrow_except_pass_allowed(self, tmp_path):
        source = """
            import os

            def cleanup(path):
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["CON004"]
        )
        assert findings == []

    def test_runs_on_tests_too(self, tmp_path):
        source = """
            def test_something():
                try:
                    assert 1 == 1
                except Exception:
                    pass
        """
        findings = run_lint(
            str(tmp_path), {"tests/test_sample.py": source}, rules=["CON004"]
        )
        assert rule_ids(findings) == ["CON004"]


class TestShardSharedStateCON005:
    def test_module_level_dict_literal_flagged(self, tmp_path):
        source = """
            _MEMO = {}

            def lookup(key):
                return _MEMO.get(key)
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/shard.py": source}, rules=["CON005"]
        )
        assert rule_ids(findings) == ["CON005"]

    def test_annotated_and_constructor_bindings_flagged(self, tmp_path):
        source = """
            from collections import defaultdict
            from typing import Dict

            _BY_SHARD: Dict[str, int] = dict()
            _QUEUES = defaultdict(list)
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/ring.py": source}, rules=["CON005"]
        )
        assert rule_ids(findings) == ["CON005", "CON005"]

    def test_class_level_list_flagged(self, tmp_path):
        source = """
            class Pool:
                pending = []
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/shard.py": source}, rules=["CON005"]
        )
        assert rule_ids(findings) == ["CON005"]

    def test_function_locals_and_immutables_allowed(self, tmp_path):
        source = """
            VNODES = 128
            NAMES = ("a", "b")

            def build():
                local = {}
                local["x"] = 1
                return local
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/shard.py": source}, rules=["CON005"]
        )
        assert findings == []

    def test_sanctioned_channels_allowed(self, tmp_path):
        source = """
            from repro.service.cache import ResultCache
            from repro.service.metrics import MetricsRegistry

            _CACHE = ResultCache("/tmp/cache")
            _METRICS = MetricsRegistry()
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/shard.py": source}, rules=["CON005"]
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        source = """
            # repro-lint: allow[CON005] per-process memo by design
            _MEMO = {}
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/shard.py": source}, rules=["CON005"]
        )
        assert findings == []

    def test_out_of_scope_module_not_flagged(self, tmp_path):
        source = """
            _MEMO = {}
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/batcher.py": source}, rules=["CON005"]
        )
        assert findings == []

    def test_dunder_all_exempt(self, tmp_path):
        source = """
            __all__ = ["one", "two"]
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/shard.py": source}, rules=["CON005"]
        )
        assert findings == []

"""Shared numeric utilities for the SDEM reproduction.

The solvers in :mod:`repro.utils.solvers` implement the small amount of
numerical machinery the paper's closed-form schemes need: guarded bisection
for monotone root finding (used for the first-order conditions of
Eqs. (12)-(15)), a golden-section minimizer for unimodal one-dimensional
objectives, and helpers for safe power evaluation near domain boundaries.
"""

from repro.utils.solvers import (
    bisect_increasing,
    golden_section_minimize,
    minimize_convex_1d,
    minimize_convex_2d_box,
    record_solver_call,
    reset_solver_counts,
    solver_call_counts,
    solver_call_total,
)

__all__ = [
    "bisect_increasing",
    "golden_section_minimize",
    "minimize_convex_1d",
    "minimize_convex_2d_box",
    "record_solver_call",
    "reset_solver_counts",
    "solver_call_counts",
    "solver_call_total",
]

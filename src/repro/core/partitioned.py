"""Bounded-core heuristic for common-release tasks with individual
deadlines.

Theorem 1 makes the bounded-core SDEM problem NP-hard even in its
simplest form, so beyond the exact (exponential) solver for the
common-deadline case (:mod:`repro.core.bounded`) a practical system needs
a heuristic.  This module provides one for the common-release /
individual-deadline model on ``C`` cores:

1. **Partition** tasks across cores -- LPT on workloads by default (the
   balance criterion Eq. (3) rewards), or the exact partitioner for small
   instances;
2. **Chain** each core's tasks in EDF order;
3. **Couple** the cores through one memory busy-end parameter ``b``: for
   a given ``b``, each core runs the YDS-optimal schedule of its chain
   with every deadline clamped to ``min(d_i, b)`` -- the cheapest way for
   that core to be silent after ``b`` -- and the memory sleeps
   ``[b, horizon]``.  The total energy is scanned/refined over ``b``.

The result upper-bounds the (intractable) optimum and collapses to the
Section 4.1 optimum when ``C >= n`` (each chain is a single task, so
clamping reproduces the aligned/filled case split exactly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence, Tuple

from repro.core.bounded import partition_tasks
from repro.models.platform import Platform
from repro.models.task import Task, TaskSet
from repro.schedule.timeline import CoreTimeline, ExecutionInterval, Schedule
from repro.speed_scaling.online import staircase_speeds
from repro.utils.solvers import golden_section_minimize

__all__ = ["PartitionedSolution", "solve_partitioned_common_release"]

_INF = float("inf")


@dataclass(frozen=True)
class PartitionedSolution:
    """Heuristic bounded-core schedule for common-release tasks."""

    tasks: TaskSet
    groups: Tuple[Tuple[int, ...], ...]
    busy_end: float
    predicted_energy: float
    schedule_obj: Schedule

    def schedule(self) -> Schedule:
        return self.schedule_obj


def _chain_plan(
    chain: Sequence[Task],
    release: float,
    busy_end: float,
    s_up: float,
) -> Optional[List[Tuple[Task, float, float, float]]]:
    """YDS plan of one core's chain with deadlines clamped to ``busy_end``.

    Returns ``(task, start, end, speed)`` tuples or ``None`` if infeasible
    (some clamped deadline unreachable even at ``s_up``).
    """
    jobs = [
        (t.name, min(t.deadline, release + busy_end), t.workload) for t in chain
    ]
    if any(deadline <= release for _, deadline, _ in jobs):
        return None
    try:
        speeds = staircase_speeds(jobs, release)
    except ValueError:
        return None
    by_name = {t.name: t for t in chain}
    plan: List[Tuple[Task, float, float, float]] = []
    cursor = release
    for name, speed in speeds:
        if speed > s_up * (1.0 + 1e-9):
            return None
        task = by_name[name]
        duration = task.workload / speed
        plan.append((task, cursor, cursor + duration, speed))
        cursor += duration
    return plan


def solve_partitioned_common_release(
    tasks: TaskSet,
    platform: Platform,
    *,
    method: Literal["lpt", "exact"] = "lpt",
    grid: int = 400,
) -> PartitionedSolution:
    """Bounded-core heuristic (see module docstring).

    Requires ``platform.num_cores`` finite, common releases and
    ``alpha = 0`` (the regime Theorem 1 addresses; per-core static power
    would additionally couple chain spacing, which the heuristic does not
    model).
    """
    if platform.num_cores is None:
        raise ValueError("partitioned solver needs a finite num_cores")
    if not tasks.has_common_release():
        raise ValueError("partitioned solver requires a common release time")
    if platform.core.alpha != 0.0:
        raise ValueError("partitioned heuristic assumes alpha = 0")

    core = platform.core
    alpha_m = platform.memory.alpha_m
    release = tasks[0].release
    horizon = tasks.latest_deadline - release

    workloads = tasks.workloads()
    groups = partition_tasks(
        workloads, platform.num_cores, lam=core.lam, method=method
    )
    chains: List[List[Task]] = [
        sorted((tasks[i] for i in group), key=lambda t: t.deadline)
        for group in groups
    ]

    def energy_at(busy_end: float) -> float:
        if busy_end <= 0.0:
            return _INF
        total = alpha_m * busy_end
        for chain in chains:
            if not chain:
                continue
            plan = _chain_plan(chain, release, busy_end, core.s_up)
            if plan is None:
                return _INF
            for _task, start, end, speed in plan:
                total += core.dynamic_power(speed) * (end - start)
        return total

    # The chains' total work at s_up lower-bounds the busy end.
    min_busy = max(
        (sum(t.workload for t in chain) / core.s_up for chain in chains if chain),
        default=0.0,
    )
    best_b, best_e = horizon, energy_at(horizon)
    lo = max(min_busy, 1e-9)
    step = (horizon - lo) / grid if horizon > lo else 0.0
    for k in range(grid + 1):
        b = lo + step * k
        e = energy_at(b)
        if e < best_e:
            best_b, best_e = b, e
    if step > 0.0:
        window_lo = max(lo, best_b - 2.0 * step)
        window_hi = min(horizon, best_b + 2.0 * step)
        refined_b, refined_e = golden_section_minimize(
            energy_at, window_lo, window_hi
        )
        if refined_e < best_e:
            best_b, best_e = refined_b, refined_e
    if not math.isfinite(best_e):
        raise ValueError("no feasible busy end found (overloaded partition)")

    cores: List[CoreTimeline] = []
    for chain in chains:
        if not chain:
            cores.append(CoreTimeline())
            continue
        plan = _chain_plan(chain, release, best_b, core.s_up)
        assert plan is not None
        cores.append(
            CoreTimeline(
                ExecutionInterval(task.name, start, end, speed)
                for task, start, end, speed in plan
            )
        )
    return PartitionedSolution(
        tasks=tasks,
        groups=tuple(tuple(g) for g in groups),
        busy_end=best_b,
        predicted_energy=best_e,
        schedule_obj=Schedule(cores),
    )

"""Heterogeneous-core extension of the Section 4 schemes.

The paper notes (end of Section 4.2) that its common-release schemes carry
over to heterogeneous cores with per-core power functions ``P_c(s) =
alpha_c + beta_c * s**lam_c``: each task keeps its own critical speed and,
inside each case of the Delta scan, "the dynamic power of different cores
should be added up separately".  With distinct exponents the per-case
optimum no longer has a single closed form, so each case is minimized
numerically -- the per-case energy is still convex in ``Delta`` (a sum of
convex per-core terms), so a golden-section search inside the case domain
is exact.

The task-to-core binding is positional: ``cores[k]`` executes
``tasks[k]`` in the *input* order of the task list (the unbounded model
assigns one task per core, so the binding is part of the instance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.models.memory import MemoryModel
from repro.models.power import CorePowerModel
from repro.models.task import Task
from repro.schedule.timeline import ExecutionInterval, Schedule
from repro.utils.solvers import minimize_convex_1d

__all__ = ["HeterogeneousSolution", "solve_common_release_heterogeneous"]

_INF = float("inf")


@dataclass(frozen=True)
class HeterogeneousSolution:
    """Optimal common-release schedule on heterogeneous cores."""

    tasks: Tuple[Task, ...]
    cores: Tuple[CorePowerModel, ...]
    release: float
    interval_end: float
    delta: float
    finish_times: Dict[str, float]
    speeds: Dict[str, float]
    predicted_energy: float

    @property
    def memory_busy_length(self) -> float:
        return (self.interval_end - self.release) - self.delta

    def schedule(self) -> Schedule:
        return Schedule.one_task_per_core(
            ExecutionInterval(
                task.name,
                self.release,
                self.finish_times[task.name],
                self.speeds[task.name],
            )
            for task in self.tasks
        )


def solve_common_release_heterogeneous(
    tasks: Sequence[Task],
    cores: Sequence[CorePowerModel],
    memory: MemoryModel,
) -> HeterogeneousSolution:
    """Minimize system energy for common-release tasks on bound cores.

    Handles both regimes uniformly: a task's *natural* finish is its
    deadline when its core has ``alpha = 0`` (filled speed) and its
    critical-speed completion otherwise; tasks whose natural finish falls
    inside the sleep window are aligned to the busy end.  The scan over
    natural-finish breakpoints plus a convex 1-D minimization per case is
    exact (same argument as Theorems 2/3, with the closed forms replaced
    by numeric minimizers).
    """
    tasks = tuple(tasks)
    cores = tuple(cores)
    if len(tasks) != len(cores):
        raise ValueError(
            f"need one core per task, got {len(tasks)} tasks / {len(cores)} cores"
        )
    releases = {t.release for t in tasks}
    if len(releases) != 1:
        raise ValueError("heterogeneous scheme requires a common release time")
    release = tasks[0].release
    for task, core in zip(tasks, cores):
        if task.filled_speed > core.s_up * (1.0 + 1e-12):
            raise ValueError(f"{task.name}: infeasible even at its core's s_up")

    # Natural finishes on the release-relative axis.
    def natural_end(task: Task, core: CorePowerModel) -> float:
        if core.alpha == 0.0:
            return task.deadline - release
        return task.workload / core.s0(task)

    pairs = sorted(
        zip(tasks, cores), key=lambda tc: natural_end(tc[0], tc[1])
    )
    ends = [natural_end(t, c) for t, c in pairs]
    horizon = ends[-1]

    def energy_at(delta: float) -> float:
        busy = horizon - delta
        if busy <= 0.0:
            return _INF
        total = memory.alpha_m * busy
        for (task, core), end in zip(pairs, ends):
            finish = min(end, busy)
            speed = task.workload / finish
            if speed > core.s_up * (1.0 + 1e-9):
                return _INF
            total += core.execution_energy(task.workload, speed)
        return total

    # Case breakpoints: Delta crossing horizon - end flips task alignment.
    breakpoints = sorted({max(horizon - end, 0.0) for end in ends} | {0.0})
    cap = horizon - max(
        task.workload / core.s_up for task, core in pairs
    )
    best_delta, best_energy = 0.0, energy_at(0.0)
    prev_argmin: float | None = None
    for lo, hi in zip(breakpoints, breakpoints[1:] + [max(cap, 0.0)]):
        hi = min(hi, cap)
        if hi < lo:
            continue
        # Warm-start each segment from the previous one's argmin: once the
        # global minimum has been passed, every later segment is increasing
        # and the clamped guess confirms the left-edge minimum in a handful
        # of probes instead of a full golden-section sweep.
        guess = None if prev_argmin is None else min(max(prev_argmin, lo), hi)
        delta, energy = minimize_convex_1d(energy_at, lo, hi, guess=guess)
        prev_argmin = delta
        if energy < best_energy - 1e-12:
            best_delta, best_energy = delta, energy

    busy_end = horizon - best_delta
    finish: Dict[str, float] = {}
    speeds: Dict[str, float] = {}
    for (task, core), end in zip(pairs, ends):
        end_rel = min(end, busy_end)
        finish[task.name] = release + end_rel
        speeds[task.name] = task.workload / end_rel
    return HeterogeneousSolution(
        tasks=tuple(t for t, _ in pairs),
        cores=tuple(c for _, c in pairs),
        release=release,
        interval_end=release + horizon,
        delta=best_delta,
        finish_times=finish,
        speeds=speeds,
        predicted_energy=best_energy,
    )

"""Tests for the numeric solver utilities."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    bisect_increasing,
    golden_section_minimize,
    minimize_convex_1d,
    minimize_convex_2d_box,
)
from repro.utils.solvers import weighted_power_sum


class TestBisectIncreasing:
    def test_finds_interior_root(self):
        root = bisect_increasing(lambda x: x - 3.0, 0.0, 10.0)
        assert root == pytest.approx(3.0, abs=1e-9)

    def test_clamps_to_lower_bound(self):
        assert bisect_increasing(lambda x: x + 1.0, 0.0, 10.0) == 0.0

    def test_clamps_to_upper_bound(self):
        assert bisect_increasing(lambda x: x - 20.0, 0.0, 10.0) == 10.0

    def test_rejects_empty_bracket(self):
        with pytest.raises(ValueError):
            bisect_increasing(lambda x: x, 5.0, 4.0)

    @given(root=st.floats(-50.0, 50.0), scale=st.floats(0.1, 10.0))
    def test_recovers_affine_roots(self, root, scale):
        found = bisect_increasing(lambda x: scale * (x - root), -100.0, 100.0)
        assert found == pytest.approx(root, abs=1e-7)

    def test_nonlinear_first_order_condition(self):
        # The Section 5.1.1 condition: sum (w/(d - x))^lam = c, increasing in x.
        w, d, lam, c = 10.0, 20.0, 3.0, 8.0
        x = bisect_increasing(lambda t: (w / (d - t)) ** lam - c, 0.0, d - 1e-6)
        assert (w / (d - x)) ** lam == pytest.approx(c, rel=1e-6)


class TestGoldenSection:
    def test_quadratic_minimum(self):
        x, v = golden_section_minimize(lambda t: (t - 2.0) ** 2 + 1.0, 0.0, 10.0)
        assert x == pytest.approx(2.0, abs=1e-6)
        assert v == pytest.approx(1.0, abs=1e-9)

    def test_boundary_minimum(self):
        x, v = golden_section_minimize(lambda t: t, 3.0, 10.0)
        assert x == pytest.approx(3.0)
        assert v == pytest.approx(3.0)

    def test_degenerate_interval(self):
        x, v = golden_section_minimize(lambda t: t * t, 4.0, 4.0)
        assert x == 4.0

    @given(center=st.floats(-5.0, 5.0))
    def test_convex_quartic(self, center):
        x, _ = minimize_convex_1d(lambda t: (t - center) ** 4, -10.0, 10.0)
        assert x == pytest.approx(center, abs=1e-3)


class TestConvex2D:
    def test_separable_quadratic(self):
        x, y, v = minimize_convex_2d_box(
            lambda a, b: (a - 1.0) ** 2 + (b - 2.0) ** 2,
            (0.0, 5.0),
            (0.0, 5.0),
        )
        assert x == pytest.approx(1.0, abs=1e-5)
        assert y == pytest.approx(2.0, abs=1e-5)
        assert v == pytest.approx(0.0, abs=1e-9)

    def test_coupled_objective(self):
        # min (x + y - 3)^2 + x^2 + y^2 -> x = y = 1 analytically.
        x, y, v = minimize_convex_2d_box(
            lambda a, b: (a + b - 3.0) ** 2 + a * a + b * b,
            (0.0, 5.0),
            (0.0, 5.0),
        )
        assert x == pytest.approx(1.0, abs=1e-4)
        assert y == pytest.approx(1.0, abs=1e-4)
        assert v == pytest.approx(3.0, abs=1e-6)

    def test_boundary_solution(self):
        x, y, _ = minimize_convex_2d_box(
            lambda a, b: (a - 10.0) ** 2 + (b + 4.0) ** 2,
            (0.0, 2.0),
            (0.0, 2.0),
        )
        assert x == pytest.approx(2.0, abs=1e-6)
        assert y == pytest.approx(0.0, abs=1e-6)

    def test_rejects_empty_box(self):
        with pytest.raises(ValueError):
            minimize_convex_2d_box(lambda a, b: a + b, (1.0, 0.0), (0.0, 1.0))


class TestWeightedPowerSum:
    def test_matches_manual(self):
        assert weighted_power_sum([1.0, 2.0, 3.0], 3.0) == pytest.approx(36.0)

    @given(
        st.lists(st.floats(0.1, 100.0), min_size=1, max_size=10),
        st.floats(1.1, 4.0),
    )
    def test_positive_and_monotone_in_exponent_for_large_weights(self, ws, lam):
        big = [w + 1.0 for w in ws]  # all > 1 so power sums grow with lam
        assert weighted_power_sum(big, lam) <= weighted_power_sum(big, lam + 0.1)


class TestWarmStartBracketing:
    def test_interior_guess_accepted(self):
        # Guess lands on the true minimum: the narrow bracket suffices.
        x, v = minimize_convex_1d(
            lambda t: (t - 4.0) ** 2, 0.0, 100.0, guess=4.0
        )
        assert x == pytest.approx(4.0, abs=1e-5)
        assert v == pytest.approx(0.0, abs=1e-9)

    def test_misleading_guess_falls_back_to_full_bracket(self):
        # Guess far from the minimum: the sub-bracket argmin pins to an
        # edge, which must trigger the full golden-section fallback.
        x, _ = minimize_convex_1d(
            lambda t: (t - 90.0) ** 2, 0.0, 100.0, guess=5.0
        )
        assert x == pytest.approx(90.0, abs=1e-4)

    def test_guess_at_domain_boundary(self):
        # Monotone objective, minimum at the lower domain edge; a guess on
        # that edge is legitimate even though the sub-bracket pins there.
        x, _ = minimize_convex_1d(lambda t: t, 0.0, 10.0, guess=0.0)
        assert x == pytest.approx(0.0, abs=1e-4)

    @given(center=st.floats(-5.0, 5.0), offset=st.floats(-0.2, 0.2))
    def test_near_guess_matches_unguided(self, center, offset):
        func = lambda t: (t - center) ** 4
        guided, _ = minimize_convex_1d(
            func, -10.0, 10.0, guess=center + offset
        )
        unguided, _ = minimize_convex_1d(func, -10.0, 10.0)
        assert func(guided) <= func(unguided) + 1e-9

    def test_counters_record_warm_start(self):
        from repro.utils.solvers import (
            reset_solver_counts,
            solver_call_counts,
            solver_call_total,
        )

        reset_solver_counts()
        minimize_convex_1d(lambda t: (t - 4.0) ** 2, 0.0, 100.0, guess=4.0)
        counts = solver_call_counts()
        assert counts.get("warm_start_hit") == 1
        assert counts.get("golden_section", 0) >= 1
        assert solver_call_total() == sum(counts.values())
        reset_solver_counts()
        assert solver_call_total() == 0


np = pytest.importorskip("numpy")

from repro.utils.solvers import (  # noqa: E402 - needs the numpy skip first
    bisect_increasing_batch,
    golden_section_minimize_batch,
)


class TestBisectIncreasingBatch:
    def test_matches_scalar_on_linear_family(self):
        roots = np.array([1.0, 2.5, 7.75, 0.0, 10.0])

        def family(xs, idx):
            return xs - roots[idx]

        batch = bisect_increasing_batch(family, [0.0] * 5, [10.0] * 5)
        for k, root in enumerate(roots):
            scalar = bisect_increasing(lambda x, r=root: x - r, 0.0, 10.0)
            assert batch[k] == pytest.approx(scalar, abs=1e-9)

    def test_boundary_clamps_match_scalar(self):
        # Root below lo (clamped to lo) and above hi (clamped to hi).
        shifts = np.array([-5.0, 25.0])

        def family(xs, idx):
            return xs - shifts[idx]

        batch = bisect_increasing_batch(family, [0.0, 0.0], [10.0, 10.0])
        assert batch[0] == 0.0
        assert batch[1] == 10.0

    def test_rejects_empty_bracket(self):
        with pytest.raises(ValueError, match="empty bracket"):
            bisect_increasing_batch(lambda xs, idx: xs, [5.0], [1.0])

    def test_mixed_brackets(self):
        los = [0.0, 2.0, -3.0]
        his = [4.0, 9.0, 3.0]
        roots = np.array([3.0, 6.0, 0.5])

        def family(xs, idx):
            return (xs - roots[idx]) ** 3

        batch = bisect_increasing_batch(family, los, his)
        assert np.allclose(batch, roots, atol=1e-6)


class TestGoldenSectionMinimizeBatch:
    def test_matches_scalar_on_quadratic_family(self):
        centers = np.array([1.0, 4.0, 8.5, 0.0, 10.0])

        def family(xs, idx):
            return (xs - centers[idx]) ** 2

        xs, values = golden_section_minimize_batch(
            family, [0.0] * 5, [10.0] * 5
        )
        for k, center in enumerate(centers):
            s_x, s_v = golden_section_minimize(
                lambda x, c=center: (x - c) ** 2, 0.0, 10.0
            )
            assert xs[k] == pytest.approx(s_x, abs=1e-6)
            assert values[k] == pytest.approx(s_v, abs=1e-9)

    def test_degenerate_interval_short_circuits(self):
        xs, values = golden_section_minimize_batch(
            lambda x, idx: (x - 1.0) ** 2, [2.0, 0.0], [2.0, 8.0]
        )
        assert xs[0] == pytest.approx(2.0)
        assert values[0] == pytest.approx(1.0)
        assert xs[1] == pytest.approx(1.0, abs=1e-6)

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError, match="empty interval"):
            golden_section_minimize_batch(lambda xs, idx: xs, [5.0], [1.0])

    def test_boundary_minimum(self):
        # Monotone decreasing on the interval: the endpoint sweep must
        # surface hi exactly as the scalar version does.
        xs, values = golden_section_minimize_batch(
            lambda x, idx: -x, [0.0], [10.0]
        )
        s_x, s_v = golden_section_minimize(lambda x: -x, 0.0, 10.0)
        assert xs[0] == pytest.approx(s_x, abs=1e-9)
        assert values[0] == pytest.approx(s_v, abs=1e-9)

"""Tests for the bounded-core analysis (Theorem 1, Eqs. (2)-(3))."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounded import (
    balanced_partition_energy,
    optimal_busy_interval_two_cores,
    partition_tasks,
    solve_bounded_common_deadline,
)
from repro.energy import account
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import validate_schedule
from repro.utils.solvers import golden_section_minimize


def make_platform(alpha_m=10.0, num_cores=2):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1000.0),
        MemoryModel(alpha_m=alpha_m),
        num_cores=num_cores,
    )


class TestClosedForms:
    def test_eq2_is_stationary_point(self):
        """Eq. (2) must minimize E(b) = alpha_m b + beta sum (W/b)^lam b."""
        platform = make_platform()
        loads = [1200.0, 900.0]
        b_star = optimal_busy_interval_two_cores(loads, platform)

        def energy(b):
            return platform.memory.alpha_m * b + sum(
                platform.core.beta * (load / b) ** 3 * b for load in loads
            )

        b_num, _ = golden_section_minimize(energy, 1e-3, 1e4)
        assert b_star == pytest.approx(b_num, rel=1e-6)

    def test_eq3_equals_energy_at_eq2(self):
        platform = make_platform()
        loads = [700.0, 1300.0, 450.0]
        b_star = optimal_busy_interval_two_cores(loads, platform)
        energy_at_b = platform.memory.alpha_m * b_star + sum(
            platform.core.beta * (load / b_star) ** 3 * b_star for load in loads
        )
        assert balanced_partition_energy(loads, platform) == pytest.approx(
            energy_at_b, rel=1e-9
        )

    @given(
        w=st.lists(st.floats(10.0, 5000.0), min_size=1, max_size=4),
        alpha_m=st.floats(0.5, 100.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_eq3_monotone_in_power_sum(self, w, alpha_m):
        platform = make_platform(alpha_m=alpha_m)
        base = balanced_partition_energy(w, platform)
        bigger = balanced_partition_energy([x * 1.1 for x in w], platform)
        assert bigger > base

    def test_balanced_split_beats_skewed(self):
        """The PARTITION connection: equal halves minimize Eq. (3)."""
        platform = make_platform()
        total = 2000.0
        balanced = balanced_partition_energy([1000.0, 1000.0], platform)
        for split in [0.6, 0.75, 0.9]:
            skewed = balanced_partition_energy(
                [total * split, total * (1 - split)], platform
            )
            assert balanced < skewed


class TestPartitioners:
    def test_exact_matches_enumeration_two_cores(self):
        rng = random.Random(9)
        for _ in range(10):
            w = [rng.uniform(1, 100) for _ in range(rng.randint(1, 8))]
            groups = partition_tasks(w, 2, method="exact")
            cost = sum(sum(w[i] for i in g) ** 3 for g in groups)
            best = min(
                sum(w[i] for i in range(len(w)) if mask >> i & 1) ** 3
                + sum(w[i] for i in range(len(w)) if not mask >> i & 1) ** 3
                for mask in range(1 << len(w))
            )
            assert cost == pytest.approx(best, rel=1e-9)

    def test_exact_matches_enumeration_three_cores(self):
        rng = random.Random(15)
        w = [rng.uniform(1, 100) for _ in range(6)]
        groups = partition_tasks(w, 3, method="exact")
        cost = sum(sum(w[i] for i in g) ** 3 for g in groups)
        best = min(
            sum(
                sum(w[i] for i in range(6) if assign[i] == c) ** 3
                for c in range(3)
            )
            for assign in itertools.product(range(3), repeat=6)
        )
        assert cost == pytest.approx(best, rel=1e-9)

    def test_lpt_never_beats_exact(self):
        rng = random.Random(21)
        for _ in range(10):
            w = [rng.uniform(1, 100) for _ in range(rng.randint(2, 10))]
            exact_groups = partition_tasks(w, 2, method="exact")
            lpt_groups = partition_tasks(w, 2, method="lpt")
            cost = lambda gs: sum(sum(w[i] for i in g) ** 3 for g in gs)
            assert cost(exact_groups) <= cost(lpt_groups) * (1.0 + 1e-12)

    def test_lpt_suboptimal_on_crafted_instance(self):
        """The NP-hardness bite: greedy misses the balanced partition.

        Workloads {3, 3, 2, 2, 2}: LPT yields loads (3+2, 3+2, 2)=(5,5,2)
        wait -- with 2 cores LPT gives (3,2,2)=7 vs (3,2)=5; the optimum is
        (3,3)/(2,2,2) = 6/6.
        """
        w = [3.0, 3.0, 2.0, 2.0, 2.0]
        lpt_groups = partition_tasks(w, 2, method="lpt")
        exact_groups = partition_tasks(w, 2, method="exact")
        cost = lambda gs: sum(sum(w[i] for i in g) ** 3 for g in gs)
        assert cost(exact_groups) < cost(lpt_groups)
        loads = sorted(sum(w[i] for i in g) for g in exact_groups)
        assert loads == [6.0, 6.0]

    def test_partition_covers_all_indices(self):
        w = [5.0, 1.0, 2.0, 8.0]
        groups = partition_tasks(w, 3, method="exact")
        flat = sorted(i for g in groups for i in g)
        assert flat == [0, 1, 2, 3]

    def test_exact_guard_on_large_instances(self):
        with pytest.raises(ValueError, match="exponential"):
            partition_tasks([1.0] * 30, 2, method="exact")


class TestBoundedSolver:
    def test_requires_theorem1_model(self):
        platform = make_platform()
        staggered = TaskSet([Task(0, 10, 5), Task(0, 20, 5)])
        with pytest.raises(ValueError, match="common"):
            solve_bounded_common_deadline(staggered, platform)

    def test_schedule_feasible_and_priced(self):
        platform = make_platform(num_cores=2)
        ts = TaskSet(
            [Task(0.0, 50.0, w, f"t{k}") for k, w in enumerate([3000, 3000, 2000, 2000, 2000])]
        )
        sol = solve_bounded_common_deadline(ts, platform)
        sched = sol.schedule()
        validate_schedule(sched, ts, max_speed=1000.0, require_non_preemptive=True)
        bd = account(sched, platform, horizon=(0.0, 50.0))
        assert bd.total == pytest.approx(sol.predicted_energy, rel=1e-9)

    def test_exact_beats_lpt_energy(self):
        platform = make_platform(num_cores=2)
        ts = TaskSet(
            [Task(0.0, 50.0, w, f"t{k}") for k, w in enumerate([3000, 3000, 2000, 2000, 2000])]
        )
        exact = solve_bounded_common_deadline(ts, platform, method="exact")
        lpt = solve_bounded_common_deadline(ts, platform, method="lpt")
        assert exact.predicted_energy < lpt.predicted_energy

    def test_busy_interval_clamped_to_deadline(self):
        # Tiny alpha_m pushes Eq. (2) beyond the deadline; must clamp.
        platform = make_platform(alpha_m=1e-9, num_cores=2)
        ts = TaskSet([Task(0.0, 10.0, 1000.0), Task(0.0, 10.0, 900.0)])
        sol = solve_bounded_common_deadline(ts, platform)
        assert sol.busy_length == pytest.approx(10.0)

    def test_busy_interval_clamped_to_speed_cap(self):
        # Huge alpha_m pushes Eq. (2) toward zero; speed cap floors it.
        platform = make_platform(alpha_m=1e9, num_cores=2)
        ts = TaskSet([Task(0.0, 10.0, 1000.0), Task(0.0, 10.0, 900.0)])
        sol = solve_bounded_common_deadline(ts, platform)
        assert sol.busy_length == pytest.approx(1.0)  # 1000 kc / 1000 MHz

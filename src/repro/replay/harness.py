"""Latency/energy SLO harness over the replay sinks.

Two latency notions coexist, deliberately:

* **Virtual latency** -- finish minus arrival on the deterministic
  SDEM-ON schedule (in-process sink) or rescaled wall time (service
  sink).  The per-job virtual table, plus the energy breakdown, is
  what :func:`table_digest` hashes: for a fixed seed the digest is
  byte-stable run-to-run, which is the subsystem's reproducibility
  contract and the bench slice's ``rows_identical`` check.

* **Wall SLO latency** -- what a single-threaded server would have
  answered: the open-loop queueing recursion
  ``start_i = max(arrival_i, finish_{i-1})``,
  ``latency_i = start_i - arrival_i + service_i`` over the *measured*
  replan wall times at the offered arrival instants.  This is the
  capacity question (:func:`find_max_sustainable_rate` ramps the
  offered load until P99 crosses the SLO) and is machine-dependent by
  nature, so it never enters the digest.

Percentiles here are exact order statistics (nearest-rank) -- the
harness holds every sample, unlike the service's streaming estimators.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.models.platform import Platform
from repro.replay.arrivals import ArrivalSpec, offered_rate_jobs_s
from repro.replay.sinks import JobRecord, ReplayOutcome, replay_inprocess
from repro.units import MS, UJ, unit

__all__ = [
    "LatencyStats",
    "RampPoint",
    "ReplayReport",
    "energy_per_job_uj",
    "find_max_sustainable_rate",
    "open_loop_latency_ms",
    "percentile",
    "run_replay",
    "table_digest",
]


def percentile(values: Sequence[float], p: float) -> float:
    """Exact nearest-rank percentile (``p`` in [0, 100]) of ``values``."""
    if not values:
        return math.nan
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    # The 1e-9 slack keeps ceil() exact when p*n/100 is a whole number
    # that floating point overshoots (e.g. 99.9% of 1000 -> 999.0...01).
    rank = math.ceil(p / 100.0 * len(ordered) - 1e-9) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


@dataclass(frozen=True)
class LatencyStats:
    """P50/P95/P99/P99.9 summary of one latency sample set (ms)."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    p99_9_ms: float
    max_ms: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> Optional["LatencyStats"]:
        if not values:
            return None
        ordered = sorted(values)
        n = len(ordered)

        def rank(p: float) -> float:
            index = math.ceil(p / 100.0 * n - 1e-9) - 1
            return ordered[min(n - 1, max(0, index))]

        return cls(
            count=n,
            mean_ms=sum(ordered) / n,
            p50_ms=rank(50.0),
            p95_ms=rank(95.0),
            p99_ms=rank(99.0),
            p99_9_ms=rank(99.9),
            max_ms=ordered[-1],
        )

    def to_wire(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "p99_9_ms": self.p99_9_ms,
            "max_ms": self.max_ms,
        }


def open_loop_latency_ms(
    arrivals_ms: Sequence[float], service_ms: Sequence[float]
) -> List[float]:
    """Single-server open-loop queue recursion (Lindley-style).

    ``arrivals_ms`` are the offered instants (virtual ms at the offered
    rate, i.e. real ms had the stream played at 1x) and ``service_ms``
    the measured per-job service times.  Returns per-job sojourn times:
    queueing wait behind earlier jobs plus own service.
    """
    if len(arrivals_ms) != len(service_ms):
        raise ValueError(
            f"arrival/service length mismatch: {len(arrivals_ms)} vs "
            f"{len(service_ms)}"
        )
    out: List[float] = []
    previous_finish = -math.inf
    for arrival, service in zip(arrivals_ms, service_ms):
        start = arrival if arrival > previous_finish else previous_finish
        finish = start + service
        out.append(finish - arrival)
        previous_finish = finish
    return out


@unit(UJ)
def energy_per_job_uj(total_uj: float, completed: int) -> float:
    """Energy per completed job; NaN when nothing completed."""
    if completed <= 0:
        return math.nan
    return total_uj / completed


def table_digest(
    records: Sequence[JobRecord], energy: Optional[Dict[str, float]]
) -> str:
    """SHA-256 of the canonical per-job table (+ energy totals).

    Only deterministic fields enter the hash -- wall-clock telemetry is
    excluded -- so for the in-process sink two same-seed runs must
    produce identical digests on the same numeric backend.
    """
    payload = {
        "rows": [record.canonical_row() for record in records],
        "energy": energy,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class ReplayReport:
    """Everything one replay run measured, JSON-ready.

    ``virtual`` summarizes deterministic virtual-time latencies (the
    digest's domain); ``wall_slo`` summarizes the open-loop queueing
    recursion over measured replan walls (the capacity domain);
    ``queue_wait`` is the virtual procrastination-induced wait.
    """

    sink: str
    spec: Dict[str, object]
    offered_rate_jobs_s: float
    counts: Dict[str, int]
    virtual: Optional[LatencyStats]
    queue_wait: Optional[LatencyStats]
    wall_slo: Optional[LatencyStats]
    energy: Optional[Dict[str, float]]
    digest: str
    wall_seconds: float
    peak_concurrency: int
    max_backlog_seen: int
    records: List[JobRecord] = field(default_factory=list, repr=False)

    @property
    def deadline_miss_pct(self) -> float:
        done = self.counts.get("done", 0)
        if done == 0:
            return 0.0
        return 100.0 * self.counts.get("deadline_miss", 0) / done

    @classmethod
    def from_outcome(
        cls, outcome: ReplayOutcome, spec: Dict[str, object]
    ) -> "ReplayReport":
        records = outcome.records
        counts = {status: 0 for status in ("done", "shed", "timeout", "error")}
        for record in records:
            counts[record.status] = counts.get(record.status, 0) + 1
        counts["total"] = len(records)
        counts["deadline_miss"] = sum(
            1 for r in records if r.status == "done" and not r.deadline_met
        )
        counts["shed_retries"] = outcome.shed_retries

        done = [r for r in records if r.status == "done"]
        virtual = LatencyStats.from_values([r.latency_ms for r in done])
        queue_wait = LatencyStats.from_values([r.queue_wait_ms for r in done])

        wall_slo: Optional[LatencyStats] = None
        if outcome.solve_wall_ms:
            admitted = [r for r in records if r.status != "shed" and r.attempts > 0]
            if len(admitted) == len(outcome.solve_wall_ms):
                wall_slo = LatencyStats.from_values(
                    open_loop_latency_ms(
                        [r.arrival_ms for r in admitted], outcome.solve_wall_ms
                    )
                )

        energy: Optional[Dict[str, float]] = None
        if outcome.energy is not None:
            breakdown = outcome.energy
            energy = {
                "total_uj": breakdown.total,
                "per_job_uj": energy_per_job_uj(breakdown.total, len(done)),
                "core_dynamic_uj": breakdown.core_dynamic,
                "core_static_active_uj": breakdown.core_static_active,
                "core_idle_uj": breakdown.core_idle,
                "memory_active_uj": breakdown.memory_active,
                "memory_idle_uj": breakdown.memory_idle,
                "memory_sleep_ms": breakdown.memory_sleep_time,
                "memory_busy_ms": breakdown.memory_busy_time,
            }

        return cls(
            sink=outcome.sink,
            spec=spec,
            # JobRecord carries arrival_ms, which is all the rate needs.
            offered_rate_jobs_s=offered_rate_jobs_s(records),
            counts=counts,
            virtual=virtual,
            queue_wait=queue_wait,
            wall_slo=wall_slo,
            energy=energy,
            digest=table_digest(records, energy),
            wall_seconds=outcome.wall_seconds,
            peak_concurrency=outcome.peak_concurrency,
            max_backlog_seen=outcome.max_backlog_seen,
            records=list(records),
        )

    def to_wire(self, *, include_records: bool = False) -> Dict[str, object]:
        out: Dict[str, object] = {
            "sink": self.sink,
            "spec": self.spec,
            "offered_rate_jobs_s": self.offered_rate_jobs_s,
            "counts": dict(self.counts),
            "deadline_miss_pct": self.deadline_miss_pct,
            "virtual": self.virtual.to_wire() if self.virtual else None,
            "queue_wait": self.queue_wait.to_wire() if self.queue_wait else None,
            "wall_slo": self.wall_slo.to_wire() if self.wall_slo else None,
            "energy": self.energy,
            "digest": self.digest,
            "wall_seconds": self.wall_seconds,
            "peak_concurrency": self.peak_concurrency,
            "max_backlog_seen": self.max_backlog_seen,
        }
        if include_records:
            out["records"] = [record.canonical_row() for record in self.records]
        return out

    def render(self) -> str:
        counts = self.counts
        lines = [
            f"sink:            {self.sink}",
            f"jobs:            {counts.get('total', 0)} total, "
            f"{counts.get('done', 0)} done, {counts.get('shed', 0)} shed, "
            f"{counts.get('timeout', 0)} timeout, {counts.get('error', 0)} error",
            f"offered rate:    {self.offered_rate_jobs_s:.1f} jobs/s",
            f"deadline misses: {counts.get('deadline_miss', 0)} "
            f"({self.deadline_miss_pct:.3f}% of done)",
        ]
        if self.virtual is not None:
            v = self.virtual
            label = (
                "virtual latency: "
                if self.sink == "inproc"
                else "wall latency:    "
            )
            lines.append(
                label
                + f"p50 {v.p50_ms:.2f}  p95 {v.p95_ms:.2f}  p99 {v.p99_ms:.2f}  "
                f"p99.9 {v.p99_9_ms:.2f}  max {v.max_ms:.2f} ms"
            )
        if self.wall_slo is not None:
            w = self.wall_slo
            lines.append(
                "wall SLO:        "
                f"p50 {w.p50_ms:.3f}  p99 {w.p99_ms:.3f}  "
                f"p99.9 {w.p99_9_ms:.3f} ms (open-loop, measured)"
            )
        if self.energy is not None:
            lines.append(
                f"energy:          {self.energy['total_uj']:.0f} uJ total, "
                f"{self.energy['per_job_uj']:.1f} uJ/job, "
                f"memory asleep {self.energy['memory_sleep_ms']:.0f} ms"
            )
        lines.append(
            f"replay wall:     {self.wall_seconds:.2f} s "
            f"(peak concurrency {self.peak_concurrency}, "
            f"backlog max {self.max_backlog_seen})"
        )
        lines.append(f"digest:          {self.digest[:16]}...")
        return "\n".join(lines)


def run_replay(
    spec: ArrivalSpec,
    platform: Platform,
    *,
    sink: str = "inproc",
    max_backlog: int = 64,
    procrastinate: bool = True,
    host: Optional[str] = None,
    port: Optional[int] = None,
    clients: int = 4,
    lane: str = "interactive",
    scheme: str = "auto",
    time_scale: float = 1.0,
    timeout_ms: float = 10_000.0,
    max_attempts: int = 3,
    backoff_cap_ms: float = 500.0,
) -> ReplayReport:
    """Materialize ``spec`` and replay it through one sink.

    ``sink="inproc"`` is synchronous virtual-time fast-forward;
    ``sink="service"`` paces arrivals in real (scaled) time against a
    running solve server at ``host:port``.
    """
    jobs = spec.jobs()
    if sink == "inproc":
        outcome = replay_inprocess(
            jobs, platform, max_backlog=max_backlog, procrastinate=procrastinate
        )
    elif sink == "service":
        if host is None or port is None:
            raise ValueError("service sink needs host and port")
        import asyncio

        from repro.replay.sinks import replay_service

        outcome = asyncio.run(
            replay_service(
                jobs,
                host=host,
                port=port,
                clients=clients,
                lane=lane,
                scheme=scheme,
                time_scale=time_scale,
                timeout_ms=timeout_ms,
                max_attempts=max_attempts,
                backoff_cap_ms=backoff_cap_ms,
            )
        )
    else:
        raise ValueError(f"unknown sink {sink!r}; valid: inproc, service")
    return ReplayReport.from_outcome(outcome, spec.describe())


@dataclass(frozen=True)
class RampPoint:
    """One offered-load step of the SLO ramp."""

    rate_jobs_s: float
    n: int
    p99_wall_ms: float
    shed: int
    deadline_miss: int
    sustainable: bool

    def to_wire(self) -> Dict[str, object]:
        return {
            "rate_jobs_s": self.rate_jobs_s,
            "n": self.n,
            "p99_wall_ms": self.p99_wall_ms,
            "shed": self.shed,
            "deadline_miss": self.deadline_miss,
            "sustainable": self.sustainable,
        }


def find_max_sustainable_rate(
    spec: ArrivalSpec,
    platform: Platform,
    *,
    rates_jobs_s: Sequence[float],
    slo_p99_ms: float,
    max_backlog: int = 64,
) -> Tuple[Optional[float], List[RampPoint]]:
    """Ramp the offered load; report the highest rate meeting the SLO.

    A rate is *sustainable* when the open-loop wall P99 stays within
    ``slo_p99_ms``, nothing was shed, and no admitted job missed its
    deadline.  Returns ``(best_rate, points)`` with ``best_rate=None``
    when even the lowest rate fails.  Wall P99 is measured, so the
    answer is machine-dependent -- that is the point.
    """
    if slo_p99_ms <= 0.0:
        raise ValueError(f"slo_p99_ms must be positive, got {slo_p99_ms}")
    points: List[RampPoint] = []
    best: Optional[float] = None
    for rate in sorted(rates_jobs_s):
        report = run_replay(
            spec.at_rate(rate), platform, sink="inproc", max_backlog=max_backlog
        )
        p99_wall = report.wall_slo.p99_ms if report.wall_slo else math.nan
        shed = report.counts.get("shed", 0)
        missed = report.counts.get("deadline_miss", 0)
        sustainable = (
            not math.isnan(p99_wall)
            and p99_wall <= slo_p99_ms
            and shed == 0
            and missed == 0
        )
        points.append(
            RampPoint(rate, spec.n, p99_wall, shed, missed, sustainable)
        )
        if sustainable and (best is None or rate > best):
            best = rate
    return best, points

#!/usr/bin/env python3
"""Voltage islands: what does sharing a rail cost?

The paper leaves voltage-frequency islands (groups of cores sharing one
supply) as future work; `repro.core.islands` explores them with a
constant-speed-per-island scheme.  This example takes eight mixed tasks
and compares island topologies from "one big rail" to "a rail per core".

Run:  python examples/voltage_islands.py
"""

from __future__ import annotations

import random

from repro.core.islands import solve_islands_common_release
from repro.models import Task, TaskSet, paper_platform


def main() -> None:
    rng = random.Random(42)
    tasks = TaskSet(
        Task(0.0, rng.uniform(20.0, 120.0), rng.uniform(1000.0, 12000.0), f"t{k}")
        for k in range(8)
    )
    platform = paper_platform(xi=0.0, xi_m=0.0).with_num_cores(None)

    topologies = {
        "1 island x 8 cores": [list(range(8))],
        "2 islands x 4": [[0, 1, 2, 3], [4, 5, 6, 7]],
        "4 islands x 2": [[0, 1], [2, 3], [4, 5], [6, 7]],
        "8 islands x 1 (per-core DVS)": [[k] for k in range(8)],
    }

    print("8 mixed tasks, 8x A57 + 4 W DRAM; constant speed per island\n")
    baseline = None
    for name, assignment in topologies.items():
        sol = solve_islands_common_release(tasks, platform, assignment)
        if baseline is None:
            baseline = sol.predicted_energy
        overhead = (sol.predicted_energy / baseline - 1.0) * 100.0
        speeds = ", ".join(f"{s:.0f}" for s in sol.island_speeds)
        print(f"{name:<30s} {sol.predicted_energy / 1000.0:9.2f} mJ "
              f"(vs 1-island {overhead:+6.1f}%)  speeds [{speeds}] MHz")

    print(
        "\nFiner islands monotonically reduce energy: each rail relaxes to"
        "\nits own tasks' critical speeds instead of being dragged by the"
        "\nhungriest sibling.  The per-core extreme recovers the paper's"
        "\nSection 4.2 optimum exactly."
    )


if __name__ == "__main__":
    main()

"""Schedule and experiment analysis helpers.

* :mod:`repro.analysis.gantt` -- ASCII Gantt rendering of schedules
  (per-core execution bars plus the memory's busy/sleep track);
* :mod:`repro.analysis.stats` -- per-seed sample statistics for
  experiment points (mean, standard deviation, confidence half-widths);
* :mod:`repro.analysis.report` -- textual energy-breakdown and
  schedule-summary reports used by the examples and the CLI.
"""

from repro.analysis.gantt import render_gantt
from repro.analysis.stats import SampleStats, summarize
from repro.analysis.report import energy_report, schedule_summary

__all__ = [
    "render_gantt",
    "SampleStats",
    "summarize",
    "energy_report",
    "schedule_summary",
]

"""Concurrency rules (CON0xx): the solve service's locking discipline.

``repro.service`` mixes three execution domains -- the asyncio event
loop, the batcher's worker threads and the admission queue shared between
them (PR 3).  The rules pin the discipline that keeps it deadlock- and
race-free:

* ``CON001`` -- every function must acquire locks in one global order;
  a cycle in the observed acquired-while-holding graph is a latent
  deadlock between two call paths;
* ``CON002`` -- a *threading* lock held across ``await`` blocks the
  whole event loop and everyone queued on the lock; use an
  ``asyncio.Lock`` with ``async with`` instead;
* ``CON003`` -- the metrics instruments publish to scraping threads, so
  their underscore state may only be mutated under ``self._lock``;
* ``CON004`` -- ``except Exception: pass`` swallows tracebacks that the
  service's error envelope (or at minimum a metric) should carry;
* ``CON005`` -- the shard-tier modules (PR 10) run one copy per worker
  *process*, so a module- or class-level mutable container there is not
  shared state at all: it silently forks into N divergent copies.  The
  only sanctioned cross-shard channels are the on-disk ``ResultCache``
  and the parent-side ``MetricsRegistry``; anything else needs an
  explicit allow-pragma arguing why per-process divergence is fine.

Lock identity is syntactic: a ``with`` context expression whose final
name segment looks lock-ish (``lock``, ``cond``, ``mutex``, ``sem``).
That is deliberately conservative -- the rules exist to catch the
concrete mistakes this repo can make, not to model Python's runtime.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.config import DEFAULT_SHARD_STATE_MODULES
from repro.lint.engine import (
    Finding,
    Project,
    Rule,
    SourceModule,
    parent_chain,
    register,
)

__all__ = [
    "LockOrderRule",
    "LockAcrossAwaitRule",
    "MetricsStateLockRule",
    "ShardSharedStateRule",
    "SwallowedExceptionRule",
    "lock_label",
]

_LOCKISH = re.compile(r"(^|_)(lock|cond|condition|mutex|sem|semaphore)$", re.I)


def lock_label(node: ast.AST, module: SourceModule) -> Optional[str]:
    """A stable label for a lock-ish ``with`` context expression.

    ``self._lock`` inside class ``AdmissionQueue`` labels as
    ``repro.service.queue.AdmissionQueue._lock``; a module-global
    ``_backend_lock`` as ``repro.service.batcher._backend_lock``.
    Non-lock-ish expressions return ``None``.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    if not _LOCKISH.search(parts[-1]):
        return None
    if parts[0] == "self":
        owner = _enclosing_class(node)
        scope = f"{module.name}.{owner}" if owner else module.name
        return ".".join([scope] + parts[1:])
    return ".".join([module.name] + parts)


def _enclosing_class(node: ast.AST) -> Optional[str]:
    for ancestor in parent_chain(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor.name
    return None


def _with_lock_labels(stmt: ast.stmt, module: SourceModule) -> List[str]:
    if not isinstance(stmt, ast.With):
        return []
    labels: List[str] = []
    for item in stmt.items:
        label = lock_label(item.context_expr, module)
        if label is not None:
            labels.append(label)
    return labels


@register
class LockOrderRule(Rule):
    id = "CON001"
    family = "concurrency"
    description = (
        "inconsistent lock-acquisition order: two call paths acquire the "
        "same locks in opposite orders (latent deadlock)"
    )
    hint = (
        "pick one global order (document it where the locks are created) "
        "and re-nest the with-blocks to follow it everywhere"
    )
    packages = ("repro.service",)

    def run(self, project: Project) -> Iterator[Finding]:
        # Edge (a, b): somewhere, b is acquired while a is held.
        edges: Dict[Tuple[str, str], Tuple[SourceModule, ast.AST]] = {}
        for module in project.modules:
            if module.tree is None or not self.applies_to(module):
                continue
            for node in ast.walk(module.tree):
                inner = _with_lock_labels(node, module) if isinstance(node, ast.stmt) else []
                if not inner:
                    continue
                held: List[str] = []
                for ancestor in parent_chain(node):
                    if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        break
                    if isinstance(ancestor, ast.stmt):
                        held.extend(_with_lock_labels(ancestor, module))
                # Multi-item `with a, b:` acquires left to right.
                for index, later in enumerate(inner):
                    for earlier in held + inner[:index]:
                        if earlier != later:
                            edges.setdefault((earlier, later), (module, node))
        for (a, b), (module, node) in sorted(edges.items()):
            if (b, a) in edges:
                yield self.finding(
                    module,
                    node,
                    f"lock order cycle: {b} is acquired while holding {a}, "
                    f"but elsewhere {a} is acquired while holding {b}",
                )


@register
class LockAcrossAwaitRule(Rule):
    id = "CON002"
    family = "concurrency"
    description = (
        "threading lock held across await: blocks the event loop and "
        "every coroutine queued on the lock"
    )
    hint = "use asyncio.Lock with 'async with', or release before awaiting"
    packages = ("repro.service",)

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.With):
                continue
            labels = _with_lock_labels(node, module)
            if not labels:
                continue
            if not self._inside_async_function(node):
                continue
            for await_node in self._awaits_in_body(node):
                yield self.finding(
                    module,
                    await_node,
                    f"await while holding {labels[0]} (a synchronous lock)",
                )

    @staticmethod
    def _inside_async_function(node: ast.AST) -> bool:
        for ancestor in parent_chain(node):
            if isinstance(ancestor, ast.AsyncFunctionDef):
                return True
            if isinstance(ancestor, ast.FunctionDef):
                return False
        return False

    @classmethod
    def _awaits_in_body(cls, with_node: ast.With) -> Iterator[ast.Await]:
        # Recurse manually so nested function bodies (their awaits run
        # later, not under the lock) are pruned from the walk.
        def visit(node: ast.AST) -> Iterator[ast.Await]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(child, ast.Await):
                    yield child
                yield from visit(child)

        for stmt in with_node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from visit(stmt)


@register
class MetricsStateLockRule(Rule):
    id = "CON003"
    family = "concurrency"
    description = (
        "metrics instrument state mutated outside its lock; counters are "
        "read from scraping threads concurrently with solver threads"
    )
    hint = "wrap the mutation in 'with self._lock:' like the other methods"
    packages = ("repro.service.metrics",)

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not self._has_own_lock(cls):
                continue
            for func in cls.body:
                if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if func.name == "__init__":
                    continue
                yield from self._check_method(module, cls, func)

    @staticmethod
    def _has_own_lock(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "_lock"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
        return False

    def _check_method(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        func: ast.AST,
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            target_attr: Optional[str] = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = self._self_private_attr(target)
                    if attr is not None:
                        target_attr = attr
                        break
            elif isinstance(node, ast.Call):
                # Mutating method calls on private containers
                # (self._recent.append(...), self._metrics.clear(), ...).
                func_node = node.func
                if (
                    isinstance(func_node, ast.Attribute)
                    and func_node.attr
                    in ("append", "appendleft", "clear", "pop", "popleft", "update")
                ):
                    target_attr = self._self_private_attr(func_node.value)
            if target_attr is None or target_attr == "_lock":
                continue
            if not self._under_self_lock(node):
                yield self.finding(
                    module,
                    node,
                    f"{cls.name}.{target_attr} mutated outside "
                    f"'with self._lock' in {getattr(func, 'name', '?')}()",
                )

    @staticmethod
    def _self_private_attr(node: ast.AST) -> Optional[str]:
        # self._attr or self._attr[...] in a store/mutate position.
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and node.attr.startswith("_")
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    @staticmethod
    def _under_self_lock(node: ast.AST) -> bool:
        for ancestor in parent_chain(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and expr.attr == "_lock"
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                    ):
                        return True
        return False


@register
class SwallowedExceptionRule(Rule):
    id = "CON004"
    family = "concurrency"
    description = (
        "broad except handler silently swallows the exception: no "
        "re-raise, no logging, no error response, no metric"
    )
    hint = (
        "narrow the exception type, or handle it observably (re-raise, "
        "return an error envelope, bump a metric)"
    )
    include_tests = True

    _BROAD = ("Exception", "BaseException")

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            if self._is_silent(node):
                yield self.finding(
                    module,
                    node,
                    "broad except handler swallows the exception silently",
                )

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        kind = handler.type
        if kind is None:
            return True
        elts = kind.elts if isinstance(kind, ast.Tuple) else [kind]
        return any(
            isinstance(e, ast.Name) and e.id in self._BROAD for e in elts
        )

    @staticmethod
    def _is_silent(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Raise, ast.Call, ast.Return, ast.Assign, ast.AugAssign, ast.Yield)):
                    return False
        return True


@register
class ShardSharedStateRule(Rule):
    id = "CON005"
    family = "concurrency"
    description = (
        "mutable module/class-level container in a shard-tier module: "
        "each worker process gets its own divergent copy, so it cannot "
        "carry cross-shard state"
    )
    hint = (
        "route shared state through the on-disk ResultCache or the "
        "parent-side MetricsRegistry; for deliberate per-process memos "
        "add '# repro-lint: allow[CON005] <why divergence is fine>'"
    )
    #: Rescoped per run from ``[tool.repro-lint] shard-state-modules``.
    packages = DEFAULT_SHARD_STATE_MODULES

    #: Constructor calls sanctioned at module scope: handles to the two
    #: legitimate cross-shard channels (disk cache, parent metrics).
    _SANCTIONED_CALLS = ("ResultCache", "MetricsRegistry", "service_metrics")

    #: Calls that build a mutable container even without a literal.
    _MUTABLE_CALLS = (
        "dict", "list", "set", "defaultdict", "deque", "Counter",
        "OrderedDict",
    )

    def run(self, project: Project) -> Iterator[Finding]:
        self.packages = project.config.shard_state_modules
        yield from super().run(project)

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            if self._inside_function(node):
                continue
            value = node.value
            if value is None or not self._is_mutable_container(value):
                continue
            name = self._target_name(node)
            if name.startswith("__") and name.endswith("__"):
                # __all__ and friends: write-once interpreter protocol
                # names, never mutated as shared state.
                continue
            scope = _enclosing_class(node)
            where = f"{module.name}.{scope}" if scope else module.name
            yield self.finding(
                module,
                node,
                f"{where}.{name} binds a mutable container at "
                f"{'class' if scope else 'module'} scope; shard workers "
                "each fork a private copy, so mutations never cross shards",
            )

    @staticmethod
    def _inside_function(node: ast.AST) -> bool:
        for ancestor in parent_chain(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return True
        return False

    @classmethod
    def _is_mutable_container(cls, value: ast.AST) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            return True
        if isinstance(value, (ast.DictComp, ast.ListComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            callee = value.func
            name = callee.id if isinstance(callee, ast.Name) else (
                callee.attr if isinstance(callee, ast.Attribute) else None
            )
            if name in cls._SANCTIONED_CALLS:
                return False
            return name in cls._MUTABLE_CALLS
        return False

    @staticmethod
    def _target_name(node: ast.AST) -> str:
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                return target.id
            if isinstance(target, ast.Attribute):
                return target.attr
        return "<target>"

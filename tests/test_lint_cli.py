"""``repro check`` end to end: exit codes, JSON schema, edge cases."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from tests.lint_helpers import write_tree

VIOLATION = """
    import time

    def stamp():
        return time.time()
"""


def check(args):
    return main(["check"] + args)


def test_violation_exits_one_with_location(tmp_path, capsys):
    write_tree(str(tmp_path), {"src/repro/m.py": VIOLATION})
    code = check([str(tmp_path / "src"), "--rules", "DET001"])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001" in out
    assert "m.py" in out
    assert "hint:" in out


def test_clean_tree_exits_zero(tmp_path, capsys):
    write_tree(
        str(tmp_path), {"src/repro/m.py": "import time\nT = time.monotonic()\n"}
    )
    code = check([str(tmp_path / "src"), "--rules", "DET001"])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_json_format_schema(tmp_path, capsys):
    write_tree(str(tmp_path), {"src/repro/m.py": VIOLATION})
    code = check(
        [
            str(tmp_path / "src"),
            "--rules", "DET001",
            "--format", "json",
            "--baseline", str(tmp_path / "baseline.json"),
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["schema"] == 1
    assert payload["tool"] == "repro-lint"
    assert payload["exit_code"] == 1
    assert payload["counts"] == {
        "new": 1,
        "suppressed": 0,
        "stale_baseline_entries": 0,
    }
    finding = payload["findings"][0]
    assert set(finding) == {
        "rule", "severity", "path", "line", "col", "message", "hint", "fingerprint",
    }
    assert any(rule["id"] == "DET001" for rule in payload["rules"])


def test_write_baseline_then_green(tmp_path, capsys):
    write_tree(str(tmp_path), {"src/repro/m.py": VIOLATION})
    baseline = str(tmp_path / "baseline.json")
    target = str(tmp_path / "src")

    assert check([target, "--rules", "DET001", "--baseline", baseline,
                  "--write-baseline"]) == 0
    assert "wrote 1 entry" in capsys.readouterr().out

    assert check([target, "--rules", "DET001", "--baseline", baseline]) == 0
    assert "(1 baselined)" in capsys.readouterr().out


def test_unknown_rule_selector_exits_two(tmp_path, capsys):
    write_tree(str(tmp_path), {"src/repro/m.py": VIOLATION})
    code = check([str(tmp_path / "src"), "--rules", "bogus"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown rule selector" in err


def test_missing_path_exits_two(capsys):
    code = check(["/definitely/not/a/path"])
    assert code == 2
    assert "no such path" in capsys.readouterr().err


def test_corrupt_baseline_exits_two(tmp_path, capsys):
    write_tree(str(tmp_path), {"src/repro/m.py": VIOLATION})
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    code = check([str(tmp_path / "src"), "--baseline", str(bad)])
    assert code == 2
    assert "baseline" in capsys.readouterr().err


def test_empty_target_directory_is_clean_noop(tmp_path, capsys):
    empty = tmp_path / "nothing"
    empty.mkdir()
    code = check([str(empty)])
    out = capsys.readouterr().out
    assert code == 0
    assert "nothing to check" in out


def test_non_repo_cwd_falls_back_to_installed_package(tmp_path, monkeypatch, capsys):
    # No src/repro and no tests under cwd: repro check analyzes the
    # importable repro package instead of crashing.
    monkeypatch.chdir(tmp_path)
    code = check(["--rules", "ENG001"])
    out = capsys.readouterr().out
    assert code == 0
    assert "findings" in out


def test_list_rules_prints_catalogue(capsys):
    assert check(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "BCK002", "CON001", "UNT001", "ENG001"):
        assert rule_id in out


def test_repo_is_lint_clean():
    """The acceptance gate: the repo at merge has no unbaselined findings."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    from repro.lint.runner import run_check

    report = run_check(cwd=repo_root)
    assert [f.render() for f in report.findings] == []
    assert report.exit_code == 0

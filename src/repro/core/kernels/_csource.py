"""C source for the compiled solver kernels (the ``jit`` backend).

Every function is a line-for-line transcription of a pure-Python reference
in :mod:`repro.core.vectorized`, :mod:`repro.core.blocks` or
:mod:`repro.utils.solvers`.  The providers compile this source (cffi) or
re-derive the same algorithms (numba); either way the load-time self-check
in :mod:`repro.core.kernels` compares the compiled output against the
Python references before the provider is accepted, so numerical drift can
demote a provider but never corrupt results.

Bit-identity notes (the reason the transcriptions look pedantic):

* compiled with ``-O2 -ffp-contract=off`` so the evaluation order written
  here is the evaluation order executed -- no fused multiply-adds;
* CPython's ``float ** float`` calls libm ``pow`` for finite positive
  arguments, so ``pow()`` here produces the same bits as ``**`` there;
* ``min``/``max`` become ternaries with the same operand order Python
  uses, which matters at ties and for NaN propagation;
* the stable insertion sort mirrors ``list.sort`` (stable) on the end
  key, and ``bisect_left`` is the standard lower-bound search;
* candidate folds iterate ascending, matching the ``sorted(candidates)``
  folds in the Python paths.

``REPRO_KERNELS_ABI`` versions the C interface; it participates in the
compile-cache key, so bumping it on any signature change invalidates
stale shared objects automatically.
"""

from __future__ import annotations

__all__ = ["CDEF", "CSOURCE", "REPRO_KERNELS_ABI", "REPRO_MAX_SMALL"]

#: Bump on any change to the exported C signatures or their semantics.
REPRO_KERNELS_ABI = 1

#: Mirrors ``vectorized._SMALL_N`` -- the fused solve only handles small n.
REPRO_MAX_SMALL = 64

CDEF = """
int repro_overhead_solve_small(
    int n, const double *rel, const double *dl, const double *wl,
    double latest_deadline,
    double alpha, double beta, double lam, double s_m, double s_up,
    double xi, double alpha_m, double xi_m,
    double rel_end,
    double *ends_out, int *order_out, double *best_out);

void repro_overhead_energy_small(
    int n, const double *ends,
    const double *pe, const double *pb, const double *pg,
    const long long *po,
    const double *sw, const double *sm,
    double horizon,
    double alpha, double beta, double lam, double xi,
    double alpha_m, double xi_m, double s_up,
    double rel_end,
    int k, const double *deltas, double *out);

void repro_block_energy_batch(
    int n, const double *rel, const double *dl, const double *wl,
    double alpha, double beta, double lam, double s_m, double s_up,
    double alpha_m,
    int k, const double *starts, const double *ends, double *out);

void repro_solve_block_descent(
    int n, const double *rel, const double *dl, const double *wl,
    double alpha, double beta, double lam, double s_m, double s_up,
    double alpha_m,
    double x_lo, double x_hi, double y_lo, double y_hi,
    int n_starts, const double *sx, const double *sy,
    double tol, int max_rounds,
    double *out);

void repro_powersum_roots(
    int n, const double *vals, const double *wl,
    int k, const unsigned char *masks,
    const double *lo_in, const double *hi_in,
    double target, double lam, int mode,
    double tol, int max_iter,
    double *out);
"""

CSOURCE = r"""
#include <math.h>

#define REPRO_MAX_SMALL 64
#define REPRO_PENALTY 1e30

/* ---------------------------------------------------------------------
 * bisect_left over a sorted double array (std lower bound).
 * ------------------------------------------------------------------- */
static int repro_bisect_left(const double *a, int n, double x)
{
    int lo = 0, hi = n;
    while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (a[mid] < x) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* ---------------------------------------------------------------------
 * Block energy objective -- transcribes blocks._block_energy_scalar.
 * ------------------------------------------------------------------- */
static double repro_block_energy_eval(
    int n, const double *rel, const double *dl, const double *wl,
    double alpha, double beta, double lam, double s_m, double s_up,
    double alpha_m,
    double start, double end)
{
    double total, violation;
    int i;
    if (end <= start)
        return REPRO_PENALTY * (1.0 + (start - end));
    total = alpha_m * (end - start);
    violation = 0.0;
    for (i = 0; i < n; i++) {
        double lo = rel[i] > start ? rel[i] : start;
        double hi = dl[i] < end ? dl[i] : end;
        double window = hi - lo;
        double w = wl[i];
        double min_duration = w / s_up;
        double eff, duration, speed;
        if (window < min_duration * (1.0 - 1e-12) - 1e-12) {
            violation += min_duration - window;
            continue;
        }
        eff = window > min_duration ? window : min_duration;
        if (alpha == 0.0) {
            duration = eff;
        } else {
            double filled = w / (dl[i] - rel[i]);
            double s0 = s_m > filled ? s_m : filled;
            double preferred;
            if (s0 > s_up) s0 = s_up;
            preferred = w / s0;
            if (preferred < min_duration) preferred = min_duration;
            duration = preferred < eff ? preferred : eff;
        }
        if (w == 0.0) continue;  /* execution_energy(0, *) == 0 */
        speed = w / duration;
        total += (alpha + beta * pow(speed, lam)) * w / speed;
    }
    if (violation > 0.0)
        return REPRO_PENALTY * (1.0 + violation);
    return total;
}

void repro_block_energy_batch(
    int n, const double *rel, const double *dl, const double *wl,
    double alpha, double beta, double lam, double s_m, double s_up,
    double alpha_m,
    int k, const double *starts, const double *ends, double *out)
{
    int p;
    for (p = 0; p < k; p++)
        out[p] = repro_block_energy_eval(
            n, rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m,
            starts[p], ends[p]);
}

/* ---------------------------------------------------------------------
 * Golden-section line search over the block objective -- transcribes
 * solvers.golden_section_minimize applied to blocks._minimize_2d's line
 * closure (first-minimum-wins across [best, mid, lo, hi]).
 * ------------------------------------------------------------------- */
typedef struct {
    int n;
    const double *rel, *dl, *wl;
    double alpha, beta, lam, s_m, s_up, alpha_m;
    double x, y, dx, dy;
} repro_line_ctx;

static double repro_line_eval(const repro_line_ctx *c, double t)
{
    return repro_block_energy_eval(
        c->n, c->rel, c->dl, c->wl, c->alpha, c->beta, c->lam,
        c->s_m, c->s_up, c->alpha_m,
        c->x + t * c->dx, c->y + t * c->dy);
}

static double repro_golden_line(
    const repro_line_ctx *c, double lo, double hi, double tol,
    double *arg_out)
{
    const double g = (sqrt(5.0) - 1.0) / 2.0;
    double a, b, x1, x2, f1, f2, bx, bf, mid;
    double cand[3];
    int it, i;
    if (hi - lo <= tol) {
        double m = 0.5 * (lo + hi);
        *arg_out = m;
        return repro_line_eval(c, m);
    }
    a = lo; b = hi;
    x1 = b - g * (b - a);
    x2 = a + g * (b - a);
    f1 = repro_line_eval(c, x1);
    f2 = repro_line_eval(c, x2);
    if (f1 <= f2) { bx = x1; bf = f1; } else { bx = x2; bf = f2; }
    for (it = 0; it < 200; it++) {
        if (b - a <= tol) break;
        if (f1 <= f2) {
            b = x2; x2 = x1; f2 = f1;
            x1 = b - g * (b - a);
            f1 = repro_line_eval(c, x1);
            if (f1 < bf) { bf = f1; bx = x1; }
        } else {
            a = x1; x1 = x2; f1 = f2;
            x2 = a + g * (b - a);
            f2 = repro_line_eval(c, x2);
            if (f2 < bf) { bf = f2; bx = x2; }
        }
    }
    mid = 0.5 * (a + b);
    cand[0] = mid; cand[1] = lo; cand[2] = hi;
    for (i = 0; i < 3; i++) {
        double fv = repro_line_eval(c, cand[i]);
        if (fv < bf) { bf = fv; bx = cand[i]; }
    }
    *arg_out = bx;
    return bf;
}

/* One blocks._minimize_2d line() step: clip the ray to the box, golden
 * along it, move only on strict improvement (stay-guard). */
static double repro_descent_line(
    repro_line_ctx *c,
    double x_lo, double x_hi, double y_lo, double y_hi,
    double *x, double *y, double dx, double dy, double tol)
{
    double t_lo = -INFINITY, t_hi = INFINITY, t;
    double t_best, val, here;
    if (dx > 0.0) {
        t = (x_lo - *x) / dx; if (t > t_lo) t_lo = t;
        t = (x_hi - *x) / dx; if (t < t_hi) t_hi = t;
    } else if (dx < 0.0) {
        t = (x_hi - *x) / dx; if (t > t_lo) t_lo = t;
        t = (x_lo - *x) / dx; if (t < t_hi) t_hi = t;
    }
    if (dy > 0.0) {
        t = (y_lo - *y) / dy; if (t > t_lo) t_lo = t;
        t = (y_hi - *y) / dy; if (t < t_hi) t_hi = t;
    } else if (dy < 0.0) {
        t = (y_hi - *y) / dy; if (t > t_lo) t_lo = t;
        t = (y_lo - *y) / dy; if (t < t_hi) t_hi = t;
    }
    if (t_hi <= t_lo)
        return repro_block_energy_eval(
            c->n, c->rel, c->dl, c->wl, c->alpha, c->beta, c->lam,
            c->s_m, c->s_up, c->alpha_m, *x, *y);
    c->x = *x; c->y = *y; c->dx = dx; c->dy = dy;
    val = repro_golden_line(c, t_lo, t_hi, tol, &t_best);
    here = repro_block_energy_eval(
        c->n, c->rel, c->dl, c->wl, c->alpha, c->beta, c->lam,
        c->s_m, c->s_up, c->alpha_m, *x, *y);
    if (here <= val) return here;
    *x = *x + t_best * dx;
    *y = *y + t_best * dy;
    return val;
}

void repro_solve_block_descent(
    int n, const double *rel, const double *dl, const double *wl,
    double alpha, double beta, double lam, double s_m, double s_up,
    double alpha_m,
    double x_lo, double x_hi, double y_lo, double y_hi,
    int n_starts, const double *sx, const double *sy,
    double tol, int max_rounds,
    double *out)
{
    repro_line_ctx c;
    double best_x = 0.0, best_y = 0.0, best_v = 0.0;
    int have = 0, k, r;
    c.n = n; c.rel = rel; c.dl = dl; c.wl = wl;
    c.alpha = alpha; c.beta = beta; c.lam = lam;
    c.s_m = s_m; c.s_up = s_up; c.alpha_m = alpha_m;
    for (k = 0; k < n_starts; k++) {
        double x = sx[k], y = sy[k], value, nv, thresh;
        if (x < x_lo) x = x_lo;
        if (x > x_hi) x = x_hi;
        if (y < y_lo) y = y_lo;
        if (y > y_hi) y = y_hi;
        value = repro_block_energy_eval(
            n, rel, dl, wl, alpha, beta, lam, s_m, s_up, alpha_m, x, y);
        for (r = 0; r < max_rounds; r++) {
            repro_descent_line(&c, x_lo, x_hi, y_lo, y_hi, &x, &y, 1.0, 0.0, tol);
            repro_descent_line(&c, x_lo, x_hi, y_lo, y_hi, &x, &y, 0.0, 1.0, tol);
            repro_descent_line(&c, x_lo, x_hi, y_lo, y_hi, &x, &y, 1.0, 1.0, tol);
            nv = repro_descent_line(&c, x_lo, x_hi, y_lo, y_hi, &x, &y, -1.0, 1.0, tol);
            thresh = tol * fabs(value);
            if (tol > thresh) thresh = tol;
            if (value - nv <= thresh) {
                if (nv < value) value = nv;
                break;
            }
            value = nv;
        }
        if (!have || value < best_v) {
            have = 1; best_x = x; best_y = y; best_v = value;
        }
    }
    out[0] = best_x; out[1] = best_y; out[2] = best_v;
}

/* ---------------------------------------------------------------------
 * Section 7 scan objective at one candidate -- transcribes the fused
 * evaluation inside vectorized.overhead_solve_small (value-identical to
 * vectorized._overhead_energy_small).
 * ------------------------------------------------------------------- */
static double repro_overhead_objective(
    int n, const double *ends,
    const double *pe, const double *pb, const double *pg,
    const long long *po,
    const double *sw, const double *sm,
    double horizon,
    double alpha, double beta, double one_lam, double axi,
    double alpha_m, double am_xi, double up_thresh,
    int gapped, double rel_end, double delta)
{
    double busy = horizon - delta;
    double energy, trailing;
    int k, behind;
    if (busy <= 0.0) return INFINITY;
    k = repro_bisect_left(ends, n, busy);
    if ((po != 0 && po[k] > 0) || sm[k] > up_thresh * busy)
        return INFINITY;
    behind = n - k;
    energy = alpha_m * busy
        + alpha * pe[k]
        + pb[k]
        + alpha * (double)behind * busy
        + sw[k] * (beta * pow(busy, one_lam));
    trailing = rel_end - busy;
    if (trailing > 0.0) {
        if (alpha_m != 0.0) {
            double mt = alpha_m * trailing;
            energy += mt < am_xi ? mt : am_xi;
        }
        if (gapped) {
            double ct = alpha * trailing;
            energy += (double)behind * (ct < axi ? ct : axi);
        }
    }
    if (gapped) energy += pg[k];
    return energy;
}

void repro_overhead_energy_small(
    int n, const double *ends,
    const double *pe, const double *pb, const double *pg,
    const long long *po,
    const double *sw, const double *sm,
    double horizon,
    double alpha, double beta, double lam, double xi,
    double alpha_m, double xi_m, double s_up,
    double rel_end,
    int k, const double *deltas, double *out)
{
    double one_lam = 1.0 - lam;
    double axi = alpha * xi;
    double am_xi = alpha_m * xi_m;
    double up_thresh = s_up * (1.0 + 1e-9);
    int gapped = pg != 0;
    int p;
    for (p = 0; p < k; p++)
        out[p] = repro_overhead_objective(
            n, ends, pe, pb, pg, po, sw, sm, horizon,
            alpha, beta, one_lam, axi, alpha_m, am_xi, up_thresh,
            gapped, rel_end, deltas[p]);
}

/* ---------------------------------------------------------------------
 * Fused small-n Section 7 solve -- transcribes
 * vectorized.overhead_solve_small end to end.
 *
 * Returns 0 when a best candidate was found (best_out = {delta, energy,
 * case_index}), 1 when rel_end precedes the schedule end (caller maps to
 * best=None), 2 when no case yields a candidate, and -1 on bad n.
 * ------------------------------------------------------------------- */
int repro_overhead_solve_small(
    int n, const double *rel, const double *dl, const double *wl,
    double latest_deadline,
    double alpha, double beta, double lam, double s_m, double s_up,
    double xi, double alpha_m, double xi_m,
    double rel_end,
    double *ends_out, int *order_out, double *best_out)
{
    double ends[REPRO_MAX_SMALL], wls[REPRO_MAX_SMALL];
    int order[REPRO_MAX_SMALL];
    double pe[REPRO_MAX_SMALL + 1], pb[REPRO_MAX_SMALL + 1];
    double pg[REPRO_MAX_SMALL + 1];
    long long po[REPRO_MAX_SMALL + 1];
    double sw[REPRO_MAX_SMALL + 1], smx[REPRO_MAX_SMALL + 1];
    double release, horizon, one_lam, up_thresh, axi, am_xi;
    double shift, beta_lam, inv_lam;
    double acc_e, acc_b, acc_g;
    double kinks[3];
    double best_delta = 0.0, best_energy = 0.0;
    int best_case = 0, found = 0;
    int gapped, overspeed, i, j;

    if (n < 1 || n > REPRO_MAX_SMALL) return -1;
    release = rel[0];

    /* -- geometry: natural end w/s_c per task (s_c of Section 7) -- */
    if (alpha == 0.0) {
        for (i = 0; i < n; i++) {
            ends[i] = dl[i] - release;
            order[i] = i;
            wls[i] = wl[i];
        }
    } else {
        double outer = latest_deadline - release;
        double reference = s_m < s_up ? s_m : s_up;  /* min(s_m, s_up) */
        int has_ref = s_m > 0.0;
        for (i = 0; i < n; i++) {
            double w = wl[i];
            double filled = w / (dl[i] - rel[i]);
            double candidate = s_m > filled ? s_m : filled;
            double ref, s_c;
            if (candidate > s_up) candidate = s_up;
            ref = has_ref ? reference : candidate;
            if (ref <= 0.0 || outer - w / ref >= xi)
                s_c = candidate;
            else
                s_c = filled < s_up ? filled : s_up;
            ends[i] = w / s_c;
            order[i] = i;
            wls[i] = w;
        }
    }

    /* -- stable insertion sort by natural end (matches list.sort) -- */
    for (i = 1; i < n; i++) {
        double ev = ends[i], wv = wls[i];
        int ov = order[i];
        j = i - 1;
        while (j >= 0 && ends[j] > ev) {
            ends[j + 1] = ends[j];
            order[j + 1] = order[j];
            wls[j + 1] = wls[j];
            j--;
        }
        ends[j + 1] = ev;
        order[j + 1] = ov;
        wls[j + 1] = wv;
    }
    horizon = ends[n - 1];
    for (i = 0; i < n; i++) {
        ends_out[i] = ends[i];
        order_out[i] = order[i];
    }
    if (rel_end < horizon - 1e-9) return 1;

    /* -- prefix/suffix tables (Eq. (8) power-sum structure) -- */
    one_lam = 1.0 - lam;
    up_thresh = s_up * (1.0 + 1e-9);
    gapped = (alpha != 0.0) && (xi != 0.0);
    axi = alpha * xi;
    pe[0] = 0.0; pb[0] = 0.0; pg[0] = 0.0;
    acc_e = 0.0; acc_b = 0.0; acc_g = 0.0;
    overspeed = 0;
    for (i = 0; i < n; i++) {
        double end = ends[i], w = wls[i];
        acc_e += end;
        pe[i + 1] = acc_e;
        acc_b += (beta * pow(w, lam)) * pow(end, one_lam);
        pb[i + 1] = acc_b;
        if (gapped) {
            double gap = rel_end - end;
            if (gap > 0.0) {
                double ag = alpha * gap;
                acc_g += ag < axi ? ag : axi;
            }
            pg[i + 1] = acc_g;
        }
        if (w / end > up_thresh) overspeed = 1;
    }
    if (overspeed) {
        long long acc_o = 0;
        po[0] = 0;
        for (i = 0; i < n; i++) {
            acc_o += (wls[i] / ends[i] > up_thresh) ? 1 : 0;
            po[i + 1] = acc_o;
        }
    }
    sw[n] = 0.0; smx[n] = 0.0;
    for (j = n - 1; j >= 0; j--) {
        double wj = wls[j], prev = smx[j + 1];
        sw[j] = sw[j + 1] + pow(wj, lam);
        smx[j] = prev >= wj ? prev : wj;
    }

    am_xi = alpha_m * xi_m;
    shift = rel_end - horizon;
    beta_lam = beta * (lam - 1.0);
    inv_lam = 1.0 / lam;
    kinks[0] = 0.0;
    kinks[1] = xi - shift;
    kinks[2] = xi_m - shift;

    /* -- case sweep: i tasks aligned to the busy end -- */
    for (i = 1; i <= n; i++) {
        double lo = horizon - ends[i - 1];
        double cap = horizon - smx[i - 1] / s_up;
        double hi = (i == 1) ? INFINITY : horizon - ends[i - 2];
        double factor, coeffs[3], cand[8];
        int nc = 0, c, a, b, aligned;
        if (cap < hi) hi = cap;
        if (horizon < hi) hi = horizon;
        if (hi < lo) continue;
        aligned = n - i + 1;
        cand[nc++] = lo;
        cand[nc++] = isfinite(hi) ? hi : lo;
        factor = beta_lam * sw[i - 1];
        coeffs[0] = (double)aligned * alpha + alpha_m;  /* both sleep */
        coeffs[1] = alpha_m;                            /* cores idle awake */
        coeffs[2] = (double)aligned * alpha;            /* memory stays awake */
        for (c = 0; c < 3; c++) {
            if (coeffs[c] > 0.0) {
                double point = horizon - pow(factor / coeffs[c], inv_lam);
                if (point < lo) point = lo;
                if (point > hi) point = hi;
                cand[nc++] = point;
            }
        }
        for (c = 0; c < 3; c++) {
            if (lo <= kinks[c] && kinks[c] <= hi)
                cand[nc++] = kinks[c];
        }
        /* ascending fold == Python's sorted(candidates); equal values are
         * adjacent and the strict-improvement rule ignores duplicates */
        for (a = 1; a < nc; a++) {
            double v = cand[a];
            b = a - 1;
            while (b >= 0 && cand[b] > v) {
                cand[b + 1] = cand[b];
                b--;
            }
            cand[b + 1] = v;
        }
        for (c = 0; c < nc; c++) {
            double delta = cand[c];
            double energy = repro_overhead_objective(
                n, ends, pe, pb, gapped ? pg : 0, overspeed ? po : 0,
                sw, smx, horizon, alpha, beta, one_lam, axi,
                alpha_m, am_xi, up_thresh, gapped, rel_end, delta);
            if (!found || energy < best_energy - 1e-12) {
                found = 1;
                best_delta = delta;
                best_energy = energy;
                best_case = i;
            }
        }
    }
    if (!found) return 2;
    best_out[0] = best_delta;
    best_out[1] = best_energy;
    best_out[2] = (double)best_case;
    return 0;
}

/* ---------------------------------------------------------------------
 * Batched power-sum root finds -- transcribes solvers.bisect_increasing
 * over the alpha=0 head-slope / tail-condition closures of
 * blocks._solve_cell_alpha_zero.  mode 0: head (vals are deadlines,
 * f(s) = sum((w/(d-s))^lam) - target, empty head -> +inf).  mode 1: tail
 * (vals are releases, f(e) = target - sum((w/(e-r))^lam), empty tail ->
 * -inf).
 * ------------------------------------------------------------------- */
static double repro_powersum_eval(
    int n, const double *vals, const double *wl,
    const unsigned char *mask, double lam, double target,
    int mode, double x)
{
    double acc = 0.0;
    int i;
    if (mode == 0) {
        for (i = 0; i < n; i++) {
            double len;
            if (!mask[i]) continue;
            len = vals[i] - x;
            if (len <= 0.0) return INFINITY;
            acc += pow(wl[i] / len, lam);
        }
        return acc - target;
    }
    for (i = 0; i < n; i++) {
        double len;
        if (!mask[i]) continue;
        len = x - vals[i];
        if (len <= 0.0) return -INFINITY;
        acc += pow(wl[i] / len, lam);
    }
    return target - acc;
}

void repro_powersum_roots(
    int n, const double *vals, const double *wl,
    int k, const unsigned char *masks,
    const double *lo_in, const double *hi_in,
    double target, double lam, int mode,
    double tol, int max_iter,
    double *out)
{
    int p;
    for (p = 0; p < k; p++) {
        const unsigned char *mask = masks + (long)p * n;
        double lo = lo_in[p], hi = hi_in[p];
        double flo, fhi;
        int it, done = 0;
        flo = repro_powersum_eval(n, vals, wl, mask, lam, target, mode, lo);
        if (flo >= 0.0) { out[p] = lo; continue; }
        fhi = repro_powersum_eval(n, vals, wl, mask, lam, target, mode, hi);
        if (fhi <= 0.0) { out[p] = hi; continue; }
        for (it = 0; it < max_iter; it++) {
            double mid = 0.5 * (lo + hi);
            double fmid;
            if (hi - lo <= tol) { out[p] = mid; done = 1; break; }
            fmid = repro_powersum_eval(n, vals, wl, mask, lam, target, mode, mid);
            if (fmid < 0.0) lo = mid; else hi = mid;
        }
        if (!done) out[p] = 0.5 * (lo + hi);
    }
}
"""

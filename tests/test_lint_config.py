"""``[tool.repro-lint]`` configuration: loader + BCK001/BCK002 rescoping.

The true-positive/false-positive pair required by the config feature:
with a custom sanctioned list the rules must fire where the default list
would stay quiet (numpy import in a formerly sanctioned module) and must
stay quiet where the default list would fire (guarded numpy import in a
newly sanctioned module).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.config import (
    DEFAULT_SANCTIONED_JIT_MODULES,
    DEFAULT_SANCTIONED_NUMPY_MODULES,
    DEFAULT_SHARD_STATE_MODULES,
    DEFAULT_UNIT_TAGGED_MODULES,
    ConfigError,
    LintConfig,
    _fallback_table,
    load_config,
)
from tests.lint_helpers import run_lint, rule_ids

CUSTOM_PYPROJECT = """
    [tool.repro-lint]
    sanctioned-numpy-modules = [
        "repro.myext.fast",
    ]
"""

GUARDED_NUMPY = """
    try:
        import numpy as np
    except ImportError:
        np = None
"""


class TestRuleRescoping:
    def test_true_positive_default_sanctioned_module_flagged(self, tmp_path):
        """BCK002 fires in repro.core.vectorized once the config drops it."""
        findings = run_lint(
            str(tmp_path),
            {
                "pyproject.toml": CUSTOM_PYPROJECT,
                "src/repro/core/vectorized.py": GUARDED_NUMPY,
            },
            rules=["BCK002"],
        )
        assert rule_ids(findings) == ["BCK002"]
        assert "repro.myext.fast" in findings[0].message

    def test_false_positive_guard_new_sanctioned_module_quiet(self, tmp_path):
        """No BCK001/BCK002 for a guarded import in the configured module."""
        findings = run_lint(
            str(tmp_path),
            {
                "pyproject.toml": CUSTOM_PYPROJECT,
                "src/repro/myext/fast.py": GUARDED_NUMPY,
            },
            rules=["backend"],
        )
        assert findings == []

    def test_bck001_guard_requirement_follows_config(self, tmp_path):
        """An *unguarded* import in the configured module still gets BCK001."""
        findings = run_lint(
            str(tmp_path),
            {
                "pyproject.toml": CUSTOM_PYPROJECT,
                "src/repro/myext/fast.py": "import numpy as np\n",
            },
            rules=["backend"],
        )
        assert rule_ids(findings) == ["BCK001"]

    def test_jit_rescoping_true_positive_and_false_positive(self, tmp_path):
        """BCK004 follows sanctioned-jit-modules: fires where the default
        list stayed quiet, quiet where the default list fired."""
        pyproject = """
            [tool.repro-lint]
            sanctioned-jit-modules = ["repro.myext.compiled"]
        """
        findings = run_lint(
            str(tmp_path),
            {
                "pyproject.toml": pyproject,
                "src/repro/core/kernels/__init__.py": "import cffi\n",
                "src/repro/myext/compiled/fast.py": "import numba\n",
            },
            rules=["BCK004"],
        )
        assert rule_ids(findings) == ["BCK004"]
        assert findings[0].path == "src/repro/core/kernels/__init__.py"
        assert "repro.myext.compiled" in findings[0].message

    def test_defaults_without_table_unchanged(self, tmp_path):
        findings = run_lint(
            str(tmp_path),
            {
                "pyproject.toml": "[tool.other]\nkey = 1\n",
                "src/repro/core/vectorized.py": GUARDED_NUMPY,
                "src/repro/experiments/stats.py": "import numpy as np\n",
            },
            rules=["backend"],
        )
        assert rule_ids(findings) == ["BCK002"]
        assert findings[0].path == "src/repro/experiments/stats.py"


class TestLoadConfig:
    def _write(self, tmp_path, text: str) -> str:
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(text), encoding="utf-8"
        )
        return str(tmp_path)

    def test_missing_file_yields_defaults(self, tmp_path):
        config = load_config(str(tmp_path))
        assert config == LintConfig()
        assert (
            config.sanctioned_numpy_modules == DEFAULT_SANCTIONED_NUMPY_MODULES
        )

    def test_missing_table_yields_defaults(self, tmp_path):
        root = self._write(tmp_path, "[tool.ruff]\nline-length = 88\n")
        assert load_config(root) == LintConfig()

    def test_empty_table_yields_defaults(self, tmp_path):
        root = self._write(tmp_path, "[tool.repro-lint]\n")
        assert load_config(root) == LintConfig()

    def test_custom_list_parsed(self, tmp_path):
        root = self._write(
            tmp_path,
            """
            [tool.repro-lint]
            sanctioned-numpy-modules = ["a.b", "c.d"]
            """,
        )
        assert load_config(root).sanctioned_numpy_modules == ("a.b", "c.d")

    def test_multiline_list_parsed(self, tmp_path):
        root = self._write(tmp_path, CUSTOM_PYPROJECT)
        assert load_config(root).sanctioned_numpy_modules == (
            "repro.myext.fast",
        )

    def test_jit_key_defaults(self, tmp_path):
        config = load_config(str(tmp_path))
        assert config.sanctioned_jit_modules == DEFAULT_SANCTIONED_JIT_MODULES
        assert config.sanctioned_jit_modules == ("repro.core.kernels",)

    def test_jit_key_parsed_independently_of_numpy_key(self, tmp_path):
        root = self._write(
            tmp_path,
            """
            [tool.repro-lint]
            sanctioned-jit-modules = ["repro.myext.compiled"]
            """,
        )
        config = load_config(root)
        assert config.sanctioned_jit_modules == ("repro.myext.compiled",)
        assert (
            config.sanctioned_numpy_modules == DEFAULT_SANCTIONED_NUMPY_MODULES
        )

    def test_both_keys_parsed(self, tmp_path):
        root = self._write(
            tmp_path,
            """
            [tool.repro-lint]
            sanctioned-numpy-modules = ["a.b"]
            sanctioned-jit-modules = ["c.d", "e.f"]
            """,
        )
        config = load_config(root)
        assert config.sanctioned_numpy_modules == ("a.b",)
        assert config.sanctioned_jit_modules == ("c.d", "e.f")

    def test_unit_tagged_key_defaults(self, tmp_path):
        config = load_config(str(tmp_path))
        assert config.unit_tagged_modules == DEFAULT_UNIT_TAGGED_MODULES
        assert config.unit_tagged_modules == ("repro.core.fptas",)

    def test_unit_tagged_key_parsed_independently(self, tmp_path):
        root = self._write(
            tmp_path,
            """
            [tool.repro-lint]
            unit-tagged-modules = ["repro.energy.grids"]
            """,
        )
        config = load_config(root)
        assert config.unit_tagged_modules == ("repro.energy.grids",)
        assert (
            config.sanctioned_numpy_modules == DEFAULT_SANCTIONED_NUMPY_MODULES
        )

    def test_unit_tagged_key_scalar_rejected(self, tmp_path):
        root = self._write(
            tmp_path,
            """
            [tool.repro-lint]
            unit-tagged-modules = "repro.core.fptas"
            """,
        )
        with pytest.raises(ConfigError, match="unit-tagged-modules"):
            load_config(root)

    def test_jit_key_scalar_rejected(self, tmp_path):
        root = self._write(
            tmp_path,
            """
            [tool.repro-lint]
            sanctioned-jit-modules = "repro.core.kernels"
            """,
        )
        with pytest.raises(ConfigError, match="list of non-empty strings"):
            load_config(root)

    def test_scalar_value_rejected(self, tmp_path):
        root = self._write(
            tmp_path,
            """
            [tool.repro-lint]
            sanctioned-numpy-modules = 7
            """,
        )
        with pytest.raises(ConfigError, match="list of non-empty strings"):
            load_config(root)

    def test_non_string_entry_rejected(self, tmp_path):
        root = self._write(
            tmp_path,
            """
            [tool.repro-lint]
            sanctioned-numpy-modules = ["a.b", 3]
            """,
        )
        with pytest.raises(ConfigError, match="list of non-empty strings"):
            load_config(root)

    def test_unknown_key_rejected(self, tmp_path):
        root = self._write(
            tmp_path,
            """
            [tool.repro-lint]
            sanctioned-numpy-module = ["typo"]
            """,
        )
        with pytest.raises(ConfigError, match="unknown"):
            load_config(root)

    def test_shard_state_key_defaults(self, tmp_path):
        config = load_config(str(tmp_path))
        assert config.shard_state_modules == DEFAULT_SHARD_STATE_MODULES
        assert "repro.service.shard" in config.shard_state_modules

    def test_shard_state_key_parsed_independently(self, tmp_path):
        root = self._write(
            tmp_path,
            """
            [tool.repro-lint]
            shard-state-modules = ["repro.service.pool"]
            """,
        )
        config = load_config(root)
        assert config.shard_state_modules == ("repro.service.pool",)
        assert (
            config.sanctioned_numpy_modules == DEFAULT_SANCTIONED_NUMPY_MODULES
        )

    def test_shard_state_key_scalar_rejected(self, tmp_path):
        root = self._write(
            tmp_path,
            """
            [tool.repro-lint]
            shard-state-modules = "repro.service.shard"
            """,
        )
        with pytest.raises(ConfigError, match="shard-state-modules"):
            load_config(root)

    def test_config_error_is_usage_error(self):
        assert issubclass(ConfigError, ValueError)


class TestFallbackParser:
    """The 3.10 subset parser must agree with tomllib where both run."""

    def _table(self, tmp_path, text: str):
        path = tmp_path / "pyproject.toml"
        path.write_text(textwrap.dedent(text), encoding="utf-8")
        return _fallback_table(str(path))

    def test_absent_table_is_none(self, tmp_path):
        assert self._table(tmp_path, "[tool.ruff]\nx = 1\n") is None

    def test_single_line_list(self, tmp_path):
        table = self._table(
            tmp_path,
            """
            [tool.repro-lint]
            sanctioned-numpy-modules = ["a.b", 'c.d']
            """,
        )
        assert table == {"sanctioned-numpy-modules": ["a.b", "c.d"]}

    def test_multi_line_list_with_comments(self, tmp_path):
        table = self._table(
            tmp_path,
            """
            # leading comment
            [tool.repro-lint]
            sanctioned-numpy-modules = [
                "a.b",
                "c.d",
            ]

            [tool.other]
            ignored = true
            """,
        )
        assert table == {"sanctioned-numpy-modules": ["a.b", "c.d"]}

    def test_agrees_with_tomllib_on_repo_pyproject(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        text = """
            [tool.ruff]
            line-length = 88

            [tool.repro-lint]
            sanctioned-numpy-modules = [
                "repro.core.vectorized",
                "repro.utils.solvers",
            ]
        """
        path = tmp_path / "pyproject.toml"
        path.write_text(textwrap.dedent(text), encoding="utf-8")
        with open(path, "rb") as handle:
            expected = tomllib.load(handle)["tool"]["repro-lint"]
        assert _fallback_table(str(path)) == expected

    def test_unterminated_list_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="unterminated"):
            self._table(
                tmp_path,
                """
                [tool.repro-lint]
                sanctioned-numpy-modules = [
                    "a.b",
                """,
            )

"""Metrics kernel tests: instruments, registry, text page, snapshot."""

from __future__ import annotations

import threading

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SERVICE_METRICS,
    scheme_energy_counter,
    service_metrics,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1.0)

    def test_thread_safety(self):
        c = Counter("hits")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_peak_tracks_high_water_mark(self):
        g = Gauge("depth")
        g.inc(5)
        g.dec(3)
        g.set(4)
        assert g.value == 4
        assert g.peak == 5

    def test_sample_includes_peak(self):
        g = Gauge("depth")
        g.set(2)
        assert g.sample() == {"value": 2.0, "peak": 2.0}


class TestHistogram:
    def test_count_sum_max(self):
        h = Histogram("latency")
        for v in (1.0, 5.0, 3.0):
            h.observe(v)
        sample = h.sample()
        assert sample["count"] == 3
        assert sample["sum"] == 9.0
        assert sample["max"] == 5.0
        assert sample["mean"] == pytest.approx(3.0)

    def test_percentiles(self):
        h = Histogram("latency")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50.0) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(95.0) == pytest.approx(95.0, abs=1.0)
        assert h.percentile(100.0) == 100.0

    def test_empty_percentile_is_none(self):
        assert Histogram("latency").percentile(50.0) is None

    def test_reservoir_bounds_memory_but_not_count(self):
        h = Histogram("latency", reservoir=10)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.percentile(0.0) == 90.0  # only the recent window remains


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_covers_all_metrics(self):
        registry = service_metrics()
        snapshot = registry.snapshot()
        for _, name, _ in SERVICE_METRICS:
            assert name in snapshot

    def test_render_text_page(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "solve requests received").inc(7)
        registry.gauge("repro_queue_depth").set(2)
        registry.histogram("repro_batch_size").observe(4)
        page = registry.render_text()
        assert "# HELP repro_requests_total solve requests received" in page
        assert "# TYPE repro_requests_total counter" in page
        assert "repro_requests_total 7" in page  # integers render without .0
        assert "repro_queue_depth_peak 2" in page
        assert "repro_batch_size_count 1" in page

    def test_scheme_energy_counter_slug(self):
        registry = MetricsRegistry()
        counter = scheme_energy_counter(registry, "sdem-on")
        assert counter.name == "repro_energy_uj_total_sdem_on"
        assert scheme_energy_counter(registry, "sdem-on") is counter


class TestStreamingPercentiles:
    """The log-bucket sketch: all-time percentiles with bounded relative
    error, immune to the 1024-sample reservoir's recency bias."""

    def test_empty_is_none(self):
        assert Histogram("h").streaming_percentile(50.0) is None

    def test_bounded_relative_error(self):
        h = Histogram("h")
        for v in range(1, 10_001):
            h.observe(float(v))
        # Bucket width is 10^(1/32) ~= 7.5%; allow a little headroom.
        assert h.streaming_percentile(50.0) == pytest.approx(5000.0, rel=0.09)
        assert h.streaming_percentile(99.0) == pytest.approx(9900.0, rel=0.09)

    def test_remembers_tail_the_reservoir_forgot(self):
        """1000 slow observations followed by 99k fast ones: the recent
        reservoir reports a fast p-anything, the sketch still sees the
        slow 1%."""
        import random

        rng = random.Random(1)
        h = Histogram("h", reservoir=1024)
        slow = [rng.uniform(400.0, 600.0) for _ in range(2000)]
        fast = [rng.uniform(0.5, 2.0) for _ in range(98_000)]
        for v in slow + fast:
            h.observe(v)
        # Reservoir window is all-fast: its p95 has lost the tail.
        assert h.percentile(95.0) < 3.0
        # The sketch's p99 still lands in the slow band (2% of mass).
        assert 350.0 < h.streaming_percentile(99.0) < 700.0

    def test_overflow_and_underflow_clamp_to_observed_extremes(self):
        h = Histogram("h")
        h.observe(0.0)       # below the 1e-3 bucket floor
        h.observe(1e9)       # beyond the 1e6 bucket ceiling
        assert h.streaming_percentile(1.0) == 0.0
        assert h.streaming_percentile(99.9) == 1e9

    def test_single_value_consistent(self):
        h = Histogram("h")
        h.observe(42.0)
        assert h.streaming_percentile(50.0) == pytest.approx(42.0, rel=0.08)

    def test_rendered_on_text_page_alongside_reservoir(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        text = "\n".join(h.render())
        assert "h_p50 " in text
        assert "h_p95 " in text
        assert "h_p50_stream " in text
        assert "h_p99_stream " in text
        sample = h.sample()
        assert sample["p50_stream"] == pytest.approx(50.0, rel=0.09)
        assert sample["p99_stream"] == pytest.approx(99.0, rel=0.09)

    def test_thread_safety(self):
        import threading

        h = Histogram("h")

        def worker(base):
            for v in range(1, 1001):
                h.observe(float(v) * base)

        threads = [
            threading.Thread(target=worker, args=(b,)) for b in (1.0, 10.0)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 2000
        assert h.streaming_percentile(99.9) == pytest.approx(10_000.0, rel=0.09)

"""Transition-overhead-aware schemes (paper Section 7).

When waking up costs energy, sleeping is only worth it for gaps longer than
the break-even times (``xi`` for a core, ``xi_m`` for the memory).  The
paper extends the common-release scheme of Section 4.2 in three moves:

1. replace the critical speed by the *constrained* critical speed ``s_c``
   (:meth:`repro.models.power.CorePowerModel.s_c`): a task whose leftover
   gap could never amortize a core sleep simply runs at its filled speed;
2. keep the case analysis over the sleep length ``Delta``, but evaluate
   every candidate with break-even-aware gap pricing -- each component
   crosses its idle gap at ``min(static * gap, static * break_even)``;
3. pick the best of the per-regime stationary points and the kink points
   ``{0, xi, xi_m}``.  Table 3's four rows are exactly the outcomes of this
   candidate sweep, because each smooth piece of the total-energy curve
   corresponds to one sleep/stay-awake regime whose interior stationary
   point is an Eq. (8)-type closed form with a different effective static
   coefficient:

   * both memory and aligned cores sleep -> ``(n-i+1) alpha + alpha_m``;
   * memory sleeps, cores idle awake     -> ``alpha_m`` (the Eq. (4) form);
   * memory awake, cores sleep           -> ``(n-i+1) alpha``.

The returned solution's ``predicted_energy`` equals pricing the emitted
schedule with :func:`repro.energy.accounting.account` under
``SleepPolicy.BREAK_EVEN`` for both components over ``[release, release +
|I|]`` -- the test suite asserts this equality and compares against a dense
numeric reference.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core import kernels, vectorized
from repro.core.common_release import CommonReleaseSolution
from repro.models.platform import Platform
from repro.models.task import TaskSet
from repro.utils.solvers import record_solver_call

__all__ = [
    "solve_common_release_with_overhead",
    "overhead_energy_at_delta",
]

_INF = float("inf")


def _gap_cost(static: float, gap: float, break_even: float) -> float:
    """Cheapest way one component crosses an idle gap."""
    if static == 0.0 or gap <= 0.0:
        return 0.0
    return min(static * gap, static * break_even)


def _schedule_geometry(
    tasks: TaskSet, platform: Platform
) -> Tuple[float, List[float], List[float], List]:
    """Common geometry: per-task natural finish under the overhead model.

    With ``alpha = 0`` the natural finish is the deadline (filled speed);
    with ``alpha != 0`` it is the completion at the constrained critical
    speed ``s_c``.  Returns ``(horizon, natural_ends, workloads, order)``
    with tasks sorted by natural end, all on the release-relative axis.
    """
    core = platform.core
    release = tasks[0].release
    if core.alpha == 0.0:
        annotated = [(t.deadline - release, t) for t in tasks]
        horizon = max(end for end, _ in annotated)
    else:
        # s_c is defined against the maximal interval |I| = d_n - r.
        outer = tasks.latest_deadline - release
        annotated = [(t.workload / core.s_c(t, outer), t) for t in tasks]
        horizon = max(end for end, _ in annotated)
    annotated.sort(key=lambda pair: pair[0])
    ends = [end for end, _ in annotated]
    order = [t for _, t in annotated]
    workloads = [t.workload for t in order]
    return horizon, ends, workloads, order


def overhead_energy_at_delta(
    tasks: TaskSet,
    platform: Platform,
    delta: float,
    *,
    horizon_end: Optional[float] = None,
) -> float:
    """Total energy (with transition overheads) at sleep length ``delta``.

    Tasks whose natural finish lands inside the sleep window are aligned to
    finish at ``|I| - delta``; the others keep their natural speed.  All
    idle gaps are priced with break-even-aware gap costs over
    ``[release, horizon_end]`` -- by default up to the latest deadline, so
    the *trailing* idle time (after the last completion) also counts
    toward amortizing a sleep transition.  With common releases all common
    idle is one trailing window, so the memory's effective gap is
    ``horizon_end - busy_end``, not just the in-``|I|`` part ``delta``.
    Returns ``inf`` when ``delta`` forces an overspeed.
    """
    core = platform.core
    memory = platform.memory
    release = tasks[0].release
    rel_end = (
        tasks.latest_deadline - release
        if horizon_end is None
        else horizon_end - release
    )
    horizon, ends, _, order = _schedule_geometry(tasks, platform)
    if rel_end < horizon - 1e-9:
        raise ValueError(
            f"horizon_end {horizon_end} precedes the schedule end "
            f"{release + horizon}"
        )
    busy_end = horizon - delta
    if busy_end <= 0.0:
        return _INF
    total = memory.alpha_m * busy_end + _gap_cost(
        memory.alpha_m, rel_end - busy_end, memory.xi_m
    )
    for natural, task in zip(ends, order):
        finish = min(natural, busy_end)
        speed = task.workload / finish
        if speed > core.s_up * (1.0 + 1e-9):
            return _INF
        total += core.execution_energy(task.workload, speed)
        total += _gap_cost(core.alpha, rel_end - finish, core.xi)
    return total


def solve_common_release_with_overhead(
    tasks: TaskSet,
    platform: Platform,
    *,
    horizon_end: Optional[float] = None,
    check_inputs: bool = True,
) -> CommonReleaseSolution:
    """Section 7's overhead-aware common-release scheme (Theorem 5).

    Scans the ``n`` cases of the Section 4 geometry; in each case evaluates
    the per-regime stationary points plus the Table 3 kink candidates
    ``{0, xi, xi_m}`` under break-even pricing and returns the global best.

    ``horizon_end`` (default: the latest deadline) closes the accounting
    window; trailing idle up to it counts toward amortizing sleep
    transitions, so the returned ``predicted_energy`` equals pricing the
    emitted schedule over ``[release, horizon_end]`` with
    ``SleepPolicy.BREAK_EVEN``.

    ``check_inputs=False`` skips the common-release / feasibility input
    guards for callers that guarantee them structurally -- the online
    replan loop re-anchors every task at the same instant and only ever
    tightens speeds toward ``s_up``, and re-checking on each of its
    thousands of solves is measurable (docs/PERFORMANCE.md).  The solver's
    output is identical either way.
    """
    record_solver_call("overhead_delta")
    core = platform.core
    memory = platform.memory
    if check_inputs:
        if not tasks.has_common_release():
            raise ValueError(
                "the Section 7 scheme requires a common release time"
            )
        if not tasks.is_feasible_at(core.s_up):
            raise ValueError("task set infeasible even at s_up")

    release = tasks[0].release
    lam, beta = core.lam, core.beta
    backend = vectorized.get_backend()
    use_jit = backend == "jit"
    use_numpy = vectorized.HAS_NUMPY if use_jit else backend == "numpy"
    rel_end = (
        tasks.latest_deadline - release
        if horizon_end is None
        else horizon_end - release
    )
    best: Optional[Tuple[float, float, int]] = None
    fused = (use_numpy or use_jit) and len(tasks) <= vectorized._SMALL_N
    if fused:
        # The online replan loop solves thousands of 1-8 task instances;
        # the fused kernel runs the same geometry / scan / candidate fold
        # in one frame (identical floats, see its docstring).  The jit
        # backend swaps in the compiled transcription, which the kernel
        # self-check pins bit-identical to the Python fused path.
        if use_jit:
            horizon, ends, order_idx, best = kernels.overhead_solve_small(
                tasks, platform, rel_end
            )
        else:
            horizon, ends, order_idx, best = vectorized.overhead_solve_small(
                tasks, platform, rel_end
            )
        if best is None and rel_end < horizon - 1e-9:
            raise ValueError(
                f"horizon_end {horizon_end} precedes the schedule end "
                f"{release + horizon}"
            )
        ordered_tasks = tasks.tasks
        order = [ordered_tasks[k] for k in order_idx]
    elif use_numpy:
        # One geometry + prefix-scan build per solve prices every candidate
        # in O(log n): the scalar path recomputes the geometry inside each
        # `overhead_energy_at_delta` call, which profiling shows dominates
        # the Section 8 sweeps (see docs/PERFORMANCE.md).
        scan = vectorized.overhead_scan(tasks, platform, rel_end)
        horizon = scan.horizon
        ends = scan.ends
        workloads = scan.workloads
        ordered_tasks = tasks.tasks
        order = [ordered_tasks[k] for k in scan.order]
        if rel_end < horizon - 1e-9:
            # The scalar path raises this from its first per-candidate call.
            raise ValueError(
                f"horizon_end {horizon_end} precedes the schedule end "
                f"{release + horizon}"
            )
    else:
        horizon, ends, workloads, order = _schedule_geometry(tasks, platform)
    if not fused:
        n = len(order)
        # Gap lengths exceed the in-|I| sleep by this trailing allowance,
        # which shifts the break-even kink positions on the Delta axis.
        shift = rel_end - horizon

        delta_bp = [_INF] + [horizon - c for c in ends]
        if use_numpy:
            # The scan already built the same right-to-left accumulations
            # (identical op order, hence identical floats); suffix index j
            # covers tasks [j, n), so case i reads slot i - 1.
            suffix_wlam = scan.suffix_wlam
            suffix_max_w = scan.suffix_max_w
        else:
            suffix_wlam = [0.0] * (n + 1)
            suffix_max_w = [0.0] * (n + 1)
            for j in range(n - 1, -1, -1):
                suffix_wlam[j] = suffix_wlam[j + 1] + workloads[j] ** lam
                suffix_max_w[j] = max(suffix_max_w[j + 1], workloads[j])

        beta_lam = beta * (lam - 1.0)
        inv_lam = 1.0 / lam
        alpha, alpha_m = core.alpha, memory.alpha_m
        s_up, core_xi, mem_xi = core.s_up, core.xi, memory.xi_m
        kinks = (0.0, core_xi - shift, mem_xi - shift)

        pending: List[Tuple[float, int]] = []
        for i in range(1, n + 1):
            lo = delta_bp[i]
            cap = horizon - suffix_max_w[i - 1] / s_up
            hi = min(delta_bp[i - 1], cap, horizon)
            if hi < lo:
                continue
            aligned = n - i + 1
            candidates = {lo, hi if math.isfinite(hi) else lo}
            # Eq. (8)-type stationary point per sleep/stay-awake regime,
            # each with its own effective static coefficient (Table 3).
            factor = beta_lam * suffix_wlam[i - 1]
            for coeff in (
                aligned * alpha + alpha_m,  # both sleep
                alpha_m,  # cores idle awake
                aligned * alpha,  # memory stays awake
            ):
                if coeff > 0.0:
                    point = horizon - (factor / coeff) ** inv_lam
                    candidates.add(min(max(point, lo), hi))
            for kink in kinks:
                if lo <= kink <= hi:
                    candidates.add(kink)
            if use_numpy:
                pending.extend((delta, i) for delta in sorted(candidates))
                continue
            for delta in sorted(candidates):
                energy = overhead_energy_at_delta(
                    tasks, platform, delta, horizon_end=horizon_end
                )
                if best is None or energy < best[1] - 1e-12:
                    best = (delta, energy, i)
        if use_numpy and pending:
            energies = vectorized.overhead_energy_batch(
                scan, platform, rel_end, [p[0] for p in pending]
            )
            for (delta, i), energy in zip(pending, energies):
                if best is None or energy < best[1] - 1e-12:
                    best = (delta, energy, i)
    if best is None:  # pragma: no cover - guarded by feasibility check
        raise RuntimeError("no feasible case found")
    delta_opt, energy_opt, case_idx = best

    busy_end = horizon - delta_opt
    finish: Dict[str, float] = {}
    speeds: Dict[str, float] = {}
    for natural, task in zip(ends, order):
        end_rel = min(natural, busy_end)
        finish[task.name] = release + end_rel
        speeds[task.name] = task.workload / end_rel
    return CommonReleaseSolution(
        tasks=tasks,
        release=release,
        interval_end=release + horizon,
        delta=delta_opt,
        case_index=case_idx,
        finish_times=finish,
        speeds=speeds,
        predicted_energy=energy_opt,
        alpha_zero=core.alpha == 0.0,
    )

"""Serialization: task sets, traces and schedules to/from JSON and CSV.

Formats are deliberately boring:

* **tasks CSV** -- header ``name,release,deadline,workload`` (ms / kc);
* **tasks JSON** -- ``{"tasks": [{"name": ..., "release": ...,
  "deadline": ..., "workload": ...}, ...]}``;
* **schedule JSON** -- ``{"cores": [[{"task": ..., "start": ...,
  "end": ..., "speed": ...}, ...], ...]}``.

These feed the CLI (``python -m repro``) and make experiment inputs and
outputs diffable artifacts.
"""

from __future__ import annotations

import csv
import json
from typing import Iterable, List, TextIO, Union

from repro.models.task import Task, TaskSet
from repro.schedule.timeline import CoreTimeline, ExecutionInterval, Schedule

__all__ = [
    "tasks_to_json",
    "tasks_from_json",
    "tasks_to_csv",
    "tasks_from_csv",
    "schedule_to_json",
    "schedule_from_json",
]

_TASK_FIELDS = ("name", "release", "deadline", "workload")


def tasks_to_json(tasks: Iterable[Task]) -> str:
    """Serialize tasks to a JSON string."""
    payload = {
        "tasks": [
            {
                "name": t.name,
                "release": t.release,
                "deadline": t.deadline,
                "workload": t.workload,
            }
            for t in tasks
        ]
    }
    return json.dumps(payload, indent=2)


def tasks_from_json(text: str) -> List[Task]:
    """Parse tasks from a JSON string (see module docstring for schema)."""
    payload = json.loads(text)
    if not isinstance(payload, dict) or "tasks" not in payload:
        raise ValueError("expected a JSON object with a 'tasks' array")
    tasks: List[Task] = []
    for index, entry in enumerate(payload["tasks"]):
        missing = [f for f in ("release", "deadline", "workload") if f not in entry]
        if missing:
            raise ValueError(f"task #{index}: missing fields {missing}")
        tasks.append(
            Task(
                float(entry["release"]),
                float(entry["deadline"]),
                float(entry["workload"]),
                str(entry.get("name", "")),
            )
        )
    return tasks


def tasks_to_csv(tasks: Iterable[Task], handle: TextIO) -> None:
    """Write tasks as CSV to an open text handle."""
    writer = csv.writer(handle)
    writer.writerow(_TASK_FIELDS)
    for t in tasks:
        writer.writerow([t.name, t.release, t.deadline, t.workload])


def tasks_from_csv(handle: TextIO) -> List[Task]:
    """Read tasks from a CSV handle with the canonical header."""
    reader = csv.DictReader(handle)
    required = {"release", "deadline", "workload"}
    if reader.fieldnames is None or not required <= set(reader.fieldnames):
        raise ValueError(
            f"tasks CSV needs columns {sorted(required)}; got {reader.fieldnames}"
        )
    tasks: List[Task] = []
    for row_number, row in enumerate(reader):
        tasks.append(
            Task(
                float(row["release"]),
                float(row["deadline"]),
                float(row["workload"]),
                (row.get("name") or f"T{row_number + 1}"),
            )
        )
    if not tasks:
        raise ValueError("tasks CSV contains no rows")
    return tasks


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize a schedule to a JSON string."""
    payload = {
        "cores": [
            [
                {
                    "task": iv.task,
                    "start": iv.start,
                    "end": iv.end,
                    "speed": iv.speed,
                }
                for iv in core
            ]
            for core in schedule.cores
        ]
    }
    return json.dumps(payload, indent=2)


def schedule_from_json(text: str) -> Schedule:
    """Parse a schedule from a JSON string."""
    payload = json.loads(text)
    if not isinstance(payload, dict) or "cores" not in payload:
        raise ValueError("expected a JSON object with a 'cores' array")
    cores = []
    for entries in payload["cores"]:
        cores.append(
            CoreTimeline(
                ExecutionInterval(
                    str(e["task"]), float(e["start"]), float(e["end"]), float(e["speed"])
                )
                for e in entries
            )
        )
    return Schedule(cores)

"""The online simulation engine.

A policy implements two callbacks:

``on_arrival(now, tasks)``
    New tasks just became visible (their release time equals ``now``).
    The policy updates its internal plan; Section 6's SDEM-ON re-solves the
    common-release relaxation here.

``run_until(now, until)``
    Advance the world from ``now`` to ``until`` (``inf`` after the last
    arrival) and return the execution intervals emitted, each tagged with a
    core index.  The policy must have finished every revealed task by each
    task's deadline; the engine validates the assembled schedule.

The engine is deliberately thin: *all* scheduling intelligence lives in
policies, and all pricing lives in :mod:`repro.energy.accounting`, so every
algorithm is measured by exactly the same ruler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.energy.accounting import EnergyBreakdown, SleepPolicy, account
from repro.models.platform import Platform
from repro.models.task import Task, TaskSet
from repro.schedule.timeline import CoreTimeline, ExecutionInterval, Schedule
from repro.schedule.validation import validate_schedule

__all__ = ["OnlinePolicy", "SimulationResult", "simulate"]


class OnlinePolicy(Protocol):
    """Interface every online scheduling policy implements."""

    #: How the accountant should treat memory idle gaps for this policy
    #: (e.g. MBKP never sleeps the memory, MBKPS always does).
    memory_policy: SleepPolicy
    #: Ditto for core idle gaps.
    core_policy: SleepPolicy

    def on_arrival(self, now: float, tasks: Sequence[Task]) -> None:
        """Reveal newly released tasks."""

    def run_until(
        self, now: float, until: float
    ) -> List[Tuple[int, ExecutionInterval]]:
        """Advance to ``until`` and return (core, interval) executions."""


@dataclass(frozen=True)
class SimulationResult:
    """A priced simulation run."""

    schedule: Schedule
    breakdown: EnergyBreakdown
    horizon: Tuple[float, float]
    peak_concurrency: int

    @property
    def total_energy(self) -> float:
        return self.breakdown.total


def simulate(
    policy: OnlinePolicy,
    tasks: Iterable[Task],
    platform: Platform,
    *,
    horizon: Optional[Tuple[float, float]] = None,
    validate: bool = True,
) -> SimulationResult:
    """Replay ``tasks`` (released at their release times) under ``policy``.

    ``horizon`` defaults to ``[min release, max deadline]`` so competing
    policies are always compared over identical time windows.  The
    assembled schedule is validated against the task set and the
    platform's ``s_up`` unless ``validate=False``.
    """
    task_list = sorted(tasks, key=lambda t: (t.release, t.deadline, t.name))
    if not task_list:
        raise ValueError("cannot simulate an empty task list")
    task_set = TaskSet(task_list)
    if horizon is None:
        horizon = (task_set.earliest_release, task_set.latest_deadline)

    # Group arrivals by release instant.
    groups: List[Tuple[float, List[Task]]] = []
    for task in task_list:
        if groups and math.isclose(groups[-1][0], task.release, abs_tol=1e-12):
            groups[-1][1].append(task)
        else:
            groups.append((task.release, [task]))

    per_core: Dict[int, List[ExecutionInterval]] = {}
    now = groups[0][0]
    for index, (when, batch) in enumerate(groups):
        if when > now:
            for core, interval in policy.run_until(now, when):
                per_core.setdefault(core, []).append(interval)
            now = when
        policy.on_arrival(when, batch)
    for core, interval in policy.run_until(now, math.inf):
        per_core.setdefault(core, []).append(interval)

    if not per_core:
        raise RuntimeError("policy emitted no executions")
    num_cores = max(per_core) + 1
    schedule = Schedule(
        CoreTimeline(per_core.get(i, [])) for i in range(num_cores)
    )
    if validate:
        validate_schedule(schedule, task_set, max_speed=platform.core.s_up)

    breakdown = account(
        schedule,
        platform,
        horizon=horizon,
        memory_policy=policy.memory_policy,
        core_policy=policy.core_policy,
    )
    peak = _peak_concurrency(schedule)
    return SimulationResult(
        schedule=schedule,
        breakdown=breakdown,
        horizon=horizon,
        peak_concurrency=peak,
    )


def _peak_concurrency(schedule: Schedule) -> int:
    """Maximum number of cores busy at once."""
    events: List[Tuple[float, int]] = []
    for core in schedule.cores:
        for span in core.busy_spans():
            events.append((span[0], 1))
            events.append((span[1], -1))
    events.sort()
    level = peak = 0
    for _, delta in events:
        level += delta
        peak = max(peak, level)
    return peak

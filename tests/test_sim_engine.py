"""Tests for the online simulation engine and core allocator."""

from __future__ import annotations

import pytest

from repro.baselines import RaceToIdlePolicy
from repro.energy import SleepPolicy
from repro.models import CorePowerModel, MemoryModel, Platform, Task
from repro.schedule import ExecutionInterval
from repro.schedule.validation import FeasibilityError
from repro.sim import CoreAllocator, simulate


@pytest.fixture
def platform():
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=5.0, s_up=1000.0),
        MemoryModel(alpha_m=20.0, xi_m=2.0),
        num_cores=4,
    )


class TestCoreAllocator:
    def test_reuses_freed_cores_lowest_first(self):
        alloc = CoreAllocator(4)
        a = alloc.acquire("a")
        b = alloc.acquire("b")
        assert (a, b) == (0, 1)
        alloc.release("a")
        c = alloc.acquire("c")
        assert c == 0

    def test_same_owner_keeps_core(self):
        alloc = CoreAllocator()
        assert alloc.acquire("x") == alloc.acquire("x")

    def test_overflow_detection(self):
        alloc = CoreAllocator(1)
        alloc.acquire("a")
        assert not alloc.overflowed
        alloc.acquire("b")
        assert alloc.overflowed
        assert alloc.peak_concurrency == 2

    def test_unbounded_never_overflows(self):
        alloc = CoreAllocator(None)
        for i in range(100):
            alloc.acquire(f"t{i}")
        assert not alloc.overflowed
        assert alloc.total_cores_used == 100

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            CoreAllocator(0)


class TestSimulate:
    def test_race_to_idle_single_task(self, platform):
        tasks = [Task(0.0, 100.0, 1000.0, "A")]
        result = simulate(RaceToIdlePolicy(platform), tasks, platform)
        # Executes [0, 1] at 1000 MHz, then everything sleeps.
        assert result.breakdown.memory_busy_time == pytest.approx(1.0)
        assert result.horizon == (0.0, 100.0)
        iv = result.schedule.all_intervals()
        assert len(iv) == 1 and iv[0].speed == pytest.approx(1000.0)

    def test_tasks_revealed_only_at_release(self, platform):
        """A task released later must not execute earlier."""
        tasks = [
            Task(0.0, 50.0, 500.0, "A"),
            Task(30.0, 80.0, 500.0, "B"),
        ]
        result = simulate(RaceToIdlePolicy(platform), tasks, platform)
        for iv in result.schedule.all_intervals():
            if iv.task == "B":
                assert iv.start >= 30.0 - 1e-9

    def test_peak_concurrency(self, platform):
        tasks = [
            Task(0.0, 50.0, 5000.0, "A"),  # 5 ms at s_up
            Task(1.0, 50.0, 5000.0, "B"),
            Task(2.0, 50.0, 5000.0, "C"),
        ]
        result = simulate(RaceToIdlePolicy(platform), tasks, platform)
        assert result.peak_concurrency == 3

    def test_simultaneous_arrivals_grouped(self, platform):
        tasks = [Task(5.0, 50.0, 100.0, "A"), Task(5.0, 60.0, 100.0, "B")]
        result = simulate(RaceToIdlePolicy(platform), tasks, platform)
        assert result.breakdown.total > 0.0

    def test_empty_trace_rejected(self, platform):
        with pytest.raises(ValueError):
            simulate(RaceToIdlePolicy(platform), [], platform)

    def test_explicit_horizon_respected(self, platform):
        tasks = [Task(0.0, 10.0, 100.0, "A")]
        result = simulate(
            RaceToIdlePolicy(platform), tasks, platform, horizon=(0.0, 1000.0)
        )
        assert result.horizon == (0.0, 1000.0)
        # Long trailing gap: memory sleeps it (break-even aware).
        assert result.breakdown.memory_sleep_time > 900.0

    def test_infeasible_speed_detected(self):
        slow = Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=10.0),
            MemoryModel(alpha_m=20.0),
        )
        with pytest.raises(ValueError):
            simulate(
                RaceToIdlePolicy(slow),
                [Task(0.0, 1.0, 100.0, "A")],  # needs 100 MHz
                slow,
            )


class ScriptedPolicy:
    """Test double: replays fixed (core, interval) executions at the end."""

    memory_policy = SleepPolicy.ALWAYS
    core_policy = SleepPolicy.ALWAYS

    def __init__(self, executions):
        self._executions = list(executions)

    def on_arrival(self, now, tasks):
        pass

    def run_until(self, now, until):
        out, self._executions = self._executions, []
        return out


class TestSimulateFailurePaths:
    """Misbehaving policies must fail loudly, with actionable messages."""

    def test_interval_past_deadline_rejected(self, platform):
        policy = ScriptedPolicy([(0, ExecutionInterval("A", 0.0, 12.0, 100.0))])
        with pytest.raises(FeasibilityError, match=r"ends at 12.0 after deadline 10.0"):
            simulate(policy, [Task(0.0, 10.0, 1200.0, "A")], platform)

    def test_overlapping_intervals_on_one_core_rejected(self, platform):
        policy = ScriptedPolicy(
            [
                (0, ExecutionInterval("A", 0.0, 5.0, 100.0)),
                (0, ExecutionInterval("A", 4.0, 9.0, 100.0)),
            ]
        )
        with pytest.raises(ValueError, match="overlapping intervals on one core"):
            simulate(policy, [Task(0.0, 10.0, 900.0, "A")], platform)

    def test_empty_policy_output_rejected(self, platform):
        policy = ScriptedPolicy([])
        with pytest.raises(RuntimeError, match="policy emitted no executions"):
            simulate(policy, [Task(0.0, 10.0, 100.0, "A")], platform)

    def test_under_execution_rejected(self, platform):
        policy = ScriptedPolicy([(0, ExecutionInterval("A", 0.0, 5.0, 100.0))])
        with pytest.raises(FeasibilityError, match="executed"):
            simulate(policy, [Task(0.0, 10.0, 1000.0, "A")], platform)

"""Figure 6 reproduction: DSPstone benchmark tasks over utilizations U.

* **Fig. 6a** -- memory static energy saving of SDEM-ON and MBKPS relative
  to MBKP, for FFT and matrix-multiply instance streams, U in 2..9;
* **Fig. 6b** -- system-wide energy saving, same setup.

Memory parameters are the Table 4 stars (``alpha_m = 4 W``,
``xi_m = 40 ms``); the platform is 8x Cortex-A57.  Reported paper numbers:
SDEM-ON saves on average 10.02% more *memory* energy than MBKPS (6a) and
23.45% more *system* energy (6b); SDEM-ON's memory saving grows as
utilization falls while its system saving grows as utilization rises.
"""

from __future__ import annotations

from typing import Dict, List, Literal

from repro.experiments.config import (
    DEFAULT_NUM_CORES,
    DEFAULT_SEEDS,
    U_SWEEP,
    experiment_platform,
)
from repro.experiments.runner import ComparisonPoint, SeriesResult, compare_policies
from repro.workloads.dspstone import dspstone_trace

__all__ = ["run_fig6"]


def run_fig6(
    benchmark: Literal["fft", "matmul"],
    *,
    u_values: List[int] | None = None,
    seeds: int = DEFAULT_SEEDS,
    instances: int = 48,
    streams: int = DEFAULT_NUM_CORES,
) -> SeriesResult:
    """Run the Figure 6 comparison for one benchmark.

    Returns a :class:`SeriesResult` whose points carry both the memory
    saving (Fig. 6a) and the system saving (Fig. 6b) for each U.
    """
    u_values = u_values if u_values is not None else U_SWEEP
    platform = experiment_platform()
    series = SeriesResult(name=f"fig6-{benchmark}")
    for u in u_values:
        point = compare_policies(
            label=f"U={u}",
            trace_factory=lambda seed, u=u: dspstone_trace(
                benchmark,
                utilization_factor=float(u),
                n=instances,
                seed=seed * 1009 + u,
                streams=streams,
            ),
            platform=platform,
            seeds=seeds,
        )
        series.points.append(point)
    return series

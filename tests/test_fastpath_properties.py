"""Fast-path properties: randomized traces, both backends, pinned seeds.

The batched simulation/accounting fast path must be invisible in the
outputs: trace generation stays bit-identical to the scalar loop,
``simulate_unit`` energies agree to 1e-9 across backends, and rounded
exhibit rows (``SeriesResult.rows()``) are *byte-identical* no matter
which backend produced them.  The fused small-n overhead solve must
match the unfused numpy scan path float-for-float.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core import vectorized
from repro.core.blocks import block_energy_cache_clear
from repro.core.transition import solve_common_release_with_overhead
from repro.energy.accounting import SleepPolicy, account_segments
from repro.experiments.runner import SeriesResult, compare_policies
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.sim.engine import simulate_segments
from repro.baselines.mbkp import mbkps
from repro.workloads.dspstone import dspstone_trace
from repro.workloads.synthetic import synthetic_tasks

REL_TOL = 1e-9

needs_numpy = pytest.mark.skipif(
    not vectorized.HAS_NUMPY, reason="numpy backend unavailable"
)


@pytest.fixture(autouse=True)
def _reset_backend():
    yield
    vectorized.set_backend(None)


def experiment_platform(num_cores: int = 4) -> Platform:
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=2.0, s_up=1000.0, xi=5.0),
        MemoryModel(alpha_m=10.0, xi_m=8.0),
        num_cores=num_cores,
    )


def per_backend(build):
    """Evaluate ``build()`` under each backend with cold memo caches."""
    results = {}
    for backend in ("scalar", "numpy"):
        vectorized.set_backend(backend)
        block_energy_cache_clear()
        vectorized.block_arrays_cache_clear()
        results[backend] = build()
    vectorized.set_backend(None)
    return results["scalar"], results["numpy"]


def fft_factory(seed: int):
    return dspstone_trace(
        "fft", utilization_factor=3.0, n=24, seed=seed, streams=4
    )


def synthetic_factory(seed: int):
    return synthetic_tasks(n=20, max_interarrival=30.0, seed=seed)


@needs_numpy
class TestTraceGenerationBitIdentity:
    """The columnwise trace builds may never change experiment inputs."""

    @pytest.mark.parametrize("seed", range(6))
    def test_fft_trace_bit_identical(self, seed):
        scalar, numpy_ = per_backend(lambda: fft_factory(seed))
        assert [
            (t.release, t.deadline, t.workload, t.name) for t in scalar
        ] == [(t.release, t.deadline, t.workload, t.name) for t in numpy_]

    @pytest.mark.parametrize("seed", range(6))
    def test_synthetic_trace_bit_identical(self, seed):
        scalar, numpy_ = per_backend(lambda: synthetic_factory(seed))
        assert [
            (t.release, t.deadline, t.workload, t.name) for t in scalar
        ] == [(t.release, t.deadline, t.workload, t.name) for t in numpy_]

    @pytest.mark.parametrize("streams", [1, 3])
    def test_matmul_trace_stays_scalar_and_identical(self, streams):
        # matmul consumes a data-dependent number of draws and must not
        # be batched; both backends run the same scalar loop.
        build = lambda: dspstone_trace(  # noqa: E731
            "matmul", utilization_factor=4.0, n=18, seed=7, streams=streams
        )
        scalar, numpy_ = per_backend(build)
        assert [(t.release, t.workload) for t in scalar] == [
            (t.release, t.workload) for t in numpy_
        ]


@needs_numpy
class TestSimulateUnitAgreement:
    """Unit energies agree across backends to 1e-9 relative."""

    @pytest.mark.parametrize("factory", [fft_factory, synthetic_factory])
    @pytest.mark.parametrize("seed", range(4))
    def test_unit_totals_agree(self, factory, seed):
        from repro.experiments.runner import simulate_unit

        platform = experiment_platform()
        scalar, numpy_ = per_backend(
            lambda: simulate_unit(factory, platform, seed)
        )
        for s_val, n_val in zip(
            scalar.totals + scalar.memory, numpy_.totals + numpy_.memory
        ):
            assert n_val == pytest.approx(s_val, rel=REL_TOL, abs=1e-9)

    def test_rows_byte_identical_across_backends(self):
        platform = experiment_platform()

        def build():
            series = SeriesResult(name="prop")
            for label, factory in (
                ("fft", fft_factory),
                ("syn", synthetic_factory),
            ):
                series.points.append(
                    compare_policies(label, factory, platform, seeds=3)
                )
            return json.dumps(series.rows(), sort_keys=True)

        scalar_rows, numpy_rows = per_backend(build)
        assert scalar_rows == numpy_rows


class TestSharedSegmentTablePricing:
    """MBKPS/MBKP come from one schedule priced under two policies."""

    @pytest.mark.parametrize("seed", range(3))
    def test_multi_policy_pricing_matches_single_calls(self, seed):
        platform = experiment_platform()
        trace = fft_factory(seed)
        horizon = (
            min(t.release for t in trace),
            max(t.deadline for t in trace),
        )
        run = simulate_segments(mbkps(platform), trace, horizon=horizon)
        both = account_segments(
            run.segments,
            platform,
            horizon=horizon,
            memory_policies=(SleepPolicy.ALWAYS, SleepPolicy.NEVER),
        )
        singles = [
            account_segments(
                run.segments,
                platform,
                horizon=horizon,
                memory_policies=(policy,),
            )[0]
            for policy in (SleepPolicy.ALWAYS, SleepPolicy.NEVER)
        ]
        assert [b.total for b in both] == [s.total for s in singles]
        assert [b.memory_total for b in both] == [
            s.memory_total for s in singles
        ]
        # Same schedule, different pricing: MBKP (never sleeps) pays at
        # least as much memory energy as MBKPS (always sleeps).
        assert both[1].memory_total >= both[0].memory_total - 1e-12


@needs_numpy
class TestFusedOverheadSolve:
    """The fused small-n kernel must equal the unfused scan bit-for-bit."""

    @pytest.mark.parametrize("alpha", [0.0, 2.0])
    @pytest.mark.parametrize("seed", range(6))
    def test_fused_matches_scan_path(self, monkeypatch, alpha, seed):
        rng = random.Random(4200 + seed)
        release = rng.uniform(0.0, 20.0)
        ts = TaskSet(
            Task(
                release,
                release + rng.uniform(5.0, 80.0),
                rng.uniform(50.0, 3000.0),
            )
            for _ in range(rng.randint(1, 10))
        )
        platform = Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=1000.0, xi=5.0),
            MemoryModel(alpha_m=10.0, xi_m=8.0),
        )
        vectorized.set_backend("numpy")
        fused = solve_common_release_with_overhead(ts, platform)
        # Shrinking the small-n cutoff to 0 forces the unfused scan path.
        monkeypatch.setattr(vectorized, "_SMALL_N", 0)
        scan = solve_common_release_with_overhead(ts, platform)
        assert fused.delta == scan.delta
        assert fused.case_index == scan.case_index
        assert fused.predicted_energy == scan.predicted_energy
        assert fused.finish_times == scan.finish_times
        assert fused.speeds == scan.speeds


class TestTaskSetPresorted:
    """The replan hot-path constructor must match the checked one."""

    def test_presorted_matches_sorted_constructor(self):
        rng = random.Random(11)
        tasks = [
            Task(5.0, 5.0 + rng.uniform(1.0, 50.0), rng.uniform(10.0, 500.0))
            for _ in range(8)
        ]
        ordered = tuple(
            sorted(tasks, key=lambda t: (t.deadline, t.release, t.workload))
        )
        fast = TaskSet.presorted(ordered)
        checked = TaskSet(tasks)
        assert list(fast) == list(checked)

    def test_presorted_rejects_empty(self):
        with pytest.raises(ValueError):
            TaskSet.presorted(())

"""Content-addressed on-disk cache for experiment work units.

One cache entry = one policy's priced simulation of one work unit (one
seed of one parameter point).  The key is a SHA-256 over the canonical
JSON of everything that determines the result:

* the platform fingerprint (every core/memory parameter + core count);
* the trace-factory configuration (kind + generation parameters + the
  seed mapping -- see ``trace_config`` on the specs in
  :mod:`repro.experiments.parallel`);
* the seed index;
* the policy name;
* the numeric backend (:func:`repro.core.vectorized.get_backend`) --
  backends agree to 1e-9, not to the last ulp, so cached raw energies
  never cross the backend boundary;
* a code-version salt (:data:`CODE_SALT`), bumped whenever the numeric
  semantics of the simulator or policies change, which invalidates every
  stale entry at once.

Entries are tiny JSON files sharded by the first two hex digits of the
key, written atomically (temp file + ``os.replace``) so concurrent
worker processes never observe torn entries.  Values round-trip floats
exactly (``json`` uses shortest-repr), so warm-cache reruns reproduce
byte-identical CSV rows.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import fptas, vectorized
from repro.models.platform import Platform

__all__ = [
    "CODE_SALT",
    "CacheStats",
    "ResultCache",
    "default_cache_root",
    "platform_fingerprint",
    "service_request_key",
    "unit_key",
]

#: Bump when simulator/policy numerics change: every key changes, so stale
#: results can never be served after a semantic code change.
#: v2: the batched fast path re-associates numpy-backend float sums
#: (~1e-15 relative vs v1); scalar-backend outputs are unchanged, but the
#: salt is shared so both backends' caches roll together.
CODE_SALT = "sdem-experiments-v2"

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root(out_dir: Optional[str] = None) -> str:
    """The default cache directory.

    ``$REPRO_CACHE_DIR`` wins when set; otherwise the cache nests inside
    the experiment output directory (or the CWD) as ``.cache`` so that CSVs
    and the cells that produced them travel together.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(out_dir if out_dir else os.getcwd(), ".cache")


def platform_fingerprint(platform: Platform) -> Dict[str, object]:
    """Every parameter that affects a priced simulation on ``platform``."""
    core, memory = platform.core, platform.memory
    return {
        "beta": core.beta,
        "lam": core.lam,
        "alpha": core.alpha,
        "s_up": core.s_up,
        "s_min": core.s_min,
        "xi": core.xi,
        "alpha_m": memory.alpha_m,
        "xi_m": memory.xi_m,
        "num_cores": platform.num_cores,
    }


def unit_key(
    platform: Platform,
    trace_config: Dict[str, object],
    seed: int,
    policy: str,
    *,
    salt: str = CODE_SALT,
) -> str:
    """SHA-256 hex key for one (platform, trace, seed, policy) cell.

    The active numeric backend is part of the key: the scalar and numpy
    cores agree to 1e-9 but not necessarily to the last ulp, so a warm
    run must never serve raw energies computed by the other backend --
    engine determinism (identical rows across cache states) is asserted
    per backend.  The active solver tier (and its ε when approximate) is
    part of the key for the same reason, only stronger: exact and fptas
    results differ by design, so they must never alias.
    """
    payload = {
        "platform": platform_fingerprint(platform),
        "trace": trace_config,
        "seed": seed,
        "policy": policy,
        "numeric": vectorized.get_backend(),
        "solver": fptas.solver_cache_component(),
        "salt": salt,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def service_request_key(
    platform: Platform,
    tasks_config: object,
    scheme: str,
    numeric: str,
    *,
    solver: str = "exact",
    epsilon: Optional[float] = None,
    salt: str = CODE_SALT,
) -> str:
    """SHA-256 key for one solve-service request.

    Same construction as :func:`unit_key` but with the backend passed
    explicitly: the service batcher prices requests for a backend it has
    not switched the process to yet, so it cannot rely on
    ``vectorized.get_backend()``.  The solver tier is explicit for the same
    reason -- the batcher keys a request before pinning the tier -- and ε
    joins the payload only on the fptas tier, so every exact key is
    unchanged from before the tier existed and approximate results can
    never alias exact ones.  ``tasks_config`` must be the canonical
    JSON-able task description *including names* (names appear verbatim in
    the cached schedule payload), and ``scheme`` the resolved scheme --
    never ``auto`` -- so explicit and auto-resolved requests share entries.
    """
    payload = {
        "kind": "service-solve",
        "platform": platform_fingerprint(platform),
        "tasks": tasks_config,
        "scheme": scheme,
        "numeric": numeric,
        "salt": salt,
    }
    if solver != "exact":
        payload["solver"] = {"tier": solver, "epsilon": float(epsilon)}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Disk-level cache statistics plus this process's hit/miss tally."""

    root: str
    entries: int
    total_bytes: int
    hits: int
    misses: int

    def render(self) -> str:
        return (
            f"cache root: {self.root}\n"
            f"entries:    {self.entries}\n"
            f"size:       {self.total_bytes / 1024.0:.1f} KiB\n"
            f"session:    {self.hits} hit(s), {self.misses} miss(es)"
        )


class ResultCache:
    """File-per-entry result cache rooted at ``root``.

    Instances are picklable and cheap; worker processes of the parallel
    engine each carry a copy and read/write the shared directory directly.
    Hit/miss counters are therefore per-process -- the authoritative view
    is :meth:`stats`, which counts entries on disk.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = root if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0

    # -- keying ---------------------------------------------------------------

    def unit_key(
        self,
        platform: Platform,
        trace_config: Dict[str, object],
        seed: int,
        policy: str,
    ) -> str:
        return unit_key(platform, trace_config, seed, policy)

    # -- storage --------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key[2:] + ".json")

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored value for ``key``, or ``None`` on a miss.

        Unreadable/corrupt entries (interrupted writers predating the
        atomic-replace scheme, disk trouble) count as misses.
        """
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                value = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Dict[str, object]) -> None:
        """Atomically persist ``value`` under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(value, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance ----------------------------------------------------------

    def _entry_paths(self):
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    yield os.path.join(shard_dir, name)

    def stats(self) -> CacheStats:
        entries = 0
        total_bytes = 0
        for path in self._entry_paths():
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                continue
            entries += 1
        return CacheStats(
            root=self.root,
            entries=entries,
            total_bytes=total_bytes,
            hits=self.hits,
            misses=self.misses,
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                continue
        return removed

    # -- pickling (worker processes share only the root path) -----------------

    def __getstate__(self):
        return {"root": self.root}

    def __setstate__(self, state):
        self.root = state["root"]
        self.hits = 0
        self.misses = 0

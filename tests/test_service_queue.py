"""Admission queue tests: lanes, shedding, deadlines, saturation properties.

The hypothesis property test at the bottom is the satellite-4 guarantee:
under arbitrary interleavings of offers and pops the queue never exceeds
its capacity, and a rejected request is never partially executed -- it
produces no cache write and no worker dispatch.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import Task, TaskSet
from repro.service.protocol import (
    E_QUEUE_FULL,
    E_SHEDDING,
    LANE_INTERACTIVE,
    LANE_SWEEP,
    SolveRequest,
)
from repro.service.queue import AdmissionQueue


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def make_request(request_id, lane=LANE_INTERACTIVE, timeout_ms=None):
    tasks = TaskSet([Task(0.0, 50.0, 1000.0, "t")])
    return SolveRequest(id=str(request_id), tasks=tasks, lane=lane, timeout_ms=timeout_ms)


class TestAdmission:
    def test_admit_until_capacity_then_queue_full(self):
        queue = AdmissionQueue(capacity=3, shed_threshold=1.0)
        for i in range(3):
            assert queue.offer(make_request(i)).admitted
        result = queue.offer(make_request("overflow"))
        assert not result.admitted
        assert result.code == E_QUEUE_FULL
        assert result.retry_after_ms is not None
        assert queue.depth == 3

    def test_sweep_shed_in_degraded_mode_interactive_still_admitted(self):
        queue = AdmissionQueue(capacity=10, shed_threshold=0.5)
        for i in range(5):
            assert queue.offer(make_request(i)).admitted
        assert queue.degraded
        shed = queue.offer(make_request("bulk", lane=LANE_SWEEP))
        assert not shed.admitted
        assert shed.code == E_SHEDDING
        assert queue.offer(make_request("urgent")).admitted

    def test_degraded_clears_after_pop(self):
        queue = AdmissionQueue(capacity=4, shed_threshold=0.5)
        for i in range(2):
            queue.offer(make_request(i))
        assert queue.degraded
        queue.pop_batch(4)
        assert not queue.degraded
        assert queue.offer(make_request("s", lane=LANE_SWEEP)).admitted

    def test_retry_after_scales_with_occupancy(self):
        queue = AdmissionQueue(
            capacity=2, shed_threshold=0.5, base_retry_after_ms=100.0
        )
        queue.offer(make_request(0))
        low = queue.offer(make_request("s1", lane=LANE_SWEEP)).retry_after_ms
        queue.offer(make_request(1))
        high = queue.offer(make_request("s2", lane=LANE_SWEEP)).retry_after_ms
        assert high > low >= 100.0

    def test_on_enqueue_fires_only_on_admission(self):
        queue = AdmissionQueue(capacity=1)
        wakes = []
        queue.on_enqueue = lambda: wakes.append(1)
        queue.offer(make_request(0))
        queue.offer(make_request(1))  # rejected
        assert len(wakes) == 1


class TestDispatch:
    def test_interactive_pops_before_sweep_fifo_within_lane(self):
        queue = AdmissionQueue(capacity=10, shed_threshold=1.0)
        queue.offer(make_request("s1", lane=LANE_SWEEP))
        queue.offer(make_request("i1"))
        queue.offer(make_request("s2", lane=LANE_SWEEP))
        queue.offer(make_request("i2"))
        ready, expired, cancelled = queue.pop_batch(10)
        assert [e.request.id for e in ready] == ["i1", "i2", "s1", "s2"]
        assert expired == [] and cancelled == []

    def test_pop_respects_max_items(self):
        queue = AdmissionQueue(capacity=10)
        for i in range(5):
            queue.offer(make_request(i))
        ready, _, _ = queue.pop_batch(2)
        assert len(ready) == 2
        assert queue.depth == 3

    def test_expired_entries_drain_eagerly(self):
        clock = FakeClock()
        queue = AdmissionQueue(capacity=10, clock=clock)
        queue.offer(make_request("fast", timeout_ms=100.0))
        queue.offer(make_request("slow"))
        clock.now = 1.0  # one second later: 100ms deadline long gone
        ready, expired, _ = queue.pop_batch(1)
        assert [e.request.id for e in ready] == ["slow"]
        assert [e.request.id for e in expired] == ["fast"]
        assert queue.depth == 0

    def test_cancel_marks_pending_entry(self):
        queue = AdmissionQueue(capacity=10)
        queue.offer(make_request("victim"))
        assert queue.cancel("victim")
        assert not queue.cancel("victim")  # already cancelled
        assert not queue.cancel("missing")
        ready, _, cancelled = queue.pop_batch(10)
        assert ready == []
        assert [e.request.id for e in cancelled] == ["victim"]

    def test_drain_empties_both_lanes(self):
        queue = AdmissionQueue(capacity=10, shed_threshold=1.0)
        queue.offer(make_request("i"))
        queue.offer(make_request("s", lane=LANE_SWEEP))
        remaining = queue.drain()
        assert {e.request.id for e in remaining} == {"i", "s"}
        assert queue.depth == 0


class TestValidation:
    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionQueue(capacity=0)

    def test_bad_shed_threshold_rejected(self):
        with pytest.raises(ValueError, match="shed_threshold"):
            AdmissionQueue(capacity=4, shed_threshold=1.5)


# ---------------------------------------------------------------------------
# Satellite 4: saturation property
# ---------------------------------------------------------------------------

op_strategy = st.one_of(
    st.tuples(
        st.just("offer"),
        st.sampled_from([LANE_INTERACTIVE, LANE_SWEEP]),
    ),
    st.tuples(st.just("pop"), st.integers(min_value=1, max_value=4)),
)


@settings(max_examples=200, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    shed_threshold=st.floats(min_value=0.1, max_value=1.0),
    ops=st.lists(op_strategy, max_size=60),
)
def test_queue_never_exceeds_capacity_and_rejections_are_traceless(
    capacity, shed_threshold, ops
):
    """The bounded queue never holds more than ``capacity`` entries, and a
    rejected request is never partially executed: it never reaches the
    dispatch side (so no worker ever sees it and no cache write can happen
    on its behalf)."""
    queue = AdmissionQueue(capacity=capacity, shed_threshold=shed_threshold)
    admitted, rejected = set(), set()
    dispatched = []  # stand-in for the worker pool: everything popped
    serial = 0
    for op in ops:
        if op[0] == "offer":
            _, lane = op
            request = make_request(f"r{serial}", lane=lane)
            serial += 1
            result = queue.offer(request)
            if result.admitted:
                assert result.entry is not None
                admitted.add(request.id)
            else:
                assert result.code in (E_QUEUE_FULL, E_SHEDDING)
                assert result.retry_after_ms is not None
                rejected.add(request.id)
        else:
            _, max_items = op
            ready, expired, cancelled = queue.pop_batch(max_items)
            assert len(ready) <= max_items
            dispatched.extend(e.request.id for e in ready + expired + cancelled)
        assert queue.depth <= capacity
    dispatched.extend(e.request.id for e in queue.drain())
    assert queue.depth_peak <= capacity
    # Everything on the dispatch side was admitted exactly once ...
    assert len(dispatched) == len(set(dispatched))
    assert set(dispatched) <= admitted
    # ... and no rejected request ever crossed over.
    assert rejected.isdisjoint(dispatched)


# ---------------------------------------------------------------------------
# Sustained open-loop overload, driven by the repro.replay arrival generator
# ---------------------------------------------------------------------------

from repro.replay import poisson_jobs  # noqa: E402


@settings(max_examples=100, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rate=st.floats(min_value=200.0, max_value=5000.0),
    capacity=st.integers(min_value=2, max_value=16),
    shed_threshold=st.floats(min_value=0.2, max_value=1.0),
    drain_every=st.integers(min_value=4, max_value=12),
    drain_count=st.integers(min_value=0, max_value=3),
)
def test_open_loop_overload_invariants(
    seed, rate, capacity, shed_threshold, drain_every, drain_count
):
    """Sustained open-loop overload preserves the three queue invariants.

    A seeded Poisson arrival stream (the streaming replayer's generator)
    offers far faster than the dispatcher drains, so the queue lives at
    or near saturation for the whole run.  Throughout:

    1. strict priority -- a sweep entry is only ever dispatched when the
       interactive lane is empty at pop time;
    2. backpressure monotonicity -- ``retry_after_ms`` is non-decreasing
       in the queue occupancy observed at rejection time;
    3. the capacity bound is never exceeded, and only sweep-lane
       arrivals are shed (interactive is admitted until truly full).
    """
    jobs = list(poisson_jobs(n=60, rate_jobs_s=rate, seed=seed))
    queue = AdmissionQueue(capacity=capacity, shed_threshold=shed_threshold)
    rejections = []  # (depth at offer, retry_after_ms)
    for index, job in enumerate(jobs):
        # Deterministic mixed lanes, derived from the seeded stream.
        lane = LANE_SWEEP if job.workload_kc < 3500.0 else LANE_INTERACTIVE
        depth_before = queue.depth
        result = queue.offer(make_request(job.name, lane=lane))
        if result.admitted:
            assert depth_before < queue.capacity
        else:
            assert result.retry_after_ms is not None
            rejections.append((depth_before, result.retry_after_ms))
            if result.code == E_SHEDDING:
                assert lane == LANE_SWEEP
                assert depth_before >= queue.shed_at
            else:
                assert result.code == E_QUEUE_FULL
                assert depth_before >= queue.capacity
        assert queue.depth <= capacity
        if index % drain_every == drain_every - 1 and drain_count:
            ready, _expired, _cancelled = queue.pop_batch(drain_count)
            if any(e.lane == LANE_SWEEP for e in ready):
                # pop_batch drains interactive first: a dispatched sweep
                # entry proves the interactive lane was emptied.
                assert queue.lane_depths()[LANE_INTERACTIVE] == 0
            for first, second in zip(ready, ready[1:]):
                assert not (
                    first.lane == LANE_SWEEP and second.lane == LANE_INTERACTIVE
                ), "sweep dispatched ahead of a queued interactive entry"
    assert queue.depth_peak <= capacity
    # Monotone backpressure: sort observed rejections by occupancy; the
    # suggested backoff must never decrease as the queue fills.
    rejections.sort(key=lambda pair: pair[0])
    for (d1, r1), (d2, r2) in zip(rejections, rejections[1:]):
        assert r1 <= r2 or d1 == d2

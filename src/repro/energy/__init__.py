"""System-wide energy accounting (the SDEM objective function).

:func:`repro.energy.accounting.account` is the single source of truth for
pricing a schedule on a platform.  Every algorithm's *predicted* energy
(its internal closed forms) is cross-checked against this accountant in the
test suite.
"""

from repro.energy.accounting import (
    SleepPolicy,
    EnergyBreakdown,
    account,
    memory_energy_for_gaps,
)
from repro.energy.switching import (
    SwitchingReport,
    count_speed_switches,
    switching_energy,
)

__all__ = [
    "SleepPolicy",
    "EnergyBreakdown",
    "account",
    "memory_energy_for_gaps",
    "SwitchingReport",
    "count_speed_switches",
    "switching_energy",
]

"""Frequency-transition overhead check (paper Sections 3 and 8).

The paper removes its "voltage adjustment is free" assumption in the
evaluation and reports that the proposed scheme still wins.  This bench
reproduces that claim: charge every DVS re-leveling a fixed energy and
confirm SDEM-ON's savings survive, and that its non-preemptive offline
cousins barely switch at all.
"""

from __future__ import annotations

from repro.baselines import mbkp, mbkps
from repro.core import SdemOnlinePolicy
from repro.energy import switching_energy
from repro.experiments import experiment_platform
from repro.sim import simulate
from repro.workloads import synthetic_tasks

from conftest import emit

#: A deliberately pessimistic 100 uJ per re-leveling (~50 us of an A57 at
#: full tilt just to settle the PLL/regulator).
ENERGY_PER_SWITCH_UJ = 100.0


def test_savings_survive_switch_overhead(benchmark, seeds):
    platform = experiment_platform()

    def run():
        rows = []
        for x in (100.0, 400.0, 800.0):
            acc = {"SDEM-ON": [0.0, 0], "MBKPS": [0.0, 0], "MBKP": [0.0, 0]}
            for seed in range(seeds):
                trace = synthetic_tasks(n=40, max_interarrival=x, seed=seed)
                horizon = (
                    min(t.release for t in trace),
                    max(t.deadline for t in trace),
                )
                policies = {
                    "SDEM-ON": SdemOnlinePolicy(platform),
                    "MBKPS": mbkps(platform),
                    "MBKP": mbkp(platform),
                }
                for name, policy in policies.items():
                    result = simulate(policy, trace, platform, horizon=horizon)
                    report = switching_energy(
                        result.schedule, ENERGY_PER_SWITCH_UJ
                    )
                    acc[name][0] += (
                        result.total_energy + report.total_energy
                    ) / seeds
                    acc[name][1] += report.total_switches / seeds
            rows.append((x, acc))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for x, acc in rows:
        for name, (energy, switches) in acc.items():
            lines.append(
                f"  x={x:5.0f}ms {name:<8s} {energy / 1000.0:10.2f} mJ "
                f"incl. {switches:6.1f} switches"
            )
    emit(
        f"DVS switch overhead ({ENERGY_PER_SWITCH_UJ:.0f} uJ/switch) -- "
        "totals including switching energy",
        lines,
    )
    for x, acc in rows:
        assert acc["SDEM-ON"][0] < acc["MBKPS"][0]
        assert acc["SDEM-ON"][0] < acc["MBKP"][0]


def test_offline_schemes_switch_at_most_once_per_task():
    from repro.core import solve_agreeable
    from repro.energy import count_speed_switches
    from repro.models import Task, TaskSet

    platform = experiment_platform().with_num_cores(None)
    tasks = TaskSet(
        [
            Task(0.0, 30.0, 5000.0, "a"),
            Task(5.0, 60.0, 4000.0, "b"),
            Task(100.0, 160.0, 6000.0, "c"),
        ]
    )
    schedule = solve_agreeable(tasks, platform).schedule()
    # One interval per task on its own core: zero re-levelings.
    assert sum(count_speed_switches(schedule)) == 0

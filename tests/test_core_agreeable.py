"""Tests for the Section 5 dynamic program over blocks."""

from __future__ import annotations

import random

import pytest

from repro.core import solve_agreeable, solve_block, solve_common_release
from repro.core.reference import reference_agreeable
from repro.energy import account
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import validate_schedule


def make_platform(alpha: float, alpha_m: float = 10.0, xi_m: float = 0.0):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=1000.0),
        MemoryModel(alpha_m=alpha_m, xi_m=xi_m),
    )


def random_agreeable_tasks(rng: random.Random, n: int, spread: float = 150.0) -> TaskSet:
    releases = sorted(rng.uniform(0.0, spread) for _ in range(n))
    deadlines = []
    last_d = 0.0
    for r in releases:
        d = max(r + rng.uniform(5.0, 60.0), last_d + rng.uniform(0.1, 5.0))
        deadlines.append(d)
        last_d = d
    return TaskSet(
        Task(r, d, rng.uniform(50.0, 3000.0))
        for r, d in zip(releases, deadlines)
    )


@pytest.fixture
def two_cluster_tasks():
    """Two clearly separated clusters: the optimum uses two blocks."""
    return TaskSet(
        [
            Task(0.0, 20.0, 2000.0, "A1"),
            Task(2.0, 25.0, 1500.0, "A2"),
            Task(500.0, 520.0, 2000.0, "B1"),
            Task(505.0, 530.0, 1500.0, "B2"),
        ]
    )


class TestSolveAgreeable:
    def test_rejects_non_agreeable(self):
        nested = TaskSet([Task(0, 30, 10), Task(5, 10, 10)])
        with pytest.raises(ValueError, match="agreeable"):
            solve_agreeable(nested, make_platform(0.0))

    def test_far_clusters_split_into_two_blocks(self, two_cluster_tasks):
        sol = solve_agreeable(two_cluster_tasks, make_platform(0.0))
        assert sol.num_blocks == 2
        (s1, e1), (s2, e2) = sol.block_intervals()
        assert e1 <= s2

    def test_single_block_when_memory_cheap_tasks_tight(self):
        ts = TaskSet(
            [Task(0.0, 30.0, 2000.0, "a"), Task(5.0, 40.0, 2000.0, "b")]
        )
        sol = solve_agreeable(ts, make_platform(0.0, alpha_m=0.5))
        assert sol.num_blocks >= 1
        total_block = solve_block(ts, make_platform(0.0, alpha_m=0.5))
        assert sol.predicted_energy <= total_block.energy + 1e-9

    @pytest.mark.parametrize("alpha", [0.0, 2.0])
    def test_matches_exhaustive_reference(self, alpha):
        platform = make_platform(alpha)
        rng = random.Random(41)
        for _ in range(4):
            ts = random_agreeable_tasks(rng, rng.randint(2, 5))
            sol = solve_agreeable(ts, platform)
            ref = reference_agreeable(ts, platform, grid=60)
            assert sol.predicted_energy == pytest.approx(ref, rel=3e-3)
            assert sol.predicted_energy <= ref * (1.0 + 1e-6)

    @pytest.mark.parametrize("alpha", [0.0, 2.0])
    def test_schedule_feasible_and_account_consistent(self, alpha):
        platform = make_platform(alpha)
        rng = random.Random(43)
        for _ in range(5):
            ts = random_agreeable_tasks(rng, rng.randint(2, 7))
            sol = solve_agreeable(ts, platform)
            sched = sol.schedule()
            validate_schedule(
                sched, ts, max_speed=1000.0, require_non_preemptive=True
            )
            bd = account(
                sched, platform, horizon=(0.0, ts.latest_deadline)
            )
            # Blocks charge the memory for their whole interval; the busy
            # union can only be smaller, never bigger.
            assert bd.total <= sol.predicted_energy * (1.0 + 1e-9) + 1e-9

    def test_dp_beats_single_block_and_per_task_blocks(self):
        """The DP must be at least as good as two natural fixed partitions."""
        platform = make_platform(2.0)
        rng = random.Random(47)
        for _ in range(5):
            ts = random_agreeable_tasks(rng, rng.randint(2, 6))
            sol = solve_agreeable(ts, platform)
            single = solve_block(ts, platform).energy
            per_task = sum(
                solve_block(ts.subset(i, i + 1), platform).energy
                for i in range(len(ts))
            )
            assert sol.predicted_energy <= single * (1.0 + 1e-9)
            assert sol.predicted_energy <= per_task * (1.0 + 1e-9)

    def test_common_release_consistency(self):
        """On common-release inputs the DP must match the Section 4 scheme.

        A common-release set is agreeable, and the Section 4 optimum is one
        block anchored at the release; both schemes are optimal so their
        energies must agree.
        """
        platform = make_platform(0.0)
        ts = TaskSet(
            [Task(0.0, 40.0, 800.0), Task(0.0, 70.0, 1500.0), Task(0.0, 100.0, 400.0)]
        )
        dp = solve_agreeable(ts, platform)
        cr = solve_common_release(ts, platform)
        assert dp.predicted_energy == pytest.approx(cr.predicted_energy, rel=1e-5)

    def test_transition_overhead_merges_blocks(self):
        """A big xi_m makes the DP merge blocks it would otherwise split."""
        ts = TaskSet(
            [
                Task(0.0, 20.0, 2000.0, "A"),
                Task(30.0, 55.0, 2000.0, "B"),
            ]
        )
        free = solve_agreeable(
            ts, make_platform(0.0, alpha_m=10.0, xi_m=0.0)
        )
        costly = solve_agreeable(
            ts,
            make_platform(0.0, alpha_m=10.0, xi_m=1e6),
            include_transition_overhead=True,
        )
        assert free.num_blocks == 2
        assert costly.num_blocks == 1

    def test_transition_overhead_added_per_block(self):
        platform = make_platform(0.0, alpha_m=10.0, xi_m=1.0)
        ts = TaskSet([Task(0.0, 20.0, 2000.0), Task(200.0, 230.0, 2000.0)])
        base = solve_agreeable(ts, platform)
        charged = solve_agreeable(ts, platform, include_transition_overhead=True)
        assert charged.num_blocks == base.num_blocks == 2
        assert charged.predicted_energy == pytest.approx(
            base.predicted_energy + 2 * platform.memory.transition_energy(),
            rel=1e-9,
        )

    def test_more_memory_power_means_fewer_or_shorter_busy_time(self):
        rng = random.Random(53)
        ts = random_agreeable_tasks(rng, 6)
        busy = []
        for alpha_m in [0.5, 5.0, 50.0]:
            sol = solve_agreeable(ts, make_platform(0.0, alpha_m=alpha_m))
            busy.append(sum(b.length for b in sol.blocks))
        assert all(a >= b - 1e-6 for a, b in zip(busy, busy[1:]))


class TestReferenceWithOverhead:
    def test_dp_matches_reference_including_block_overhead(self):
        """The +alpha_m*xi_m DP matches the exhaustive reference."""
        from repro.core.reference import reference_agreeable

        platform = make_platform(0.0, alpha_m=10.0, xi_m=25.0)
        rng = random.Random(101)
        for _ in range(3):
            ts = random_agreeable_tasks(rng, rng.randint(2, 4))
            sol = solve_agreeable(ts, platform, include_transition_overhead=True)
            ref = reference_agreeable(
                ts,
                platform,
                grid=60,
                block_overhead=platform.memory.transition_energy(),
            )
            assert sol.predicted_energy == pytest.approx(ref, rel=3e-3)

"""Tests for the voltage-island extension (the paper's future work)."""

from __future__ import annotations

import random

import pytest

from repro.core import solve_common_release
from repro.core.islands import solve_islands_common_release
from repro.energy import account
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import validate_schedule


def make_platform(alpha=2.0, alpha_m=10.0, s_up=1000.0):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=s_up),
        MemoryModel(alpha_m=alpha_m),
    )


def random_common(rng, n):
    return TaskSet(
        Task(0.0, rng.uniform(20.0, 120.0), rng.uniform(500.0, 5000.0))
        for _ in range(n)
    )


class TestGuards:
    def test_requires_common_release(self):
        ts = TaskSet([Task(0, 10, 5), Task(1, 20, 5)])
        with pytest.raises(ValueError, match="common release"):
            solve_islands_common_release(ts, make_platform(), [[0, 1]])

    def test_assignment_must_cover_tasks(self):
        ts = TaskSet([Task(0, 10, 5), Task(0, 20, 5)])
        with pytest.raises(ValueError, match="exactly once"):
            solve_islands_common_release(ts, make_platform(), [[0]])
        with pytest.raises(ValueError, match="exactly once"):
            solve_islands_common_release(ts, make_platform(), [[0, 1, 1]])


class TestSingletonIslands:
    @pytest.mark.parametrize("alpha", [0.0, 2.0])
    def test_matches_section4_optimum(self, alpha):
        """Islands of size one = independent per-core DVS = Section 4."""
        rng = random.Random(5)
        platform = make_platform(alpha=alpha)
        for _ in range(6):
            ts = random_common(rng, rng.randint(1, 6))
            singleton = [[i] for i in range(len(ts))]
            island = solve_islands_common_release(ts, platform, singleton)
            section4 = solve_common_release(ts, platform)
            assert island.predicted_energy == pytest.approx(
                section4.predicted_energy, rel=1e-3
            )


class TestSharedIslands:
    def test_sharing_never_beats_independent_rails(self):
        """Coupling cores can only cost energy (fewer degrees of freedom)."""
        rng = random.Random(9)
        platform = make_platform()
        for _ in range(6):
            ts = random_common(rng, rng.randint(2, 6))
            n = len(ts)
            one_island = solve_islands_common_release(
                ts, platform, [list(range(n))]
            )
            singleton = solve_islands_common_release(
                ts, platform, [[i] for i in range(n)]
            )
            assert one_island.predicted_energy >= singleton.predicted_energy * (
                1.0 - 1e-9
            )

    def test_identical_tasks_share_for_free(self):
        """Identical tasks want identical speeds: sharing costs nothing."""
        platform = make_platform()
        ts = TaskSet([Task(0.0, 60.0, 2000.0, f"t{k}") for k in range(4)])
        shared = solve_islands_common_release(ts, platform, [[0, 1, 2, 3]])
        split = solve_islands_common_release(ts, platform, [[0], [1], [2], [3]])
        assert shared.predicted_energy == pytest.approx(
            split.predicted_energy, rel=1e-6
        )

    def test_schedule_feasible_and_consistent(self):
        rng = random.Random(13)
        platform = make_platform()
        for _ in range(5):
            ts = random_common(rng, 5)
            sol = solve_islands_common_release(ts, platform, [[0, 1], [2, 3, 4]])
            sched = sol.schedule()
            validate_schedule(
                sched, ts, max_speed=1000.0, require_non_preemptive=True
            )
            bd = account(sched, platform, horizon=(0.0, ts.latest_deadline))
            assert bd.total == pytest.approx(sol.predicted_energy, rel=1e-6)

    def test_island_speed_uniform_within_island(self):
        platform = make_platform()
        ts = TaskSet(
            [Task(0.0, 60.0, 1000.0, "a"), Task(0.0, 80.0, 4000.0, "b"),
             Task(0.0, 100.0, 2500.0, "c")]
        )
        sol = solve_islands_common_release(ts, platform, [[0, 1, 2]])
        sched = sol.schedule()
        speeds = {iv.speed for iv in sched.all_intervals()}
        assert len(speeds) == 1

    def test_heavy_task_drags_island_speed(self):
        """An urgent heavy task forces the whole island to its pace."""
        platform = make_platform(alpha=2.0, alpha_m=0.01)
        ts = TaskSet(
            [Task(0.0, 10.0, 8000.0, "urgent"), Task(0.0, 500.0, 100.0, "lazy")]
        )
        shared = solve_islands_common_release(ts, platform, [[0, 1]])
        # The island runs at the urgent task's filled speed (>= 800 MHz),
        # so the lazy task is dragged far above its own critical speed.
        assert shared.island_speeds[0] >= 800.0 - 1e-6
        split = solve_islands_common_release(ts, platform, [[0], [1]])
        assert shared.predicted_energy > split.predicted_energy

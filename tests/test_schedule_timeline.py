"""Tests for schedule timelines, interval algebra and the memory view."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.schedule import (
    CoreTimeline,
    ExecutionInterval,
    Schedule,
    complement_within,
    merge_intervals,
    total_length,
)


def iv(task, start, end, speed=100.0):
    return ExecutionInterval(task, start, end, speed)


class TestExecutionInterval:
    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            iv("t", 5.0, 5.0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            ExecutionInterval("t", 0.0, 1.0, 0.0)

    def test_duration_and_workload(self):
        interval = iv("t", 2.0, 5.0, speed=10.0)
        assert interval.duration == pytest.approx(3.0)
        assert interval.workload == pytest.approx(30.0)


class TestCoreTimeline:
    def test_sorts_intervals(self):
        tl = CoreTimeline([iv("b", 5, 8), iv("a", 0, 3)])
        assert [x.task for x in tl] == ["a", "b"]

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            CoreTimeline([iv("a", 0, 5), iv("b", 4, 8)])

    def test_busy_time_and_spans(self):
        tl = CoreTimeline([iv("a", 0, 3), iv("b", 3, 5), iv("c", 10, 12)])
        assert tl.busy_time == pytest.approx(7.0)
        assert tl.busy_spans() == [(0, 5), (10, 12)]

    def test_idle_gaps(self):
        tl = CoreTimeline([iv("a", 2, 4)])
        assert tl.idle_gaps((0.0, 10.0)) == [(0.0, 2.0), (4.0, 10.0)]

    def test_empty_timeline(self):
        tl = CoreTimeline()
        assert tl.busy_time == 0.0
        assert tl.span() is None
        assert tl.idle_gaps((0.0, 5.0)) == [(0.0, 5.0)]


class TestIntervalAlgebra:
    def test_merge_coalesces_touching_spans(self):
        assert merge_intervals([(0, 2), (2, 4), (5, 6)]) == [(0, 4), (5, 6)]

    def test_merge_handles_containment(self):
        assert merge_intervals([(0, 10), (2, 3), (4, 12)]) == [(0, 12)]

    def test_merge_rejects_bad_span(self):
        with pytest.raises(ValueError):
            merge_intervals([(3, 3)])

    def test_complement_basic(self):
        gaps = complement_within([(2, 4), (6, 8)], (0, 10))
        assert gaps == [(0, 2), (4, 6), (8, 10)]

    def test_complement_clips_to_horizon(self):
        gaps = complement_within([(0, 4)], (2, 3))
        assert gaps == []

    def test_complement_empty_busy(self):
        assert complement_within([], (1, 5)) == [(1, 5)]

    def test_total_length(self):
        assert total_length([(0, 2), (5, 9)]) == pytest.approx(6.0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0.1, 10)),
            min_size=0,
            max_size=15,
        ),
        st.floats(101, 200),
    )
    def test_busy_plus_idle_covers_horizon(self, raw, hi):
        spans = [(s, s + d) for s, d in raw]
        merged = merge_intervals(spans)
        gaps = complement_within(merged, (0.0, hi))
        clipped = [(max(a, 0.0), min(b, hi)) for a, b in merged if a < hi]
        assert total_length(clipped) + total_length(gaps) == pytest.approx(
            hi, rel=1e-6, abs=1e-6
        )

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0.1, 10)),
            min_size=1,
            max_size=15,
        )
    )
    def test_merged_spans_disjoint_and_sorted(self, raw):
        merged = merge_intervals([(s, s + d) for s, d in raw])
        for (a0, a1), (b0, b1) in zip(merged, merged[1:]):
            assert a1 < b0
            assert a0 < a1


class TestSchedule:
    def test_busy_union_across_cores(self):
        sched = Schedule.from_assignments(
            [[iv("a", 0, 4)], [iv("b", 2, 6)], [iv("c", 10, 11)]]
        )
        assert sched.busy_union() == [(0, 6), (10, 11)]
        assert sched.memory_busy_time() == pytest.approx(7.0)

    def test_common_idle_gaps_default_horizon(self):
        sched = Schedule.from_assignments([[iv("a", 0, 4)], [iv("b", 6, 8)]])
        assert sched.common_idle_gaps() == [(4, 6)]
        assert sched.common_idle_time() == pytest.approx(2.0)

    def test_common_idle_with_explicit_horizon(self):
        sched = Schedule.from_assignments([[iv("a", 2, 4)]])
        gaps = sched.common_idle_gaps((0.0, 10.0))
        assert gaps == [(0.0, 2.0), (4.0, 10.0)]
        assert sched.common_idle_time((0.0, 10.0)) == pytest.approx(8.0)

    def test_one_task_per_core(self):
        sched = Schedule.one_task_per_core([iv("a", 0, 1), iv("b", 0, 2)])
        assert sched.num_cores == 2
        assert all(len(core) == 1 for core in sched.cores)

    def test_executed_workloads(self):
        sched = Schedule.from_assignments(
            [[iv("a", 0, 2, speed=10), iv("a", 3, 4, speed=20)], [iv("b", 0, 1, speed=5)]]
        )
        done = sched.executed_workloads()
        assert done["a"] == pytest.approx(40.0)
        assert done["b"] == pytest.approx(5.0)

    def test_requires_at_least_one_core(self):
        with pytest.raises(ValueError):
            Schedule([])

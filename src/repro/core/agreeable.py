"""Optimal schemes for agreeable-deadline tasks (paper Section 5).

Lemma 4 shows an optimal schedule exists in which the deadline order of the
tasks is respected across blocks: sorting tasks by deadline, each memory
busy interval (*block*) hosts a consecutive run of that order.  The global
optimum therefore decomposes as a dynamic program over prefixes,

    OPT(q) = min over p < q of  OPT(p) + Emin(p+1 .. q)  [+ alpha_m * xi_m]

where ``Emin`` is the single-block local optimum of Section 5.1.1 / 5.2.1
(:func:`repro.core.blocks.solve_block`) and the bracketed term is the
Section 7 per-block memory transition overhead, charged once per block
because a block costs exactly one sleep/wake cycle.

Complexities match the paper's Table 1 up to the inner solver: the DP
itself is O(n^2) block evaluations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Tuple

from repro.core import vectorized
from repro.core.blocks import BlockSolution, solve_block
from repro.models.platform import Platform
from repro.models.task import TaskSet
from repro.schedule.timeline import ExecutionInterval, Schedule

__all__ = ["AgreeableSolution", "solve_agreeable"]


@dataclass(frozen=True)
class AgreeableSolution:
    """Result of the Section 5 dynamic program.

    ``predicted_energy`` includes ``len(blocks)`` memory transition
    overheads when ``include_transition_overhead`` was requested.
    """

    tasks: TaskSet
    blocks: Tuple[BlockSolution, ...]
    predicted_energy: float
    block_overhead: float

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_intervals(self) -> List[Tuple[float, float]]:
        """The memory busy intervals, in time order."""
        return sorted((b.start, b.end) for b in self.blocks)

    def schedule(self) -> Schedule:
        """One core per task across all blocks (unbounded-core model)."""
        placements = [
            ExecutionInterval(p.name, p.start, p.end, p.speed)
            for block in self.blocks
            for p in block.placements
        ]
        return Schedule.one_task_per_core(placements)


def solve_agreeable(
    tasks: TaskSet,
    platform: Platform,
    *,
    block_method: Literal["descent", "pairs"] = "descent",
    include_transition_overhead: bool = False,
) -> AgreeableSolution:
    """Optimal agreeable-deadline SDEM schedule (Sections 5 and 7).

    Parameters
    ----------
    tasks:
        An agreeable task set (later release implies later deadline).
    platform:
        Dispatches on ``platform.core.alpha`` between the Section 5.1
        (``alpha = 0``) and Section 5.2 (``alpha != 0``) block solvers.
    block_method:
        Inner single-block solver; see :func:`repro.core.blocks.solve_block`.
    include_transition_overhead:
        Charge ``alpha_m * xi_m`` per block in the DP (the Section 7
        extension).  With a positive overhead the DP naturally merges
        blocks whose separation cannot amortize a sleep cycle.
    """
    if not tasks.is_agreeable():
        raise ValueError("Section 5 schemes require agreeable deadlines")
    if not tasks.is_feasible_at(platform.core.s_up):
        raise ValueError("task set infeasible even at s_up")

    overhead = (
        platform.memory.transition_energy() if include_transition_overhead else 0.0
    )
    n = len(tasks)

    # Gap pruning: when memory leakage is positive and sleeping is free
    # (no per-block overhead), a block spanning a *feasibility gap* --
    # task k+1 released strictly after task k's deadline -- is provably
    # dominated: splitting the busy interval at the gap leaves every task
    # window unchanged (deadline order bounds the left tasks' deadlines by
    # the gap start, agreeable releases bound the right tasks' releases by
    # the gap end) while shortening the memory-awake time by at least the
    # gap, i.e. saving >= alpha_m * gap.  Skipping those blocks turns the
    # O(n^2) block pricing into O(sum of per-cluster n_c^2) on clustered
    # traces without changing the DP optimum.  With a positive overhead
    # merging across a gap can amortize a sleep cycle, so no pruning then.
    prune_gaps = platform.memory.alpha_m > 0.0 and overhead == 0.0
    gap_after = [
        tasks[k + 1].release > tasks[k].deadline + 1e-9 for k in range(n - 1)
    ]

    # Price every consecutive block tau'[p:q] that can appear in an optimum.
    # Under the numpy backend every subset's BlockArrays is a slice of the
    # parent's (deadline order is preserved by slicing), so pre-seeding the
    # arrays cache skips O(n^2) per-subset tuple unpacking.
    use_numpy = vectorized.use_numpy()
    block_solutions: Dict[Tuple[int, int], BlockSolution] = {}
    for p in range(n):
        spans_gap = False
        for q in range(p + 1, n + 1):
            if q >= p + 2 and gap_after[q - 2]:
                spans_gap = True
            if prune_gaps and spans_gap:
                continue
            if use_numpy:
                vectorized.register_subset_arrays(tasks, p, q)
            block_solutions[(p, q)] = solve_block(
                tasks.subset(p, q), platform, method=block_method
            )

    # DP over prefixes (Lemma 4 ordering).  Singleton blocks are never
    # pruned, so a finite-cost path always exists.
    best_cost = [math.inf] * (n + 1)
    best_prev: List[Optional[int]] = [None] * (n + 1)
    best_cost[0] = 0.0
    for q in range(1, n + 1):
        for p in range(q):
            solution = block_solutions.get((p, q))
            if solution is None:
                continue
            candidate = best_cost[p] + solution.energy + overhead
            if candidate < best_cost[q]:
                best_cost[q] = candidate
                best_prev[q] = p

    # Reconstruct the chosen partition.
    blocks: List[BlockSolution] = []
    q = n
    while q > 0:
        p = best_prev[q]
        assert p is not None
        blocks.append(block_solutions[(p, q)])
        q = p
    blocks.reverse()

    return AgreeableSolution(
        tasks=tasks,
        blocks=tuple(blocks),
        predicted_energy=best_cost[n],
        block_overhead=overhead,
    )

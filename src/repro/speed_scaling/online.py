"""Online single-core speed scaling: Optimal Available (OA).

OA (Yao-Demers-Shenker) recomputes, at every arrival instant, the optimal
(YDS) schedule for the *remaining* work and follows it until the next
arrival.  In the MBKP baseline every job handed to a core has already been
released, so the remaining-work instance is always a common-release one and
its YDS schedule reduces to the deadline *staircase*:

    sort jobs by deadline; speed of the first group is
    ``max_k (sum_{j<=k} w_j) / (d_k - now)``; peel the group off and repeat.

:func:`staircase_speeds` implements that special case directly (O(n log n))
and :func:`optimal_available_plan` turns it into executable (job, start,
end, speed) segments.  The general-release case falls back to the full YDS
solver.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.speed_scaling.yds import JobPiece, yds_schedule

__all__ = ["staircase_speeds", "optimal_available_plan"]


def staircase_speeds(
    jobs: Sequence[Tuple[str, float, float]], now: float
) -> List[Tuple[str, float]]:
    """YDS speeds for common-release jobs ``(name, deadline, workload)``.

    Returns ``[(name, speed), ...]`` in execution (EDF) order.  Jobs in the
    same critical group share one speed; groups are peeled off the front of
    the deadline staircase.
    """
    if not jobs:
        return []
    pending = sorted(jobs, key=lambda j: (j[1], j[0]))
    for name, deadline, workload in pending:
        if deadline <= now:
            raise ValueError(f"job {name}: deadline {deadline} not after now={now}")
        if workload <= 0.0:
            raise ValueError(f"job {name}: non-positive workload")
    result: List[Tuple[str, float]] = []
    t = now
    while pending:
        # Find the prefix with maximal intensity.
        cum = 0.0
        best_intensity = -1.0
        best_idx = 0
        for idx, (name, deadline, workload) in enumerate(pending):
            cum += workload
            intensity = cum / (deadline - t)
            if intensity > best_intensity + 1e-15:
                best_intensity = intensity
                best_idx = idx
        group = pending[: best_idx + 1]
        pending = pending[best_idx + 1 :]
        for name, _deadline, _workload in group:
            result.append((name, best_intensity))
        t += sum(w for _, _, w in group) / best_intensity
    return result


def optimal_available_plan(
    jobs: Sequence[Tuple[str, float, float]], now: float
) -> List[JobPiece]:
    """OA plan segments for common-release remaining jobs.

    Returns back-to-back :class:`JobPiece` segments starting at ``now``;
    the caller follows them until the next arrival, then replans.
    """
    speeds = staircase_speeds(jobs, now)
    by_name = {name: (deadline, workload) for name, deadline, workload in jobs}
    segments: List[JobPiece] = []
    t = now
    for name, speed in speeds:
        _, workload = by_name[name]
        duration = workload / speed
        segments.append(JobPiece(name, t, t + duration, speed))
        t += duration
    return segments


def optimal_available_plan_general(
    jobs: Iterable[Tuple[str, float, float, float]],
) -> List[JobPiece]:
    """OA plan for jobs with arbitrary (future) releases: full YDS."""
    return yds_schedule(jobs)

"""BCK001-BCK004: the scalar/numpy/jit backend purity rules."""

from __future__ import annotations

from tests.lint_helpers import run_lint, rule_ids


class TestNumpyScopeBCK002:
    def test_numpy_import_outside_sanctioned_modules_flagged(self, tmp_path):
        source = """
            import numpy as np

            def mean(xs):
                return float(np.mean(xs))
        """
        findings = run_lint(
            str(tmp_path),
            {"src/repro/experiments/stats.py": source},
            rules=["BCK002"],
        )
        assert rule_ids(findings) == ["BCK002"]

    def test_from_numpy_import_flagged(self, tmp_path):
        source = """
            from numpy import asarray
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/energy/m.py": source}, rules=["BCK002"]
        )
        assert rule_ids(findings) == ["BCK002"]

    def test_sanctioned_module_exempt(self, tmp_path):
        source = """
            try:
                import numpy as np
            except ImportError:
                np = None
        """
        findings = run_lint(
            str(tmp_path),
            {"src/repro/core/vectorized.py": source},
            rules=["BCK002"],
        )
        assert findings == []


class TestNumpyGuardBCK001:
    def test_unguarded_import_in_sanctioned_module_flagged(self, tmp_path):
        source = """
            import numpy as np
        """
        findings = run_lint(
            str(tmp_path),
            {"src/repro/core/vectorized.py": source},
            rules=["BCK001"],
        )
        assert rule_ids(findings) == ["BCK001"]

    def test_guarded_import_allowed(self, tmp_path):
        source = """
            try:
                import numpy as np
            except ImportError:
                np = None
        """
        findings = run_lint(
            str(tmp_path),
            {"src/repro/utils/solvers.py": source},
            rules=["BCK001"],
        )
        assert findings == []

    def test_modulenotfounderror_guard_allowed(self, tmp_path):
        source = """
            try:
                import numpy
            except ModuleNotFoundError:
                numpy = None
        """
        findings = run_lint(
            str(tmp_path),
            {"src/repro/core/vectorized.py": source},
            rules=["BCK001"],
        )
        assert findings == []


class TestBackendEnvBCK003:
    def test_environ_subscript_read_flagged(self, tmp_path):
        source = """
            import os

            def backend():
                return os.environ["REPRO_NUMERIC"]
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/experiments/m.py": source}, rules=["BCK003"]
        )
        assert rule_ids(findings) == ["BCK003"]

    def test_environ_get_and_getenv_flagged(self, tmp_path):
        source = """
            import os

            def backend():
                return os.environ.get("REPRO_NUMERIC") or os.getenv("REPRO_NUMERIC")
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/experiments/m.py": source}, rules=["BCK003"]
        )
        assert rule_ids(findings) == ["BCK003", "BCK003"]

    def test_symbolic_key_via_backend_env_constant_flagged(self, tmp_path):
        source = """
            import os
            from repro.core import vectorized

            def backend():
                return os.environ.get(vectorized.BACKEND_ENV)
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["BCK003"]
        )
        assert rule_ids(findings) == ["BCK003"]

    def test_write_for_worker_export_allowed(self, tmp_path):
        source = """
            import os

            def export(backend):
                os.environ["REPRO_NUMERIC"] = backend
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/experiments/m.py": source}, rules=["BCK003"]
        )
        assert findings == []

    def test_accessor_module_exempt(self, tmp_path):
        source = """
            import os

            def get_backend():
                return os.environ.get("REPRO_NUMERIC")
        """
        findings = run_lint(
            str(tmp_path),
            {"src/repro/core/vectorized.py": source},
            rules=["BCK003"],
        )
        assert findings == []

    def test_other_env_vars_allowed(self, tmp_path):
        source = """
            import os

            def cache_dir():
                return os.environ.get("REPRO_CACHE_DIR", ".cache")
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/experiments/m.py": source}, rules=["BCK003"]
        )
        assert findings == []


class TestJitScopeBCK004:
    def test_numba_import_outside_kernels_flagged(self, tmp_path):
        source = """
            import numba

            @numba.njit
            def fast(x):
                return x + 1
        """
        findings = run_lint(
            str(tmp_path),
            {"src/repro/experiments/fast.py": source},
            rules=["BCK004"],
        )
        assert rule_ids(findings) == ["BCK004"]
        assert "repro.core.kernels" in findings[0].message

    def test_cffi_import_outside_kernels_flagged(self, tmp_path):
        source = """
            from cffi import FFI
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["BCK004"]
        )
        assert rule_ids(findings) == ["BCK004"]

    def test_deferred_import_still_flagged(self, tmp_path):
        source = """
            def build():
                import numba
                return numba.njit
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/core/blocks.py": source}, rules=["BCK004"]
        )
        assert rule_ids(findings) == ["BCK004"]

    def test_kernels_package_and_submodules_exempt(self, tmp_path):
        files = {
            "src/repro/core/kernels/__init__.py": "import cffi\n",
            "src/repro/core/kernels/_cffi_provider.py": "import cffi\n",
            "src/repro/core/kernels/_numba_provider.py": "import numba\n",
        }
        findings = run_lint(str(tmp_path), files, rules=["BCK004"])
        assert findings == []

    def test_unrelated_imports_quiet(self, tmp_path):
        source = """
            import numbers
            from collections import OrderedDict
            import cffi_tools
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/experiments/m.py": source}, rules=["BCK004"]
        )
        assert findings == []

    def test_relative_import_not_mistaken_for_toolchain(self, tmp_path):
        source = """
            from . import cffi
        """
        findings = run_lint(
            str(tmp_path),
            {"src/repro/experiments/m.py": source},
            rules=["BCK004"],
        )
        assert findings == []

"""Theorem 1: the bounded-core hardness story, demonstrated.

Eq. (2)/(3) closed forms drive an exact (exponential) partitioner and the
LPT heuristic; the benchmark shows the exact solver's cost growing while
LPT stays cheap, and the energy gap the hardness buys.
"""

from __future__ import annotations

import random
import time

from repro.core.bounded import (
    balanced_partition_energy,
    partition_tasks,
    solve_bounded_common_deadline,
)
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet

from conftest import emit


def _platform(num_cores: int) -> Platform:
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1900.0),
        MemoryModel(alpha_m=4000.0),
        num_cores=num_cores,
    )


def _instance(n: int, seed: int) -> TaskSet:
    rng = random.Random(seed)
    return TaskSet(
        Task(0.0, 100.0, rng.uniform(1000.0, 5000.0), f"t{k}") for k in range(n)
    )


def test_exact_partition_benchmark(benchmark, full_scale):
    n = 18 if full_scale else 14
    tasks = _instance(n, seed=3)
    platform = _platform(2)
    solution = benchmark.pedantic(
        lambda: solve_bounded_common_deadline(tasks, platform, method="exact"),
        rounds=1,
        iterations=1,
    )
    lpt = solve_bounded_common_deadline(tasks, platform, method="lpt")
    gap = (lpt.predicted_energy / solution.predicted_energy - 1.0) * 100.0
    emit(
        f"Theorem 1: exact vs LPT on {n} tasks, 2 cores",
        [
            f"  exact energy {solution.predicted_energy / 1000.0:10.3f} mJ "
            f"(busy {solution.busy_length:.2f} ms)",
            f"  LPT   energy {lpt.predicted_energy / 1000.0:10.3f} mJ "
            f"(gap {gap:+.3f}%)",
        ],
    )
    assert solution.predicted_energy <= lpt.predicted_energy * (1 + 1e-12)


def test_exact_cost_grows_superpolynomially():
    """Wall-clock evidence of the exponential exact search."""
    platform = _platform(3)
    times = []
    sizes = [8, 12, 16]
    for n in sizes:
        tasks = _instance(n, seed=5)
        start = time.perf_counter()
        partition_tasks(tasks.workloads(), 3, method="exact")
        times.append(time.perf_counter() - start)
    emit(
        "Theorem 1: exact partition wall-clock growth (3 cores)",
        (f"  n={n:<3d} {t * 1000.0:9.2f} ms" for n, t in zip(sizes, times)),
    )
    # Not asserting a ratio (machine noise); just that it runs and grows.
    assert times[-1] >= times[0]


def test_eq3_closed_form_benchmark(benchmark):
    platform = _platform(2)
    loads = [12345.0, 8321.0]
    value = benchmark(lambda: balanced_partition_energy(loads, platform))
    assert value > 0.0

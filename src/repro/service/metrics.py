"""Service telemetry: counters, gauges and histograms.

A deliberately small, dependency-free metrics kernel in the Prometheus
idiom: metrics are registered once on a :class:`MetricsRegistry`, mutated
from any thread, and read out either as a ``/metrics``-style text page
(:meth:`MetricsRegistry.render_text`) or as a JSON-ready snapshot
(:meth:`MetricsRegistry.snapshot`) -- the payload behind the server's
``metrics`` request kind and ``repro serve --stats``.

Histograms keep exact ``count``/``sum`` plus **two** percentile views:

* a bounded reservoir of the most recent observations (``p50``/``p95``
  on the text page) -- "what is solve latency doing right now";
* a fixed log-spaced bucket sketch over every observation ever made
  (``p50_stream``/``p99_stream``), immune to the reservoir's recency
  bias: over a long open-loop replay a 1024-sample window forgets the
  tail, understating p99 whenever the slow minority is sparser than one
  in ~1024 recent events.  Buckets span 1e-3..1e6 at a fixed count per
  decade, so the estimate carries a bounded *relative* error (the
  bucket width, ~7.5%) and costs O(1) per observe.

Both views render on the Prometheus text page so dashboards can compare
the recent window against the all-time stream.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Optional

#: Log-spaced bucket grid of the streaming percentile sketch: buckets
#: cover [1e-3, 1e6) (sub-microsecond to ~17-minute latencies in ms) at
#: 32 per decade -- a 10^(1/32) ~= 7.5% relative bucket width.
_BUCKET_MIN = 1e-3
_BUCKET_DECADES = 9
_BUCKETS_PER_DECADE = 32
_BUCKET_COUNT = _BUCKET_DECADES * _BUCKETS_PER_DECADE

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SERVICE_METRICS",
    "labelled_name",
    "service_metrics",
    "scheme_energy_counter",
]


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Dict[str, float]:
        return {"value": self.value}

    def render(self) -> List[str]:
        return [f"{self.name} {_fmt(self.value)}"]


class Gauge:
    """A value that goes up and down (queue depth, degraded flag)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self._value = 0.0
        self._peak = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._peak = max(self._peak, self._value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            self._peak = max(self._peak, self._value)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def peak(self) -> float:
        """High-water mark since creation (queue-bound audits)."""
        with self._lock:
            return self._peak

    def sample(self) -> Dict[str, float]:
        with self._lock:
            return {"value": self._value, "peak": self._peak}

    def render(self) -> List[str]:
        sample = self.sample()
        return [
            f"{self.name} {_fmt(sample['value'])}",
            f"{self.name}_peak {_fmt(sample['peak'])}",
        ]


class Histogram:
    """Exact count/sum plus reservoir *and* streaming percentiles."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "", reservoir: int = 1024):
        self.name = name
        self.help = help_text
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._min = math.inf
        self._recent: Deque[float] = deque(maxlen=reservoir)
        self._buckets = [0] * _BUCKET_COUNT
        self._overflow = 0
        self._lock = threading.Lock()

    @staticmethod
    def _bucket_index(value: float) -> int:
        """Log-grid bucket of ``value``; -1 underflow, count overflow."""
        if value < _BUCKET_MIN:
            return -1
        index = int(math.log10(value / _BUCKET_MIN) * _BUCKETS_PER_DECADE)
        return min(index, _BUCKET_COUNT)

    def observe(self, value: float) -> None:
        value = float(value)
        index = self._bucket_index(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._max = max(self._max, value)
            self._min = min(self._min, value)
            self._recent.append(value)
            if index >= _BUCKET_COUNT:
                self._overflow += 1
            elif index >= 0:
                self._buckets[index] += 1
            # Underflow (index -1) is implied: count minus bucket totals.

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile (0..100) of recent observations."""
        with self._lock:
            if not self._recent:
                return None
            ordered = sorted(self._recent)
        rank = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def streaming_percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile over *all* observations, from the
        log-bucket sketch (bounded ~7.5% relative error).

        Unlike :meth:`percentile` this never forgets: rare tail events
        stay represented however long the replay runs.  Bucketed values
        report the bucket's geometric midpoint, clamped to the observed
        min/max; the overflow bucket reports the observed max.
        """
        with self._lock:
            count = self._count
            if count == 0:
                return None
            buckets = list(self._buckets)
            overflow = self._overflow
            minimum, maximum = self._min, self._max
        target = max(1, math.ceil(p / 100.0 * count))
        underflow = count - overflow - sum(buckets)
        cumulative = underflow
        if cumulative >= target:
            return minimum
        for index, bucket_count in enumerate(buckets):
            cumulative += bucket_count
            if cumulative >= target:
                low = _BUCKET_MIN * 10.0 ** (index / _BUCKETS_PER_DECADE)
                high = low * 10.0 ** (1.0 / _BUCKETS_PER_DECADE)
                mid = math.sqrt(low * high)
                return min(max(mid, minimum), maximum)
        return maximum

    def sample(self) -> Dict[str, float]:
        with self._lock:
            count, total, maximum = self._count, self._sum, self._max
        out: Dict[str, float] = {"count": count, "sum": total, "max": maximum}
        if count:
            out["mean"] = total / count
        p50, p95 = self.percentile(50.0), self.percentile(95.0)
        if p50 is not None:
            out["p50"] = p50
        if p95 is not None:
            out["p95"] = p95
        p50_stream = self.streaming_percentile(50.0)
        p99_stream = self.streaming_percentile(99.0)
        if p50_stream is not None:
            out["p50_stream"] = p50_stream
        if p99_stream is not None:
            out["p99_stream"] = p99_stream
        return out

    def render(self) -> List[str]:
        sample = self.sample()
        lines = [
            f"{self.name}_count {_fmt(sample['count'])}",
            f"{self.name}_sum {_fmt(sample['sum'])}",
        ]
        for key in ("p50", "p95", "p50_stream", "p99_stream", "max"):
            if key in sample:
                lines.append(f"{self.name}_{key} {_fmt(sample[key])}")
        return lines


def _fmt(value: float) -> str:
    """Prometheus-style number formatting: integers without the ``.0``."""
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


class MetricsRegistry:
    """Named metrics with idempotent registration.

    ``counter``/``gauge``/``histogram`` return the existing instrument when
    the name was already registered (and refuse kind mismatches), so
    call-site registration stays safe under lazy per-scheme metrics.
    """

    def __init__(self):
        self._metrics: "Dict[str, object]" = {}
        self._lock = threading.Lock()

    def _register(self, factory, name: str, help_text: str):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, factory):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = factory(name, help_text)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        return self._register(Histogram, name, help_text)

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Every metric's samples as a JSON-ready dict."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.sample() for name, metric in metrics}

    def render_text(self) -> str:
        """The ``/metrics``-style text page."""
        lines: List[str] = []
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


#: Metric names shared by the server, batcher and queue.  Declared in one
#: place so docs/SERVICE.md's reference and the code cannot drift apart.
SERVICE_METRICS = (
    ("counter", "repro_requests_total", "solve requests received"),
    ("counter", "repro_responses_total", "successful solve responses"),
    ("counter", "repro_errors_total", "error responses of any code"),
    ("counter", "repro_rejected_queue_full_total", "admissions rejected: queue full"),
    ("counter", "repro_rejected_shed_total", "sweep-lane requests shed while degraded"),
    ("counter", "repro_deadline_expired_total", "requests expired before dispatch"),
    ("counter", "repro_cancelled_total", "requests cancelled before dispatch"),
    ("counter", "repro_cache_hits_total", "solve results served from the result cache"),
    ("counter", "repro_cache_misses_total", "solve results computed fresh"),
    ("counter", "repro_batches_total", "micro-batches dispatched"),
    ("counter", "repro_batched_requests_total", "requests that shared a batch of size > 1"),
    ("gauge", "repro_queue_depth", "admitted requests waiting for dispatch"),
    ("gauge", "repro_degraded", "1 while sweep-lane shedding is active"),
    ("gauge", "repro_inflight", "requests currently executing"),
    ("histogram", "repro_batch_size", "requests per dispatched micro-batch"),
    ("histogram", "repro_queue_wait_ms", "admission-to-dispatch wait"),
    ("histogram", "repro_solve_latency_ms", "per-request solve latency"),
)


def service_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """A registry pre-populated with every service metric."""
    registry = registry if registry is not None else MetricsRegistry()
    for kind, name, help_text in SERVICE_METRICS:
        getattr(registry, kind)(name, help_text)
    return registry


def labelled_name(name: str, **labels: object) -> str:
    """A Prometheus-style labelled series name.

    ``labelled_name("repro_shard_queue_depth", shard=3)`` ->
    ``'repro_shard_queue_depth{shard="3"}'``.  The registry treats the
    result as an ordinary metric name -- one instrument per label
    combination, the same scheme the lazy per-scheme energy counters use
    -- but the rendered text page keeps the label syntax, so scrapers can
    aggregate across shards/workers with a plain label matcher.  Labels
    render in sorted key order so a combination always maps to one name.
    """
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


def scheme_energy_counter(registry: MetricsRegistry, scheme: str) -> Counter:
    """The lazily created per-scheme energy total (uJ), e.g.
    ``repro_energy_uj_total_sdem_on``."""
    slug = scheme.replace("-", "_")
    return registry.counter(
        f"repro_energy_uj_total_{slug}", f"total solved energy (uJ) for scheme {scheme}"
    )

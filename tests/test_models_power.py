"""Unit and property tests for the core power model (paper Eq. (1))."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.models import CorePowerModel, Task
from repro.models.platform import arm_cortex_a57


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beta": 0.0, "lam": 3.0},
            {"beta": 1.0, "lam": 1.0},
            {"beta": 1.0, "lam": 3.0, "alpha": -1.0},
            {"beta": 1.0, "lam": 3.0, "s_up": 0.0},
            {"beta": 1.0, "lam": 3.0, "s_up": 10.0, "s_min": 20.0},
            {"beta": 1.0, "lam": 3.0, "xi": -0.1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CorePowerModel(**kwargs)


class TestPowerAndEnergy:
    def test_dynamic_power_cubic(self, simple_core):
        assert simple_core.dynamic_power(2.0) == pytest.approx(8.0)
        assert simple_core.active_power(2.0) == pytest.approx(108.0)

    def test_execution_energy_formula(self, simple_core):
        # E = (alpha + beta s^3) w / s with w=10, s=5: (100+125)*2 = 450
        assert simple_core.execution_energy(10.0, 5.0) == pytest.approx(450.0)

    def test_zero_workload_costs_nothing(self, simple_core):
        assert simple_core.execution_energy(0.0, 5.0) == 0.0

    def test_stretch_energy_matches_execution_energy(self, simple_core):
        w, duration = 10.0, 4.0
        stretched = simple_core.stretch_energy(w, duration)
        explicit = simple_core.execution_energy(w, w / duration)
        assert stretched == pytest.approx(explicit)

    def test_idle_and_transition_energy(self, simple_core):
        core = simple_core.with_xi(3.0)
        assert core.idle_energy(2.0) == pytest.approx(200.0)
        assert core.sleep_transition_energy() == pytest.approx(300.0)

    @given(speed=st.floats(1.0, 1000.0), workload=st.floats(0.1, 1e5))
    def test_energy_positive_and_scales_linearly_in_workload(self, speed, workload):
        core = CorePowerModel(beta=1e-6, lam=3.0, alpha=50.0, s_up=1000.0)
        single = core.execution_energy(workload, speed)
        double = core.execution_energy(2.0 * workload, speed)
        assert single > 0.0
        assert math.isclose(double, 2.0 * single, rel_tol=1e-9)


class TestCriticalSpeeds:
    def test_s_m_closed_form(self, simple_core):
        # s_m = (alpha / (beta (lam-1)))^(1/lam) = (100/2)^(1/3)
        assert simple_core.s_m == pytest.approx(50.0 ** (1.0 / 3.0))

    def test_s_m_zero_without_static_power(self, zero_alpha_core):
        assert zero_alpha_core.s_m == 0.0

    def test_s_m_is_energy_minimizer(self, simple_core):
        w = 100.0
        best = simple_core.execution_energy(w, simple_core.s_m)
        for speed in [0.5, 0.9, 1.1, 2.0]:
            assert best <= simple_core.execution_energy(w, speed * simple_core.s_m) + 1e-9

    def test_s_cm_exceeds_s_m(self, simple_core):
        assert simple_core.s_cm(50.0) > simple_core.s_m
        assert simple_core.s_cm(0.0) == pytest.approx(simple_core.s_m)
        with pytest.raises(ValueError):
            simple_core.s_cm(-1.0)

    def test_s0_clamps_between_filled_and_sup(self, simple_core):
        slow_task = Task(0.0, 100.0, 1.0)  # s_f = 0.01 << s_m
        assert simple_core.s0(slow_task) == pytest.approx(simple_core.s_m)
        urgent_task = Task(0.0, 1.0, 500.0)  # s_f = 500 >> s_m
        assert simple_core.s0(urgent_task) == pytest.approx(500.0)
        impossible = Task(0.0, 1.0, 5000.0)  # s_f = 5000 > s_up
        assert simple_core.s0(impossible) == pytest.approx(simple_core.s_up)

    def test_s1_ordering(self, simple_core):
        task = Task(0.0, 100.0, 1.0)
        assert simple_core.s1(task, 50.0) >= simple_core.s0(task)

    def test_s0_always_deadline_feasible(self, simple_core):
        task = Task(0.0, 2.0, 100.0)  # s_f = 50
        assert simple_core.s0(task) >= task.filled_speed

    @given(
        alpha=st.floats(1.0, 1e4),
        beta=st.floats(1e-8, 1.0),
        lam=st.floats(1.5, 4.0),
    )
    def test_s_m_first_order_condition(self, alpha, beta, lam):
        core = CorePowerModel(beta=beta, lam=lam, alpha=alpha)
        s = core.s_m
        # d/ds [(alpha + beta s^lam)/s] = 0  <=>  beta(lam-1)s^lam = alpha
        assert math.isclose(beta * (lam - 1.0) * s ** lam, alpha, rel_tol=1e-9)


class TestConstrainedCriticalSpeed:
    def test_reverts_to_filled_speed_when_gap_too_small(self, simple_core):
        core = simple_core.with_xi(50.0)
        task = Task(0.0, 10.0, 10.0)  # c at s_m: 10/3.68 = 2.7ms -> gap 7.3 < 50
        assert core.s_c(task, horizon=10.0) == pytest.approx(task.filled_speed)

    def test_uses_critical_speed_when_gap_sufficient(self, simple_core):
        core = simple_core.with_xi(1.0)
        task = Task(0.0, 100.0, 10.0)
        assert core.s_c(task, horizon=100.0) == pytest.approx(core.s0(task))

    def test_zero_xi_equals_s0(self, simple_core):
        task = Task(0.0, 30.0, 10.0)
        assert simple_core.s_c(task, horizon=30.0) == pytest.approx(
            simple_core.s0(task)
        )


class TestA57Preset:
    def test_reference_parameters(self):
        core = arm_cortex_a57()
        assert core.beta == pytest.approx(2.53e-7)
        assert core.lam == 3.0
        assert core.alpha == pytest.approx(310.0)
        assert core.s_up == 1900.0
        assert core.s_min == 700.0

    def test_dynamic_power_at_max_frequency_is_about_1_7w(self):
        core = arm_cortex_a57()
        assert core.dynamic_power(1900.0) == pytest.approx(1735.0, rel=0.01)

    def test_critical_speed_inside_frequency_range(self):
        core = arm_cortex_a57()
        assert 700.0 < core.s_m < 1900.0

    def test_memory_associated_speed_saturates_at_sup(self):
        # With 4 W of DRAM leakage the unclamped s_cm exceeds 1.9 GHz:
        # race-to-idle becomes optimal, the effect the title refers to.
        core = arm_cortex_a57()
        assert core.s_cm(4000.0) > core.s_up

#!/usr/bin/env python3
"""big.LITTLE cluster: the heterogeneous-core extension (end of Sec. 4.2).

Four "big" cores (Cortex-A57-like: fast, leaky) and four "LITTLE" cores
(Cortex-A53-like: slower, frugal) share one DRAM.  Each task is bound to a
core; the heterogeneous common-release scheme balances every core's own
critical speed against the shared memory's sleep window.

Run:  python examples/big_little_cluster.py
"""

from __future__ import annotations

from repro.core.heterogeneous import solve_common_release_heterogeneous
from repro.models import CorePowerModel, MemoryModel, Task
from repro.models.platform import arm_cortex_a57


def cortex_a53() -> CorePowerModel:
    """A LITTLE-core model: ~1/3 the dynamic coefficient and leakage of
    the A57, topping out at 1.3 GHz."""
    return CorePowerModel(
        beta=0.9e-7, lam=3.0, alpha=90.0, s_up=1300.0, s_min=400.0
    )


def main() -> None:
    big = arm_cortex_a57()
    little = cortex_a53()
    memory = MemoryModel(alpha_m=2000.0)  # 2 W DRAM

    tasks = [
        Task(0.0, 30.0, 16000.0, "render"),  # heavy, tight -> big core
        Task(0.0, 50.0, 9000.0, "physics"),  # heavy            -> big core
        Task(0.0, 80.0, 2500.0, "audio"),  # light            -> LITTLE
        Task(0.0, 120.0, 1500.0, "network"),  # light, lazy      -> LITTLE
    ]
    cores = [big, big, little, little]

    print("cores: 2x A57 (s_m %.0f MHz), 2x A53 (s_m %.0f MHz); 2 W DRAM" % (
        big.s_m, little.s_m))
    print(f"{'task':>10s} {'core':>6s} {'speed (MHz)':>12s} "
          f"{'finish (ms)':>12s} {'deadline':>9s}")
    solution = solve_common_release_heterogeneous(tasks, cores, memory)
    labels = {id(big): "A57", id(little): "A53"}
    for task, core in zip(solution.tasks, solution.cores):
        print(
            f"{task.name:>10s} {labels[id(core)]:>6s} "
            f"{solution.speeds[task.name]:12.1f} "
            f"{solution.finish_times[task.name]:12.2f} {task.deadline:9.0f}"
        )
    print(f"\nmemory awake {solution.memory_busy_length:.2f} ms, "
          f"then sleeps {solution.delta:.2f} ms")
    print(f"total energy {solution.predicted_energy / 1000.0:.2f} mJ")

    # What if everything ran on big cores instead?
    all_big = solve_common_release_heterogeneous(tasks, [big] * 4, memory)
    print(f"all-A57 alternative: {all_big.predicted_energy / 1000.0:.2f} mJ "
          f"({(all_big.predicted_energy / solution.predicted_energy - 1) * 100.0:+.1f}%)")

    print(
        "\nEach core family lands on its own critical speed; the memory's"
        "\nsleep window is set by the slowest finisher, so the scheme speeds"
        "\nup exactly the cores that would otherwise pin the DRAM awake."
    )


if __name__ == "__main__":
    main()

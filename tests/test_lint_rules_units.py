"""UNT001: dimension-mix detection driven by ``@unit`` tags."""

from __future__ import annotations

import textwrap
from fractions import Fraction

import pytest

from repro.units import UJ, UNIT_ATTRIBUTE, dimension_of, unit
from tests.lint_helpers import run_lint, rule_ids

#: Producers tagged with the real decorator, exercised in every scenario.
PRODUCERS = textwrap.dedent(
    """
    from repro.units import MS, MW, UJ, unit

    @unit(UJ)
    def block_energy():
        return 7.0

    @unit(MW)
    def idle_power():
        return 2.0

    @unit(MS)
    def gap_length():
        return 3.0
    """
)


def with_producers(body: str) -> str:
    """The producer module plus a dedented consumer snippet."""
    return PRODUCERS + textwrap.dedent(body)


class TestUnitDecorator:
    def test_decorator_stamps_attribute(self):
        @unit(UJ)
        def energy() -> float:
            return 1.0

        assert getattr(energy, UNIT_ATTRIBUTE) == UJ
        assert energy() == 1.0

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown unit tag"):
            unit("joules")

    def test_power_is_energy_per_time(self):
        energy = dimension_of("uJ")
        power = dimension_of("mW")
        time = dimension_of("ms")
        assert tuple(p + t for p, t in zip(power, time)) == energy

    def test_scalar_is_dimensionless(self):
        assert dimension_of("scalar") == (Fraction(0),) * 3


class TestUnitMixUNT001:
    def test_energy_plus_power_flagged(self, tmp_path):
        source = with_producers("""
            def bad():
                return block_energy() + idle_power()
        """)
        findings = run_lint(
            str(tmp_path), {"src/repro/energy/m.py": source}, rules=["UNT001"]
        )
        assert rule_ids(findings) == ["UNT001"]
        assert "uJ" in findings[0].message and "mW" in findings[0].message
        assert findings[0].severity == "warning"

    def test_derived_energy_from_power_times_time_allowed(self, tmp_path):
        source = with_producers("""
            def good():
                return idle_power() * gap_length() + block_energy()
        """)
        findings = run_lint(
            str(tmp_path), {"src/repro/energy/m.py": source}, rules=["UNT001"]
        )
        assert findings == []

    def test_division_derives_power(self, tmp_path):
        source = with_producers("""
            def good():
                return block_energy() / gap_length() + idle_power()
        """)
        findings = run_lint(
            str(tmp_path), {"src/repro/energy/m.py": source}, rules=["UNT001"]
        )
        assert findings == []

    def test_mix_through_local_variables_flagged(self, tmp_path):
        source = with_producers("""
            def bad():
                total = block_energy()
                window = gap_length()
                return total - window
        """)
        findings = run_lint(
            str(tmp_path), {"src/repro/energy/m.py": source}, rules=["UNT001"]
        )
        assert rule_ids(findings) == ["UNT001"]

    def test_comparison_across_dimensions_flagged(self, tmp_path):
        source = with_producers("""
            def bad():
                return block_energy() > gap_length()
        """)
        findings = run_lint(
            str(tmp_path), {"src/repro/core/m.py": source}, rules=["UNT001"]
        )
        assert rule_ids(findings) == ["UNT001"]

    def test_numeric_literals_never_flagged(self, tmp_path):
        source = with_producers("""
            def good():
                return block_energy() + 0.0 and gap_length() - 1.5
        """)
        findings = run_lint(
            str(tmp_path), {"src/repro/energy/m.py": source}, rules=["UNT001"]
        )
        assert findings == []

    def test_untagged_calls_stay_unknown(self, tmp_path):
        source = with_producers("""
            def helper():
                return 5.0

            def good():
                return block_energy() + helper()
        """)
        findings = run_lint(
            str(tmp_path), {"src/repro/energy/m.py": source}, rules=["UNT001"]
        )
        assert findings == []

    def test_out_of_scope_package_not_flagged(self, tmp_path):
        source = with_producers("""
            def bad():
                return block_energy() + idle_power()
        """)
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["UNT001"]
        )
        assert findings == []

    def test_same_dimension_sum_allowed(self, tmp_path):
        source = with_producers("""
            def good():
                return block_energy() + block_energy()
        """)
        findings = run_lint(
            str(tmp_path), {"src/repro/energy/m.py": source}, rules=["UNT001"]
        )
        assert findings == []

    def test_registry_spans_modules(self, tmp_path):
        # Producers live in repro.models (out of UNT001's checking scope),
        # the mix happens in repro.energy: the tag registry is project-wide.
        consumer = """
            from repro.models.m import block_energy, idle_power

            def bad():
                return block_energy() + idle_power()
        """
        findings = run_lint(
            str(tmp_path),
            {
                "src/repro/models/m.py": PRODUCERS,
                "src/repro/energy/use.py": consumer,
            },
            rules=["UNT001"],
        )
        assert rule_ids(findings) == ["UNT001"]


class TestUnitTagCoverageUNT002:
    def test_untagged_quantity_function_flagged(self, tmp_path):
        source = """
            def _grid_step(epsilon, min_busy):
                return 0.25 * epsilon * min_busy
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/core/fptas.py": source}, rules=["UNT002"]
        )
        assert rule_ids(findings) == ["UNT002"]
        assert "_grid_step" in findings[0].message
        assert findings[0].severity == "warning"

    def test_tagged_quantity_function_quiet(self, tmp_path):
        source = """
            from repro.units import MS, SCALAR, unit

            @unit(SCALAR)
            def _rounding_delta(epsilon):
                return 0.25 * epsilon

            @unit(MS)
            def _busy_ladder(min_length, horizon, delta):
                return [min_length, horizon]
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/core/fptas.py": source}, rules=["UNT002"]
        )
        assert findings == []

    def test_non_quantity_names_never_conscripted(self, tmp_path):
        # 'fptas'/'solver'/'discrete' are not quantity segments, and
        # 'gridlock' must not match 'grid' mid-word.
        source = """
            def solve_agreeable_fptas(tasks):
                return tasks

            def _price_block_discrete(evaluate):
                return evaluate

            def gridlock_detector():
                return True
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/core/fptas.py": source}, rules=["UNT002"]
        )
        assert findings == []

    def test_out_of_scope_module_quiet(self, tmp_path):
        source = """
            def block_energy():
                return 7.0
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/core/blocks.py": source}, rules=["UNT002"]
        )
        assert findings == []

    def test_raw_backend_env_read_flagged(self, tmp_path):
        source = """
            import os

            def sneaky_backend():
                return os.environ.get("REPRO_NUMERIC", "scalar")
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/core/fptas.py": source}, rules=["UNT002"]
        )
        assert rule_ids(findings) == ["UNT002"]
        assert "REPRO_NUMERIC" in findings[0].message

    def test_other_env_reads_quiet(self, tmp_path):
        source = """
            import os

            def tier():
                return os.environ.get("REPRO_SOLVER_TIER", "exact")
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/core/fptas.py": source}, rules=["UNT002"]
        )
        assert findings == []

    def test_scope_configurable_via_pyproject(self, tmp_path):
        pyproject = """
            [tool.repro-lint]
            unit-tagged-modules = [
                "repro.energy.grids",
            ]
        """
        untagged = """
            def ladder_energy():
                return 1.0
        """
        findings = run_lint(
            str(tmp_path),
            {
                "pyproject.toml": pyproject,
                # Newly scoped module: fires.
                "src/repro/energy/grids.py": untagged,
                # Default module, dropped by the config: quiet.
                "src/repro/core/fptas.py": untagged,
            },
            rules=["UNT002"],
        )
        assert rule_ids(findings) == ["UNT002"]
        assert findings[0].path.endswith("grids.py")

"""Section 7 agreeable-DP exhibit: block merging as xi_m grows.

The paper extends the Section 5 DP with a per-block memory transition
charge `alpha_m * xi_m` but shows no figure for it; this bench generates
the missing exhibit: the optimal number of blocks (memory sleep cycles)
collapses monotonically as the break-even time grows, with the total
energy rising accordingly.
"""

from __future__ import annotations

import random

from repro.core import solve_agreeable
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet

from conftest import emit


def _bursty_agreeable(seed: int, bursts: int = 4, per_burst: int = 2) -> TaskSet:
    rng = random.Random(seed)
    tasks = []
    t = 0.0
    for b in range(bursts):
        for k in range(per_burst):
            release = t + k * 4.0
            tasks.append(
                Task(release, release + 30.0, rng.uniform(2000.0, 6000.0),
                     f"b{b}k{k}")
            )
        t += rng.uniform(60.0, 110.0)
    return TaskSet(tasks)


def test_block_count_collapses_with_break_even(benchmark, seeds):
    core = CorePowerModel(beta=2.53e-7, lam=3.0, alpha=310.0, s_up=1900.0)

    def run():
        rows = []
        for xi_m in (0.0, 10.0, 40.0, 120.0, 400.0):
            blocks_sum = energy_sum = 0.0
            for seed in range(seeds):
                tasks = _bursty_agreeable(seed)
                platform = Platform(core, MemoryModel(alpha_m=500.0, xi_m=xi_m))
                sol = solve_agreeable(
                    tasks, platform, include_transition_overhead=True
                )
                blocks_sum += sol.num_blocks / seeds
                energy_sum += sol.predicted_energy / seeds
            rows.append((xi_m, blocks_sum, energy_sum))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Section 7 agreeable DP: blocks vs memory break-even time",
        (
            f"  xi_m = {xi_m:6.1f} ms: {blocks:4.1f} blocks, "
            f"{energy / 1000.0:8.2f} mJ"
            for xi_m, blocks, energy in rows
        ),
    )
    blocks = [r[1] for r in rows]
    energies = [r[2] for r in rows]
    assert all(a >= b - 1e-9 for a, b in zip(blocks, blocks[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(energies, energies[1:]))
    assert blocks[0] > blocks[-1]  # merging actually happened

"""Round-trip tests for task/schedule serialization."""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, strategies as st

from repro.models import Task
from repro.schedule import ExecutionInterval, Schedule
from repro.serialization import (
    SCHEMA_VERSION,
    schedule_from_json,
    schedule_from_payload,
    schedule_to_json,
    schedule_to_payload,
    tasks_from_csv,
    tasks_from_json,
    tasks_from_payload,
    tasks_to_csv,
    tasks_to_json,
)


TASKS = [
    Task(0.0, 40.0, 8000.0, "a"),
    Task(5.5, 70.25, 15000.5, "b"),
    Task(10.0, 100.0, 4000.0, "c"),
]


class TestTasksJson:
    def test_roundtrip(self):
        restored = tasks_from_json(tasks_to_json(TASKS))
        assert restored == TASKS

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="tasks"):
            tasks_from_json("[1, 2, 3]")

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing"):
            tasks_from_json('{"tasks": [{"release": 0, "deadline": 5}]}')

    def test_unnamed_tasks_allowed(self):
        restored = tasks_from_json(
            '{"tasks": [{"release": 0, "deadline": 5, "workload": 2}]}'
        )
        assert restored[0].workload == 2.0

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 100),
                st.floats(0.1, 100),
                st.floats(0.1, 1e6),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_roundtrip_property(self, triples):
        tasks = [
            Task(r, r + span, w, f"t{k}")
            for k, (r, span, w) in enumerate(triples)
        ]
        assert tasks_from_json(tasks_to_json(tasks)) == tasks


class TestTasksCsv:
    def test_roundtrip(self):
        buffer = io.StringIO()
        tasks_to_csv(TASKS, buffer)
        buffer.seek(0)
        assert tasks_from_csv(buffer) == TASKS

    def test_rejects_missing_columns(self):
        with pytest.raises(ValueError, match="columns"):
            tasks_from_csv(io.StringIO("name,release\nx,1\n"))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no rows"):
            tasks_from_csv(io.StringIO("name,release,deadline,workload\n"))

    def test_names_defaulted(self):
        text = "release,deadline,workload\n0,10,5\n"
        tasks = tasks_from_csv(io.StringIO(text))
        assert tasks[0].name == "T1"


class TestScheduleJson:
    def test_roundtrip(self):
        sched = Schedule.from_assignments(
            [
                [ExecutionInterval("a", 0.0, 4.0, 100.0)],
                [ExecutionInterval("b", 2.0, 5.0, 250.5)],
            ]
        )
        restored = schedule_from_json(schedule_to_json(sched))
        assert restored.num_cores == 2
        assert restored.busy_union() == sched.busy_union()
        assert restored.executed_workloads() == sched.executed_workloads()

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="cores"):
            schedule_from_json('{"nope": []}')


class TestSchemaVersioning:
    """The schema stamp and the unknown-field-ignored forward-compat rule."""

    def test_writers_stamp_schema(self):
        assert json.loads(tasks_to_json(TASKS))["schema"] == SCHEMA_VERSION
        sched = Schedule.from_assignments([[ExecutionInterval("a", 0.0, 1.0, 10.0)]])
        assert schedule_to_payload(sched)["schema"] == SCHEMA_VERSION

    def test_legacy_documents_without_schema_accepted(self):
        payload = json.loads(tasks_to_json(TASKS))
        del payload["schema"]
        assert tasks_from_payload(payload) == TASKS

    def test_unknown_fields_ignored_everywhere(self):
        payload = json.loads(tasks_to_json(TASKS))
        payload["generator"] = "repro vNext"  # top level
        for entry in payload["tasks"]:
            entry["priority"] = 7  # per entry
        assert tasks_from_payload(payload) == TASKS

    def test_unknown_fields_ignored_on_schedules(self):
        sched = Schedule.from_assignments([[ExecutionInterval("a", 0.0, 1.0, 10.0)]])
        payload = schedule_to_payload(sched)
        payload["annotations"] = {"note": "from a newer writer"}
        payload["cores"][0][0]["color"] = "red"
        restored = schedule_from_payload(payload)
        assert restored.busy_union() == sched.busy_union()

    @pytest.mark.parametrize("bad", ["2", 0, -1, True, None])
    def test_bad_schema_rejected(self, bad):
        payload = json.loads(tasks_to_json(TASKS))
        payload["schema"] = bad
        with pytest.raises(ValueError, match="schema"):
            tasks_from_payload(payload)

    def test_newer_schema_integer_accepted(self):
        payload = json.loads(tasks_to_json(TASKS))
        payload["schema"] = SCHEMA_VERSION + 1  # additive revision
        assert tasks_from_payload(payload) == TASKS

"""Energy accounting for SDEM schedules.

The accountant prices a :class:`~repro.schedule.timeline.Schedule` on a
:class:`~repro.models.platform.Platform` over an explicit horizon and under
explicit *sleep policies*:

* ``SleepPolicy.NEVER`` -- the component idles awake through every gap
  (the paper's MBKP baseline memory behaviour);
* ``SleepPolicy.ALWAYS`` -- the component sleeps through every gap and pays
  one transition overhead per gap, even counter-productively short ones
  (the MBKPS baseline: "turns the memory into sleep state whenever the
  memory has an idle time");
* ``SleepPolicy.BREAK_EVEN`` -- sleeps exactly when the gap is at least the
  break-even time (what an overhead-aware runtime such as SDEM-ON does).

With ``xi = xi_m = 0`` all three memory policies except ``NEVER`` coincide
with the theory sections' free-sleep model, where energy reduces to
``alpha_m * (|I| - Delta)`` for the memory and ``alpha`` only during
execution for the cores.

Horizon semantics: gaps at the horizon edges (before the first busy span
and after the last one) are priced like interior gaps.  Comparisons between
algorithms must therefore use the *same* horizon; the experiment harness
always passes ``[0, max deadline]``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.models.platform import Platform
from repro.schedule.timeline import (
    ExecutionInterval,
    Schedule,
    complement_within,
    merge_intervals,
    total_length,
)
from repro.units import UJ, unit

__all__ = [
    "SleepPolicy",
    "EnergyBreakdown",
    "account",
    "account_segments",
    "memory_energy_for_gaps",
]


class SleepPolicy(enum.Enum):
    """How a component crosses idle gaps."""

    NEVER = "never"
    ALWAYS = "always"
    BREAK_EVEN = "break_even"


@dataclass(frozen=True)
class EnergyBreakdown:
    """Itemized system energy in uJ (mW * ms).

    Attributes
    ----------
    core_dynamic:
        ``sum over intervals of beta * s**lam * duration``.
    core_static_active:
        ``alpha * total execution time`` across cores.
    core_idle:
        Static + transition energy spent by cores across their idle gaps
        (zero when ``alpha = 0``).
    memory_active:
        ``alpha_m * memory busy time`` (union of core busy spans).
    memory_idle:
        Static + transition energy spent by the memory across common idle
        gaps, per the memory sleep policy.
    memory_sleep_time:
        Total time the memory actually spent asleep.
    memory_busy_time:
        Total memory-active (busy-union) time, the ``|I| - Delta`` of the
        paper's formulas.
    """

    core_dynamic: float
    core_static_active: float
    core_idle: float
    memory_active: float
    memory_idle: float
    memory_sleep_time: float
    memory_busy_time: float

    @property
    @unit(UJ)
    def core_total(self) -> float:
        return self.core_dynamic + self.core_static_active + self.core_idle

    @property
    @unit(UJ)
    def memory_total(self) -> float:
        return self.memory_active + self.memory_idle

    @property
    @unit(UJ)
    def memory_static_total(self) -> float:
        """Total memory leakage-related energy (what Fig. 6a reports)."""
        return self.memory_total

    @property
    @unit(UJ)
    def total(self) -> float:
        """System-wide energy, the SDEM objective."""
        return self.core_total + self.memory_total

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.core_dynamic + other.core_dynamic,
            self.core_static_active + other.core_static_active,
            self.core_idle + other.core_idle,
            self.memory_active + other.memory_active,
            self.memory_idle + other.memory_idle,
            self.memory_sleep_time + other.memory_sleep_time,
            self.memory_busy_time + other.memory_busy_time,
        )


def _gap_energy(
    gaps: Iterable[Tuple[float, float]],
    static_power: float,
    break_even: float,
    policy: SleepPolicy,
) -> Tuple[float, float]:
    """Return ``(energy, sleep_time)`` for idle gaps of one component."""
    energy = 0.0
    sleep_time = 0.0
    for start, end in gaps:
        gap = end - start
        if policy is SleepPolicy.NEVER:
            energy += static_power * gap
        elif policy is SleepPolicy.ALWAYS:
            energy += static_power * break_even
            sleep_time += gap
        else:  # BREAK_EVEN
            if gap >= break_even:
                energy += static_power * break_even
                sleep_time += gap
            else:
                energy += static_power * gap
    return energy, sleep_time


def memory_energy_for_gaps(
    platform: Platform,
    gaps: Iterable[Tuple[float, float]],
    policy: SleepPolicy,
) -> Tuple[float, float]:
    """Memory (energy, sleep_time) over the given common-idle gaps."""
    memory = platform.memory
    return _gap_energy(gaps, memory.alpha_m, memory.xi_m, policy)


def account(
    schedule: Schedule,
    platform: Platform,
    *,
    horizon: Optional[Tuple[float, float]] = None,
    memory_policy: SleepPolicy = SleepPolicy.BREAK_EVEN,
    core_policy: SleepPolicy = SleepPolicy.BREAK_EVEN,
) -> EnergyBreakdown:
    """Price ``schedule`` on ``platform`` over ``horizon``.

    ``horizon`` defaults to the schedule's own busy span (no edge gaps).
    Cores that never execute anything contribute zero in every policy: an
    unused core is assumed powered off for the whole horizon, matching the
    unbounded-core model where only instantiated cores exist.
    """
    core_model = platform.core
    memory_model = platform.memory

    busy_union = schedule.busy_union()
    if horizon is None:
        if busy_union:
            horizon = (busy_union[0][0], busy_union[-1][1])
        else:
            horizon = (0.0, 0.0)

    core_dynamic = 0.0
    core_static_active = 0.0
    core_idle = 0.0
    for core in schedule.cores:
        if len(core) == 0:
            continue
        for interval in core:
            core_dynamic += core_model.dynamic_power(interval.speed) * interval.duration
            core_static_active += core_model.alpha * interval.duration
        if core_model.alpha > 0.0:
            gaps = core.idle_gaps(horizon)
            idle_energy, _ = _gap_energy(
                gaps, core_model.alpha, core_model.xi, core_policy
            )
            core_idle += idle_energy

    memory_busy_time = total_length(busy_union)
    memory_active = memory_model.alpha_m * memory_busy_time
    memory_gaps = complement_within(busy_union, horizon)
    memory_idle, memory_sleep_time = _gap_energy(
        memory_gaps, memory_model.alpha_m, memory_model.xi_m, memory_policy
    )

    return EnergyBreakdown(
        core_dynamic=core_dynamic,
        core_static_active=core_static_active,
        core_idle=core_idle,
        memory_active=memory_active,
        memory_idle=memory_idle,
        memory_sleep_time=memory_sleep_time,
        memory_busy_time=memory_busy_time,
    )


# ---------------------------------------------------------------------------
# Segment-table fast path
# ---------------------------------------------------------------------------

#: Raw execution segment: ``(core index, interval)`` as emitted by the
#: online policies, before any :class:`~repro.schedule.timeline.Schedule`
#: is assembled.
Segment = Tuple[int, ExecutionInterval]


def _account_segments_scalar(
    segments: Sequence[Segment],
    platform: Platform,
    horizon: Tuple[float, float],
    memory_policies: Sequence[SleepPolicy],
    core_policy: SleepPolicy,
) -> List[EnergyBreakdown]:
    """Reference pricing over raw segments, bit-identical to :func:`account`.

    Mirrors the accountant's arithmetic order exactly -- cores visited in
    index order, each core's intervals in start order, the busy union
    merged from per-core spans in the same sequence -- so pricing segments
    directly produces the same floats as building the
    :class:`~repro.schedule.timeline.Schedule` first.  The shared terms
    (core side, busy union, gap list) are computed once and re-priced per
    memory policy.
    """
    core_model = platform.core
    memory_model = platform.memory
    per_core: Dict[int, List[ExecutionInterval]] = {}
    for index, interval in segments:
        per_core.setdefault(index, []).append(interval)

    core_dynamic = 0.0
    core_static_active = 0.0
    core_idle = 0.0
    all_spans: List[Tuple[float, float]] = []
    for index in sorted(per_core):
        intervals = sorted(per_core[index], key=lambda iv: iv.start)
        for interval in intervals:
            core_dynamic += core_model.dynamic_power(interval.speed) * interval.duration
            core_static_active += core_model.alpha * interval.duration
        busy_spans = merge_intervals((iv.start, iv.end) for iv in intervals)
        if core_model.alpha > 0.0:
            gaps = complement_within(busy_spans, horizon)
            idle_energy, _ = _gap_energy(
                gaps, core_model.alpha, core_model.xi, core_policy
            )
            core_idle += idle_energy
        all_spans.extend(busy_spans)

    busy_union = merge_intervals(all_spans) if all_spans else []
    memory_busy_time = total_length(busy_union)
    memory_active = memory_model.alpha_m * memory_busy_time
    memory_gaps = complement_within(busy_union, horizon)
    out: List[EnergyBreakdown] = []
    for memory_policy in memory_policies:
        memory_idle, memory_sleep_time = _gap_energy(
            memory_gaps, memory_model.alpha_m, memory_model.xi_m, memory_policy
        )
        out.append(
            EnergyBreakdown(
                core_dynamic=core_dynamic,
                core_static_active=core_static_active,
                core_idle=core_idle,
                memory_active=memory_active,
                memory_idle=memory_idle,
                memory_sleep_time=memory_sleep_time,
                memory_busy_time=memory_busy_time,
            )
        )
    return out


def account_segments(
    segments: Sequence[Segment],
    platform: Platform,
    *,
    horizon: Tuple[float, float],
    memory_policies: Sequence[SleepPolicy],
    core_policy: SleepPolicy = SleepPolicy.BREAK_EVEN,
) -> List[EnergyBreakdown]:
    """Price raw execution segments under several memory policies at once.

    The segment-table counterpart of :func:`account`: no
    :class:`~repro.schedule.timeline.Schedule` is materialized, and the
    core-side terms plus the memory busy union are shared across every
    requested memory policy -- which is how the experiment pipeline prices
    MBKPS and MBKP from one simulated schedule.

    Dispatch follows the numeric backend: large tables go through
    :func:`repro.core.vectorized.accounting_batch` (agreement to float
    re-association, covered by the backend property tests); small tables
    and the scalar backend use the bit-exact reference loop above.
    """
    # Imported lazily: repro.core.online (pulled in by the repro.core
    # package init) imports this module for SleepPolicy.
    from repro.core import vectorized

    if vectorized.use_numpy() and len(segments) > vectorized._SMALL_N:
        arrays = vectorized.timeline_arrays(
            [(c, iv.start, iv.end, iv.speed) for c, iv in segments], horizon
        )
        priced = vectorized.accounting_batch(
            arrays,
            platform,
            memory_policies=[policy.value for policy in memory_policies],
            core_policy=core_policy.value,
        )
        return [EnergyBreakdown(*fields) for fields in priced]
    return _account_segments_scalar(
        segments, platform, horizon, memory_policies, core_policy
    )

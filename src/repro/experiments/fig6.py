"""Figure 6 reproduction: DSPstone benchmark tasks over utilizations U.

* **Fig. 6a** -- memory static energy saving of SDEM-ON and MBKPS relative
  to MBKP, for FFT and matrix-multiply instance streams, U in 2..9;
* **Fig. 6b** -- system-wide energy saving, same setup.

Memory parameters are the Table 4 stars (``alpha_m = 4 W``,
``xi_m = 40 ms``); the platform is 8x Cortex-A57.  Reported paper numbers:
SDEM-ON saves on average 10.02% more *memory* energy than MBKPS (6a) and
23.45% more *system* energy (6b); SDEM-ON's memory saving grows as
utilization falls while its system saving grows as utilization rises.

Each U point is a :class:`DspstoneTraceSpec` with the historical seed
mapping ``seed * 1009 + U``, so results are unchanged from the old
per-point lambdas while remaining picklable for the parallel engine and
hashable for the result cache.
"""

from __future__ import annotations

from typing import List, Literal, Optional

from repro.experiments.cache import ResultCache
from repro.experiments.config import (
    DEFAULT_NUM_CORES,
    DEFAULT_SEEDS,
    U_SWEEP,
    experiment_platform,
)
from repro.experiments.parallel import DspstoneTraceSpec, PointSpec, run_series
from repro.experiments.runner import SeriesResult

__all__ = ["fig6_specs", "run_fig6"]


def fig6_specs(
    benchmark: Literal["fft", "matmul"],
    *,
    u_values: List[int] | None = None,
    instances: int = 48,
    streams: int = DEFAULT_NUM_CORES,
) -> List[PointSpec]:
    """The Figure 6 parameter points for one benchmark, as work specs."""
    u_values = u_values if u_values is not None else U_SWEEP
    platform = experiment_platform()
    return [
        PointSpec(
            label=f"U={u}",
            trace_factory=DspstoneTraceSpec(
                benchmark=benchmark,
                utilization_factor=float(u),
                n=instances,
                streams=streams,
                seed_stride=1009,
                seed_offset=u,
            ),
            platform=platform,
        )
        for u in u_values
    ]


def run_fig6(
    benchmark: Literal["fft", "matmul"],
    *,
    u_values: List[int] | None = None,
    seeds: int = DEFAULT_SEEDS,
    instances: int = 48,
    streams: int = DEFAULT_NUM_CORES,
    max_workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
) -> SeriesResult:
    """Run the Figure 6 comparison for one benchmark.

    Returns a :class:`SeriesResult` whose points carry both the memory
    saving (Fig. 6a) and the system saving (Fig. 6b) for each U.
    Results are bit-identical for every ``max_workers``/``cache`` setting.
    """
    specs = fig6_specs(
        benchmark, u_values=u_values, instances=instances, streams=streams
    )
    return run_series(
        f"fig6-{benchmark}",
        specs,
        seeds=seeds,
        max_workers=max_workers,
        cache=cache,
    )

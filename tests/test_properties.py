"""Library-wide property-based tests (hypothesis).

These hammer the central invariants with randomized instances and
platforms; smaller targeted property tests live next to each module.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    solve_agreeable,
    solve_block,
    solve_common_release,
    solve_common_release_with_overhead,
)
from repro.core.reference import common_release_energy_at_delta
from repro.energy import SleepPolicy, account
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import validate_schedule
from repro.sim import simulate
from repro.core.online import SdemOnlinePolicy


# -- strategies ---------------------------------------------------------------

platforms = st.builds(
    lambda alpha, alpha_m, lam: Platform(
        CorePowerModel(beta=1e-6, lam=lam, alpha=alpha, s_up=2000.0),
        MemoryModel(alpha_m=alpha_m),
    ),
    alpha=st.sampled_from([0.0, 0.1, 2.0, 50.0]),
    alpha_m=st.floats(0.1, 200.0),
    lam=st.sampled_from([2.0, 2.5, 3.0]),
)

common_release_sets = st.lists(
    st.tuples(st.floats(5.0, 150.0), st.floats(10.0, 5000.0)),
    min_size=1,
    max_size=7,
).map(lambda pairs: TaskSet(Task(0.0, d, w) for d, w in pairs))


@st.composite
def agreeable_sets(draw):
    n = draw(st.integers(1, 5))
    releases = sorted(draw(st.floats(0.0, 100.0)) for _ in range(n))
    tasks, last_d = [], 0.0
    for r in releases:
        d = max(r + draw(st.floats(8.0, 80.0)), last_d + 0.5)
        tasks.append(Task(r, d, draw(st.floats(10.0, 3000.0))))
        last_d = d
    return TaskSet(tasks)


@st.composite
def sporadic_traces(draw):
    n = draw(st.integers(1, 10))
    t = 0.0
    tasks = []
    for k in range(n):
        t += draw(st.floats(0.0, 80.0))
        span = draw(st.floats(10.0, 120.0))
        tasks.append(Task(t, t + span, draw(st.floats(100.0, 5000.0)), f"J{k}"))
    return tasks


_slow = settings(
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


# -- Section 4 invariants --------------------------------------------------------


@_slow
@given(tasks=common_release_sets, platform=platforms)
def test_common_release_prediction_equals_accounting(tasks, platform):
    solution = solve_common_release(tasks, platform)
    schedule = solution.schedule()
    validate_schedule(schedule, tasks, max_speed=platform.core.s_up)
    breakdown = account(
        schedule, platform, horizon=(0.0, tasks.latest_deadline)
    )
    assert breakdown.total == pytest.approx(solution.predicted_energy, rel=1e-6)


@_slow
@given(tasks=common_release_sets, platform=platforms)
def test_common_release_optimal_among_delta_choices(tasks, platform):
    """No sampled Delta beats the scheme's choice."""
    solution = solve_common_release(tasks, platform)
    horizon = (
        tasks.latest_deadline
        if platform.core.alpha == 0.0
        else max(t.workload / platform.core.s0(t) for t in tasks)
    )
    for frac in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
        probe = frac * horizon
        energy = common_release_energy_at_delta(tasks, platform, probe)
        assert solution.predicted_energy <= energy + 1e-9 * max(1.0, energy)


@_slow
@given(tasks=common_release_sets, platform=platforms, scale=st.floats(1.1, 3.0))
def test_energy_monotone_under_workload_scaling(tasks, platform, scale):
    """Scaling every workload up can never reduce the optimal energy."""
    heavier = TaskSet(
        Task(t.release, t.deadline, t.workload * scale, t.name) for t in tasks
    )
    if not heavier.is_feasible_at(platform.core.s_up):
        return  # scaled instance left the model's feasible domain
    base = solve_common_release(tasks, platform).predicted_energy
    more = solve_common_release(heavier, platform).predicted_energy
    assert more >= base - 1e-9


@_slow
@given(tasks=common_release_sets, platform=platforms, slack=st.floats(1.1, 4.0))
def test_energy_never_rises_with_extra_slack(tasks, platform, slack):
    """Stretching every deadline (more slack) can never cost energy."""
    relaxed = TaskSet(
        Task(t.release, t.release + t.span * slack, t.workload, t.name)
        for t in tasks
    )
    base = solve_common_release(tasks, platform).predicted_energy
    loose = solve_common_release(relaxed, platform).predicted_energy
    assert loose <= base + 1e-9 * max(1.0, base)


@_slow
@given(
    tasks=common_release_sets,
    platform=platforms,
    xi=st.floats(0.0, 50.0),
    xi_m=st.floats(0.0, 50.0),
)
def test_overhead_scheme_consistent_and_bounded(tasks, platform, xi, xi_m):
    """Overhead-aware optimum: matches the accountant, never cheaper than
    the free-transition optimum."""
    overhead_platform = Platform(
        platform.core.with_xi(xi),
        platform.memory.with_xi_m(xi_m),
        platform.num_cores,
    )
    solution = solve_common_release_with_overhead(tasks, overhead_platform)
    schedule = solution.schedule()
    validate_schedule(schedule, tasks, max_speed=platform.core.s_up)
    breakdown = account(
        schedule,
        overhead_platform,
        horizon=(0.0, tasks.latest_deadline),
        memory_policy=SleepPolicy.BREAK_EVEN,
        core_policy=SleepPolicy.BREAK_EVEN,
    )
    assert breakdown.total == pytest.approx(solution.predicted_energy, rel=1e-6)
    free = solve_common_release(tasks, platform).predicted_energy
    assert solution.predicted_energy >= free - 1e-9 * max(1.0, free)


# -- Section 5 invariants --------------------------------------------------------


@_slow
@given(tasks=agreeable_sets(), platform=platforms)
def test_block_solution_feasible_and_interior_optimal(tasks, platform):
    block = solve_block(tasks, platform)
    validate_schedule(
        block.schedule(), tasks, max_speed=platform.core.s_up,
        require_non_preemptive=True,
    )
    assert block.start <= block.end
    # Perturbing the interval never helps (local optimality probe).
    from repro.core.blocks import block_energy

    for ds, de in ((0.5, 0.0), (-0.5, 0.0), (0.0, 0.5), (0.0, -0.5)):
        probe = block_energy(
            tasks, platform, block.start + ds, block.end + de
        )
        assert block.energy <= probe + 1e-6 * max(1.0, probe)


@_slow
@given(tasks=agreeable_sets(), platform=platforms)
def test_agreeable_dp_dominates_all_prefix_splits(tasks, platform):
    """DP optimum <= any single split into two consecutive blocks."""
    solution = solve_agreeable(tasks, platform)
    n = len(tasks)
    for split in range(1, n):
        left = solve_block(tasks.subset(0, split), platform)
        right = solve_block(tasks.subset(split, n), platform)
        assert solution.predicted_energy <= left.energy + right.energy + 1e-9


# -- Online invariants --------------------------------------------------------------


@_slow
@given(trace=sporadic_traces(), platform=platforms)
def test_online_schedule_always_feasible(trace, platform):
    result = simulate(SdemOnlinePolicy(platform), trace, platform)
    # simulate() validates internally; double-check conservation here.
    done = result.schedule.executed_workloads()
    for task in trace:
        assert done[task.name] == pytest.approx(task.workload, rel=1e-6)


@_slow
@given(trace=sporadic_traces(), platform=platforms)
def test_online_never_executes_before_release(trace, platform):
    result = simulate(SdemOnlinePolicy(platform), trace, platform)
    releases = {t.name: t.release for t in trace}
    for iv in result.schedule.all_intervals():
        assert iv.start >= releases[iv.task] - 1e-9


# -- Method-agreement properties ---------------------------------------------------


@_slow
@given(tasks=common_release_sets, platform=platforms)
def test_binary_search_always_matches_scan(tasks, platform):
    """Lemma 1's search agrees with the exhaustive scan on any instance."""
    from repro.core import solve_common_release_alpha_zero

    zero = platform.negligible_core_static()
    scan = solve_common_release_alpha_zero(tasks, zero, method="scan")
    binary = solve_common_release_alpha_zero(tasks, zero, method="binary")
    assert binary.predicted_energy == pytest.approx(
        scan.predicted_energy, rel=1e-9
    )


@_slow
@given(tasks=agreeable_sets(), platform=platforms)
def test_block_pairs_and_descent_agree(tasks, platform):
    """The paper's (i,j)-pair enumeration equals the convex descent."""
    descent = solve_block(tasks, platform, method="descent")
    pairs = solve_block(tasks, platform, method="pairs")
    assert pairs.energy == pytest.approx(descent.energy, rel=1e-4)


@_slow
@given(tasks=common_release_sets, platform=platforms)
def test_singleton_islands_match_section4(tasks, platform):
    """Per-core voltage rails recover the Section 4 optimum."""
    from repro.core.islands import solve_islands_common_release

    island = solve_islands_common_release(
        tasks, platform, [[i] for i in range(len(tasks))]
    )
    section4 = solve_common_release(tasks, platform)
    assert island.predicted_energy == pytest.approx(
        section4.predicted_energy, rel=2e-3
    )


@_slow
@given(trace=sporadic_traces(), platform=platforms)
def test_quantized_policy_conserves_workload(trace, platform):
    from repro.baselines import QuantizedPolicy
    from repro.core.discrete import a57_levels

    levels = a57_levels(13)
    if platform.core.s_up > levels[-1]:
        # The policy may legitimately plan speeds above the grid's top
        # level; cap the platform so the grid can emulate every plan.
        platform = platform.with_core(
            CorePowerModel(
                platform.core.beta,
                platform.core.lam,
                platform.core.alpha,
                s_up=levels[-1],
            )
        )
    if any(t.filled_speed > levels[-1] for t in trace):
        return  # outside the grid's reach
    result = simulate(
        QuantizedPolicy(SdemOnlinePolicy(platform), levels), trace, platform
    )
    done = result.schedule.executed_workloads()
    for task in trace:
        assert done[task.name] == pytest.approx(task.workload, rel=1e-6)

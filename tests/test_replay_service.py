"""Service-sink replay tests plus the client timeout/backoff satellites.

The fake servers here speak just enough of the JSON-lines protocol to
exercise the paths a real :class:`SolveService` makes hard to hit on
demand: a server that never answers (timeout), and one that sheds with a
``retry_after_ms`` hint before accepting (capped backoff).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.replay import ArrivalSpec, ReplayReport
from repro.replay.sinks import replay_service
from repro.service import protocol
from repro.service.client import (
    RETRYABLE_CODES,
    RequestTimedOut,
    ServiceClient,
)
from repro.service.server import SolveService


def run(coro):
    return asyncio.run(coro)


async def start_fake_server(handler):
    """A line-oriented server calling ``handler(wire) -> response | None``."""

    async def on_connection(reader, writer):
        while True:
            line = await reader.readline()
            if not line:
                break
            wire = json.loads(line)
            response = handler(wire)
            if response is None:
                continue  # swallow the request: the hung-server case
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
        writer.close()

    server = await asyncio.start_server(on_connection, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, host, port


class TestClientTimeout:
    def test_hung_server_raises_and_cleans_pending(self):
        async def body():
            server, host, port = await start_fake_server(lambda wire: None)
            try:
                async with ServiceClient(host, port) as client:
                    with pytest.raises(RequestTimedOut):
                        await client.request(
                            {"kind": "ping"}, timeout_ms=100.0
                        )
                    assert client._pending == {}
            finally:
                server.close()
                await server.wait_closed()

        run(body())

    def test_no_timeout_preserves_old_behaviour(self):
        async def body():
            def answer(wire):
                return {"v": 1, "id": wire["id"], "ok": True, "result": {}}

            server, host, port = await start_fake_server(answer)
            try:
                async with ServiceClient(host, port) as client:
                    response = await client.request({"kind": "ping"})
                    assert response["ok"] is True
            finally:
                server.close()
                await server.wait_closed()

        run(body())


class TestClientRetry:
    def test_retry_after_shed_then_success(self):
        attempts = []

        def handler(wire):
            attempts.append(wire["id"])
            if len(attempts) == 1:
                return {
                    "v": 1,
                    "id": wire["id"],
                    "ok": False,
                    "error": {
                        "code": protocol.E_SHEDDING,
                        "message": "degraded",
                        "retry_after_ms": 10.0,
                    },
                }
            return {"v": 1, "id": wire["id"], "ok": True, "result": {}}

        async def body():
            server, host, port = await start_fake_server(handler)
            backoffs = []
            try:
                async with ServiceClient(host, port) as client:
                    response = await client.request_with_retry(
                        {"kind": "solve"},
                        timeout_ms=1000.0,
                        max_attempts=3,
                        jitter=0.0,  # pin: this asserts the exact hint
                        on_backpressure=lambda code, ms: backoffs.append(
                            (code, ms)
                        ),
                    )
            finally:
                server.close()
                await server.wait_closed()
            assert response["ok"] is True
            assert len(attempts) == 2
            assert backoffs == [(protocol.E_SHEDDING, 10.0)]

        run(body())

    def test_backoff_capped(self):
        def handler(wire):
            return {
                "v": 1,
                "id": wire["id"],
                "ok": False,
                "error": {
                    "code": protocol.E_QUEUE_FULL,
                    "message": "full",
                    "retry_after_ms": 60_000.0,  # a stalling hint
                },
            }

        async def body():
            server, host, port = await start_fake_server(handler)
            backoffs = []
            try:
                async with ServiceClient(host, port) as client:
                    response = await client.request_with_retry(
                        {"kind": "solve"},
                        timeout_ms=1000.0,
                        max_attempts=2,
                        backoff_cap_ms=20.0,
                        jitter=0.0,  # pin: this asserts the exact cap
                        on_backpressure=lambda code, ms: backoffs.append(ms),
                    )
            finally:
                server.close()
                await server.wait_closed()
            # Final answer is still the error; the hint was capped.
            assert response["ok"] is False
            assert backoffs == [20.0]

        run(body())

    def test_non_retryable_error_returned_immediately(self):
        calls = []

        def handler(wire):
            calls.append(wire["id"])
            return {
                "v": 1,
                "id": wire["id"],
                "ok": False,
                "error": {"code": protocol.E_BAD_REQUEST, "message": "no"},
            }

        async def body():
            server, host, port = await start_fake_server(handler)
            try:
                async with ServiceClient(host, port) as client:
                    response = await client.request_with_retry(
                        {"kind": "solve"}, timeout_ms=1000.0, max_attempts=3
                    )
            finally:
                server.close()
                await server.wait_closed()
            assert response["ok"] is False
            assert len(calls) == 1

        run(body())

    def test_retryable_codes_cover_both_backpressure_kinds(self):
        assert protocol.E_SHEDDING in RETRYABLE_CODES
        assert protocol.E_QUEUE_FULL in RETRYABLE_CODES

    def test_max_attempts_validated(self):
        async def body():
            client = ServiceClient()
            with pytest.raises(ValueError):
                await client.request_with_retry({"kind": "ping"}, max_attempts=0)

        run(body())


class TestServiceSinkReplay:
    def test_open_loop_replay_through_real_server(self):
        async def body():
            service = SolveService(capacity=64)
            server = await service.serve_tcp("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            jobs = ArrivalSpec(
                mode="poisson", n=60, rate_jobs_s=100.0, seed=5
            ).jobs()
            try:
                outcome = await replay_service(
                    jobs,
                    host=host,
                    port=port,
                    clients=3,
                    time_scale=50.0,
                    timeout_ms=10_000.0,
                )
            finally:
                server.close()
                await server.wait_closed()
                await service.drain()
            return outcome

        outcome = run(body())
        report = ReplayReport.from_outcome(outcome, {"mode": "poisson", "n": 60})
        assert report.counts["total"] == 60
        assert report.counts["done"] == 60
        assert report.counts["error"] == 0
        assert report.counts["timeout"] == 0
        assert report.sink == "service"
        # Measured latencies exist even though they carry no determinism
        # guarantee.
        assert report.virtual is not None
        assert report.virtual.count == 60

    def test_empty_stream_rejected(self):
        async def body():
            await replay_service([], host="127.0.0.1", port=1)

        with pytest.raises(ValueError):
            run(body())

    def test_bad_time_scale_rejected(self):
        jobs = ArrivalSpec(n=2, seed=1).jobs()

        async def body():
            await replay_service(jobs, host="127.0.0.1", port=1, time_scale=0.0)

        with pytest.raises(ValueError):
            run(body())

"""Tests for the numeric solver utilities."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    bisect_increasing,
    golden_section_minimize,
    minimize_convex_1d,
    minimize_convex_2d_box,
)
from repro.utils.solvers import weighted_power_sum


class TestBisectIncreasing:
    def test_finds_interior_root(self):
        root = bisect_increasing(lambda x: x - 3.0, 0.0, 10.0)
        assert root == pytest.approx(3.0, abs=1e-9)

    def test_clamps_to_lower_bound(self):
        assert bisect_increasing(lambda x: x + 1.0, 0.0, 10.0) == 0.0

    def test_clamps_to_upper_bound(self):
        assert bisect_increasing(lambda x: x - 20.0, 0.0, 10.0) == 10.0

    def test_rejects_empty_bracket(self):
        with pytest.raises(ValueError):
            bisect_increasing(lambda x: x, 5.0, 4.0)

    @given(root=st.floats(-50.0, 50.0), scale=st.floats(0.1, 10.0))
    def test_recovers_affine_roots(self, root, scale):
        found = bisect_increasing(lambda x: scale * (x - root), -100.0, 100.0)
        assert found == pytest.approx(root, abs=1e-7)

    def test_nonlinear_first_order_condition(self):
        # The Section 5.1.1 condition: sum (w/(d - x))^lam = c, increasing in x.
        w, d, lam, c = 10.0, 20.0, 3.0, 8.0
        x = bisect_increasing(lambda t: (w / (d - t)) ** lam - c, 0.0, d - 1e-6)
        assert (w / (d - x)) ** lam == pytest.approx(c, rel=1e-6)


class TestGoldenSection:
    def test_quadratic_minimum(self):
        x, v = golden_section_minimize(lambda t: (t - 2.0) ** 2 + 1.0, 0.0, 10.0)
        assert x == pytest.approx(2.0, abs=1e-6)
        assert v == pytest.approx(1.0, abs=1e-9)

    def test_boundary_minimum(self):
        x, v = golden_section_minimize(lambda t: t, 3.0, 10.0)
        assert x == pytest.approx(3.0)
        assert v == pytest.approx(3.0)

    def test_degenerate_interval(self):
        x, v = golden_section_minimize(lambda t: t * t, 4.0, 4.0)
        assert x == 4.0

    @given(center=st.floats(-5.0, 5.0))
    def test_convex_quartic(self, center):
        x, _ = minimize_convex_1d(lambda t: (t - center) ** 4, -10.0, 10.0)
        assert x == pytest.approx(center, abs=1e-3)


class TestConvex2D:
    def test_separable_quadratic(self):
        x, y, v = minimize_convex_2d_box(
            lambda a, b: (a - 1.0) ** 2 + (b - 2.0) ** 2,
            (0.0, 5.0),
            (0.0, 5.0),
        )
        assert x == pytest.approx(1.0, abs=1e-5)
        assert y == pytest.approx(2.0, abs=1e-5)
        assert v == pytest.approx(0.0, abs=1e-9)

    def test_coupled_objective(self):
        # min (x + y - 3)^2 + x^2 + y^2 -> x = y = 1 analytically.
        x, y, v = minimize_convex_2d_box(
            lambda a, b: (a + b - 3.0) ** 2 + a * a + b * b,
            (0.0, 5.0),
            (0.0, 5.0),
        )
        assert x == pytest.approx(1.0, abs=1e-4)
        assert y == pytest.approx(1.0, abs=1e-4)
        assert v == pytest.approx(3.0, abs=1e-6)

    def test_boundary_solution(self):
        x, y, _ = minimize_convex_2d_box(
            lambda a, b: (a - 10.0) ** 2 + (b + 4.0) ** 2,
            (0.0, 2.0),
            (0.0, 2.0),
        )
        assert x == pytest.approx(2.0, abs=1e-6)
        assert y == pytest.approx(0.0, abs=1e-6)

    def test_rejects_empty_box(self):
        with pytest.raises(ValueError):
            minimize_convex_2d_box(lambda a, b: a + b, (1.0, 0.0), (0.0, 1.0))


class TestWeightedPowerSum:
    def test_matches_manual(self):
        assert weighted_power_sum([1.0, 2.0, 3.0], 3.0) == pytest.approx(36.0)

    @given(
        st.lists(st.floats(0.1, 100.0), min_size=1, max_size=10),
        st.floats(1.1, 4.0),
    )
    def test_positive_and_monotone_in_exponent_for_large_weights(self, ws, lam):
        big = [w + 1.0 for w in ws]  # all > 1 so power sums grow with lam
        assert weighted_power_sum(big, lam) <= weighted_power_sum(big, lam + 0.1)


class TestWarmStartBracketing:
    def test_interior_guess_accepted(self):
        # Guess lands on the true minimum: the narrow bracket suffices.
        x, v = minimize_convex_1d(
            lambda t: (t - 4.0) ** 2, 0.0, 100.0, guess=4.0
        )
        assert x == pytest.approx(4.0, abs=1e-5)
        assert v == pytest.approx(0.0, abs=1e-9)

    def test_misleading_guess_falls_back_to_full_bracket(self):
        # Guess far from the minimum: the sub-bracket argmin pins to an
        # edge, which must trigger the full golden-section fallback.
        x, _ = minimize_convex_1d(
            lambda t: (t - 90.0) ** 2, 0.0, 100.0, guess=5.0
        )
        assert x == pytest.approx(90.0, abs=1e-4)

    def test_guess_at_domain_boundary(self):
        # Monotone objective, minimum at the lower domain edge; a guess on
        # that edge is legitimate even though the sub-bracket pins there.
        x, _ = minimize_convex_1d(lambda t: t, 0.0, 10.0, guess=0.0)
        assert x == pytest.approx(0.0, abs=1e-4)

    @given(center=st.floats(-5.0, 5.0), offset=st.floats(-0.2, 0.2))
    def test_near_guess_matches_unguided(self, center, offset):
        func = lambda t: (t - center) ** 4
        guided, _ = minimize_convex_1d(
            func, -10.0, 10.0, guess=center + offset
        )
        unguided, _ = minimize_convex_1d(func, -10.0, 10.0)
        assert func(guided) <= func(unguided) + 1e-9

    def test_counters_record_warm_start(self):
        from repro.utils.solvers import (
            reset_solver_counts,
            solver_call_counts,
            solver_call_total,
        )

        reset_solver_counts()
        minimize_convex_1d(lambda t: (t - 4.0) ** 2, 0.0, 100.0, guess=4.0)
        counts = solver_call_counts()
        assert counts.get("warm_start_hit") == 1
        assert counts.get("golden_section", 0) >= 1
        assert solver_call_total() == sum(counts.values())
        reset_solver_counts()
        assert solver_call_total() == 0

"""The asyncio solve server: admission -> micro-batching -> responses.

:class:`SolveService` is transport-independent: it owns the admission
queue, the batcher and the metrics registry, and exposes
:meth:`SolveService.handle_message` (one decoded request object in, one
response object out).  Transports are thin:

* :meth:`SolveService.serve_tcp` -- JSON-lines over TCP; each connection
  may pipeline any number of requests, responses are correlated by ``id``
  (they may come back out of order).  A connection whose first bytes look
  like ``GET /metrics`` instead receives a minimal HTTP response with the
  Prometheus-style text page, so the same port serves scrapers.
* :meth:`SolveService.serve_stdio` -- the same framing over
  stdin/stdout for subprocess embedding.

Lifecycle: requests admitted by the queue are *guaranteed* a terminal
response.  On SIGTERM (see :func:`run_server`) the service stops
admitting (new solves get ``DRAINING``), finishes every queued and
in-flight request, flushes the responses, closes connections and returns
-- the clean-drain contract the CI smoke job asserts.

The dispatch loop implements micro-batching: it sleeps one
``batch_window_ms`` after waking so concurrent arrivals coalesce, then
pops the queue and hands compatibility-grouped batches to the
:class:`~repro.service.batcher.Batcher`.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import time
from typing import Dict, List, Optional, Set, Union

from repro.experiments.cache import ResultCache
from repro.service import protocol
from repro.service.batcher import (
    Batcher,
    finalize_outcomes,
    form_batches,
    resolve_numeric,
)
from repro.service.metrics import MetricsRegistry, labelled_name, service_metrics
from repro.service.queue import AdmissionQueue, QueueEntry, ShardedAdmissionQueue
from repro.service.shard import ShardPool

__all__ = ["SolveService", "run_server"]


class SolveService:
    """Queue + execution tier + metrics behind one ``handle_message`` door.

    Two execution tiers share every other layer:

    * ``shards=0`` (default) -- the inline :class:`Batcher` on a thread
      pool in this process, the original single-core path;
    * ``shards=N`` -- the sharded worker-pool tier: a consistent-hash
      ring routes each request's platform fingerprint to one of N
      long-lived worker processes (:class:`~repro.service.shard.ShardPool`),
      each fed by its own admission lane
      (:class:`~repro.service.queue.ShardedAdmissionQueue`) and its own
      dispatch loop, all sharing the on-disk result cache.  Responses are
      byte-identical across tiers and shard counts.
    """

    def __init__(
        self,
        *,
        capacity: int = 256,
        shed_threshold: float = 0.8,
        batch_window_ms: float = 10.0,
        max_batch: int = 32,
        workers: int = 1,
        shards: int = 0,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        self.metrics = service_metrics(metrics)
        self.shards = shards
        self.queue: Union[AdmissionQueue, ShardedAdmissionQueue]
        if shards > 0:
            self.shard_pool: Optional[ShardPool] = ShardPool(shards, cache=cache)
            self.queue = ShardedAdmissionQueue(
                shards,
                self.shard_pool.route,
                capacity,
                shed_threshold=shed_threshold,
            )
            self.queue.on_enqueue = self._on_shard_enqueue
            self.batcher: Optional[Batcher] = None
        else:
            self.shard_pool = None
            self.queue = AdmissionQueue(capacity, shed_threshold=shed_threshold)
            self.queue.on_enqueue = self._on_enqueue
            self.batcher = Batcher(
                cache, self.metrics, workers=workers, max_batch=max_batch
            )
        self.batch_window_ms = batch_window_ms
        self.max_batch = max_batch
        #: One dispatch pops at most this many entries; several batches may
        #: form from one pop.
        self.pop_limit = max(max_batch, workers * max_batch)
        self._draining = False
        self._wake: Optional[asyncio.Event] = None
        self._dispatch_task: Optional[asyncio.Task] = None
        self._shard_wakes: List[asyncio.Event] = []
        self._shard_tasks: List[asyncio.Task] = []
        self._inflight: Set[asyncio.Task] = set()
        self._connections: Set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start the dispatch loop(s) (idempotent)."""
        if self._dispatch_task is not None or self._shard_tasks:
            return
        if self.shard_pool is not None:
            self._shard_wakes = [asyncio.Event() for _ in range(self.shards)]
            self._shard_tasks = [
                asyncio.create_task(self._shard_dispatch_loop(index))
                for index in range(self.shards)
            ]
            return
        self._wake = asyncio.Event()
        self._dispatch_task = asyncio.create_task(self._dispatch_loop())

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Stop admitting, finish queued + in-flight work, stop the tier.

        On the sharded tier each worker's in-flight batch completes (the
        per-shard loops exit only at depth zero, and ``_inflight`` is
        awaited), its memo stats are flushed into per-shard gauges, and
        only then is its process shut down.
        """
        self._draining = True
        if self._wake is not None:
            self._wake.set()
        for wake in self._shard_wakes:
            wake.set()
        if self._dispatch_task is not None:
            await self._dispatch_task
            self._dispatch_task = None
        if self._shard_tasks:
            await asyncio.gather(*self._shard_tasks)
            self._shard_tasks = []
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        if self.batcher is not None:
            self.batcher.shutdown()
        if self.shard_pool is not None:
            self._flush_shard_stats()
            self.shard_pool.shutdown()

    def _flush_shard_stats(self) -> None:
        """Publish every worker's memo telemetry as per-shard gauges."""
        assert self.shard_pool is not None
        for index in range(len(self.shard_pool)):
            try:
                stats = self.shard_pool.memo_stats(index)
            except Exception:
                # A worker that died mid-drain has no stats to flush; the
                # loss stays observable via the error counter.
                self.metrics.counter("repro_errors_total").inc()
                continue
            for key, value in sorted(stats.items()):
                self.metrics.gauge(
                    labelled_name(f"repro_shard_{key}", shard=index)
                ).set(value)

    def _on_enqueue(self) -> None:
        if self._wake is not None:
            self._wake.set()

    def _on_shard_enqueue(self, shard: int) -> None:
        if shard < len(self._shard_wakes):
            self._shard_wakes[shard].set()

    def _update_queue_gauges(self) -> None:
        self.metrics.gauge("repro_queue_depth").set(self.queue.depth)
        self.metrics.gauge("repro_degraded").set(1.0 if self.queue.degraded else 0.0)
        if isinstance(self.queue, ShardedAdmissionQueue):
            for index, depth in enumerate(self.queue.shard_depths()):
                self.metrics.gauge(
                    labelled_name("repro_shard_queue_depth", shard=index)
                ).set(depth)

    # -- request handling ----------------------------------------------------

    async def handle_message(self, wire: Dict[str, object]) -> Optional[Dict[str, object]]:
        """One decoded request object -> one response object."""
        request_id = wire.get("id") if isinstance(wire, dict) else None
        kind = wire.get("kind", "solve") if isinstance(wire, dict) else None
        if kind == "ping":
            return protocol.ping_response(request_id)
        if kind == "metrics":
            return protocol.ok_response(
                request_id,
                {
                    "text": self.metrics.render_text(),
                    "snapshot": self.metrics.snapshot(),
                },
            )
        if kind == "cancel":
            target = wire.get("target")
            hit = self.queue.cancel(str(target)) if target is not None else False
            if hit and self._wake is not None:
                self._wake.set()
            return protocol.ok_response(request_id, {"cancelled": hit})
        if kind == "drain":
            asyncio.create_task(self.drain())
            return protocol.ok_response(request_id, {"draining": True})
        if kind != "solve":
            return protocol.error_response(
                request_id,
                protocol.E_BAD_REQUEST,
                f"unknown request kind {kind!r}; valid: solve, ping, metrics, "
                "cancel, drain",
            )
        return await self._handle_solve(wire, request_id)

    async def _handle_solve(
        self, wire: Dict[str, object], request_id
    ) -> Dict[str, object]:
        self.metrics.counter("repro_requests_total").inc()
        try:
            request = protocol.request_from_wire(wire)
        except protocol.ProtocolError as exc:
            self.metrics.counter("repro_errors_total").inc()
            return protocol.error_response(request_id, exc.code, exc.message)
        if self._draining:
            self.metrics.counter("repro_errors_total").inc()
            return protocol.error_response(
                request.id,
                protocol.E_DRAINING,
                "server is draining and no longer admits solve requests",
            )
        admit = self.queue.offer(request)
        if not admit.admitted:
            self.metrics.counter("repro_errors_total").inc()
            if admit.code == protocol.E_QUEUE_FULL:
                self.metrics.counter("repro_rejected_queue_full_total").inc()
            else:
                self.metrics.counter("repro_rejected_shed_total").inc()
            if admit.shard is not None:
                self.metrics.counter(
                    labelled_name("repro_shard_rejected_total", shard=admit.shard)
                ).inc()
            self._update_queue_gauges()
            return protocol.error_response(
                request.id,
                admit.code,
                admit.message,
                admit.retry_after_ms,
                shard=admit.shard,
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        admit.entry.context = future
        self._update_queue_gauges()
        return await future

    # -- dispatch loop -------------------------------------------------------

    def _fail_stale(
        self, expired: List[QueueEntry], cancelled: List[QueueEntry]
    ) -> None:
        """Terminal error responses for entries that never reached dispatch."""
        for entry in expired:
            self.metrics.counter("repro_deadline_expired_total").inc()
            self.metrics.counter("repro_errors_total").inc()
            self._resolve(
                entry,
                protocol.error_response(
                    entry.request.id,
                    protocol.E_DEADLINE_EXCEEDED,
                    f"request exceeded its deadline of "
                    f"{entry.request.timeout_ms:g} ms before dispatch",
                ),
            )
        for entry in cancelled:
            self.metrics.counter("repro_cancelled_total").inc()
            self.metrics.counter("repro_errors_total").inc()
            self._resolve(
                entry,
                protocol.error_response(
                    entry.request.id,
                    protocol.E_CANCELLED,
                    "request was cancelled before dispatch",
                ),
            )

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        assert self.batcher is not None
        while True:
            if self.queue.depth == 0:
                if self._draining:
                    break
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.1)
                except asyncio.TimeoutError:
                    continue
                self._wake.clear()
                continue
            # Coalescing window: let concurrent arrivals pile up so
            # compatible requests share a batch.
            if self.batch_window_ms > 0.0:
                await asyncio.sleep(self.batch_window_ms / 1000.0)
            ready, expired, cancelled = self.queue.pop_batch(self.pop_limit)
            self._update_queue_gauges()
            self._fail_stale(expired, cancelled)
            for batch in form_batches(ready, self.max_batch):
                batch_future = asyncio.wrap_future(self.batcher.submit_batch(batch))
                task = asyncio.create_task(self._finish_batch(batch_future))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    async def _finish_batch(self, batch_future: "asyncio.Future") -> None:
        for entry, response in await batch_future:
            self._resolve(entry, response)

    # -- sharded dispatch ----------------------------------------------------

    async def _shard_dispatch_loop(self, index: int) -> None:
        """One shard's dispatch loop: pop its lane, batch, feed its worker."""
        assert isinstance(self.queue, ShardedAdmissionQueue)
        wake = self._shard_wakes[index]
        while True:
            if self.queue.shard_depth(index) == 0:
                if self._draining:
                    break
                try:
                    await asyncio.wait_for(wake.wait(), timeout=0.1)
                except asyncio.TimeoutError:
                    continue
                wake.clear()
                continue
            if self.batch_window_ms > 0.0:
                await asyncio.sleep(self.batch_window_ms / 1000.0)
            ready, expired, cancelled = self.queue.pop_shard_batch(
                index, self.pop_limit
            )
            self._update_queue_gauges()
            self._fail_stale(expired, cancelled)
            for batch in form_batches(ready, self.max_batch):
                task = asyncio.create_task(self._run_shard_batch(index, batch))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    async def _run_shard_batch(
        self, index: int, entries: List[QueueEntry]
    ) -> None:
        """Ship one formed batch to shard ``index``'s worker process.

        The parent side mirrors :meth:`Batcher.run_batch` metric for
        metric, then finalizes the worker's outcome dicts through the
        same :func:`finalize_outcomes` path -- only the provenance's
        ``shard`` stamp distinguishes the tiers on the wire.
        """
        assert self.shard_pool is not None
        if not entries:
            return
        backend = resolve_numeric(entries[0].request)
        metrics = self.metrics
        metrics.counter("repro_batches_total").inc()
        metrics.counter(
            labelled_name("repro_shard_batches_total", shard=index)
        ).inc()
        metrics.histogram("repro_batch_size").observe(len(entries))
        if len(entries) > 1:
            metrics.counter("repro_batched_requests_total").inc(len(entries))
        inflight = metrics.gauge("repro_inflight")
        inflight.inc(len(entries))
        try:
            dispatched = time.monotonic()
            waits_ms = [
                max(0.0, (dispatched - entry.enqueued_at) * 1000.0)
                for entry in entries
            ]
            future = self.shard_pool.submit(
                index, [entry.request for entry in entries], backend
            )
            outcomes = await asyncio.wrap_future(future)
            responses = finalize_outcomes(
                entries,
                outcomes,
                waits_ms,
                backend,
                metrics,
                provenance_extra={"shard": index},
            )
        except Exception as exc:
            # A dead worker process fails the whole batch; every admitted
            # request still gets its terminal response.
            metrics.counter("repro_errors_total").inc(len(entries))
            responses = [
                (
                    entry,
                    protocol.error_response(
                        entry.request.id,
                        protocol.E_INTERNAL,
                        f"shard {index} worker failure: "
                        f"{type(exc).__name__}: {exc}",
                        shard=index,
                    ),
                )
                for entry in entries
            ]
        finally:
            inflight.dec(len(entries))
        metrics.counter(
            labelled_name("repro_shard_requests_total", shard=index)
        ).inc(len(entries))
        for entry, response in responses:
            self._resolve(entry, response)

    @staticmethod
    def _resolve(entry: QueueEntry, response: Dict[str, object]) -> None:
        future = entry.context
        if isinstance(future, asyncio.Future) and not future.done():
            future.set_result(response)

    # -- transports ----------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Start listening; returns the asyncio server (bound port via
        ``server.sockets[0].getsockname()``)."""
        await self.start()
        return await asyncio.start_server(self._handle_connection, host, port)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                if stripped.startswith(b"GET "):
                    await self._serve_http_metrics(writer)
                    break
                task = asyncio.create_task(
                    self._respond_line(stripped, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _respond_line(
        self,
        raw: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            wire = protocol.decode_line(raw)
        except protocol.ProtocolError as exc:
            self.metrics.counter("repro_errors_total").inc()
            response = protocol.error_response(None, exc.code, exc.message)
        else:
            response = await self.handle_message(wire)
        if response is None:
            return
        async with write_lock:
            if writer.is_closing():
                return
            try:
                writer.write(protocol.encode_line(response))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_http_metrics(self, writer: asyncio.StreamWriter) -> None:
        body = self.metrics.render_text().encode("utf-8")
        head = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
            b"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def serve_stdio(self, instream=None, outstream=None) -> None:
        """JSON-lines over stdin/stdout until EOF, then drain."""
        instream = instream if instream is not None else sys.stdin
        outstream = outstream if outstream is not None else sys.stdout
        await self.start()
        loop = asyncio.get_running_loop()
        out_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()

        async def respond(raw: str) -> None:
            try:
                wire = protocol.decode_line(raw.encode("utf-8"))
            except protocol.ProtocolError as exc:
                response = protocol.error_response(None, exc.code, exc.message)
            else:
                response = await self.handle_message(wire)
            if response is None:
                return
            async with out_lock:
                outstream.write(protocol.encode_line(response).decode("utf-8"))
                outstream.flush()

        while True:
            line = await loop.run_in_executor(None, instream.readline)
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.create_task(respond(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await self.drain()

    async def close_connections(self) -> None:
        for writer in list(self._connections):
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._connections.clear()


async def run_server(
    service: SolveService,
    host: str = "127.0.0.1",
    port: int = 7070,
    *,
    install_signal_handlers: bool = True,
    announce=print,
) -> None:
    """Serve TCP until SIGTERM/SIGINT, then drain gracefully and return."""
    server = await service.serve_tcp(host, port)
    bound = server.sockets[0].getsockname()
    announce(f"repro service listening on {bound[0]}:{bound[1]}")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        announce("repro service draining...")
        server.close()
        await server.wait_closed()
        await service.drain()
        await service.close_connections()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
        announce("repro service drained cleanly")

"""The compiled (``REPRO_NUMERIC=jit``) numeric backend.

Three layers of coverage, mirroring the ISSUE-6 acceptance gates:

* cross-backend agreement to 1e-9 relative on randomized task sets for
  every solver the compiled tier accelerates (plus bit-identity between
  the kernels' fused Section-7 solve and the numpy fast path it shadows);
* graceful degradation -- requesting ``jit`` on a host where neither
  numba nor cffi imports must fall back to numpy/scalar with exactly one
  structured :class:`~repro.core.kernels.JitUnavailableWarning`, never a
  mid-run crash (faked by intercepting the provider imports);
* backend-keyed caching -- ``ResultCache`` keys must differ across all
  three backends so a jit-computed entry is never served to a numpy (or
  scalar) request.

Agreement tests skip wholesale when no compiled provider loads (e.g. a
CI leg without cffi *and* numba); the degradation and cache-key tests run
everywhere.
"""

from __future__ import annotations

import builtins
import random
import warnings

import pytest

from repro.core import kernels, vectorized
from repro.core.blocks import block_energy, block_energy_cache_clear, solve_block
from repro.core.transition import solve_common_release_with_overhead
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet

REL_TOL = 1e-9

needs_jit = pytest.mark.skipif(
    not kernels.available(), reason="no compiled kernel provider loads"
)


@pytest.fixture(autouse=True)
def _reset_backend():
    """Leave the process on auto selection no matter how a test exits."""
    yield
    vectorized.set_backend(None)


def make_platform(
    alpha: float,
    alpha_m: float = 10.0,
    s_up: float = 1000.0,
    xi: float = 0.0,
    xi_m: float = 0.0,
) -> Platform:
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=s_up, xi=xi),
        MemoryModel(alpha_m=alpha_m, xi_m=xi_m),
    )


def random_common_release_tasks(rng: random.Random, n: int) -> TaskSet:
    release = rng.uniform(0.0, 20.0)
    return TaskSet(
        Task(release, release + rng.uniform(5.0, 80.0), rng.uniform(50.0, 3000.0))
        for _ in range(n)
    )


def random_block_tasks(rng: random.Random, n: int) -> TaskSet:
    """Agreeable staggered-release sets (solve_block's precondition)."""
    releases = sorted(rng.uniform(0.0, 40.0) for _ in range(n))
    tasks, last_d = [], 0.0
    for r in releases:
        d = max(r + rng.uniform(5.0, 70.0), last_d + rng.uniform(0.1, 5.0))
        tasks.append(Task(r, d, rng.uniform(50.0, 3000.0)))
        last_d = d
    return TaskSet(tasks)


def per_backend(solve, backends=("scalar", "numpy", "jit")):
    """Evaluate ``solve()`` under each backend with cold memo caches."""
    results = {}
    for backend in backends:
        vectorized.set_backend(backend)
        block_energy_cache_clear()
        vectorized.block_arrays_cache_clear()
        results[backend] = solve()
    return results


def assert_close(reference: float, candidate: float) -> None:
    scale = max(1.0, abs(reference))
    assert candidate == pytest.approx(reference, rel=REL_TOL, abs=REL_TOL * scale)


@needs_jit
class TestJitAgreement:
    @pytest.mark.parametrize("alpha", [0.0, 0.05])
    @pytest.mark.parametrize("seed", range(4))
    def test_block_energy_random(self, alpha, seed):
        rng = random.Random(2000 + seed)
        tasks = random_block_tasks(rng, rng.randint(1, 7))
        platform = make_platform(alpha)
        start = tasks.earliest_release - rng.uniform(0.0, 5.0)
        end = tasks.latest_deadline + rng.uniform(0.0, 5.0)
        out = per_backend(lambda: block_energy(tasks, platform, start, end))
        assert_close(out["numpy"], out["jit"])
        # The C kernel transcribes the scalar accumulation loop statement
        # for statement: identical floats, not merely 1e-9-close.  (numpy
        # may differ in the last ulp -- pairwise np.sum reassociates.)
        assert out["jit"] == out["scalar"]

    @pytest.mark.parametrize("alpha", [0.0, 0.05])
    @pytest.mark.parametrize("seed", range(4))
    def test_solve_block_random(self, alpha, seed):
        rng = random.Random(3000 + seed)
        tasks = random_block_tasks(rng, rng.randint(1, 6))
        platform = make_platform(alpha)
        out = per_backend(lambda: solve_block(tasks, platform))
        for backend in ("numpy", "jit"):
            assert_close(out["scalar"].energy, out[backend].energy)

    @pytest.mark.parametrize("alpha,xi,xi_m", [(0.05, 5.0, 2.0), (0.0, 5.0, 0.0)])
    @pytest.mark.parametrize("seed", range(5))
    def test_overhead_solve_random(self, alpha, xi, xi_m, seed):
        rng = random.Random(4000 + seed)
        tasks = random_common_release_tasks(rng, rng.randint(1, 8))
        platform = make_platform(alpha, xi=xi, xi_m=xi_m)
        rel_end = tasks.latest_deadline + rng.uniform(5.0, 60.0)
        out = per_backend(
            lambda: solve_common_release_with_overhead(
                tasks, platform, horizon_end=rel_end
            )
        )
        assert_close(out["scalar"].predicted_energy, out["jit"].predicted_energy)
        assert_close(out["scalar"].delta, out["jit"].delta)
        # The fused small-n solve is a statement-for-statement transcription
        # of the numpy fast path: identical floats, not merely 1e-9-close.
        assert out["jit"].predicted_energy == out["numpy"].predicted_energy
        assert out["jit"].delta == out["numpy"].delta
        assert out["jit"].case_index == out["numpy"].case_index
        assert out["jit"].finish_times == out["numpy"].finish_times
        assert out["jit"].speeds == out["numpy"].speeds

    @pytest.mark.parametrize("seed", range(3))
    def test_kernel_fused_solve_bit_identical_to_python_fused(self, seed):
        pytest.importorskip("numpy")
        rng = random.Random(5000 + seed)
        tasks = random_common_release_tasks(rng, rng.randint(1, 6))
        platform = make_platform(0.05, xi=5.0, xi_m=2.0)
        rel_end = tasks.latest_deadline + 30.0
        compiled = kernels.overhead_solve_small(tasks, platform, rel_end)
        python = vectorized.overhead_solve_small(tasks, platform, rel_end)
        assert compiled[0] == python[0]
        assert tuple(compiled[1]) == tuple(python[1])
        assert tuple(compiled[2]) == tuple(python[2])
        assert (compiled[3] is None) == (python[3] is None)
        if compiled[3] is not None:
            assert tuple(compiled[3]) == tuple(python[3])

    def test_warm_up_reports_provider(self):
        assert kernels.warm_up() == kernels.provider_name()
        assert kernels.provider_name() in ("numba", "cffi")

    def test_available_backends_lists_jit(self):
        assert "jit" in vectorized.available_backends()


class TestJitFallback:
    """Degradation when no compiled provider imports (faked ImportError)."""

    @pytest.fixture()
    def broken_jit(self, monkeypatch):
        """Make both provider imports raise ImportError, reset warn latch."""
        kernels.clear()
        real_import = builtins.__import__

        def failing_import(name, *args, **kwargs):
            if name.startswith("repro.core.kernels._"):
                raise ImportError(f"No module named {name!r} (faked)")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", failing_import)
        monkeypatch.setattr(vectorized, "_jit_fallback_warned", False)
        yield
        monkeypatch.setattr(builtins, "__import__", real_import)
        kernels.clear()  # forget the failed resolution for later tests

    def test_fallback_warns_once_and_never_crashes(self, broken_jit):
        assert not kernels.available()
        assert "faked" in (kernels.load_error() or "")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            vectorized.set_backend("jit")
            resolved = vectorized.get_backend()
            # Re-requesting must not warn again (one warning per process).
            vectorized.set_backend("jit")
        expected = "numpy" if vectorized.HAS_NUMPY else "scalar"
        assert resolved == expected
        jit_warnings = [
            w for w in caught
            if issubclass(w.category, kernels.JitUnavailableWarning)
        ]
        assert len(jit_warnings) == 1
        assert "falling back" in str(jit_warnings[0].message)

    def test_fallback_backend_still_solves(self, broken_jit):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            vectorized.set_backend("jit")
        tasks = TaskSet([Task(0.0, 50.0, 3000.0), Task(0.0, 80.0, 4000.0)])
        solution = solve_common_release_with_overhead(
            tasks, make_platform(0.05, xi=5.0), horizon_end=120.0
        )
        assert solution.predicted_energy > 0.0

    def test_jit_absent_from_available_backends(self, broken_jit):
        assert "jit" not in vectorized.available_backends()


class TestBackendKeyedCache:
    """ResultCache keys must partition by backend (satellite 3)."""

    def _key(self, backend):
        from repro.experiments.cache import unit_key
        from repro.models import paper_platform

        vectorized.set_backend(backend)
        return unit_key(paper_platform(), {"kind": "synthetic", "n": 4}, 0, "sdem-on")

    def _backends(self):
        names = ["scalar"]
        if vectorized.HAS_NUMPY:
            names.append("numpy")
        if kernels.available():
            names.append("jit")
        return names

    def test_unit_keys_distinct_across_backends(self):
        keys = {b: self._key(b) for b in self._backends()}
        assert len(set(keys.values())) == len(keys)

    def test_jit_entry_never_served_to_numpy_request(self, tmp_path):
        pytest.importorskip("numpy")
        if not kernels.available():
            pytest.skip("no compiled kernel provider loads")
        from repro.experiments.cache import ResultCache
        from repro.models import paper_platform

        cache = ResultCache(root=str(tmp_path))
        platform = paper_platform()
        config = {"kind": "synthetic", "n": 4}

        vectorized.set_backend("jit")
        jit_key = cache.unit_key(platform, config, 0, "sdem-on")
        cache.put(jit_key, {"energy": 123.0, "backend": "jit"})
        assert cache.get(jit_key) == {"energy": 123.0, "backend": "jit"}

        vectorized.set_backend("numpy")
        numpy_key = cache.unit_key(platform, config, 0, "sdem-on")
        assert numpy_key != jit_key
        assert cache.get(numpy_key) is None

    def test_service_request_key_partitions_by_backend(self):
        from repro.experiments.cache import service_request_key
        from repro.models import paper_platform

        tasks_config = [[0.0, 40.0, 8000.0, "a"]]
        keys = {
            backend: service_request_key(
                paper_platform(), tasks_config, "common-release", backend
            )
            for backend in ("scalar", "numpy", "jit")
        }
        assert len(set(keys.values())) == 3


class TestServiceProtocolJit:
    WIRE = {
        "v": 1,
        "id": "r1",
        "kind": "solve",
        "tasks": [
            {"name": "a", "release": 0.0, "deadline": 40.0, "workload": 8000.0},
        ],
    }

    def test_protocol_accepts_jit_numeric(self):
        from repro.service.protocol import request_from_wire

        request = request_from_wire({**self.WIRE, "numeric": "jit"})
        assert request.numeric == "jit"

    def test_protocol_rejects_unknown_numeric(self):
        from repro.service.protocol import ProtocolError, request_from_wire

        with pytest.raises(ProtocolError, match="jit"):
            request_from_wire({**self.WIRE, "numeric": "cuda"})

"""DSPstone-like FFT / matrix-multiply benchmark tasks (paper Section 8.1.1).

The paper instantiates tasks from two DSPstone kernels measured on Analog
Devices' xsim2101 simulator:

* **FFT**: a randomly generated 1024-point discrete signal;
* **matrix multiply**: randomly constructed ``[X x Y] . [Y x Z]`` matrices.

The feasible region of an instance equals its processing time at
**16.5 MHz** (the simulated DSP's clock), and instances are released
sporadically with period ``|d - r| * U`` for ``U`` in 2..9 -- larger ``U``
means lower utilization.

We cannot run xsim2101 offline (DESIGN.md substitution S2), so instance
cycle counts are modelled from the kernels' arithmetic-operation counts
with a DSP cost-per-operation factor:

* FFT-1024: ``(N/2) log2 N = 5120`` butterflies x ~20 cycles each, about
  102 kcycles per kernel call (~6.2 ms at 16.5 MHz);
* matmul: ``X * Z`` dot products of length ``Y`` at ~4 cycles per MAC plus
  loop overhead, with dimensions drawn uniformly from 10..24 (~1-6 ms per
  call).

A released *task* is a batch of kernel calls (10 FFT frames / 16 matrix
products by default) -- DSP workloads process frame batches, and the
resulting 10-120 ms task lengths match the range the paper uses for its
synthetic tasks, which corroborates the calibration.  Only *relative*
workloads matter to the energy-saving ratios of Figures 6a/6b; the
absolute calibration cancels.
"""

from __future__ import annotations

import math
import random
from typing import List, Literal, Tuple

from repro.models.task import Task

__all__ = [
    "REFERENCE_MHZ",
    "FFT_1024_KILOCYCLES",
    "FFT_BATCH",
    "MATMUL_BATCH",
    "fft_instance_kilocycles",
    "matmul_instance_kilocycles",
    "dspstone_trace",
]

#: The DSP clock defining feasible-region lengths (Section 8.1.1).
REFERENCE_MHZ: float = 16.5

#: Modelled FFT-1024 cycle count: (N/2) * log2(N) butterflies * 20 cycles
#: = 102.4 kilocycles.
FFT_1024_KILOCYCLES: float = (1024 / 2) * 10 * 20 / 1000.0

_FFT_JITTER = 0.05
_MATMUL_DIM_RANGE = (10, 24)
_CYCLES_PER_MAC = 4.0
_LOOP_OVERHEAD_PER_DOT = 12.0

#: Kernel calls batched into one released task (see module docstring).
FFT_BATCH = 10
MATMUL_BATCH = 16


def fft_instance_kilocycles(rng: random.Random, *, batch: int = FFT_BATCH) -> float:
    """Cycle count (kc) of one released FFT task (a batch of kernel calls).

    The kernel is data-oblivious; a small jitter models cache and input
    conditioning variation between randomly generated signals.
    """
    return (
        batch
        * FFT_1024_KILOCYCLES
        * rng.uniform(1.0 - _FFT_JITTER, 1.0 + _FFT_JITTER)
    )


def matmul_instance_kilocycles(
    rng: random.Random,
    dim_range: Tuple[int, int] = _MATMUL_DIM_RANGE,
    *,
    batch: int = MATMUL_BATCH,
) -> float:
    """Cycle count (kc) of one released matmul task (a batch of products)."""
    total = 0.0
    for _ in range(batch):
        x = rng.randint(*dim_range)
        y = rng.randint(*dim_range)
        z = rng.randint(*dim_range)
        total += x * z * (
            2.0 * y * _CYCLES_PER_MAC / 2.0 + _LOOP_OVERHEAD_PER_DOT
        )
    return total / 1000.0


def dspstone_trace(
    benchmark: Literal["fft", "matmul"],
    *,
    utilization_factor: float,
    n: int,
    seed: int,
    streams: int = 1,
) -> List[Task]:
    """Generate a sporadic DSPstone instance trace (Section 8.1.1).

    Parameters
    ----------
    benchmark:
        ``'fft'`` or ``'matmul'``.
    utilization_factor:
        The paper's ``U`` in 2..9: each stream's instances are separated by
        ``|d - r| * U`` (sporadic, so we draw the actual gap uniformly from
        ``[1.0, 1.15] * period`` -- at least the period, slightly jittered).
        Larger ``U`` = lower utilization.
    n:
        Total number of instances across all streams.
    streams:
        Number of independent instance streams released concurrently
        (phase-shifted); >1 exercises the multi-core overlap that the
        shared memory cares about.
    """
    if benchmark not in ("fft", "matmul"):
        raise ValueError(f"unknown benchmark {benchmark!r}")
    if utilization_factor <= 0.0:
        raise ValueError("utilization_factor must be positive")
    if n < 1 or streams < 1:
        raise ValueError("n and streams must be >= 1")
    rng = random.Random(seed)
    # The FFT workload model is a single uniform draw per instance, so the
    # whole trace vectorizes: pre-draw the unit variates in this loop's
    # exact call order and evaluate the same arithmetic columnwise
    # (bit-identical -- see fft_trace_columns).  The matmul model consumes
    # a data-dependent number of randint() draws and stays scalar.
    if benchmark == "fft" and n >= _BATCH_MIN:
        from repro.core import vectorized

        if vectorized.use_numpy():
            return _fft_trace_batched(rng, utilization_factor, n, streams)
    draw = (
        fft_instance_kilocycles if benchmark == "fft" else matmul_instance_kilocycles
    )
    tasks: List[Task] = []
    clock = [rng.uniform(0.0, 10.0) for _ in range(streams)]  # phase shifts
    for index in range(n):
        stream = index % streams
        workload = draw(rng)
        span = workload / REFERENCE_MHZ
        release = clock[stream]
        tasks.append(
            Task(release, release + span, workload, f"{benchmark}{index}")
        )
        period = span * utilization_factor
        clock[stream] += period * rng.uniform(1.0, 1.15)
    tasks.sort(key=lambda t: (t.release, t.name))
    return tasks


#: Below this many instances the columnwise build cannot beat the loop.
_BATCH_MIN = 16


def _fft_trace_batched(
    rng: random.Random, utilization_factor: float, n: int, streams: int
) -> List[Task]:
    """Columnwise FFT trace build, bit-identical to the scalar loop.

    One ``rng.random()`` call per scalar ``rng.uniform()`` call, in the
    same order (phases first, then workload + period jitter per instance),
    keeps the RNG stream aligned; the arithmetic happens in
    :func:`repro.core.vectorized.fft_trace_columns` with the scalar
    expressions' exact association.
    """
    from repro.core import vectorized

    draws = [rng.random() for _ in range(streams + 2 * n)]
    releases, spans, workloads = vectorized.fft_trace_columns(
        draws[:streams],
        draws[streams::2],
        draws[streams + 1 :: 2],
        streams=streams,
        base_kilocycles=FFT_BATCH * FFT_1024_KILOCYCLES,
        jitter=_FFT_JITTER,
        reference_mhz=REFERENCE_MHZ,
        utilization_factor=utilization_factor,
        phase_range=(0.0, 10.0),
        period_jitter=(1.0, 1.15),
    )
    tasks = [
        Task(release, release + span, workload, f"fft{index}")
        for index, (release, span, workload) in enumerate(
            zip(releases, spans, workloads)
        )
    ]
    tasks.sort(key=lambda t: (t.release, t.name))
    return tasks

"""Textual reports for schedules and energy breakdowns."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.energy.accounting import EnergyBreakdown
from repro.schedule.timeline import Schedule

__all__ = ["energy_report", "schedule_summary"]


def energy_report(breakdown: EnergyBreakdown, *, label: str = "schedule") -> str:
    """Itemized energy report in mJ with percentage shares."""
    total = breakdown.total
    if total <= 0.0:
        return f"{label}: zero energy"

    def line(name: str, value: float) -> str:
        return (
            f"  {name:<22s} {value / 1000.0:10.3f} mJ  "
            f"({value / total * 100.0:5.1f}%)"
        )

    rows = [
        f"energy report: {label}",
        line("core dynamic", breakdown.core_dynamic),
        line("core static (active)", breakdown.core_static_active),
        line("core idle/transition", breakdown.core_idle),
        line("memory active", breakdown.memory_active),
        line("memory idle/transition", breakdown.memory_idle),
        f"  {'total':<22s} {total / 1000.0:10.3f} mJ",
        f"  memory busy {breakdown.memory_busy_time:.2f} ms, "
        f"asleep {breakdown.memory_sleep_time:.2f} ms",
    ]
    return "\n".join(rows)


def schedule_summary(schedule: Schedule) -> str:
    """Per-core and per-task occupancy summary."""
    rows: List[str] = ["schedule summary:"]
    for index, core in enumerate(schedule.cores):
        span = core.span()
        if span is None:
            rows.append(f"  core {index}: idle")
            continue
        tasks = sorted({iv.task for iv in core})
        rows.append(
            f"  core {index}: busy {core.busy_time:.2f} ms over "
            f"[{span[0]:.2f}, {span[1]:.2f}], tasks: {', '.join(tasks)}"
        )
    busy = schedule.memory_busy_time()
    gaps = schedule.common_idle_gaps()
    rows.append(
        f"  memory: busy {busy:.2f} ms, {len(gaps)} interior idle gap(s), "
        f"common idle {schedule.common_idle_time():.2f} ms"
    )
    done: Dict[str, float] = schedule.executed_workloads()
    rows.append(
        "  tasks executed: "
        + ", ".join(f"{name} ({kc:.0f} kc)" for name, kc in sorted(done.items()))
    )
    return "\n".join(rows)

"""Per-core timelines and whole-system schedules.

Conventions:

* intervals are half-open ``[start, end)`` in ms;
* each :class:`ExecutionInterval` runs one task at one constant speed --
  the offline schemes of the paper never change speed mid-task, and the
  online engine emits a new interval at every recomputation point;
* a :class:`CoreTimeline` holds non-overlapping intervals sorted by start;
* a :class:`Schedule` is an immutable tuple of core timelines plus helpers
  to compute the memory busy union and common idle gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.models.task import Task
from repro.units import MS, unit

__all__ = [
    "ExecutionInterval",
    "CoreTimeline",
    "Schedule",
    "merge_intervals",
    "complement_within",
    "total_length",
]

_EPS = 1e-9


@dataclass(frozen=True)
class ExecutionInterval:
    """One task executing at one constant speed on one core.

    ``workload`` (kc) is derived: ``speed * (end - start)``.
    """

    task: str
    start: float
    end: float
    speed: float

    def __post_init__(self) -> None:
        if not (self.end > self.start):
            raise ValueError(
                f"interval for {self.task}: end {self.end} must exceed start {self.start}"
            )
        if self.speed <= 0.0:
            raise ValueError(f"interval for {self.task}: speed must be positive")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def workload(self) -> float:
        """Kilocycles executed in this interval."""
        return self.speed * self.duration

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Exec({self.task} @ {self.speed:.1f} MHz, "
            f"[{self.start:.3f}, {self.end:.3f}))"
        )


class CoreTimeline:
    """Non-overlapping, start-sorted execution intervals on one core."""

    def __init__(self, intervals: Iterable[ExecutionInterval] = ()):
        items = sorted(intervals, key=lambda iv: iv.start)
        for prev, cur in zip(items, items[1:]):
            if cur.start < prev.end - _EPS:
                raise ValueError(
                    f"overlapping intervals on one core: {prev} then {cur}"
                )
        self._intervals: Tuple[ExecutionInterval, ...] = tuple(items)

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self):
        return iter(self._intervals)

    def __getitem__(self, index: int) -> ExecutionInterval:
        return self._intervals[index]

    @property
    def intervals(self) -> Tuple[ExecutionInterval, ...]:
        return self._intervals

    @property
    def busy_time(self) -> float:
        return sum(iv.duration for iv in self._intervals)

    def busy_spans(self) -> List[Tuple[float, float]]:
        """Merged busy spans of this core."""
        return merge_intervals((iv.start, iv.end) for iv in self._intervals)

    def idle_gaps(self, horizon: Tuple[float, float]) -> List[Tuple[float, float]]:
        """Idle gaps of this core within ``horizon`` (including edges)."""
        return complement_within(self.busy_spans(), horizon)

    def span(self) -> Optional[Tuple[float, float]]:
        """(first start, last end), or None for an empty timeline."""
        if not self._intervals:
            return None
        return self._intervals[0].start, self._intervals[-1].end


class Schedule:
    """A system-wide schedule: one timeline per core.

    Empty cores are legal (the unbounded-core model instantiates a core per
    task; the bounded experiments fix eight).  The schedule is agnostic to
    the platform -- energy is priced by :mod:`repro.energy.accounting`.
    """

    def __init__(self, cores: Iterable[CoreTimeline]):
        self._cores: Tuple[CoreTimeline, ...] = tuple(cores)
        if not self._cores:
            raise ValueError("a schedule needs at least one core timeline")

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_assignments(
        cls, assignments: Sequence[Sequence[ExecutionInterval]]
    ) -> "Schedule":
        return cls(CoreTimeline(items) for items in assignments)

    @classmethod
    def one_task_per_core(
        cls, placements: Iterable[ExecutionInterval]
    ) -> "Schedule":
        """Unbounded-core helper: each execution interval on its own core."""
        return cls(CoreTimeline([iv]) for iv in placements)

    # -- accessors ----------------------------------------------------------------

    @property
    def cores(self) -> Tuple[CoreTimeline, ...]:
        return self._cores

    @property
    def num_cores(self) -> int:
        return len(self._cores)

    def all_intervals(self) -> List[ExecutionInterval]:
        return [iv for core in self._cores for iv in core]

    def executed_workloads(self) -> Dict[str, float]:
        """Total kilocycles executed per task name."""
        totals: Dict[str, float] = {}
        for iv in self.all_intervals():
            totals[iv.task] = totals.get(iv.task, 0.0) + iv.workload
        return totals

    # -- memory view ----------------------------------------------------------------

    def busy_union(self) -> List[Tuple[float, float]]:
        """Merged union of all cores' busy spans = memory busy intervals."""
        spans: List[Tuple[float, float]] = []
        for core in self._cores:
            spans.extend(core.busy_spans())
        return merge_intervals(spans)

    def memory_busy_time(self) -> float:
        return total_length(self.busy_union())

    def common_idle_gaps(
        self, horizon: Optional[Tuple[float, float]] = None
    ) -> List[Tuple[float, float]]:
        """Common idle intervals (memory may sleep) within ``horizon``.

        ``horizon`` defaults to the schedule's own span, in which case there
        are no edge gaps -- only interior ones.
        """
        busy = self.busy_union()
        if horizon is None:
            if not busy:
                return []
            horizon = (busy[0][0], busy[-1][1])
        return complement_within(busy, horizon)

    def common_idle_time(
        self, horizon: Optional[Tuple[float, float]] = None
    ) -> float:
        """Total common idle time Delta within ``horizon``."""
        return total_length(self.common_idle_gaps(horizon))

    def span(self) -> Optional[Tuple[float, float]]:
        busy = self.busy_union()
        if not busy:
            return None
        return busy[0][0], busy[-1][1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_iv = sum(len(core) for core in self._cores)
        return f"Schedule({self.num_cores} cores, {n_iv} intervals)"


def merge_intervals(
    spans: Iterable[Tuple[float, float]], *, eps: float = _EPS
) -> List[Tuple[float, float]]:
    """Merge possibly-overlapping ``(start, end)`` spans into a sorted union.

    Spans closer than ``eps`` are coalesced, so hairline numerical gaps do
    not masquerade as sleep opportunities.
    """
    items = sorted(spans)
    merged: List[Tuple[float, float]] = []
    for start, end in items:
        if end <= start:
            raise ValueError(f"bad span ({start}, {end})")
        if merged and start <= merged[-1][1] + eps:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def complement_within(
    spans: Sequence[Tuple[float, float]],
    horizon: Tuple[float, float],
    *,
    eps: float = _EPS,
) -> List[Tuple[float, float]]:
    """Gaps of a *merged, sorted* span list within ``horizon``."""
    lo, hi = horizon
    if hi < lo:
        raise ValueError(f"bad horizon ({lo}, {hi})")
    gaps: List[Tuple[float, float]] = []
    cursor = lo
    for start, end in spans:
        if end <= lo or start >= hi:
            continue
        if start > cursor + eps:
            gaps.append((cursor, min(start, hi)))
        cursor = max(cursor, min(end, hi))
    if hi > cursor + eps:
        gaps.append((cursor, hi))
    return gaps


@unit(MS)
def total_length(spans: Iterable[Tuple[float, float]]) -> float:
    """Sum of span lengths."""
    return sum(end - start for start, end in spans)

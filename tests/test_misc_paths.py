"""Tests for less-travelled code paths not covered by the main suites."""

from __future__ import annotations

import math

import pytest

from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import ExecutionInterval, Schedule
from repro.sim import simulate
from repro.speed_scaling.online import optimal_available_plan_general


class TestGeneralOaPlan:
    def test_future_releases_respected(self):
        plan = optimal_available_plan_general(
            [("now", 0.0, 10.0, 20.0), ("later", 5.0, 8.0, 30.0)]
        )
        later_pieces = [p for p in plan if p.name == "later"]
        assert all(p.start >= 5.0 - 1e-9 for p in later_pieces)
        done = {}
        for p in plan:
            done[p.name] = done.get(p.name, 0.0) + p.workload
        assert done["now"] == pytest.approx(20.0, rel=1e-6)
        assert done["later"] == pytest.approx(30.0, rel=1e-6)


class TestEngineOptions:
    def _platform(self):
        return Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=10.0),
            MemoryModel(alpha_m=1.0),
        )

    def test_validate_false_skips_checks(self):
        """An infeasible trace passes when validation is disabled (the
        engine still executes at clamped speed; deadline is missed)."""
        from repro.baselines import mbkp

        platform = self._platform().with_num_cores(1)
        tasks = [
            Task(0.0, 10.0, 60.0, "a"),  # needs 6 MHz alone
            Task(0.0, 10.0, 60.0, "b"),  # together they need 12 > s_up=10
        ]
        with pytest.raises(Exception):
            simulate(mbkp(platform), tasks, platform)
        result = simulate(mbkp(platform), tasks, platform, validate=False)
        assert result.total_energy > 0.0

    def test_bisect_max_iter_terminates(self):
        from repro.utils.solvers import bisect_increasing

        # A pathological function; must still return within max_iter.
        root = bisect_increasing(
            lambda x: math.copysign(1e-300, x - math.pi), 0.0, 10.0, max_iter=5
        )
        assert 0.0 <= root <= 10.0

    def test_schedule_repr_smoke(self):
        sched = Schedule.from_assignments(
            [[ExecutionInterval("a", 0, 1, 1.0)]]
        )
        assert "Schedule" in repr(sched)
        assert "Exec" in repr(sched.cores[0][0])


class TestAllocatorPaths:
    def test_holder_count_and_total(self):
        from repro.sim import CoreAllocator

        alloc = CoreAllocator(4)
        alloc.acquire("a", 0.0)
        alloc.acquire("b", 0.0)
        assert alloc.holder_count() == 2
        alloc.release("a", at=5.0)
        assert alloc.holder_count() == 1
        # Core 0 is free only from t=5; a task starting at t=2 must get a
        # fresh core.
        c = alloc.acquire("c", 2.0)
        assert c == 2
        # But a task starting at t=6 can reuse core 0.
        d = alloc.acquire("d", 6.0)
        assert d == 0
        assert alloc.total_cores_used == 3


class TestTables1Timing:
    def test_table1_rows_have_positive_times(self):
        from repro.experiments import table1_rows

        rows = table1_rows(n=5)
        assert all(float(r["measured_ms"]) >= 0.0 for r in rows)


class TestCommonReleaseBinaryEdge:
    def test_two_tasks_equal_everything(self):
        from repro.core import solve_common_release_alpha_zero

        platform = Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1000.0),
            MemoryModel(alpha_m=10.0),
        )
        ts = TaskSet([Task(0.0, 50.0, 1000.0), Task(0.0, 50.0, 1000.0)])
        scan = solve_common_release_alpha_zero(ts, platform, method="scan")
        binary = solve_common_release_alpha_zero(ts, platform, method="binary")
        assert scan.predicted_energy == pytest.approx(
            binary.predicted_energy, rel=1e-9
        )

    def test_unknown_method_rejected(self):
        from repro.core import solve_common_release_alpha_zero

        platform = Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1000.0),
            MemoryModel(alpha_m=10.0),
        )
        ts = TaskSet([Task(0.0, 50.0, 1000.0)])
        with pytest.raises(ValueError, match="method"):
            solve_common_release_alpha_zero(ts, platform, method="magic")


class TestBlockMethodGuard:
    def test_unknown_block_method(self):
        from repro.core import solve_block

        platform = Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1000.0),
            MemoryModel(alpha_m=10.0),
        )
        ts = TaskSet([Task(0.0, 50.0, 1000.0)])
        with pytest.raises(ValueError, match="method"):
            solve_block(ts, platform, method="nope")

"""Consistent-hash ring: platform fingerprints -> shard indices.

The sharded service routes every solve request by its platform
fingerprint -- the same identity the result cache and the micro-batcher
key on -- so one platform's traffic always lands on one shard, whose
worker process then keeps that platform's ``BlockArrays`` and
block-energy memos persistently warm (cache affinity is the whole point
of sharding here; the solves themselves are stateless).

Classic consistent hashing with virtual nodes: every shard owns
``vnodes`` pseudo-random points on a 64-bit circle, a key maps to the
owner of the first point at or clockwise-after its own position.  Two
properties the service relies on, both pinned by the hypothesis suite in
``tests/test_service_ring.py``:

* **balance** -- with enough virtual nodes the arc lengths even out, so
  random fingerprint populations spread across shards within a small
  factor of the mean;
* **minimal remapping** -- adding a shard steals keys only *for* the new
  shard, removing one reassigns only the keys it owned.  A modulo table
  would reshuffle nearly everything, flushing every warm worker cache on
  any resize.

Positions come from SHA-256, never from Python's ``hash()``: the builtin
is salted per process (PYTHONHASHSEED), and the ring must route
identically in the server, its worker processes and any test that
recomputes the mapping.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple, Union

__all__ = ["DEFAULT_VNODES", "HashRing"]

#: Virtual nodes per shard.  128 points keeps the expected per-shard load
#: within a few percent of even for the shard counts the service uses
#: (2..16) while the full ring stays tiny (16 shards -> 2048 points).
DEFAULT_VNODES = 128


def _position(token: str) -> int:
    """A point on the 64-bit circle, stable across processes and runs."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over a set of shard identifiers.

    ``shards`` is either a count (ring over ``0..n-1``, the service's
    case) or an explicit sequence of identifiers (the remapping property
    tests build rings over arbitrary id sets to compare memberships).
    Resizing means building a new ring -- there is no mutable state to
    share across shards or processes.
    """

    def __init__(
        self,
        shards: Union[int, Sequence[int]],
        *,
        vnodes: int = DEFAULT_VNODES,
    ):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        if isinstance(shards, int):
            if shards < 1:
                raise ValueError(f"shard count must be >= 1, got {shards}")
            shard_ids: Tuple[int, ...] = tuple(range(shards))
        else:
            shard_ids = tuple(shards)
            if not shard_ids:
                raise ValueError("shard id sequence must be non-empty")
            if len(set(shard_ids)) != len(shard_ids):
                raise ValueError(f"duplicate shard ids in {shard_ids!r}")
        self.vnodes = vnodes
        self.shard_ids = shard_ids
        points: List[Tuple[int, int]] = []
        for shard_id in shard_ids:
            for replica in range(vnodes):
                points.append((_position(f"shard:{shard_id}:vnode:{replica}"), shard_id))
        # Sorting (position, id) pairs breaks the astronomically unlikely
        # position collision deterministically in favour of the lower id.
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [shard_id for _, shard_id in points]

    def __len__(self) -> int:
        return len(self.shard_ids)

    def shard_for(self, key: str) -> int:
        """The shard id owning ``key`` (first vnode clockwise of its hash)."""
        index = bisect.bisect_right(self._positions, _position(f"key:{key}"))
        if index == len(self._positions):
            index = 0  # wrap: past the last point means the first owner
        return self._owners[index]

    def distribution(self, keys: Iterable[str]) -> Dict[int, int]:
        """Key count per shard id -- the balance property's measurement."""
        counts: Dict[int, int] = {shard_id: 0 for shard_id in self.shard_ids}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

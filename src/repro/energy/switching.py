"""Frequency-switch (DVS transition) overhead accounting.

The paper's theory ignores voltage-adjustment overhead, arguing that its
non-preemptive schemes keep each task at one speed so switches are rare;
its evaluation then "removes the assumption" and confirms the savings
survive when the frequency transition overhead is charged (Section 3,
Section 8).  This module supplies that accounting: count the speed
changes each core actually performs in a schedule and charge a fixed
energy (or time-at-power) cost per switch.

A switch is counted when consecutive activity on a core changes speed:

* between back-to-back execution intervals at different speeds;
* when a core wakes into an execution at a different speed than it slept
  at -- configurable via ``count_idle_boundaries`` (idle/sleep transitions
  are already priced by the break-even machinery, so the default only
  counts genuine DVS re-levelings between executions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.schedule.timeline import Schedule
from repro.units import UJ, unit

__all__ = ["SwitchingReport", "count_speed_switches", "switching_energy"]

_REL_TOL = 1e-9


@dataclass(frozen=True)
class SwitchingReport:
    """Per-schedule DVS switching summary."""

    switches_per_core: tuple
    energy_per_switch: float

    @property
    def total_switches(self) -> int:
        return sum(self.switches_per_core)

    @property
    @unit(UJ)
    def total_energy(self) -> float:
        """Total switching energy in uJ."""
        return self.total_switches * self.energy_per_switch


def count_speed_switches(
    schedule: Schedule, *, count_idle_boundaries: bool = False
) -> List[int]:
    """Number of speed changes per core.

    With ``count_idle_boundaries=False`` (default), an idle gap between
    two intervals at the *same* speed costs nothing, and a gap between
    different speeds costs one switch (the core re-levels on wake-up).
    With ``True``, every entry into and exit from idle also counts --
    the pessimistic model for platforms that must return to a fixed idle
    frequency.
    """
    counts: List[int] = []
    for core in schedule.cores:
        switches = 0
        previous_speed = None
        previous_end = None
        for interval in core:
            if previous_speed is not None:
                gap = interval.start - previous_end
                same = (
                    abs(interval.speed - previous_speed)
                    <= _REL_TOL * max(interval.speed, previous_speed)
                )
                if count_idle_boundaries and gap > _REL_TOL:
                    switches += 2  # drop to idle level, climb back out
                elif not same:
                    switches += 1
            previous_speed = interval.speed
            previous_end = interval.end
        counts.append(switches)
    return counts


def switching_energy(
    schedule: Schedule,
    energy_per_switch: float,
    *,
    count_idle_boundaries: bool = False,
) -> SwitchingReport:
    """Charge ``energy_per_switch`` uJ per counted speed change.

    Typical magnitudes: tens of microseconds of settling at full power,
    i.e. on the order of 10-100 uJ per switch for an A57-class core --
    pass whatever your platform's regulator datasheet says.
    """
    if energy_per_switch < 0.0:
        raise ValueError("energy_per_switch must be non-negative")
    counts = count_speed_switches(
        schedule, count_idle_boundaries=count_idle_boundaries
    )
    return SwitchingReport(tuple(counts), energy_per_switch)

#!/usr/bin/env python3
"""Quickstart: solve one SDEM instance end to end.

Builds a small common-release task set on the paper's 8x ARM Cortex-A57 +
50 nm DRAM platform, solves it optimally with the Section 4 scheme, prices
the emitted schedule with the generic accountant, and compares against two
naive policies -- "stretch everything" (filled speeds, memory always on)
and "race to idle" (max speed, sleep after).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ExecutionInterval,
    Schedule,
    SleepPolicy,
    Task,
    TaskSet,
    account,
    paper_platform,
    solve_common_release,
    validate_schedule,
)


def main() -> None:
    # Three firmware jobs released together, deadlines staggered.
    tasks = TaskSet(
        [
            Task(0.0, 40.0, 8000.0, "sensor-fusion"),
            Task(0.0, 70.0, 15000.0, "video-encode"),
            Task(0.0, 100.0, 4000.0, "telemetry"),
        ]
    )
    platform = paper_platform(xi=0.0, xi_m=0.0)  # free transitions (theory model)
    horizon = (0.0, tasks.latest_deadline)

    # --- the paper's optimal scheme (Section 4.2: alpha = 310 mW != 0) ----
    solution = solve_common_release(tasks, platform)
    schedule = solution.schedule()
    validate_schedule(schedule, tasks, max_speed=platform.core.s_up)
    optimal = account(schedule, platform, horizon=horizon)

    print("SDEM optimal (Section 4.2)")
    print(f"  memory sleeps for Delta = {solution.delta:.2f} ms "
          f"(busy {solution.memory_busy_length:.2f} ms)")
    for task in tasks:
        print(
            f"  {task.name:<14s} speed {solution.speeds[task.name]:7.1f} MHz, "
            f"finishes at {solution.finish_times[task.name]:6.2f} ms "
            f"(deadline {task.deadline:g} ms)"
        )
    print(f"  total energy: {optimal.total / 1000.0:.2f} mJ "
          f"(cores {optimal.core_total / 1000.0:.2f} mJ, "
          f"memory {optimal.memory_total / 1000.0:.2f} mJ)")

    # --- naive alternative 1: stretch every task to its deadline -----------
    stretched = Schedule.one_task_per_core(
        ExecutionInterval(t.name, 0.0, t.deadline, t.filled_speed) for t in tasks
    )
    lazy = account(
        stretched, platform, horizon=horizon, memory_policy=SleepPolicy.NEVER
    )

    # --- naive alternative 2: race to idle at s_up -------------------------
    s_up = platform.core.s_up
    racing = Schedule.one_task_per_core(
        ExecutionInterval(t.name, 0.0, t.workload / s_up, s_up) for t in tasks
    )
    raced = account(racing, platform, horizon=horizon)

    print("\nComparison (same horizon):")
    print(f"  stretch-to-deadline : {lazy.total / 1000.0:9.2f} mJ")
    print(f"  race-to-idle        : {raced.total / 1000.0:9.2f} mJ")
    print(f"  SDEM optimal        : {optimal.total / 1000.0:9.2f} mJ")
    for name, other in (("stretch", lazy), ("race", raced)):
        saving = (1.0 - optimal.total / other.total) * 100.0
        print(f"  -> saves {saving:5.1f}% vs {name}")
    assert optimal.total <= min(lazy.total, raced.total) + 1e-6


if __name__ == "__main__":
    main()

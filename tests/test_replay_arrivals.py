"""Arrival process tests: determinism, ordering, rate, spec plumbing."""

from __future__ import annotations

import pytest

from repro.models import Task
from repro.replay import (
    ARRIVAL_MODES,
    ArrivalSpec,
    mmpp_jobs,
    offered_rate_jobs_s,
    poisson_jobs,
    trace_jobs,
)
from repro.replay.arrivals import mean_interarrival_ms


class TestPoisson:
    def test_seeded_stream_is_deterministic(self):
        a = list(poisson_jobs(n=500, rate_jobs_s=100.0, seed=42))
        b = list(poisson_jobs(n=500, rate_jobs_s=100.0, seed=42))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(poisson_jobs(n=50, rate_jobs_s=100.0, seed=1))
        b = list(poisson_jobs(n=50, rate_jobs_s=100.0, seed=2))
        assert a != b

    def test_arrivals_nondecreasing_and_start_at_zero(self):
        jobs = list(poisson_jobs(n=200, rate_jobs_s=50.0, seed=3))
        assert jobs[0].arrival_ms == 0.0
        for first, second in zip(jobs, jobs[1:]):
            assert second.arrival_ms >= first.arrival_ms

    def test_realized_rate_near_offered(self):
        jobs = list(poisson_jobs(n=5000, rate_jobs_s=200.0, seed=7))
        realized = offered_rate_jobs_s(jobs)
        assert realized == pytest.approx(200.0, rel=0.1)

    def test_spans_and_workloads_in_paper_ranges(self):
        jobs = list(poisson_jobs(n=300, rate_jobs_s=80.0, seed=5))
        for job in jobs:
            assert 10.0 <= job.span_ms <= 120.0
            assert 2000.0 <= job.workload_kc <= 5000.0
            assert job.deadline_ms == job.arrival_ms + job.span_ms

    def test_validation(self):
        with pytest.raises(ValueError):
            list(poisson_jobs(n=0, rate_jobs_s=10.0, seed=1))
        with pytest.raises(ValueError):
            list(poisson_jobs(n=5, rate_jobs_s=0.0, seed=1))


class TestMmpp:
    def test_deterministic(self):
        a = list(mmpp_jobs(n=400, rate_jobs_s=100.0, seed=9))
        b = list(mmpp_jobs(n=400, rate_jobs_s=100.0, seed=9))
        assert a == b

    def test_ordered(self):
        jobs = list(mmpp_jobs(n=400, rate_jobs_s=100.0, seed=11))
        for first, second in zip(jobs, jobs[1:]):
            assert second.arrival_ms >= first.arrival_ms

    def test_burstier_than_poisson(self):
        """The MMPP's inter-arrival coefficient of variation exceeds the
        memoryless baseline's (CV = 1) -- that is what bursty means."""

        def cv(jobs):
            gaps = [
                b.arrival_ms - a.arrival_ms for a, b in zip(jobs, jobs[1:])
            ]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return (var**0.5) / mean

        mmpp = list(
            mmpp_jobs(
                n=4000,
                rate_jobs_s=100.0,
                seed=13,
                burst_factor=10.0,
                mean_dwell_ms=500.0,
            )
        )
        poisson = list(poisson_jobs(n=4000, rate_jobs_s=100.0, seed=13))
        assert cv(mmpp) > cv(poisson)

    def test_burst_factor_one_validates(self):
        with pytest.raises(ValueError):
            list(mmpp_jobs(n=5, rate_jobs_s=10.0, seed=1, burst_factor=0.5))
        with pytest.raises(ValueError):
            list(mmpp_jobs(n=5, rate_jobs_s=10.0, seed=1, mean_dwell_ms=0.0))


class TestTrace:
    def test_replays_sorted_by_release(self):
        tasks = [
            Task(30.0, 80.0, 1000.0, "late"),
            Task(0.0, 50.0, 2000.0, "early"),
            Task(10.0, 40.0, 1500.0, "mid"),
        ]
        jobs = list(trace_jobs(tasks))
        assert [j.name for j in jobs] == ["early", "mid", "late"]
        assert jobs[0].workload_kc == 2000.0
        assert jobs[0].deadline_ms == 50.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            list(trace_jobs([]))

    def test_job_roundtrips_to_task(self):
        jobs = list(poisson_jobs(n=3, rate_jobs_s=10.0, seed=1))
        task = jobs[1].task()
        assert task.release == jobs[1].arrival_ms
        assert task.deadline == jobs[1].deadline_ms
        assert task.workload == jobs[1].workload_kc
        assert task.name == jobs[1].name


class TestArrivalSpec:
    def test_modes_enumerated(self):
        assert set(ARRIVAL_MODES) == {"poisson", "mmpp", "trace"}

    def test_jobs_matches_generator(self):
        spec = ArrivalSpec(mode="poisson", n=100, rate_jobs_s=60.0, seed=4)
        assert spec.jobs() == list(
            poisson_jobs(n=100, rate_jobs_s=60.0, seed=4)
        )

    def test_at_rate_changes_only_rate(self):
        spec = ArrivalSpec(mode="mmpp", n=50, rate_jobs_s=60.0, seed=4)
        faster = spec.at_rate(120.0)
        assert faster.rate_jobs_s == 120.0
        assert (faster.mode, faster.n, faster.seed) == ("mmpp", 50, 4)

    def test_trace_mode_needs_tasks_and_has_no_rate_knob(self):
        with pytest.raises(ValueError):
            ArrivalSpec(mode="trace")
        spec = ArrivalSpec(
            mode="trace", n=1, trace_tasks=(Task(0.0, 50.0, 1000.0, "t"),)
        )
        with pytest.raises(ValueError):
            spec.at_rate(10.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec(mode="uniform")

    def test_describe_is_json_ready(self):
        import json

        spec = ArrivalSpec(mode="mmpp", n=10, rate_jobs_s=5.0, seed=2)
        described = spec.describe()
        assert json.loads(json.dumps(described)) == described
        assert described["burst_factor"] == 8.0


class TestRates:
    def test_mean_interarrival_inverse_of_rate(self):
        jobs = list(poisson_jobs(n=5000, rate_jobs_s=100.0, seed=21))
        assert mean_interarrival_ms(jobs) == pytest.approx(10.0, rel=0.1)

    def test_degenerate_streams(self):
        jobs = list(poisson_jobs(n=1, rate_jobs_s=10.0, seed=1))
        assert offered_rate_jobs_s(jobs) == 0.0
        assert mean_interarrival_ms(jobs) == 0.0

"""Tests for the bounded-core partitioned heuristic."""

from __future__ import annotations

import random

import pytest

from repro.core import solve_common_release, solve_partitioned_common_release
from repro.core.reference import common_release_energy_at_delta
from repro.energy import account
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import validate_schedule


def make_platform(num_cores, alpha_m=10.0):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1000.0),
        MemoryModel(alpha_m=alpha_m),
        num_cores=num_cores,
    )


def random_common(rng, n):
    return TaskSet(
        Task(0.0, rng.uniform(10.0, 120.0), rng.uniform(200.0, 5000.0))
        for _ in range(n)
    )


class TestGuards:
    def test_needs_finite_cores(self):
        ts = TaskSet([Task(0, 10, 5)])
        with pytest.raises(ValueError, match="finite"):
            solve_partitioned_common_release(ts, make_platform(None))

    def test_needs_common_release(self):
        ts = TaskSet([Task(0, 10, 5), Task(1, 20, 5)])
        with pytest.raises(ValueError, match="common release"):
            solve_partitioned_common_release(ts, make_platform(2))

    def test_needs_alpha_zero(self):
        platform = Platform(
            CorePowerModel(beta=1e-6, lam=3.0, alpha=5.0, s_up=1000.0),
            MemoryModel(alpha_m=10.0),
            num_cores=2,
        )
        ts = TaskSet([Task(0, 10, 5)])
        with pytest.raises(ValueError, match="alpha"):
            solve_partitioned_common_release(ts, platform)


class TestSolutionQuality:
    def test_matches_unbounded_optimum_when_cores_suffice(self):
        rng = random.Random(3)
        for _ in range(6):
            ts = random_common(rng, rng.randint(1, 5))
            bounded = solve_partitioned_common_release(
                ts, make_platform(len(ts)), method="lpt"
            )
            unbounded = solve_common_release(
                ts, make_platform(None).with_num_cores(None)
            )
            assert bounded.predicted_energy == pytest.approx(
                unbounded.predicted_energy, rel=1e-3
            )

    def test_feasible_and_priced_consistently(self):
        rng = random.Random(7)
        for _ in range(6):
            ts = random_common(rng, rng.randint(3, 9))
            platform = make_platform(2)
            sol = solve_partitioned_common_release(ts, platform)
            sched = sol.schedule()
            validate_schedule(
                sched, ts, max_speed=1000.0, require_non_preemptive=True
            )
            bd = account(sched, platform, horizon=(0.0, ts.latest_deadline))
            # The heuristic charges the memory for [0, busy_end]; internal
            # per-core gaps can only shrink the accountant's price.
            assert bd.total <= sol.predicted_energy * (1.0 + 1e-9)

    def test_respects_core_budget(self):
        rng = random.Random(11)
        ts = random_common(rng, 9)
        sol = solve_partitioned_common_release(ts, make_platform(3))
        assert sol.schedule().num_cores <= 3
        assert len(sol.groups) == 3

    def test_never_worse_than_stretch_everything(self):
        """Upper-bound sanity: beat the naive 'filled speeds, memory on
        through the horizon' schedule."""
        rng = random.Random(13)
        for _ in range(5):
            ts = random_common(rng, rng.randint(4, 8))
            platform = make_platform(2)
            sol = solve_partitioned_common_release(ts, platform)
            naive = common_release_energy_at_delta(ts, platform, 0.0)
            # Different machine models (2 cores vs unbounded), but the
            # naive bound only gets weaker with fewer cores.
            assert sol.predicted_energy <= naive * 2.0

    def test_exact_partition_not_worse_than_lpt(self):
        rng = random.Random(17)
        for _ in range(4):
            ts = random_common(rng, rng.randint(4, 8))
            platform = make_platform(2)
            lpt = solve_partitioned_common_release(ts, platform, method="lpt")
            exact = solve_partitioned_common_release(ts, platform, method="exact")
            assert exact.predicted_energy <= lpt.predicted_energy * (1.0 + 1e-6)

    def test_high_memory_power_compresses_busy_end(self):
        rng = random.Random(19)
        ts = random_common(rng, 6)
        cheap = solve_partitioned_common_release(ts, make_platform(2, alpha_m=0.5))
        costly = solve_partitioned_common_release(ts, make_platform(2, alpha_m=500.0))
        assert costly.busy_end <= cheap.busy_end + 1e-6


class TestQuantizedPolicy:
    def test_quantized_sdem_on_close_to_continuous(self):
        from repro.baselines import QuantizedPolicy
        from repro.core import SdemOnlinePolicy
        from repro.core.discrete import a57_levels
        from repro.models import paper_platform
        from repro.sim import simulate
        from repro.workloads import synthetic_tasks

        platform = paper_platform()
        trace = synthetic_tasks(n=25, max_interarrival=300.0, seed=5)
        horizon = (min(t.release for t in trace), max(t.deadline for t in trace))
        continuous = simulate(
            SdemOnlinePolicy(platform), trace, platform, horizon=horizon
        )
        quantized = simulate(
            QuantizedPolicy(SdemOnlinePolicy(platform), a57_levels()),
            trace,
            platform,
            horizon=horizon,
        )
        # "No big gap": within 5% here.
        assert quantized.total_energy == pytest.approx(
            continuous.total_energy, rel=0.05
        )

    def test_quantized_emits_only_grid_speeds(self):
        from repro.baselines import QuantizedPolicy, mbkp
        from repro.core.discrete import a57_levels
        from repro.models import paper_platform
        from repro.sim import simulate
        from repro.workloads import synthetic_tasks

        platform = paper_platform()
        trace = synthetic_tasks(n=10, max_interarrival=300.0, seed=6)
        levels = a57_levels()
        result = simulate(
            QuantizedPolicy(mbkp(platform), levels), trace, platform
        )
        for iv in result.schedule.all_intervals():
            assert any(abs(iv.speed - lv) < 1e-6 for lv in levels)

    def test_rejects_empty_grid(self):
        from repro.baselines import QuantizedPolicy, mbkp
        from repro.models import paper_platform

        with pytest.raises(ValueError):
            QuantizedPolicy(mbkp(paper_platform()), [])

"""Ablation benches for the design choices called out in DESIGN.md.

* A1 -- SDEM-ON's procrastination (sleep until the first latest start)
  versus eager starts: quantifies the value of *aligning* idle time.
* A2 -- binary search vs linear scan in the Section 4.1 scheme (same
  answers; see test_table1_complexity for the runtime side).
* A3 -- MBKPS with a break-even guard (sleep only in gaps > xi_m):
  separates SDEM-ON's win into "smarter sleeping" vs "idle alignment".
* A4 -- block solver: the paper's (i, j)-pair enumeration vs direct 2-D
  convex descent (identical optima, different cost).
"""

from __future__ import annotations

import random
import time

from repro.baselines import mbkps
from repro.core import SdemOnlinePolicy, solve_block
from repro.experiments import experiment_platform
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.sim import simulate
from repro.workloads import synthetic_tasks

from conftest import emit


def test_a1_procrastination_value(benchmark, seeds):
    """Eager SDEM-ON loses part of the alignment win."""
    platform = experiment_platform()

    def run():
        lazy_total = eager_total = naive_total = 0.0
        for seed in range(seeds):
            trace = synthetic_tasks(n=40, max_interarrival=300.0, seed=seed)
            horizon = (
                min(t.release for t in trace),
                max(t.deadline for t in trace),
            )
            lazy_total += simulate(
                SdemOnlinePolicy(platform), trace, platform, horizon=horizon
            ).total_energy
            eager_total += simulate(
                SdemOnlinePolicy(platform, procrastinate=False),
                trace,
                platform,
                horizon=horizon,
            ).total_energy
            naive_total += simulate(
                mbkps(platform), trace, platform, horizon=horizon
            ).total_energy
        return lazy_total / seeds, eager_total / seeds, naive_total / seeds

    lazy, eager, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "A1: value of procrastination (avg system energy, mJ)",
        [
            f"  SDEM-ON (procrastinate) {lazy / 1000.0:10.2f}",
            f"  SDEM-ON (eager start)   {eager / 1000.0:10.2f}  "
            f"(+{(eager / lazy - 1) * 100.0:.2f}%)",
            f"  MBKPS                   {naive / 1000.0:10.2f}",
        ],
    )
    assert lazy <= eager * (1.0 + 1e-9)
    assert eager < naive  # even eager SDEM-ON beats MBKPS (speed choice)


def test_a3_break_even_guard(benchmark, seeds):
    """How much of MBKPS's loss is naive (sub-break-even) sleeping?"""
    platform = experiment_platform()

    def run():
        naive = guarded = 0.0
        for seed in range(seeds):
            trace = synthetic_tasks(n=40, max_interarrival=200.0, seed=seed)
            horizon = (
                min(t.release for t in trace),
                max(t.deadline for t in trace),
            )
            naive += simulate(
                mbkps(platform), trace, platform, horizon=horizon
            ).total_energy
            guarded += simulate(
                mbkps(platform, break_even_guard=True),
                trace,
                platform,
                horizon=horizon,
            ).total_energy
        return naive / seeds, guarded / seeds

    naive, guarded = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "A3: MBKPS break-even guard (avg system energy, mJ)",
        [
            f"  MBKPS naive (sleep every gap)   {naive / 1000.0:10.2f}",
            f"  MBKPS guarded (gap >= xi_m)     {guarded / 1000.0:10.2f}  "
            f"({(1 - guarded / naive) * 100.0:.2f}% saved by the guard)",
        ],
    )
    assert guarded <= naive * (1.0 + 1e-9)


def test_a4_block_solver_methods(benchmark):
    """'pairs' (paper) vs 'descent' (library default): same optimum."""
    platform = Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=2.0, s_up=1000.0),
        MemoryModel(alpha_m=10.0),
    )
    rng = random.Random(33)
    releases = sorted(rng.uniform(0.0, 80.0) for _ in range(6))
    tasks, last_d = [], 0.0
    for r in releases:
        d = max(r + rng.uniform(10.0, 60.0), last_d + 1.0)
        tasks.append(Task(r, d, rng.uniform(200.0, 3000.0)))
        last_d = d
    ts = TaskSet(tasks)

    start = time.perf_counter()
    pairs = solve_block(ts, platform, method="pairs")
    pairs_ms = (time.perf_counter() - start) * 1000.0
    descent = benchmark(lambda: solve_block(ts, platform, method="descent"))
    emit(
        "A4: block solver methods (6 agreeable tasks)",
        [
            f"  pairs   energy {pairs.energy:12.4f} uJ ({pairs_ms:.1f} ms)",
            f"  descent energy {descent.energy:12.4f} uJ",
            f"  relative difference {abs(pairs.energy - descent.energy) / pairs.energy:.2e}",
        ],
    )
    assert abs(pairs.energy - descent.energy) <= 1e-4 * pairs.energy

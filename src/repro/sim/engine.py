"""The online simulation engine.

A policy implements two callbacks:

``on_arrival(now, tasks)``
    New tasks just became visible (their release time equals ``now``).
    The policy updates its internal plan; Section 6's SDEM-ON re-solves the
    common-release relaxation here.

``run_until(now, until)``
    Advance the world from ``now`` to ``until`` (``inf`` after the last
    arrival) and return the execution intervals emitted, each tagged with a
    core index.  The policy must have finished every revealed task by each
    task's deadline; the engine validates the assembled schedule.

The engine is deliberately thin: *all* scheduling intelligence lives in
policies, and all pricing lives in :mod:`repro.energy.accounting`, so every
algorithm is measured by exactly the same ruler.

Two entry points share the replay loop:

* :func:`simulate` -- the full-fat path: assembles a
  :class:`~repro.schedule.timeline.Schedule`, validates it, prices it and
  reports peak concurrency.  Every fidelity test and ad-hoc caller uses
  this.
* :func:`simulate_segments` -- the experiment fast path: drives the policy
  and returns the raw ``(core, interval)`` segment list plus the horizon,
  *without* materializing per-core timelines.  The work-unit pipeline in
  :mod:`repro.experiments.runner` validates and prices these segments
  directly (batched on the numpy backend), which profiling shows erases
  most of the non-solver share of a work unit -- see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.energy.accounting import EnergyBreakdown, SleepPolicy, account
from repro.models.platform import Platform
from repro.models.task import Task, TaskSet
from repro.schedule.timeline import CoreTimeline, ExecutionInterval, Schedule
from repro.schedule.validation import validate_schedule

__all__ = [
    "OnlinePolicy",
    "PreparedTrace",
    "SegmentRun",
    "SimulationResult",
    "prepare_trace",
    "simulate",
    "simulate_segments",
]


class OnlinePolicy(Protocol):
    """Interface every online scheduling policy implements."""

    #: How the accountant should treat memory idle gaps for this policy
    #: (e.g. MBKP never sleeps the memory, MBKPS always does).
    memory_policy: SleepPolicy
    #: Ditto for core idle gaps.
    core_policy: SleepPolicy

    def on_arrival(self, now: float, tasks: Sequence[Task]) -> None:
        """Reveal newly released tasks."""

    def run_until(
        self, now: float, until: float
    ) -> List[Tuple[int, ExecutionInterval]]:
        """Advance to ``until`` and return (core, interval) executions."""


@dataclass(frozen=True)
class SimulationResult:
    """A priced simulation run."""

    schedule: Schedule
    breakdown: EnergyBreakdown
    horizon: Tuple[float, float]
    peak_concurrency: int

    @property
    def total_energy(self) -> float:
        return self.breakdown.total


@dataclass(frozen=True)
class SegmentRun:
    """A driven-but-unpriced replay: raw segments plus their context."""

    segments: List[Tuple[int, ExecutionInterval]]
    task_set: TaskSet
    horizon: Tuple[float, float]


@dataclass(frozen=True)
class PreparedTrace:
    """A trace sorted, horizon-resolved and grouped by arrival instant.

    Replaying several policies over the same trace (the work-unit
    pipeline) prepares once and drives each policy from the shared groups.
    """

    task_set: TaskSet
    horizon: Tuple[float, float]
    groups: List[Tuple[float, List[Task]]]


def prepare_trace(
    tasks: Iterable[Task], horizon: Optional[Tuple[float, float]] = None
) -> PreparedTrace:
    """Sort the trace, resolve the horizon and group arrivals by instant."""
    task_list = sorted(tasks, key=lambda t: (t.release, t.deadline, t.name))
    if not task_list:
        raise ValueError("cannot simulate an empty task list")
    task_set = TaskSet(task_list)
    if horizon is None:
        horizon = (task_set.earliest_release, task_set.latest_deadline)

    groups: List[Tuple[float, List[Task]]] = []
    for task in task_list:
        if groups and math.isclose(groups[-1][0], task.release, abs_tol=1e-12):
            groups[-1][1].append(task)
        else:
            groups.append((task.release, [task]))
    return PreparedTrace(task_set=task_set, horizon=horizon, groups=groups)


def _drive(
    policy: OnlinePolicy, groups: List[Tuple[float, List[Task]]]
) -> List[Tuple[int, ExecutionInterval]]:
    """Replay the arrival groups through ``policy``, collecting segments."""
    segments: List[Tuple[int, ExecutionInterval]] = []
    now = groups[0][0]
    for when, batch in groups:
        if when > now:
            segments.extend(policy.run_until(now, when))
            now = when
        policy.on_arrival(when, batch)
    segments.extend(policy.run_until(now, math.inf))
    return segments


def simulate_segments(
    policy: OnlinePolicy,
    tasks: Optional[Iterable[Task]] = None,
    *,
    horizon: Optional[Tuple[float, float]] = None,
    prepared: Optional[PreparedTrace] = None,
) -> SegmentRun:
    """Drive ``policy`` over the trace and return the raw segment table.

    The fast-path counterpart of :func:`simulate`: no per-core timelines,
    no validation, no pricing -- callers own those steps (the experiment
    pipeline validates with
    :func:`repro.schedule.validation.validate_segments` and prices with
    :func:`repro.energy.accounting.account_segments`).  Pass ``prepared``
    (from :func:`prepare_trace`) instead of ``tasks`` to replay several
    policies without re-sorting and re-grouping the trace each time.
    """
    if prepared is None:
        if tasks is None:
            raise ValueError("simulate_segments needs tasks or prepared")
        prepared = prepare_trace(tasks, horizon)
    segments = _drive(policy, prepared.groups)
    if not segments:
        raise RuntimeError("policy emitted no executions")
    return SegmentRun(
        segments=segments, task_set=prepared.task_set, horizon=prepared.horizon
    )


def simulate(
    policy: OnlinePolicy,
    tasks: Iterable[Task],
    platform: Platform,
    *,
    horizon: Optional[Tuple[float, float]] = None,
    validate: bool = True,
) -> SimulationResult:
    """Replay ``tasks`` (released at their release times) under ``policy``.

    ``horizon`` defaults to ``[min release, max deadline]`` so competing
    policies are always compared over identical time windows.  The
    assembled schedule is validated against the task set and the
    platform's ``s_up`` unless ``validate=False``.
    """
    prepared = prepare_trace(tasks, horizon)
    task_set, resolved = prepared.task_set, prepared.horizon
    per_core: Dict[int, List[ExecutionInterval]] = {}
    for core, interval in _drive(policy, prepared.groups):
        per_core.setdefault(core, []).append(interval)

    if not per_core:
        raise RuntimeError("policy emitted no executions")
    num_cores = max(per_core) + 1
    schedule = Schedule(
        CoreTimeline(per_core.get(i, [])) for i in range(num_cores)
    )
    if validate:
        validate_schedule(schedule, task_set, max_speed=platform.core.s_up)

    breakdown = account(
        schedule,
        platform,
        horizon=resolved,
        memory_policy=policy.memory_policy,
        core_policy=policy.core_policy,
    )
    peak = _peak_concurrency(schedule)
    return SimulationResult(
        schedule=schedule,
        breakdown=breakdown,
        horizon=resolved,
        peak_concurrency=peak,
    )


def _peak_concurrency(schedule: Schedule) -> int:
    """Maximum number of cores busy at once."""
    events: List[Tuple[float, int]] = []
    for core in schedule.cores:
        for span in core.busy_spans():
            events.append((span[0], 1))
            events.append((span[1], -1))
    events.sort()
    level = peak = 0
    for _, delta in events:
        level += delta
        peak = max(peak, level)
    return peak

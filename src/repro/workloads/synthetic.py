"""Synthetic sporadic task generation (paper Section 8.1.2).

The paper's recipe:

* workload uniform in ``[2, 5] x 10^6`` cycles (2000-5000 kilocycles);
* feasible region length uniform in ``[10 ms, 120 ms]``;
* sporadic releases with *maximum* inter-arrival time ``x``, swept from
  100 ms to 800 ms (Table 4) -- smaller ``x`` means higher utilization.

The paper does not state the inter-arrival distribution below its maximum;
we use ``Uniform(0, x]``, the simplest distribution consistent with
"maximum inter-arrival time ``x``", and expose the choice as a parameter.
All randomness flows through an explicit seed for reproducibility.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.models.task import Task, TaskSet
from repro.units import SCALAR, unit

__all__ = ["agreeable_trace", "synthetic_tasks", "utilization_of"]

WORKLOAD_RANGE_KC: Tuple[float, float] = (2000.0, 5000.0)
SPAN_RANGE_MS: Tuple[float, float] = (10.0, 120.0)

#: Below this many tasks the columnwise build cannot beat the loop.
_BATCH_MIN = 16


def synthetic_tasks(
    *,
    n: int,
    max_interarrival: float,
    seed: int,
    workload_range: Tuple[float, float] = WORKLOAD_RANGE_KC,
    span_range: Tuple[float, float] = SPAN_RANGE_MS,
    min_interarrival: float = 0.0,
) -> List[Task]:
    """Generate ``n`` sporadic tasks with the Section 8.1.2 parameters.

    Returns release-ordered tasks (a trace for the online engine).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if max_interarrival <= 0.0:
        raise ValueError("max_interarrival must be positive")
    if not (0.0 <= min_interarrival <= max_interarrival):
        raise ValueError("need 0 <= min_interarrival <= max_interarrival")
    rng = random.Random(seed)
    if n >= _BATCH_MIN:
        # Pre-draw the unit variates in this loop's exact call order and
        # evaluate the same arithmetic columnwise -- bit-identical to the
        # scalar loop (see synthetic_trace_columns), so the dispatch can
        # never change experiment outputs.
        from repro.core import vectorized

        if vectorized.use_numpy():
            draws = [rng.random() for _ in range(3 * n - 1)]
            releases, spans, workloads = vectorized.synthetic_trace_columns(
                draws[2::3],
                [draws[0], *draws[3::3]],
                [draws[1], *draws[4::3]],
                min_interarrival=min_interarrival,
                max_interarrival=max_interarrival,
                span_range=span_range,
                workload_range=workload_range,
            )
            return [
                Task(release, release + span, workload, f"S{index}")
                for index, (release, span, workload) in enumerate(
                    zip(releases, spans, workloads)
                )
            ]
    tasks: List[Task] = []
    t = 0.0
    for index in range(n):
        if index > 0:
            t += rng.uniform(min_interarrival, max_interarrival)
        span = rng.uniform(*span_range)
        workload = rng.uniform(*workload_range)
        tasks.append(Task(t, t + span, workload, f"S{index}"))
    return tasks


def agreeable_trace(
    *,
    n: int,
    max_interarrival: float,
    seed: int,
    workload_range: Tuple[float, float] = WORKLOAD_RANGE_KC,
    span_range: Tuple[float, float] = SPAN_RANGE_MS,
    min_interarrival: float = 0.0,
) -> Tuple[List[float], List[float], List[float]]:
    """Columnwise agreeable sporadic trace: ``(releases, deadlines, workloads)``.

    Draws exactly like :func:`synthetic_tasks` (same RNG call order, same
    seed mapping), but each deadline is clamped up to the running maximum of
    ``release + span`` so deadlines are non-decreasing in release order --
    the *agreeable* instance class the Section 5 DP and the fptas tier
    solve offline in one call.  Returns bare float columns and never
    materializes :class:`~repro.models.task.Task` objects, so it scales to
    ``n`` in the 10^3-10^5 range the huge-n bench slice sweeps.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if max_interarrival <= 0.0:
        raise ValueError("max_interarrival must be positive")
    if not (0.0 <= min_interarrival <= max_interarrival):
        raise ValueError("need 0 <= min_interarrival <= max_interarrival")
    rng = random.Random(seed)
    if n >= _BATCH_MIN:
        from repro.core import vectorized

        if vectorized.use_numpy():
            draws = [rng.random() for _ in range(3 * n - 1)]
            return vectorized.agreeable_trace_columns(
                draws[2::3],
                [draws[0], *draws[3::3]],
                [draws[1], *draws[4::3]],
                min_interarrival=min_interarrival,
                max_interarrival=max_interarrival,
                span_range=span_range,
                workload_range=workload_range,
            )
    releases: List[float] = []
    deadlines: List[float] = []
    workloads: List[float] = []
    t = 0.0
    horizon = 0.0
    for index in range(n):
        if index > 0:
            t += rng.uniform(min_interarrival, max_interarrival)
        span = rng.uniform(*span_range)
        workload = rng.uniform(*workload_range)
        horizon = max(horizon, t + span)
        releases.append(t)
        deadlines.append(horizon)
        workloads.append(workload)
    return releases, deadlines, workloads


@unit(SCALAR)
def utilization_of(tasks: List[Task], *, num_cores: int, speed: float) -> float:
    """Average per-core utilization of a trace at a reference speed.

    ``sum(w_i / speed) / (num_cores * trace_span)`` -- a descriptive metric
    used by the experiment harness to label the ``x`` sweep.
    """
    if not tasks:
        return 0.0
    span = max(t.deadline for t in tasks) - min(t.release for t in tasks)
    if span <= 0.0:
        return 0.0
    demand = sum(t.workload / speed for t in tasks)
    return demand / (num_cores * span)

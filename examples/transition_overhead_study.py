#!/usr/bin/env python3
"""Transition overheads: when is sleeping worth waking up for?

Sweeps the memory break-even time ``xi_m`` for one common-release task set
and reports the optimal memory sleep length chosen by the Section 7 scheme
(Table 3's regimes), then does the same for the core break-even ``xi``.

Run:  python examples/transition_overhead_study.py
"""

from __future__ import annotations

from repro import (
    Task,
    TaskSet,
    paper_platform,
    solve_common_release_with_overhead,
)
from repro.models import CorePowerModel, MemoryModel, Platform


def main() -> None:
    tasks = TaskSet(
        [
            Task(0.0, 60.0, 9000.0, "render"),
            Task(0.0, 90.0, 5000.0, "audio"),
            Task(0.0, 120.0, 3000.0, "log"),
        ]
    )

    print("sweep xi_m (memory break-even), Cortex-A57 + 4 W DRAM")
    print(f"{'xi_m (ms)':>10s} {'Delta (ms)':>11s} {'energy (mJ)':>12s}  regime")
    for xi_m in (0.0, 15.0, 40.0, 70.0, 100.0, 108.0, 120.0):
        platform = paper_platform(xi=0.0, xi_m=xi_m)
        sol = solve_common_release_with_overhead(tasks, platform)
        if sol.delta < 1e-6:
            regime = "never sleep (Table 3 bottom rows)"
        elif sol.delta >= xi_m:
            regime = "sleep, gap amortizes overhead"
        else:
            regime = "boundary"
        print(f"{xi_m:10.1f} {sol.delta:11.2f} "
              f"{sol.predicted_energy / 1000.0:12.2f}  {regime}")

    print("\nsweep xi (core break-even) with a mild 0.5 W memory")
    core = CorePowerModel(beta=2.53e-7, lam=3.0, alpha=310.0, s_up=1900.0)
    print(f"{'xi (ms)':>10s} {'Delta (ms)':>11s} {'energy (mJ)':>12s}")
    for xi in (0.0, 5.0, 20.0, 60.0, 120.0):
        platform = Platform(
            core.with_xi(xi), MemoryModel(alpha_m=500.0, xi_m=10.0)
        )
        sol = solve_common_release_with_overhead(tasks, platform)
        print(f"{xi:10.1f} {sol.delta:11.2f} "
              f"{sol.predicted_energy / 1000.0:12.2f}")

    print(
        "\nEnergy grows monotonically with either break-even time, and the"
        "\nsleep window collapses to zero once no feasible gap can amortize"
        "\nthe wake-up cost -- the constrained-critical-speed fallback of"
        "\nSection 7."
    )


if __name__ == "__main__":
    main()

"""End-to-end service tests: transports, lifecycle, and the acceptance demo."""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.experiments.cache import ResultCache
from repro.service import protocol
from repro.service.client import ServiceClient, demo_wire_requests, run_demo
from repro.service.server import SolveService


def run(coro):
    return asyncio.run(coro)


def solve_wire(request_id, **overrides):
    wire = {
        "kind": "solve",
        "id": request_id,
        "tasks": [
            {"name": "a", "release": 0.0, "deadline": 40.0, "workload": 8000.0},
            {"name": "b", "release": 0.0, "deadline": 70.0, "workload": 15000.0},
        ],
    }
    wire.update(overrides)
    return wire


async def with_service(body, **kwargs):
    service = SolveService(**kwargs)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.drain()


class TestHandleMessage:
    def test_ping(self):
        async def body(service):
            return await service.handle_message({"kind": "ping", "id": "p"})

        response = run(with_service(body))
        assert response["ok"] is True
        assert response["result"]["pong"] is True

    def test_metrics_kind_returns_text_and_snapshot(self):
        async def body(service):
            return await service.handle_message({"kind": "metrics", "id": "m"})

        response = run(with_service(body))
        assert "repro_requests_total" in response["result"]["text"]
        assert "repro_queue_depth" in response["result"]["snapshot"]

    def test_unknown_kind_rejected(self):
        async def body(service):
            return await service.handle_message({"kind": "teleport", "id": "t"})

        response = run(with_service(body))
        assert response["error"]["code"] == protocol.E_BAD_REQUEST
        assert "teleport" in response["error"]["message"]

    def test_solve_round_trip_matches_direct_execution(self):
        async def body(service):
            return await service.handle_message(solve_wire("s1"))

        response = run(with_service(body, batch_window_ms=0.0))
        assert response["ok"] is True
        direct = protocol.execute_request(protocol.request_from_wire(solve_wire("s1")))
        assert protocol.canonical_result_bytes(
            response["result"]
        ) == protocol.canonical_result_bytes(direct)

    def test_malformed_solve_gets_error_envelope(self):
        async def body(service):
            return await service.handle_message(solve_wire("bad", scheme="quantum"))

        response = run(with_service(body))
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.E_UNKNOWN_SCHEME


class TestLifecycle:
    def test_draining_rejects_new_solves(self):
        async def body():
            service = SolveService()
            await service.start()
            await service.drain()
            response = await service.handle_message(solve_wire("late"))
            assert response["error"]["code"] == protocol.E_DRAINING

        run(body())

    def test_admitted_requests_answered_before_drain_returns(self):
        async def body(service):
            pending = [
                asyncio.create_task(service.handle_message(solve_wire(f"d{i}")))
                for i in range(4)
            ]
            await asyncio.sleep(0)  # let the offers land
            await service.drain()
            responses = await asyncio.gather(*pending)
            assert all(r["ok"] for r in responses)

        async def scenario():
            service = SolveService(batch_window_ms=30.0)
            await service.start()
            await body(service)

        run(scenario())

    def test_deadline_expiry_before_dispatch(self):
        async def body(service):
            response = await service.handle_message(
                solve_wire("slow", timeout_ms=0.5)
            )
            assert response["error"]["code"] == protocol.E_DEADLINE_EXCEEDED
            assert "0.5 ms" in response["error"]["message"]
            assert (
                service.metrics.counter("repro_deadline_expired_total").value == 1
            )

        run(with_service(body, batch_window_ms=60.0))

    def test_cancel_pending_request(self):
        async def body(service):
            pending = asyncio.create_task(
                service.handle_message(solve_wire("victim"))
            )
            await asyncio.sleep(0)
            cancel = await service.handle_message(
                {"kind": "cancel", "id": "c", "target": "victim"}
            )
            assert cancel["result"]["cancelled"] is True
            response = await pending
            assert response["error"]["code"] == protocol.E_CANCELLED

        run(with_service(body, batch_window_ms=120.0))

    def test_queue_full_rejection_carries_retry_after(self):
        async def body(service):
            first = asyncio.create_task(service.handle_message(solve_wire("one")))
            await asyncio.sleep(0)  # "one" now occupies the single seat
            second = await service.handle_message(solve_wire("two"))
            assert second["error"]["code"] == protocol.E_QUEUE_FULL
            assert second["error"]["retry_after_ms"] > 0
            assert (await first)["ok"] is True

        run(with_service(body, capacity=1, batch_window_ms=120.0))

    def test_sweep_lane_shed_while_degraded(self):
        async def body(service):
            held = [
                asyncio.create_task(service.handle_message(solve_wire(f"h{i}")))
                for i in range(2)
            ]
            await asyncio.sleep(0)
            shed = await service.handle_message(solve_wire("bulk", lane="sweep"))
            assert shed["error"]["code"] == protocol.E_SHEDDING
            assert service.metrics.counter("repro_rejected_shed_total").value == 1
            assert all(r["ok"] for r in await asyncio.gather(*held))

        run(with_service(body, capacity=4, shed_threshold=0.5, batch_window_ms=120.0))


class TestTcpTransport:
    def test_pipelined_out_of_order_responses(self):
        async def scenario():
            service = SolveService()
            server = await service.serve_tcp("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                async with ServiceClient(host, port) as client:
                    responses = await asyncio.gather(
                        client.request(solve_wire("a1")),
                        client.ping(),
                        client.request(solve_wire("a2")),
                    )
                assert [r["id"] for r in responses] == ["a1", "c1", "a2"]
                assert all(r["ok"] for r in responses)
            finally:
                server.close()
                await server.wait_closed()
                await service.drain()

        run(scenario())

    def test_garbage_line_answered_not_fatal(self):
        async def scenario():
            service = SolveService()
            server = await service.serve_tcp("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"{not json\n")
                await writer.drain()
                error = json.loads(await reader.readline())
                assert error["ok"] is False
                assert error["error"]["code"] == protocol.E_BAD_REQUEST
                # The connection survives: a well-formed ping still works.
                writer.write(protocol.encode_line({"kind": "ping", "id": "p"}))
                await writer.drain()
                pong = json.loads(await reader.readline())
                assert pong["ok"] is True
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
                await service.drain()

        run(scenario())

    def test_http_metrics_scrape(self):
        async def scenario():
            service = SolveService()
            server = await service.serve_tcp("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
                await service.drain()
            head, _, body = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200 OK")
            assert b"text/plain" in head
            assert b"repro_requests_total" in body

        run(scenario())


class TestStdioTransport:
    def test_stdio_round_trip(self):
        lines = [
            json.dumps({"kind": "ping", "id": "p"}),
            json.dumps(solve_wire("s1")),
        ]
        instream = io.StringIO("\n".join(lines) + "\n")
        outstream = io.StringIO()

        async def scenario():
            service = SolveService(batch_window_ms=0.0)
            await service.serve_stdio(instream, outstream)

        run(scenario())
        responses = {
            r["id"]: r
            for r in (json.loads(line) for line in outstream.getvalue().splitlines())
        }
        assert responses["p"]["result"]["pong"] is True
        assert responses["s1"]["ok"] is True


class TestAcceptanceDemo:
    """The ISSUE acceptance gate, over the real TCP path."""

    def test_200_concurrent_requests_all_byte_identical(self, tmp_path):
        report = run(
            run_demo(None, n=200, clients=8, cache_dir=str(tmp_path / "cache"))
        )
        assert report.succeeded == report.total == 200
        assert report.mismatched == []
        assert report.failed == []
        assert len(set(report.schemes_seen)) >= 3
        assert report.batch_size_max > 1.0
        assert report.cache_hits > 0.0
        assert report.queue_depth_peak <= report.queue_capacity
        assert report.ok
        assert "repro_batch_size" in report.metrics_text

    def test_demo_requests_are_deterministic(self):
        assert demo_wire_requests(20, seed=7) == demo_wire_requests(20, seed=7)
        schemes = {w["scheme"] for w in demo_wire_requests(20)}
        assert len(schemes) >= 3


class TestCachePersistence:
    def test_second_service_reuses_on_disk_results(self, tmp_path):
        cache_root = str(tmp_path / "cache")

        async def one_round(service):
            response = await service.handle_message(solve_wire("r"))
            assert response["ok"]
            return response

        first = run(
            with_service(one_round, cache=ResultCache(cache_root), batch_window_ms=0.0)
        )
        second = run(
            with_service(one_round, cache=ResultCache(cache_root), batch_window_ms=0.0)
        )
        assert first["provenance"]["cache"] == "miss"
        assert second["provenance"]["cache"] == "hit"
        assert protocol.canonical_result_bytes(
            first["result"]
        ) == protocol.canonical_result_bytes(second["result"])

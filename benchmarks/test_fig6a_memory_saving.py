"""Figure 6a: memory static energy saving vs utilization U (FFT & matmul).

Paper's reading: SDEM-ON keeps the memory asleep longer than MBKPS at
every U; the gap averages ~10% and widens slightly as utilization drops
(larger U).  The series below are savings relative to MBKP.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import U_SWEEP, run_fig6, write_csv

from conftest import emit


@pytest.mark.parametrize("bench", ["fft", "matmul"])
def test_fig6a_memory_saving(benchmark, bench, seeds, full_scale, results_dir):
    u_values = U_SWEEP if full_scale else [2, 4, 6, 9]
    instances = 64 if full_scale else 32

    series = benchmark.pedantic(
        lambda: run_fig6(bench, u_values=u_values, seeds=seeds, instances=instances),
        rounds=1,
        iterations=1,
    )

    write_csv(series, os.path.join(results_dir, f"fig6a_{bench}.csv"))
    emit(
        f"Fig 6a ({bench}): memory static energy saving vs MBKP (%)",
        (
            f"  {p.label:<6s} SDEM-ON {p.sdem_memory_saving:7.2f}%   "
            f"MBKPS {p.mbkps_memory_saving:7.2f}%   "
            f"(SDEM-ON - MBKPS = {p.sdem_memory_saving - p.mbkps_memory_saving:6.2f} pts)"
            for p in series.points
        ),
    )

    # Shape assertions from Section 8.2.
    for p in series.points:
        assert p.sdem_memory < p.mbkps_memory  # SDEM-ON always sleeps more
    # Memory saving grows as utilization drops (first vs last U).
    assert (
        series.points[-1].sdem_memory_saving
        > series.points[0].sdem_memory_saving
    )

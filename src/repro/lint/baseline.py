"""Finding baseline: CI fails on *new* violations, not accepted legacy.

The baseline file (``.repro-lint-baseline.json``, checked in at the repo
root) records the fingerprints of findings the team has explicitly
accepted.  ``repro check`` subtracts them before deciding the exit code,
so introducing a violation fails CI while a pre-existing, reviewed one
does not block unrelated work.

Fingerprints come from :func:`repro.lint.engine._fingerprint`:
``sha256(rule | path | stripped source line | occurrence index)``.  They
survive edits elsewhere in the file but die with the offending line --
fixing a baselined finding makes its entry *stale*, and ``repro check``
reports stale entries so the file shrinks monotonically instead of
fossilising.

The file format is deliberately boring and diff-friendly::

    {
      "schema": 1,
      "tool": "repro-lint",
      "entries": [
        {"fingerprint": "...", "rule": "DET001", "path": "...", "message": "..."}
      ]
    }

Only ``fingerprint`` participates in matching; the rest is for humans
reviewing the diff when the baseline changes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.lint.engine import Finding

__all__ = [
    "BASELINE_DEFAULT",
    "BASELINE_SCHEMA",
    "Baseline",
    "load_baseline",
    "write_baseline",
]

BASELINE_DEFAULT = ".repro-lint-baseline.json"
BASELINE_SCHEMA = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


@dataclass
class Baseline:
    """The set of accepted finding fingerprints."""

    path: str = BASELINE_DEFAULT
    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Dict[str, object]]]:
        """Split findings into (new, suppressed) and list stale entries.

        *new* findings are absent from the baseline; *suppressed* ones
        matched an entry; *stale* entries matched nothing this run and
        should be pruned with ``--write-baseline``.
        """
        new: List[Finding] = []
        suppressed: List[Finding] = []
        matched: set[str] = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                suppressed.append(finding)
                matched.add(finding.fingerprint)
            else:
                new.append(finding)
        stale = [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in matched
        ]
        return new, suppressed, stale


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline.

    A malformed file raises :class:`BaselineError` -- silently treating a
    corrupt baseline as empty would fail CI with every legacy finding and
    bury the actual problem.
    """
    if not os.path.exists(path):
        return Baseline(path=path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("tool") != "repro-lint":
        raise BaselineError(
            f"{path} is not a repro-lint baseline (missing tool marker)"
        )
    schema = payload.get("schema")
    if schema != BASELINE_SCHEMA:
        raise BaselineError(
            f"{path} has schema {schema!r}; this build reads schema "
            f"{BASELINE_SCHEMA} (regenerate with --write-baseline)"
        )
    entries: Dict[str, Dict[str, object]] = {}
    for entry in payload.get("entries", []):
        if not isinstance(entry, dict):
            continue
        fingerprint = entry.get("fingerprint")
        if isinstance(fingerprint, str) and fingerprint:
            entries[fingerprint] = entry
    return Baseline(path=path, entries=entries)


def write_baseline(path: str, findings: Sequence[Finding]) -> int:
    """Write the current findings as the new accepted baseline.

    Returns the number of entries written.  Entries are sorted by
    (path, line, rule) so regeneration produces reviewable diffs.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    payload = {
        "schema": BASELINE_SCHEMA,
        "tool": "repro-lint",
        "entries": [
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
            for finding in ordered
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(ordered)

"""Serialization: task sets, traces and schedules to/from JSON and CSV.

Formats are deliberately boring:

* **tasks CSV** -- header ``name,release,deadline,workload`` (ms / kc);
* **tasks JSON** -- ``{"schema": 1, "tasks": [{"name": ...,
  "release": ..., "deadline": ..., "workload": ...}, ...]}``;
* **schedule JSON** -- ``{"schema": 1, "cores": [[{"task": ...,
  "start": ..., "end": ..., "speed": ...}, ...], ...]}``.

These feed the CLI (``python -m repro``), the service wire protocol
(:mod:`repro.service.protocol`) and make experiment inputs and outputs
diffable artifacts.

Versioning and forward compatibility
------------------------------------

Writers stamp every JSON document with ``"schema": SCHEMA_VERSION``.
Readers accept documents without the field (pre-versioning emitters) and
documents from *newer* minor revisions under one rule: **unknown fields
are ignored**, at the top level and inside each entry.  A reader only
refuses a document when its ``schema`` is not a positive integer --
required fields going missing is what actually breaks compatibility, and
that is reported per field with an actionable message.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, List, TextIO, Union

from repro.models.task import Task, TaskSet
from repro.schedule.timeline import CoreTimeline, ExecutionInterval, Schedule

__all__ = [
    "SCHEMA_VERSION",
    "tasks_to_json",
    "tasks_from_json",
    "tasks_from_payload",
    "tasks_to_csv",
    "tasks_from_csv",
    "schedule_to_json",
    "schedule_to_payload",
    "schedule_from_json",
    "schedule_from_payload",
]

#: Version stamped into every JSON document this module writes.  Bump on
#: incompatible changes (renamed/removed required fields); additive fields
#: do not need a bump thanks to the unknown-field-ignored rule.
SCHEMA_VERSION = 1

_TASK_FIELDS = ("name", "release", "deadline", "workload")


def _check_schema(payload: Dict[str, object], what: str) -> None:
    """Validate the optional ``schema`` stamp of a decoded document."""
    version = payload.get("schema", SCHEMA_VERSION)
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise ValueError(
            f"{what}: 'schema' must be a positive integer, got {version!r}"
        )


def tasks_to_json(tasks: Iterable[Task]) -> str:
    """Serialize tasks to a JSON string."""
    payload = {
        "schema": SCHEMA_VERSION,
        "tasks": [
            {
                "name": t.name,
                "release": t.release,
                "deadline": t.deadline,
                "workload": t.workload,
            }
            for t in tasks
        ],
    }
    return json.dumps(payload, indent=2)


def tasks_from_payload(payload: Dict[str, object]) -> List[Task]:
    """Parse tasks from a decoded JSON object (see module docstring).

    Unknown fields -- at the top level and on each task entry -- are
    ignored, so documents written by newer revisions still load.
    """
    if not isinstance(payload, dict) or "tasks" not in payload:
        raise ValueError("expected a JSON object with a 'tasks' array")
    _check_schema(payload, "tasks document")
    tasks: List[Task] = []
    for index, entry in enumerate(payload["tasks"]):
        if not isinstance(entry, dict):
            raise ValueError(f"task #{index}: expected a JSON object, got {entry!r}")
        missing = [f for f in ("release", "deadline", "workload") if f not in entry]
        if missing:
            raise ValueError(f"task #{index}: missing fields {missing}")
        tasks.append(
            Task(
                float(entry["release"]),
                float(entry["deadline"]),
                float(entry["workload"]),
                str(entry.get("name", "")),
            )
        )
    return tasks


def tasks_from_json(text: str) -> List[Task]:
    """Parse tasks from a JSON string (see module docstring for schema)."""
    return tasks_from_payload(json.loads(text))


def tasks_to_csv(tasks: Iterable[Task], handle: TextIO) -> None:
    """Write tasks as CSV to an open text handle."""
    writer = csv.writer(handle)
    writer.writerow(_TASK_FIELDS)
    for t in tasks:
        writer.writerow([t.name, t.release, t.deadline, t.workload])


def tasks_from_csv(handle: TextIO) -> List[Task]:
    """Read tasks from a CSV handle with the canonical header."""
    reader = csv.DictReader(handle)
    required = {"release", "deadline", "workload"}
    if reader.fieldnames is None or not required <= set(reader.fieldnames):
        raise ValueError(
            f"tasks CSV needs columns {sorted(required)}; got {reader.fieldnames}"
        )
    tasks: List[Task] = []
    for row_number, row in enumerate(reader):
        tasks.append(
            Task(
                float(row["release"]),
                float(row["deadline"]),
                float(row["workload"]),
                (row.get("name") or f"T{row_number + 1}"),
            )
        )
    if not tasks:
        raise ValueError("tasks CSV contains no rows")
    return tasks


def schedule_to_payload(schedule: Schedule) -> Dict[str, object]:
    """A schedule as the canonical JSON-ready object (schema-stamped)."""
    return {
        "schema": SCHEMA_VERSION,
        "cores": [
            [
                {
                    "task": iv.task,
                    "start": iv.start,
                    "end": iv.end,
                    "speed": iv.speed,
                }
                for iv in core
            ]
            for core in schedule.cores
        ],
    }


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize a schedule to a JSON string."""
    return json.dumps(schedule_to_payload(schedule), indent=2)


def schedule_from_payload(payload: Dict[str, object]) -> Schedule:
    """Parse a schedule from a decoded JSON object.

    Unknown fields on the document and on each interval entry are ignored
    (forward compat); missing required fields raise per-field errors.
    """
    if not isinstance(payload, dict) or "cores" not in payload:
        raise ValueError("expected a JSON object with a 'cores' array")
    _check_schema(payload, "schedule document")
    cores = []
    for entries in payload["cores"]:
        cores.append(
            CoreTimeline(
                ExecutionInterval(
                    str(e["task"]), float(e["start"]), float(e["end"]), float(e["speed"])
                )
                for e in entries
            )
        )
    return Schedule(cores)


def schedule_from_json(text: str) -> Schedule:
    """Parse a schedule from a JSON string."""
    return schedule_from_payload(json.loads(text))

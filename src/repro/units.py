"""Quantity tags: the unit vocabulary of the SDEM codebase.

DESIGN.md Section 7 fixes the repo-wide unit system -- time in **ms**,
speed in **MHz**, workload in **kilocycles**, power in **mW**, energy in
**uJ** (mW * ms) -- and every energy bug we have chased so far was a unit
mix-up that type checkers cannot see (all quantities are ``float``).

This module makes the convention machine-readable.  :func:`unit` is a
zero-cost decorator that stamps a function (or property getter) with the
unit tag of its return value::

    @unit(UJ)
    def block_energy(...) -> float: ...

The stamp is a plain attribute (``__repro_unit__``); nothing at runtime
reads it on a hot path.  The consumer is the static-analysis pass
``repro.lint.rules_units`` (rule UNT001), which reads the decorators
*syntactically* from the AST, infers the dimension of local expressions,
and flags additive arithmetic or comparisons that mix dimensions without
an explicit conversion (``mW * ms -> uJ`` and friends are derived from
:data:`DIMENSIONS`, so multiplicative conversions are understood).

Tags double as documentation: ``repro check --list-rules`` and
docs/STATIC_ANALYSIS.md enumerate the vocabulary below.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Tuple, TypeVar

__all__ = [
    "UJ",
    "MW",
    "MS",
    "MHZ",
    "KC",
    "JOBS_PER_S",
    "SCALAR",
    "DIMENSIONS",
    "UNIT_ATTRIBUTE",
    "unit",
    "dimension_of",
]

#: Energy in microjoules (mW * ms).
UJ = "uJ"
#: Power in milliwatts.
MW = "mW"
#: Time in milliseconds.
MS = "ms"
#: Speed in megahertz (kilocycles per millisecond).
MHZ = "MHz"
#: Workload in kilocycles.
KC = "kc"
#: Arrival / service rates in jobs per second (the streaming replay
#: subsystem's offered-load axis; jobs are a count, so the dimension is
#: pure 1/time).
JOBS_PER_S = "jobs/s"
#: Dimensionless ratios (utilizations, savings percentages, counts).
SCALAR = "scalar"

#: Exponent vector per tag over the base dimensions
#: ``(energy, work, time)``: power is energy/time, speed is work/time.
#: Energy and work stay independent bases -- the power model's
#: ``beta * s**lam`` ties them only through the platform-specific
#: coefficient, so the lint pass must never cancel uJ against kc.
_BaseVector = Tuple[Fraction, Fraction, Fraction]

#: ``tag -> (energy_exp, work_exp, time_exp)``.
DIMENSIONS: Dict[str, _BaseVector] = {
    UJ: (Fraction(1), Fraction(0), Fraction(0)),
    MW: (Fraction(1), Fraction(0), Fraction(-1)),
    MS: (Fraction(0), Fraction(0), Fraction(1)),
    MHZ: (Fraction(0), Fraction(1), Fraction(-1)),
    KC: (Fraction(0), Fraction(1), Fraction(0)),
    JOBS_PER_S: (Fraction(0), Fraction(0), Fraction(-1)),
    SCALAR: (Fraction(0), Fraction(0), Fraction(0)),
}

#: Attribute name the :func:`unit` decorator stamps onto functions.
UNIT_ATTRIBUTE = "__repro_unit__"

_F = TypeVar("_F", bound=Callable[..., object])


def unit(tag: str) -> Callable[[_F], _F]:
    """Mark a function as returning a quantity measured in ``tag``.

    The tag must be one of the vocabulary constants above; unknown tags
    raise immediately so a typo cannot silently disable the lint pass.
    """
    if tag not in DIMENSIONS:
        raise ValueError(
            f"unknown unit tag {tag!r}; valid: {', '.join(sorted(DIMENSIONS))}"
        )

    def mark(func: _F) -> _F:
        setattr(func, UNIT_ATTRIBUTE, tag)
        return func

    return mark


def dimension_of(tag: str) -> _BaseVector:
    """The base-dimension exponent vector of a tag (KeyError on unknown)."""
    return DIMENSIONS[tag]

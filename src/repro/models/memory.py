"""Shared main-memory model (paper Section 3, *System model*).

The memory draws static (leakage) power ``alpha_m`` whenever at least one
core is executing, may sleep only during the *common idle time* of all
cores, and each sleep/wake cycle costs a transition-energy overhead
expressed as the break-even time ``xi_m``: idling awake for ``xi_m`` ms
costs exactly as much as one full transition pair.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryModel"]


@dataclass(frozen=True)
class MemoryModel:
    """Shared memory with sleep-capable leakage power.

    Parameters
    ----------
    alpha_m:
        Static power in mW while active (awake), whether accessed or idle.
    xi_m:
        Break-even time in ms.  The combined active-to-sleep plus
        sleep-to-active transition energy equals ``alpha_m * xi_m``.
        Zero models the free-transition regime of Sections 4-6.
    """

    alpha_m: float
    xi_m: float = 0.0

    def __post_init__(self) -> None:
        if self.alpha_m < 0.0:
            raise ValueError(f"alpha_m must be non-negative, got {self.alpha_m}")
        if self.xi_m < 0.0:
            raise ValueError(f"xi_m must be non-negative, got {self.xi_m}")

    def active_energy(self, duration: float) -> float:
        """Static energy in uJ for staying awake ``duration`` ms."""
        if duration < 0.0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        return self.alpha_m * duration

    def transition_energy(self) -> float:
        """Energy overhead of one sleep/wake cycle, ``alpha_m * xi_m`` uJ."""
        return self.alpha_m * self.xi_m

    def sleep_gap_energy(self, gap: float) -> float:
        """Energy spent on an idle gap if the memory sleeps through it.

        Equal to the transition overhead regardless of gap length (the sleep
        state itself is modelled as zero-power, as in the paper).
        """
        if gap < 0.0:
            raise ValueError(f"gap must be non-negative, got {gap}")
        return self.transition_energy()

    def best_gap_energy(self, gap: float) -> float:
        """Cheapest way to cross an idle gap: sleep iff ``gap >= xi_m``."""
        return min(self.active_energy(gap), self.sleep_gap_energy(gap))

    def should_sleep(self, gap: float) -> bool:
        """True when sleeping through ``gap`` ms saves (>=) energy."""
        return gap >= self.xi_m

    def with_alpha_m(self, alpha_m: float) -> "MemoryModel":
        """Copy with different leakage power (Table 4 sweeps)."""
        return MemoryModel(alpha_m, self.xi_m)

    def with_xi_m(self, xi_m: float) -> "MemoryModel":
        """Copy with different break-even time (Table 4 sweeps)."""
        return MemoryModel(self.alpha_m, xi_m)

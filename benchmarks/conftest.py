"""Shared configuration for the exhibit-regeneration benchmarks.

Each module in ``benchmarks/`` regenerates one table or figure of the
paper's evaluation and prints the same rows/series the paper reports,
wrapped in ``pytest-benchmark`` so the harness also records runtimes.

Scale knob: set ``REPRO_FULL=1`` for the paper-scale runs (10 seeds, full
Table 4 grids); the default is a reduced-but-representative slice so
``pytest benchmarks/ --benchmark-only`` completes in a couple of minutes.
Generated CSVs land in ``benchmarks/results/``.
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
os.makedirs(RESULTS_DIR, exist_ok=True)


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL


@pytest.fixture(scope="session")
def seeds() -> int:
    """Seeds per data point: 10 as in Section 8.2, or 3 reduced."""
    return 10 if FULL else 3


@pytest.fixture(scope="session")
def results_dir() -> str:
    return RESULTS_DIR


def emit(title: str, lines) -> None:
    """Print an exhibit's rows (visible with `pytest -s` and in CI logs)."""
    print(f"\n=== {title} ===")
    for line in lines:
        print(line)

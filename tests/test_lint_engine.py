"""Engine-level behaviour: discovery, naming, pragmas, fingerprints."""

from __future__ import annotations

import pytest

from repro.lint.engine import (
    all_rules,
    analyze_paths,
    module_name_for,
    rule_catalogue,
)
from tests.lint_helpers import run_lint, rule_ids, write_tree


class TestModuleNames:
    def test_src_prefix_stripped(self, tmp_path):
        root = str(tmp_path)
        path = str(tmp_path / "src" / "repro" / "core" / "blocks.py")
        assert module_name_for(path, root) == "repro.core.blocks"

    def test_tests_keep_their_prefix(self, tmp_path):
        path = str(tmp_path / "tests" / "test_x.py")
        assert module_name_for(path, str(tmp_path)) == "tests.test_x"

    def test_init_collapses_to_package(self, tmp_path):
        path = str(tmp_path / "src" / "repro" / "lint" / "__init__.py")
        assert module_name_for(path, str(tmp_path)) == "repro.lint"


class TestPragmas:
    VIOLATION = """
        import time

        def stamp():
            return time.time()
    """

    def test_unsuppressed_violation_found(self, tmp_path):
        findings = run_lint(
            str(tmp_path),
            {"src/repro/util.py": self.VIOLATION},
            rules=["DET001"],
        )
        assert rule_ids(findings) == ["DET001"]

    def test_pragma_on_line_suppresses(self, tmp_path):
        source = """
            import time

            def stamp():
                return time.time()  # repro-lint: allow[DET001] test fixture
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/util.py": source}, rules=["DET001"]
        )
        assert findings == []

    def test_pragma_on_previous_line_suppresses(self, tmp_path):
        source = """
            import time

            def stamp():
                # repro-lint: allow[DET001] test fixture
                return time.time()
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/util.py": source}, rules=["DET001"]
        )
        assert findings == []

    def test_star_pragma_suppresses_any_rule(self, tmp_path):
        source = """
            import time

            def stamp():
                return time.time()  # repro-lint: allow[*] anything goes
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/util.py": source}, rules=["DET001"]
        )
        assert findings == []

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        source = """
            import time

            def stamp():
                return time.time()  # repro-lint: allow[DET004] wrong rule
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/util.py": source}, rules=["DET001"]
        )
        assert rule_ids(findings) == ["DET001"]


class TestFingerprints:
    def test_stable_under_insertions_above(self, tmp_path):
        before = "import time\n\ndef f():\n    return time.time()\n"
        after = (
            "import time\n\n# an unrelated new comment\n\n"
            "def f():\n    return time.time()\n"
        )
        first = run_lint(
            str(tmp_path / "a"), {"src/repro/m.py": before}, rules=["DET001"]
        )
        second = run_lint(
            str(tmp_path / "b"), {"src/repro/m.py": after}, rules=["DET001"]
        )
        assert first[0].line != second[0].line
        assert first[0].fingerprint == second[0].fingerprint

    def test_identical_lines_get_distinct_fingerprints(self, tmp_path):
        source = """
            import time

            def f():
                return time.time()

            def g():
                return time.time()
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/m.py": source}, rules=["DET001"]
        )
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint


class TestRuleSelection:
    def test_family_selector(self):
        rules = all_rules(["determinism"])
        families = {rule.family for rule in rules}
        assert families == {"determinism", "engine"}  # ENG001 always runs

    def test_id_selector(self):
        rules = all_rules(["DET004"])
        assert {rule.id for rule in rules} == {"DET004", "ENG001"}

    def test_unknown_selector_raises_with_catalogue(self):
        with pytest.raises(ValueError, match="bogus"):
            all_rules(["bogus"])
        with pytest.raises(ValueError, match="DET001"):
            all_rules(["bogus"])

    def test_catalogue_covers_every_family(self):
        families = {entry["family"] for entry in rule_catalogue()}
        assert {"determinism", "backend", "concurrency", "units"} <= families


class TestParseErrors:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        findings = run_lint(
            str(tmp_path),
            {"src/repro/broken.py": "def f(:\n    pass\n"},
            rules=["ENG001"],
        )
        assert rule_ids(findings) == ["ENG001"]
        assert "syntax error" in findings[0].message

    def test_other_rules_skip_unparseable_files(self, tmp_path):
        write_tree(
            str(tmp_path),
            {
                "src/repro/broken.py": "def f(:\n    pass\n",
                "src/repro/fine.py": "import time\nX = time.time()\n",
            },
        )
        _, findings = analyze_paths(
            [str(tmp_path)], root=str(tmp_path), rules=all_rules(["DET001"])
        )
        assert sorted(rule_ids(findings)) == ["DET001", "ENG001"]

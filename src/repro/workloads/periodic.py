"""Periodic task model and hyperperiod expansion.

The system-wide energy literature the paper builds on (Zhong & Xu 2008,
Jejurikar & Gupta 2004) works with periodic real-time task sets; the
paper's own sporadic generator is a relaxation of this model.  This module
closes the loop: declare periodic tasks, expand them into concrete job
instances over a window (one hyperperiod by default), and feed the result
to any scheduler in the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.models.task import Task

__all__ = ["PeriodicTask", "hyperperiod", "expand_periodic", "total_utilization"]


@dataclass(frozen=True)
class PeriodicTask:
    """A periodic task: jobs released every ``period`` ms.

    Parameters
    ----------
    name:
        Stream identifier; job instances are named ``{name}#{k}``.
    period:
        Inter-release time in ms (positive).
    workload:
        Cycles per job in kilocycles.
    relative_deadline:
        Deadline offset from release; defaults to the period (implicit
        deadlines).
    phase:
        Release offset of the first job.
    """

    name: str
    period: float
    workload: float
    relative_deadline: Optional[float] = None
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ValueError(f"{self.name}: period must be positive")
        if self.workload <= 0.0:
            raise ValueError(f"{self.name}: workload must be positive")
        if self.deadline_offset <= 0.0:
            raise ValueError(f"{self.name}: relative deadline must be positive")
        if self.phase < 0.0:
            raise ValueError(f"{self.name}: phase must be non-negative")

    @property
    def deadline_offset(self) -> float:
        return (
            self.period if self.relative_deadline is None else self.relative_deadline
        )

    def density(self, speed: float) -> float:
        """Utilization at a reference ``speed`` (MHz): time demand/period."""
        return (self.workload / speed) / self.period


def hyperperiod(tasks: Sequence[PeriodicTask], *, resolution: float = 1e-6) -> float:
    """Least common multiple of the periods (quantized at ``resolution``).

    Periods are scaled to integers at ``resolution`` ms before the LCM, so
    non-integer periods work; wildly incommensurate periods produce huge
    hyperperiods, which is faithful to the model.
    """
    if not tasks:
        raise ValueError("need at least one periodic task")
    scaled = [round(t.period / resolution) for t in tasks]
    if any(s <= 0 for s in scaled):
        raise ValueError("period below the quantization resolution")
    acc = scaled[0]
    for s in scaled[1:]:
        acc = acc * s // math.gcd(acc, s)
    return acc * resolution


def expand_periodic(
    tasks: Sequence[PeriodicTask],
    *,
    window: Optional[float] = None,
) -> List[Task]:
    """Expand periodic tasks into job instances over ``[0, window]``.

    ``window`` defaults to one hyperperiod (plus phases).  Jobs whose
    deadline would exceed the window are still included when their release
    falls inside it -- truncating deadlines would distort feasibility.
    Returns release-ordered jobs ready for the simulation engine.
    """
    if window is None:
        window = hyperperiod(tasks) + max(t.phase for t in tasks)
    if window <= 0.0:
        raise ValueError("window must be positive")
    jobs: List[Task] = []
    for task in tasks:
        k = 0
        while True:
            release = task.phase + k * task.period
            if release >= window:
                break
            jobs.append(
                Task(
                    release,
                    release + task.deadline_offset,
                    task.workload,
                    f"{task.name}#{k}",
                )
            )
            k += 1
    jobs.sort(key=lambda j: (j.release, j.name))
    if not jobs:
        raise ValueError("window too short: no job released")
    return jobs


def total_utilization(tasks: Sequence[PeriodicTask], *, speed: float) -> float:
    """Sum of per-task densities at a reference speed."""
    return sum(t.density(speed) for t in tasks)

"""SDEM-ON: the paper's online heuristic for general tasks (Section 6).

On every arrival the policy:

1. re-anchors all unfinished work at the current instant ``t`` (a
   common-release relaxation of the remaining problem);
2. solves it optimally with the Section 4 scheme (Section 7's variant when
   transition overheads are modelled), obtaining each task's planned
   execution time ``p_j``;
3. *procrastinates*: keeps the memory (and cores) asleep until the first
   task hits its latest start time ``d_j - p_j``, then starts **all**
   current tasks together, so their executions -- and therefore the
   memory's busy time -- overlap maximally.

Arrivals preempt the plan: workloads are decremented by what actually ran
and the relaxation is re-solved.  Feasibility is preserved because
procrastination never plans a start later than every task's latest start,
and re-solving at higher urgency can only raise speeds toward ``s_up``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.common_release import solve_common_release
from repro.core.fptas import get_solver_tier, solve_common_release_fptas
from repro.core.transition import solve_common_release_with_overhead
from repro.energy.accounting import SleepPolicy
from repro.models.platform import Platform
from repro.models.task import Task, TaskSet
from repro.schedule.timeline import ExecutionInterval
from repro.sim.cores import CoreAllocator
from repro.utils.solvers import add_solver_seconds

__all__ = ["SdemOnlinePolicy"]

_EPS = 1e-9


@dataclass
class _Job:
    name: str
    deadline: float
    remaining: float
    speed: float = 0.0  # planned speed (set by replan)
    planned_start: float = math.inf


class SdemOnlinePolicy:
    """The paper's online heuristic (evaluated as SDEM-ON in Section 8).

    Parameters
    ----------
    platform:
        Supplies the power models; ``platform.core.alpha`` selects the
        Section 4.1 or 4.2 inner solver, and non-zero break-even times
        switch to the Section 7 overhead-aware solver.
    num_cores:
        Physical core count for the allocator; default taken from the
        platform (``None`` = unbounded).
    procrastinate:
        Ablation knob (DESIGN.md A1).  ``True`` (the paper's rule) delays
        the batch until the first latest-start instant so executions
        overlap maximally; ``False`` starts every batch immediately,
        keeping the per-task speeds but discarding the alignment.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        num_cores: Optional[int] = None,
        procrastinate: bool = True,
    ):
        self.platform = platform
        self.procrastinate = procrastinate
        self.memory_policy = SleepPolicy.BREAK_EVEN
        self.core_policy = SleepPolicy.BREAK_EVEN
        self._jobs: Dict[str, _Job] = {}
        self._allocator = CoreAllocator(
            num_cores if num_cores is not None else platform.num_cores
        )
        self._wake = math.inf
        self._use_overhead_scheme = (
            platform.memory.xi_m > 0.0 or platform.core.xi > 0.0
        )

    # -- OnlinePolicy interface ------------------------------------------------

    def on_arrival(self, now: float, tasks: Sequence[Task]) -> None:
        for task in tasks:
            if task.name in self._jobs:
                raise ValueError(f"duplicate online task name {task.name!r}")
            self._jobs[task.name] = _Job(task.name, task.deadline, task.workload)
        self._replan(now)

    def run_until(
        self, now: float, until: float
    ) -> List[Tuple[int, ExecutionInterval]]:
        out: List[Tuple[int, ExecutionInterval]] = []
        if not self._jobs:
            return out
        wake = self._wake
        start = wake if wake > now else now
        if until <= start + _EPS:
            return out
        finished: List[Tuple[str, float]] = []
        for job in self._jobs.values():
            speed = job.speed
            natural_end = start + job.remaining / speed
            seg_end = until if until < natural_end else natural_end
            if seg_end <= start + _EPS:
                continue
            core = self._allocator.acquire(job.name, start)
            out.append(
                (core, ExecutionInterval(job.name, start, seg_end, speed))
            )
            job.remaining -= speed * (seg_end - start)
            slack = 1e-9 * speed
            if job.remaining <= (slack if slack > _EPS else _EPS):
                finished.append((job.name, seg_end))
        for name, at in finished:
            del self._jobs[name]
            self._allocator.release(name, at=at)
        # If anything remains (an arrival interrupted the run), it resumes
        # immediately after the interrupting replan; advancing the wake time
        # here keeps run_until idempotent for zero-length calls.
        if self._jobs:
            self._wake = until
        return out

    # -- internals -----------------------------------------------------------------

    @property
    def peak_concurrency(self) -> int:
        return self._allocator.peak_concurrency

    @property
    def live_jobs(self) -> int:
        """Unfinished jobs currently tracked by the policy.

        The streaming replayer's admission control reads this as the
        backlog: every live job re-enters the common-release relaxation on
        the next replan, so bounding it bounds both per-arrival solve cost
        and the concurrency the relaxation assumes.
        """
        return len(self._jobs)

    def _replan(self, now: float) -> None:
        """Re-solve the common-release relaxation at instant ``now``."""
        live = [j for j in self._jobs.values() if j.remaining > _EPS]
        if not live:
            self._wake = math.inf
            return
        # Same ordering TaskSet.__init__ would produce: releases are all
        # `now`, so (deadline, release, workload) reduces to this key, and
        # the stable sort preserves arrival order on full ties.
        live.sort(key=lambda job: (job.deadline, job.remaining))
        relaxed = TaskSet.presorted(
            tuple([Task(now, job.deadline, job.remaining, job.name) for job in live])
        )
        # Timed via the per-process accumulator so the engine can ship a
        # solver/engine wall split back from pool workers (repro bench).
        solve_started = time.perf_counter()
        if get_solver_tier() == "fptas":
            # The ε-approximate tier subsumes both branches below: with
            # zero transition overheads its gap terms vanish and the ladder
            # scan degenerates to the Section 4 objective.
            solution = solve_common_release_fptas(
                relaxed, self.platform, check_inputs=False
            )
        elif self._use_overhead_scheme:
            # check_inputs=False: the relaxed set is common-release by
            # construction (every job re-anchored at `now`) and replanning
            # preserves feasibility, so the solver's input guards are
            # redundant on this hot path.
            solution = solve_common_release_with_overhead(
                relaxed, self.platform, check_inputs=False
            )
        else:
            solution = solve_common_release(relaxed, self.platform)
        add_solver_seconds(time.perf_counter() - solve_started)
        wake = math.inf
        for job in live:
            duration = solution.finish_times[job.name] - now
            job.speed = job.remaining / duration
            latest_start = job.deadline - duration
            wake = min(wake, latest_start)
        if not self.procrastinate:
            wake = now  # A1 ablation: eager start, no alignment
        self._wake = max(now, wake)

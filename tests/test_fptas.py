"""ε-approximate solver tier: selection state, keys, wire plumbing, bounds.

Deterministic tests for :mod:`repro.core.fptas`; the randomized
(1+ε)-bound and feasibility sweeps live in
``tests/test_fptas_properties.py``.
"""

from __future__ import annotations

import pytest

from repro.core import vectorized
from repro.core.agreeable import solve_agreeable
from repro.core.common_release import solve_common_release
from repro.core.fptas import (
    DEFAULT_EPSILON,
    EPSILON_ENV,
    SOLVER_TIERS,
    TIER_ENV,
    get_solver_epsilon,
    get_solver_tier,
    pinned_solver,
    set_solver_tier,
    solve_agreeable_fptas,
    solve_agreeable_fptas_columns,
    solve_common_release_fptas,
    solver_cache_component,
)
from repro.core.transition import solve_common_release_with_overhead
from repro.experiments.cache import service_request_key, unit_key
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import validate_schedule
from repro.service.protocol import (
    E_BAD_REQUEST,
    ProtocolError,
    execute_request,
    request_from_wire,
)
from repro.workloads.synthetic import agreeable_trace


@pytest.fixture(autouse=True)
def _reset_tier_and_backend(monkeypatch):
    """Every test starts on the exact tier with no env leakage."""
    monkeypatch.delenv(TIER_ENV, raising=False)
    monkeypatch.delenv(EPSILON_ENV, raising=False)
    set_solver_tier(None)
    yield
    set_solver_tier(None)
    vectorized.set_backend(None)


def make_platform(alpha: float = 2.0, alpha_m: float = 10.0, xi_m: float = 0.0):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=1000.0),
        MemoryModel(alpha_m=alpha_m, xi_m=xi_m),
    )


AGREEABLE = TaskSet(
    [
        Task(0.0, 30.0, 4000.0, "a"),
        Task(5.0, 55.0, 9000.0, "b"),
        Task(40.0, 95.0, 2500.0, "c"),
        Task(120.0, 160.0, 6000.0, "d"),
    ]
)

COMMON = TaskSet(
    [
        Task(0.0, 40.0, 8000.0, "a"),
        Task(0.0, 70.0, 15000.0, "b"),
        Task(0.0, 100.0, 5000.0, "c"),
    ]
)


# ---------------------------------------------------------------------------
# Tier selection state
# ---------------------------------------------------------------------------


class TestTierSelection:
    def test_defaults(self):
        assert get_solver_tier() == "exact"
        assert get_solver_epsilon() == DEFAULT_EPSILON

    def test_override_and_clear(self):
        set_solver_tier("fptas", 0.5)
        assert get_solver_tier() == "fptas"
        assert get_solver_epsilon() == 0.5
        set_solver_tier(None)
        assert get_solver_tier() == "exact"
        assert get_solver_epsilon() == DEFAULT_EPSILON

    def test_env_fallback_and_override_precedence(self, monkeypatch):
        monkeypatch.setenv(TIER_ENV, "fptas")
        monkeypatch.setenv(EPSILON_ENV, "0.25")
        assert get_solver_tier() == "fptas"
        assert get_solver_epsilon() == 0.25
        set_solver_tier("exact")
        assert get_solver_tier() == "exact"

    def test_bad_tier_rejected(self):
        with pytest.raises(ValueError, match="solver tier"):
            set_solver_tier("annealing")

    @pytest.mark.parametrize("eps", [0.0, -0.1, 2.5, float("nan"), "zero"])
    def test_bad_epsilon_rejected(self, eps):
        with pytest.raises(ValueError, match="epsilon"):
            set_solver_tier("fptas", eps)

    def test_pinned_solver_restores(self):
        set_solver_tier("fptas", 0.5)
        with pinned_solver("exact"):
            assert get_solver_tier() == "exact"
        assert get_solver_tier() == "fptas"
        assert get_solver_epsilon() == 0.5

    def test_tiers_tuple(self):
        assert SOLVER_TIERS == ("exact", "fptas")


# ---------------------------------------------------------------------------
# Cache keys can never alias across tiers
# ---------------------------------------------------------------------------


class TestCacheKeys:
    def test_solver_cache_component(self):
        assert solver_cache_component() == {"tier": "exact"}
        set_solver_tier("fptas", 0.25)
        assert solver_cache_component() == {"tier": "fptas", "epsilon": 0.25}

    def test_unit_key_partitions_tiers(self):
        platform = make_platform()
        config = {"kind": "synthetic", "n": 4}
        exact = unit_key(platform, config, 0, "sdem")
        set_solver_tier("fptas", 0.1)
        coarse = unit_key(platform, config, 0, "sdem")
        set_solver_tier("fptas", 0.01)
        fine = unit_key(platform, config, 0, "sdem")
        assert len({exact, coarse, fine}) == 3

    def test_service_key_exact_ignores_epsilon_default(self):
        platform = make_platform()
        config = [(0.0, 40.0, 8000.0, "a")]
        base = service_request_key(platform, config, "section4", "scalar")
        explicit = service_request_key(
            platform, config, "section4", "scalar", solver="exact", epsilon=None
        )
        assert base == explicit

    def test_service_key_fptas_scoped_by_epsilon(self):
        platform = make_platform()
        config = [(0.0, 40.0, 8000.0, "a")]
        exact = service_request_key(platform, config, "section4", "scalar")
        coarse = service_request_key(
            platform, config, "section4", "scalar", solver="fptas", epsilon=0.1
        )
        fine = service_request_key(
            platform, config, "section4", "scalar", solver="fptas", epsilon=0.01
        )
        assert len({exact, coarse, fine}) == 3


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


def wire_solve(**overrides):
    wire = {
        "v": 1,
        "id": "r1",
        "kind": "solve",
        "tasks": [
            {"name": "a", "release": 0.0, "deadline": 40.0, "workload": 8000.0},
            {"name": "b", "release": 0.0, "deadline": 70.0, "workload": 15000.0},
        ],
    }
    wire.update(overrides)
    return wire


class TestProtocol:
    def test_default_solver_is_exact(self):
        request = request_from_wire(wire_solve())
        assert request.solver == "exact"
        assert request.epsilon is None

    def test_fptas_epsilon_defaults(self):
        request = request_from_wire(wire_solve(solver="fptas"))
        assert request.solver == "fptas"
        assert request.epsilon == DEFAULT_EPSILON

    def test_unknown_solver_rejected(self):
        with pytest.raises(ProtocolError, match="solver") as excinfo:
            request_from_wire(wire_solve(solver="quantum"))
        assert excinfo.value.code == E_BAD_REQUEST

    def test_epsilon_without_fptas_rejected(self):
        with pytest.raises(ProtocolError, match="epsilon"):
            request_from_wire(wire_solve(epsilon=0.1))

    @pytest.mark.parametrize("eps", [0.0, -1.0, 2.5, "tiny"])
    def test_bad_epsilon_rejected(self, eps):
        with pytest.raises(ProtocolError, match="epsilon"):
            request_from_wire(wire_solve(solver="fptas", epsilon=eps))

    def test_exact_result_payload_untouched_by_tier_fields(self):
        result = execute_request(request_from_wire(wire_solve()))
        assert "solver" not in result
        assert "epsilon" not in result

    def test_fptas_result_reports_tier_and_bound(self):
        exact = execute_request(request_from_wire(wire_solve()))
        approx = execute_request(
            request_from_wire(wire_solve(solver="fptas", epsilon=0.1))
        )
        assert approx["solver"] == "fptas"
        assert approx["epsilon"] == 0.1
        exact_total = exact["energy"]["total"]
        assert approx["energy"]["total"] <= 1.1 * exact_total + 1e-9

    def test_fptas_agreeable_scheme(self):
        wire = wire_solve(
            solver="fptas",
            scheme="agreeable",
            tasks=[
                {"name": t.name, "release": t.release,
                 "deadline": t.deadline, "workload": t.workload}
                for t in AGREEABLE
            ],
        )
        result = execute_request(request_from_wire(wire))
        assert result["solver"] == "fptas"
        assert result["num_blocks"] >= 1


# ---------------------------------------------------------------------------
# Bounds and identities on fixed instances
# ---------------------------------------------------------------------------


class TestFixedInstanceBounds:
    @pytest.mark.parametrize("eps", [0.1, 0.01])
    def test_agreeable_bound_and_feasibility(self, eps):
        platform = make_platform()
        exact = solve_agreeable(AGREEABLE, platform)
        approx = solve_agreeable_fptas(AGREEABLE, platform, epsilon=eps)
        assert approx.predicted_energy <= (1.0 + eps) * exact.predicted_energy
        validate_schedule(
            approx.schedule(), AGREEABLE, max_speed=platform.core.s_up
        )

    def test_agreeable_overhead_bound(self):
        platform = make_platform(xi_m=5.0)
        exact = solve_agreeable(
            AGREEABLE, platform, include_transition_overhead=True
        )
        approx = solve_agreeable_fptas(
            AGREEABLE, platform, epsilon=0.1, include_transition_overhead=True
        )
        assert approx.predicted_energy <= 1.1 * exact.predicted_energy

    def test_common_release_bound_and_feasibility(self):
        platform = make_platform()
        exact = solve_common_release(COMMON, platform)
        approx = solve_common_release_fptas(COMMON, platform, epsilon=0.1)
        assert approx.predicted_energy <= 1.1 * exact.predicted_energy
        validate_schedule(
            approx.schedule(), COMMON, max_speed=platform.core.s_up
        )

    def test_common_release_overhead_bound(self):
        platform = make_platform(xi_m=8.0)
        exact = solve_common_release_with_overhead(COMMON, platform)
        approx = solve_common_release_fptas(COMMON, platform, epsilon=0.1)
        assert approx.predicted_energy <= 1.1 * exact.predicted_energy

    def test_tier_epsilon_used_when_omitted(self):
        platform = make_platform()
        set_solver_tier("fptas", 0.5)
        tiered = solve_agreeable_fptas(AGREEABLE, platform)
        explicit = solve_agreeable_fptas(AGREEABLE, platform, epsilon=0.5)
        assert tiered.predicted_energy == explicit.predicted_energy

    def test_non_agreeable_rejected(self):
        platform = make_platform()
        crossed = TaskSet([Task(0.0, 90.0, 100.0), Task(5.0, 20.0, 100.0)])
        with pytest.raises(ValueError, match="agreeable"):
            solve_agreeable_fptas(crossed, platform)

    def test_infeasible_rejected(self):
        platform = make_platform()
        hopeless = TaskSet([Task(0.0, 1.0, 1e9, "x")])
        with pytest.raises(ValueError, match="infeasible"):
            solve_agreeable_fptas(hopeless, platform)


# ---------------------------------------------------------------------------
# Columns path: identical to the object path, no Task materialization
# ---------------------------------------------------------------------------


class TestColumnsPath:
    def test_columns_match_object_path_exactly(self):
        platform = make_platform()
        releases, deadlines, workloads = agreeable_trace(
            n=60, max_interarrival=120.0, seed=7
        )
        tasks = TaskSet.presorted(
            tuple(
                Task(r, d, w, f"H{i}")
                for i, (r, d, w) in enumerate(zip(releases, deadlines, workloads))
            )
        )
        for eps in (0.1, 0.01):
            cols = solve_agreeable_fptas_columns(
                releases, deadlines, workloads, platform, epsilon=eps
            )
            objs = solve_agreeable_fptas(tasks, platform, epsilon=eps)
            assert cols["energy"] == objs.predicted_energy
            assert cols["num_blocks"] == objs.num_blocks

    def test_columns_backend_independent(self):
        platform = make_platform()
        releases, deadlines, workloads = agreeable_trace(
            n=40, max_interarrival=120.0, seed=11
        )
        energies = {}
        for backend in ("scalar", "numpy", "jit"):
            if backend == "numpy" and not vectorized.HAS_NUMPY:
                continue
            vectorized.set_backend(backend)
            result = solve_agreeable_fptas_columns(
                releases, deadlines, workloads, platform, epsilon=0.1
            )
            energies[backend] = result["energy"]
        assert len(set(energies.values())) == 1

    def test_columns_validates_shape_and_order(self):
        platform = make_platform()
        with pytest.raises(ValueError, match="align"):
            solve_agreeable_fptas_columns([0.0], [1.0, 2.0], [1.0], platform)
        with pytest.raises(ValueError, match="agreeable"):
            solve_agreeable_fptas_columns(
                [0.0, 10.0], [50.0, 20.0], [10.0, 10.0], platform
            )

    def test_empty_columns(self):
        result = solve_agreeable_fptas_columns([], [], [], make_platform())
        assert result["energy"] == 0.0
        assert result["num_blocks"] == 0


# ---------------------------------------------------------------------------
# Huge-n trace generator
# ---------------------------------------------------------------------------


class TestAgreeableTrace:
    def test_deterministic_and_agreeable(self):
        a = agreeable_trace(n=200, max_interarrival=120.0, seed=3)
        b = agreeable_trace(n=200, max_interarrival=120.0, seed=3)
        assert a == b
        releases, deadlines, _ = a
        assert releases == sorted(releases)
        assert deadlines == sorted(deadlines)
        assert all(d >= r for r, d in zip(releases, deadlines))

    def test_backend_bit_identity(self):
        if not vectorized.HAS_NUMPY:
            pytest.skip("numpy backend unavailable")
        vectorized.set_backend("scalar")
        scalar = agreeable_trace(n=500, max_interarrival=120.0, seed=9)
        vectorized.set_backend("numpy")
        batched = agreeable_trace(n=500, max_interarrival=120.0, seed=9)
        assert scalar == batched

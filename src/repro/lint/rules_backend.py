"""Backend-purity rules (BCK0xx): the scalar/numpy dual core stays dual.

The numeric core (PR 2) runs CI in two legs: one without numpy installed
(the scalar reference) and one with it.  That only works while

* numpy is imported in exactly the sanctioned modules, guarded by
  ``try/except ImportError`` so the scalar leg still imports cleanly
  (``BCK001``/``BCK002``).  The sanctioned list defaults to
  :data:`repro.lint.config.DEFAULT_SANCTIONED_NUMPY_MODULES` and can be
  overridden per checkout via ``[tool.repro-lint]
  sanctioned-numpy-modules`` in ``pyproject.toml``;
* every other module reaches ndarray work through the dispatcher in
  :mod:`repro.core.vectorized` rather than importing numpy itself
  (``BCK002``);
* the ``REPRO_NUMERIC`` environment variable is *read* only by the
  sanctioned accessor :func:`repro.core.vectorized.get_backend`, so the
  override > env > auto precedence cannot fork (``BCK003``).  Writes are
  allowed -- the CLI exports the flag to pool workers;
* the jit toolchains (numba/cffi, PR 6) are imported only inside
  ``repro.core.kernels`` -- every other module reaches compiled code
  through the dispatcher, so a checkout without either toolchain
  degrades instead of crashing (``BCK004``).  The sanctioned list is
  prefix-scoped (the kernels *package* including its provider
  submodules) and configurable via ``[tool.repro-lint]
  sanctioned-jit-modules``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.config import (
    DEFAULT_SANCTIONED_JIT_MODULES,
    DEFAULT_SANCTIONED_NUMPY_MODULES,
)
from repro.lint.engine import (
    Finding,
    Project,
    Rule,
    SourceModule,
    dotted_call_name,
    parent_chain,
    register,
)

__all__ = [
    "NumpyImportGuardRule",
    "NumpyImportScopeRule",
    "BackendEnvReadRule",
    "JitImportScopeRule",
]

#: Modules allowed to import numpy directly.  ``core.vectorized`` is the
#: dispatcher itself; ``utils.solvers`` hosts the batched primitives the
#: dispatcher calls into (splitting them out would create an import cycle).
#: This is the *default*; each run rescopes from ``project.config``
#: ([tool.repro-lint] sanctioned-numpy-modules in pyproject.toml).
SANCTIONED_NUMPY_MODULES = DEFAULT_SANCTIONED_NUMPY_MODULES

#: Packages allowed to import the jit toolchains (numba/cffi).  Prefix
#: semantics: an entry sanctions the named module *and* everything under
#: it, because the kernels package splits its providers into submodules.
#: Rescoped per run from ``[tool.repro-lint] sanctioned-jit-modules``.
SANCTIONED_JIT_MODULES = DEFAULT_SANCTIONED_JIT_MODULES

#: Toolchain packages BCK004 confines to the sanctioned jit modules.
JIT_TOOLCHAIN_PACKAGES = ("numba", "cffi")

#: The one module allowed to read the backend environment variable.
BACKEND_ACCESSOR_MODULE = "repro.core.vectorized"

_BACKEND_ENV = "REPRO_NUMERIC"


def _is_numpy_import(node: ast.AST) -> bool:
    if isinstance(node, ast.Import):
        return any(
            item.name == "numpy" or item.name.startswith("numpy.")
            for item in node.names
        )
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        return module == "numpy" or module.startswith("numpy.")
    return False


def _jit_import_target(node: ast.AST) -> Optional[str]:
    """The toolchain package a node imports (``numba``/``cffi``), if any."""
    if isinstance(node, ast.Import):
        for item in node.names:
            for pkg in JIT_TOOLCHAIN_PACKAGES:
                if item.name == pkg or item.name.startswith(pkg + "."):
                    return pkg
        return None
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if node.level:  # relative import: never a toolchain package
            return None
        for pkg in JIT_TOOLCHAIN_PACKAGES:
            if module == pkg or module.startswith(pkg + "."):
                return pkg
    return None


def _guarded_by_import_error(node: ast.AST) -> bool:
    """True when the import sits in a ``try`` with an ImportError handler."""
    for ancestor in parent_chain(node):
        if isinstance(ancestor, ast.Try):
            for handler in ancestor.handlers:
                if _handler_catches_import_error(handler):
                    return True
    return False


def _handler_catches_import_error(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    names: list[ast.expr] = list(kind.elts) if isinstance(kind, ast.Tuple) else [kind]
    for name in names:
        if isinstance(name, ast.Name) and name.id in (
            "ImportError",
            "ModuleNotFoundError",
        ):
            return True
    return False


@register
class NumpyImportGuardRule(Rule):
    id = "BCK001"
    family = "backend"
    description = (
        "numpy import in a sanctioned module must be guarded by "
        "try/except ImportError so the scalar CI leg still imports"
    )
    hint = (
        "wrap in try/except ImportError and fall back to None "
        "(see repro.core.vectorized)"
    )
    packages = SANCTIONED_NUMPY_MODULES

    def run(self, project: Project) -> Iterator[Finding]:
        # Rescope to the configured sanctioned list before walking.
        self.packages = project.config.sanctioned_numpy_modules
        yield from super().run(project)

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if _is_numpy_import(node) and not _guarded_by_import_error(node):
                yield self.finding(
                    module,
                    node,
                    "unguarded numpy import would break the numpy-less "
                    "(scalar backend) CI leg",
                )


@register
class NumpyImportScopeRule(Rule):
    id = "BCK002"
    family = "backend"
    description = (
        "numpy imported outside the sanctioned modules; ndarray work "
        "must go through the repro.core.vectorized dispatcher"
    )
    hint = (
        "call the batched primitive you need via repro.core.vectorized "
        "(or add one there) instead of importing numpy locally"
    )

    #: Per-run sanctioned list (rescoped from project.config in run()).
    _sanctioned: tuple[str, ...] = SANCTIONED_NUMPY_MODULES

    def run(self, project: Project) -> Iterator[Finding]:
        self._sanctioned = project.config.sanctioned_numpy_modules
        yield from super().run(project)

    def applies_to(self, module: SourceModule) -> bool:
        if not super().applies_to(module):
            return False
        return module.name not in self._sanctioned

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if _is_numpy_import(node):
                yield self.finding(
                    module,
                    node,
                    f"numpy import in {module.name}; only "
                    f"{', '.join(self._sanctioned)} may import it",
                )


@register
class BackendEnvReadRule(Rule):
    id = "BCK003"
    family = "backend"
    description = (
        "REPRO_NUMERIC read outside repro.core.vectorized.get_backend(); "
        "the override > env > auto precedence must have one owner"
    )
    hint = "call repro.core.vectorized.get_backend() (writes for worker export are fine)"

    def applies_to(self, module: SourceModule) -> bool:
        if not super().applies_to(module):
            return False
        return module.name != BACKEND_ACCESSOR_MODULE

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript):
                if (
                    isinstance(node.ctx, ast.Load)
                    and self._is_environ(node.value, module)
                    and self._is_backend_key(node.slice, module)
                ):
                    yield self._flag(module, node)
            elif isinstance(node, ast.Call):
                name = dotted_call_name(node.func, module.aliases)
                key: Optional[ast.AST] = None
                if name in ("os.getenv",) and node.args:
                    key = node.args[0]
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("get", "setdefault", "pop")
                    and self._is_environ(node.func.value, module)
                    and node.args
                ):
                    key = node.args[0]
                if key is not None and self._is_backend_key(key, module):
                    yield self._flag(module, node)

    @staticmethod
    def _is_environ(node: ast.AST, module: SourceModule) -> bool:
        name = dotted_call_name(node, module.aliases)
        return name in ("os.environ", "environ")

    @staticmethod
    def _is_backend_key(node: ast.AST, module: SourceModule) -> bool:
        if isinstance(node, ast.Constant):
            return node.value == _BACKEND_ENV
        name = dotted_call_name(node, module.aliases)
        if name is None:
            return False
        return name.split(".")[-1] == "BACKEND_ENV" or name.endswith(
            "vectorized.BACKEND_ENV"
        )

    def _flag(self, module: SourceModule, node: ast.AST) -> Finding:
        return self.finding(
            module,
            node,
            "REPRO_NUMERIC must be read through "
            "repro.core.vectorized.get_backend(), not the raw environment",
        )


@register
class JitImportScopeRule(Rule):
    id = "BCK004"
    family = "backend"
    description = (
        "numba/cffi imported outside the sanctioned jit modules; compiled "
        "kernels must stay inside repro.core.kernels so checkouts without "
        "a jit toolchain degrade instead of crashing"
    )
    hint = (
        "call the compiled kernel you need via repro.core.kernels "
        "(or add one there) instead of importing numba/cffi locally"
    )

    #: Per-run sanctioned prefixes (rescoped from project.config in run()).
    _sanctioned: tuple[str, ...] = SANCTIONED_JIT_MODULES

    def run(self, project: Project) -> Iterator[Finding]:
        self._sanctioned = project.config.sanctioned_jit_modules
        yield from super().run(project)

    def applies_to(self, module: SourceModule) -> bool:
        if not super().applies_to(module):
            return False
        # Prefix semantics: sanctioning a package sanctions its submodules
        # (the providers live under repro.core.kernels).
        return not any(
            module.name == root or module.name.startswith(root + ".")
            for root in self._sanctioned
        )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            pkg = _jit_import_target(node)
            if pkg is not None:
                yield self.finding(
                    module,
                    node,
                    f"{pkg} import in {module.name}; only "
                    f"{', '.join(self._sanctioned)} (and submodules) may "
                    "import the jit toolchains",
                )

"""Core power model ``P(s) = alpha + beta * s**lam`` (paper Eq. (1)).

The model carries the whole critical-speed algebra of the paper:

* ``s_m = (alpha / (beta * (lam - 1))) ** (1/lam)`` -- the speed minimizing
  the per-workload core energy ``(beta * s**lam + alpha) * w / s``
  (Section 4.2, *Critical speed*);
* ``s_0 = min(max(s_m, s_f), s_up)`` -- the task-clamped critical speed;
* ``s_cm = ((alpha + alpha_m) / (beta * (lam - 1))) ** (1/lam)`` -- the
  *memory-associated* critical speed (Section 5.2), which also charges the
  memory's static power to the execution window;
* ``s_1 = min(max(s_cm, s_f), s_up)``;
* ``s_c`` -- the *constrained* critical speed of Section 7 that falls back
  to the filled speed when the residual idle gap cannot amortize the core's
  break-even time ``xi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.models.task import Task
from repro.units import MHZ, MW, UJ, unit

__all__ = ["CorePowerModel"]


@dataclass(frozen=True)
class CorePowerModel:
    """Homogeneous DVS core power model.

    Parameters
    ----------
    beta:
        Dynamic power coefficient in mW / MHz**lam
        (``P_dyn(s) = beta * s**lam`` with ``s`` in MHz).
    lam:
        Power exponent ``lam > 1`` (the paper's lambda; 3 for CMOS cubes).
    alpha:
        Static (leakage) power in mW drawn while the core is *active*
        (executing or idling awake).  ``alpha = 0`` models the negligible
        static power regime of Sections 4.1/5.1.
    s_up:
        Maximum speed in MHz.
    s_min:
        Informational minimum hardware frequency in MHz.  The paper's
        continuous-speed theory does not enforce a lower bound, so the
        schedulers ignore it; it is kept so platform presets remain honest
        and so discretization helpers can clamp to it.
    xi:
        Core break-even time in ms: sleeping for a gap shorter than ``xi``
        costs more energy than idling awake (Section 7).  Zero means
        transitions are free.
    """

    beta: float
    lam: float
    alpha: float = 0.0
    s_up: float = float("inf")
    s_min: float = 0.0
    xi: float = 0.0

    def __post_init__(self) -> None:
        if self.beta <= 0.0:
            raise ValueError(f"beta must be positive, got {self.beta}")
        if self.lam <= 1.0:
            raise ValueError(f"lam must exceed 1, got {self.lam}")
        if self.alpha < 0.0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if self.s_up <= 0.0:
            raise ValueError(f"s_up must be positive, got {self.s_up}")
        if self.s_min < 0.0 or self.s_min > self.s_up:
            raise ValueError(f"s_min must lie in [0, s_up], got {self.s_min}")
        if self.xi < 0.0:
            raise ValueError(f"xi must be non-negative, got {self.xi}")

    # -- instantaneous power ---------------------------------------------------

    @unit(MW)
    def dynamic_power(self, speed: float) -> float:
        """Dynamic power ``beta * s**lam`` in mW at ``speed`` MHz."""
        if speed < 0.0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        return self.beta * speed ** self.lam

    @unit(MW)
    def active_power(self, speed: float) -> float:
        """Total active power ``alpha + beta * s**lam`` in mW."""
        return self.alpha + self.dynamic_power(speed)

    # -- energy over an execution -----------------------------------------------

    @unit(UJ)
    def execution_energy(self, workload: float, speed: float) -> float:
        """Energy in uJ to execute ``workload`` kc at constant ``speed`` MHz.

        ``E = (alpha + beta * s**lam) * w / s``; convex in ``s`` with its
        interior minimum at :attr:`s_m`.
        """
        if workload < 0.0:
            raise ValueError(f"workload must be non-negative, got {workload}")
        if workload == 0.0:
            return 0.0
        if speed <= 0.0:
            raise ValueError(f"speed must be positive, got {speed}")
        return self.active_power(speed) * workload / speed

    @unit(UJ)
    def stretch_energy(self, workload: float, duration: float) -> float:
        """Energy in uJ to execute ``workload`` kc evenly over ``duration`` ms."""
        if duration <= 0.0:
            raise ValueError(f"duration must be positive, got {duration}")
        return self.execution_energy(workload, workload / duration)

    @unit(UJ)
    def idle_energy(self, duration: float) -> float:
        """Static energy in uJ burned by an awake-but-idle core."""
        if duration < 0.0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        return self.alpha * duration

    @unit(UJ)
    def sleep_transition_energy(self) -> float:
        """Energy overhead of one sleep/wake cycle, ``alpha * xi`` in uJ."""
        return self.alpha * self.xi

    # -- critical speeds -----------------------------------------------------------

    @property
    @unit(MHZ)
    def s_m(self) -> float:
        """Unclamped critical speed ``(alpha / (beta*(lam-1))) ** (1/lam)``.

        Zero when ``alpha = 0``: with no static power, slower is always
        cheaper and only the deadline clamps the speed.
        """
        if self.alpha == 0.0:
            return 0.0
        return (self.alpha / (self.beta * (self.lam - 1.0))) ** (1.0 / self.lam)

    @unit(MHZ)
    def s_cm(self, alpha_m: float) -> float:
        """Memory-associated critical speed (Section 5.2).

        Minimizes ``(beta*s**lam + alpha + alpha_m) * w / s`` -- the energy
        of a single core *plus* the shared memory kept awake during the
        execution.  Always at least :attr:`s_m`.
        """
        if alpha_m < 0.0:
            raise ValueError(f"alpha_m must be non-negative, got {alpha_m}")
        total_static = self.alpha + alpha_m
        if total_static == 0.0:
            return 0.0
        return (total_static / (self.beta * (self.lam - 1.0))) ** (1.0 / self.lam)

    @unit(MHZ)
    def s0(self, task: Task) -> float:
        """Task-clamped critical speed ``min(max(s_m, s_f), s_up)``."""
        return min(max(self.s_m, task.filled_speed), self.s_up)

    @unit(MHZ)
    def s1(self, task: Task, alpha_m: float) -> float:
        """Task-clamped memory-associated critical speed (Section 5.2)."""
        return min(max(self.s_cm(alpha_m), task.filled_speed), self.s_up)

    @unit(MHZ)
    def s_c(self, task: Task, horizon: float) -> float:
        """Constrained critical speed of Section 7.

        ``s_c = min(max(s_m, s_f), s_up)`` provided the leftover gap after
        finishing at that speed within the maximal interval ``[0, horizon]``
        is at least the core break-even time ``xi``; otherwise running at the
        filled speed (never sleeping the core) is cheaper and ``s_c = s_f``.
        """
        candidate = min(max(self.s_m, task.filled_speed), self.s_up)
        reference = min(self.s_m, self.s_up) if self.s_m > 0.0 else candidate
        if reference <= 0.0:
            return candidate
        if horizon - task.workload / reference >= self.xi:
            return candidate
        return min(task.filled_speed, self.s_up)

    # -- helpers ----------------------------------------------------------------

    @unit(MHZ)
    def clamp_speed(self, speed: float) -> float:
        """Clamp ``speed`` into ``(0, s_up]`` (theory ignores ``s_min``)."""
        return min(speed, self.s_up)

    def with_alpha(self, alpha: float) -> "CorePowerModel":
        """Copy with a different static power (used to toggle regimes)."""
        return CorePowerModel(self.beta, self.lam, alpha, self.s_up, self.s_min, self.xi)

    def with_xi(self, xi: float) -> "CorePowerModel":
        """Copy with a different core break-even time."""
        return CorePowerModel(self.beta, self.lam, self.alpha, self.s_up, self.s_min, xi)

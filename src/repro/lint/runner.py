"""The ``repro check`` runner: target discovery, reporting, exit codes.

Pulls the engine, the rule registry and the baseline together into one
entry point the CLI (and the tests) call:

* :func:`discover_targets` -- resolves what to analyze.  From a repo
  checkout that is ``src/repro`` + ``tests``; from anywhere else it
  falls back to the installed ``repro`` package; with nothing to find it
  reports an *empty* run (exit 0 with a clear message, never a
  traceback -- analyzing nothing is not an error);
* :func:`run_check` -- analyze + baseline subtraction, returning a
  :class:`CheckReport`;
* :func:`render_text` / :func:`render_json` -- human and machine output.
  The JSON document is schema-versioned (``"schema": 1``) because CI
  uploads it as an artifact and downstream tooling parses it.

Exit-code contract (the CLI maps report -> code):

* ``0`` -- no new findings (suppressed/stale-only runs stay green);
* ``1`` -- at least one new, unsuppressed finding;
* ``2`` -- usage errors (unknown rule selector, unreadable baseline).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint import baseline as baseline_mod
from repro.lint.engine import (
    Finding,
    all_rules,
    analyze_paths,
    rule_catalogue,
)

__all__ = [
    "CheckReport",
    "discover_targets",
    "run_check",
    "render_text",
    "render_json",
    "JSON_SCHEMA_VERSION",
]

JSON_SCHEMA_VERSION = 1


@dataclass
class CheckReport:
    """Everything one ``repro check`` run produced."""

    root: str
    targets: List[str] = field(default_factory=list)
    rule_ids: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_entries: List[Dict[str, object]] = field(default_factory=list)
    baseline_path: Optional[str] = None
    baseline_written: Optional[int] = None
    modules_analyzed: int = 0
    message: str = ""

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def discover_targets(
    paths: Optional[Sequence[str]] = None, cwd: Optional[str] = None
) -> Tuple[str, List[str], str]:
    """Resolve ``(root, targets, message)`` for a run.

    Explicit ``paths`` win (root = cwd).  Otherwise prefer the repo
    layout ``<cwd>/src/repro`` (+ ``<cwd>/tests`` when present), then the
    installed ``repro`` package.  When nothing is found the target list
    is empty and ``message`` explains why -- callers treat that as a
    clean no-op, not a failure.
    """
    base = os.path.abspath(cwd or os.getcwd())
    if paths:
        resolved = [os.path.abspath(p) for p in paths]
        missing = [p for p in resolved if not os.path.exists(p)]
        if missing:
            raise ValueError(f"no such path: {', '.join(missing)}")
        return base, resolved, ""
    src_repro = os.path.join(base, "src", "repro")
    if os.path.isdir(src_repro):
        targets = [src_repro]
        tests_dir = os.path.join(base, "tests")
        if os.path.isdir(tests_dir):
            targets.append(tests_dir)
        return base, targets, ""
    try:
        import repro

        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    except ImportError:  # pragma: no cover - repro is always importable here
        package_dir = ""
    if package_dir and os.path.isdir(package_dir):
        # Root one above the package so reported paths read "repro/...".
        return os.path.dirname(package_dir), [package_dir], ""
    return (
        base,
        [],
        "nothing to check: no src/repro or tests directory under "
        f"{base} and no installed repro package",
    )


def run_check(
    paths: Optional[Sequence[str]] = None,
    *,
    cwd: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
    update_baseline: bool = False,
) -> CheckReport:
    """Run the lint pass and return the full report.

    Raises ``ValueError`` for unknown rule selectors or missing explicit
    paths and :class:`repro.lint.baseline.BaselineError` for a corrupt
    baseline file; the CLI maps both to exit code 2.
    """
    root, targets, message = discover_targets(paths, cwd=cwd)
    active = all_rules(rules)
    report = CheckReport(
        root=root,
        targets=[os.path.relpath(t, root).replace(os.sep, "/") for t in targets],
        rule_ids=[rule.id for rule in active],
        message=message,
    )
    if not targets:
        return report

    project, findings = analyze_paths(targets, root=root, rules=active)
    report.modules_analyzed = len(project.modules)
    if not project.modules and not message:
        report.message = (
            "nothing to check: no Python files under "
            + ", ".join(report.targets)
        )

    resolved_baseline = baseline_path or os.path.join(
        root, baseline_mod.BASELINE_DEFAULT
    )
    report.baseline_path = resolved_baseline

    if update_baseline:
        report.baseline_written = baseline_mod.write_baseline(
            resolved_baseline, findings
        )
        report.suppressed = list(findings)
        return report

    base = baseline_mod.load_baseline(resolved_baseline)
    new, suppressed, stale = base.partition(findings)
    report.findings = new
    report.suppressed = suppressed
    report.stale_entries = stale
    return report


def render_text(report: CheckReport) -> str:
    """Human-readable report (what the terminal shows)."""
    lines: List[str] = []
    if report.message:
        lines.append(report.message)
    for finding in report.findings:
        lines.append(finding.render())
    if report.baseline_written is not None:
        lines.append(
            f"baseline: wrote {report.baseline_written} entr"
            f"{'y' if report.baseline_written == 1 else 'ies'} to "
            f"{report.baseline_path}"
        )
    else:
        summary = (
            f"repro check: {len(report.findings)} finding"
            f"{'' if len(report.findings) == 1 else 's'} "
            f"({len(report.suppressed)} baselined) across "
            f"{report.modules_analyzed} modules"
        )
        lines.append(summary)
        if report.stale_entries:
            lines.append(
                f"note: {len(report.stale_entries)} stale baseline "
                "entries no longer match; prune with --write-baseline"
            )
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """Machine-readable report (the CI artifact).

    Schema-versioned and key-sorted: downstream parsers pin
    ``schema == 1`` and diffs of saved artifacts stay stable.
    """
    payload: Dict[str, object] = {
        "schema": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "root": report.root,
        "targets": report.targets,
        "rules": [
            entry
            for entry in rule_catalogue()
            if entry["id"] in set(report.rule_ids)
        ],
        "modules_analyzed": report.modules_analyzed,
        "counts": {
            "new": len(report.findings),
            "suppressed": len(report.suppressed),
            "stale_baseline_entries": len(report.stale_entries),
        },
        "findings": [finding.as_dict() for finding in report.findings],
        "suppressed": [finding.as_dict() for finding in report.suppressed],
        "stale_baseline_entries": report.stale_entries,
        "baseline": report.baseline_path,
        "baseline_written": report.baseline_written,
        "message": report.message,
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)

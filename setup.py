"""Legacy setup shim for offline editable installs (no `wheel` available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Race to idle or not: balancing the memory sleep "
        "time with DVS for energy minimization'"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
)

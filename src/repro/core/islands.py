"""Voltage-frequency islands: the paper's named future work (Section 3).

"For the systems with different voltage clusters, which allow a group of
cores sharing one voltage supply island, we leave them as future work."
This module explores that direction with a deliberately simple, fully
analyzable scheme for **common-release tasks**:

* cores are partitioned into islands; every core in an island runs at the
  island's (single) speed whenever it executes;
* each island holds one task per core (unbounded cores per island) and
  runs at one **constant** speed ``s``;
* task ``i`` on an island executes ``[0, w_i / s]`` -- cores finish in
  workload order and sleep individually (``xi = 0`` model);
* the memory sleeps after the last island finishes.

For a given memory busy end ``b``, island ``I``'s best constant speed is
the clamp of its energy-optimal speed into the feasible range:

    s_I(b) = min( max( s_E, max_i w_i / d_i, max_i w_i / b ), s_up )

where ``s_E`` minimizes ``sum_i (beta s^lam + alpha) w_i / s`` -- the
island-level critical speed, identical in form to ``s_m`` and independent
of the workloads.  The total energy is then a 1-D function of ``b``
(piecewise smooth, minimized by scan + golden refinement).

Islands of size one recover the Section 4.2 per-task structure, which the
test suite asserts; larger islands quantify the energy cost of sharing a
voltage rail (an island's heavy task drags its light tasks to a faster,
costlier speed or vice versa).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.models.platform import Platform
from repro.models.task import Task, TaskSet
from repro.schedule.timeline import ExecutionInterval, Schedule
from repro.utils.solvers import golden_section_minimize

__all__ = ["IslandSolution", "solve_islands_common_release"]

_INF = float("inf")


@dataclass(frozen=True)
class IslandSolution:
    """Constant-speed-per-island schedule for common-release tasks."""

    tasks: TaskSet
    islands: Tuple[Tuple[str, ...], ...]
    island_speeds: Tuple[float, ...]
    busy_end: float
    predicted_energy: float

    def schedule(self) -> Schedule:
        release = self.tasks[0].release
        by_name = {t.name: t for t in self.tasks}
        placements: List[ExecutionInterval] = []
        for members, speed in zip(self.islands, self.island_speeds):
            for name in members:
                task = by_name[name]
                placements.append(
                    ExecutionInterval(
                        name, release, release + task.workload / speed, speed
                    )
                )
        return Schedule.one_task_per_core(placements)


def _island_speed(
    members: Sequence[Task], platform: Platform, busy_end: float
) -> float:
    """Best feasible constant speed for one island given the busy end."""
    core = platform.core
    floor = max(
        max(t.filled_speed for t in members),
        max(t.workload for t in members) / busy_end,
    )
    # The island-level energy-optimal speed equals s_m (per-workload core
    # energy is separable and identical in s across the island's tasks).
    target = core.s_m if core.alpha > 0.0 else 0.0
    return min(max(target, floor), core.s_up)


def solve_islands_common_release(
    tasks: TaskSet,
    platform: Platform,
    island_assignment: Sequence[Sequence[int]],
    *,
    grid: int = 600,
) -> IslandSolution:
    """Constant-speed voltage-island heuristic (see module docstring).

    ``island_assignment`` lists task indices (into the deadline-sorted
    ``tasks``) per island; every task must appear exactly once.
    """
    if not tasks.has_common_release():
        raise ValueError("island scheme requires a common release time")
    if not tasks.is_feasible_at(platform.core.s_up):
        raise ValueError("task set infeasible even at s_up")
    seen = sorted(i for group in island_assignment for i in group)
    if seen != list(range(len(tasks))):
        raise ValueError("island assignment must cover each task exactly once")

    core = platform.core
    alpha_m = platform.memory.alpha_m
    islands = [
        [tasks[i] for i in group] for group in island_assignment if group
    ]
    horizon = tasks.latest_deadline - tasks[0].release

    def energy_at(busy_end: float) -> float:
        if busy_end <= 0.0:
            return _INF
        total = 0.0
        latest = 0.0
        for members in islands:
            speed = _island_speed(members, platform, busy_end)
            if speed > core.s_up * (1.0 + 1e-12):
                return _INF
            for task in members:
                duration = task.workload / speed
                if duration > task.span * (1.0 + 1e-9):
                    return _INF
                total += core.execution_energy(task.workload, speed)
                latest = max(latest, duration)
        if latest > busy_end * (1.0 + 1e-9):
            return _INF
        return total + alpha_m * latest

    min_busy = max(
        max(t.workload for t in members) / core.s_up for members in islands
    )
    best_b, best_e = horizon, energy_at(horizon)
    lo = max(min_busy, 1e-9)
    # In b, the energy falls (compression relieved), dips, then flattens
    # once every island rests at its unconstrained speed -- unimodal up to
    # the plateau, so a direct golden pass finds the dip even when it is
    # narrower than any practical grid step.
    if horizon > lo:
        direct_b, direct_e = golden_section_minimize(energy_at, lo, horizon)
        if direct_e < best_e:
            best_b, best_e = direct_b, direct_e
        step = (horizon - lo) / grid
        for k in range(grid + 1):
            b = lo + step * k
            e = energy_at(b)
            if e < best_e:
                best_b, best_e = b, e
        refined_b, refined_e = golden_section_minimize(
            energy_at, max(lo, best_b - 2 * step), min(horizon, best_b + 2 * step)
        )
        if refined_e < best_e:
            best_b, best_e = refined_b, refined_e
    if not math.isfinite(best_e):
        raise ValueError("no feasible island schedule found")

    speeds = tuple(
        _island_speed(members, platform, best_b) for members in islands
    )
    return IslandSolution(
        tasks=tasks,
        islands=tuple(tuple(t.name for t in members) for members in islands),
        island_speeds=speeds,
        busy_end=best_b,
        predicted_energy=best_e,
    )

"""Platform = homogeneous DVS cores + one shared memory (paper Section 3).

Includes the concrete configuration the paper evaluates on (Section 8.1.3):
ARM Cortex-A57 cores (``beta = 2.53e-7 mW/MHz^3``, ``alpha = 310 mW``,
``lam = 3``, f in [700, 1900] MHz) and a CACTI-modelled 50 nm DRAM whose
leakage ``alpha_m`` is swept over 1..8 W and break-even time ``xi_m`` over
15..70 ms (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.models.memory import MemoryModel
from repro.models.power import CorePowerModel

__all__ = [
    "Platform",
    "arm_cortex_a57",
    "dram_50nm",
    "paper_platform",
]


@dataclass(frozen=True)
class Platform:
    """A multi-core platform with shared main memory.

    Parameters
    ----------
    core:
        Power model shared by all (homogeneous) cores.
    memory:
        Shared main memory model.
    num_cores:
        Number of physical cores; ``None`` models the unbounded-core
        regime of the paper's theory sections (every task gets its own
        core).  The experiments of Section 8 use 8 cores with round-robin
        assignment.
    """

    core: CorePowerModel
    memory: MemoryModel
    num_cores: int | None = None

    def __post_init__(self) -> None:
        if self.num_cores is not None and self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")

    @property
    def unbounded(self) -> bool:
        """True in the unbounded-core regime (Sections 4-7)."""
        return self.num_cores is None

    # -- convenience constructors -------------------------------------------------

    def with_memory(self, memory: MemoryModel) -> "Platform":
        return replace(self, memory=memory)

    def with_core(self, core: CorePowerModel) -> "Platform":
        return replace(self, core=core)

    def with_num_cores(self, num_cores: int | None) -> "Platform":
        return replace(self, num_cores=num_cores)

    def negligible_core_static(self) -> "Platform":
        """Copy in the ``alpha = 0`` regime (Sections 4.1 / 5.1)."""
        return self.with_core(self.core.with_alpha(0.0))

    def zero_transition_overheads(self) -> "Platform":
        """Copy with ``xi = xi_m = 0`` (the free-transition theory regime)."""
        return Platform(
            self.core.with_xi(0.0),
            self.memory.with_xi_m(0.0),
            self.num_cores,
        )


def arm_cortex_a57(*, alpha: float = 310.0, xi: float = 0.0) -> CorePowerModel:
    """ARM Cortex-A57 power model from Section 8.1.3.

    ``beta = 2.53e-7 mW/MHz^3``, ``lam = 3``, static power 310 mW and a
    700-1900 MHz frequency range.  At 1900 MHz the dynamic power evaluates
    to ~1.74 W, matching the AnandTech measurements the paper cites.
    """
    return CorePowerModel(
        beta=2.53e-7,
        lam=3.0,
        alpha=alpha,
        s_up=1900.0,
        s_min=700.0,
        xi=xi,
    )


def dram_50nm(*, alpha_m: float = 4000.0, xi_m: float = 40.0) -> MemoryModel:
    """50 nm DRAM model with the Table 4 default parameters.

    Defaults are the starred entries of Table 4: ``alpha_m = 4 W``
    (4000 mW) and ``xi_m = 40 ms``.
    """
    return MemoryModel(alpha_m=alpha_m, xi_m=xi_m)


def paper_platform(
    *,
    num_cores: int | None = 8,
    alpha: float = 310.0,
    alpha_m: float = 4000.0,
    xi: float = 0.0,
    xi_m: float = 40.0,
) -> Platform:
    """The full Section 8 evaluation platform: 8x Cortex-A57 + 50 nm DRAM."""
    return Platform(
        core=arm_cortex_a57(alpha=alpha, xi=xi),
        memory=dram_50nm(alpha_m=alpha_m, xi_m=xi_m),
        num_cores=num_cores,
    )

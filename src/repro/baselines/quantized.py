"""Discrete-DVFS wrapper for any online policy.

Wraps an :class:`~repro.sim.engine.OnlinePolicy` and splits every emitted
execution interval onto a discrete frequency grid using the two-level
emulation of :mod:`repro.core.discrete` -- the online realization of the
paper's Ishihara-Yasuura argument that continuous-speed schemes port to
discrete-voltage hardware with negligible loss.

Timing is preserved exactly (each continuous interval becomes one or two
back-to-back pieces in the same window), so deadlines, the memory's busy
union and the common idle time are unchanged; only the core dynamic energy
picks up the convexity (chord) overhead.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.discrete import split_interval
from repro.models.task import Task
from repro.schedule.timeline import ExecutionInterval
from repro.sim.engine import OnlinePolicy

__all__ = ["QuantizedPolicy"]


class QuantizedPolicy:
    """Run ``inner`` but emit only speeds from ``levels``."""

    def __init__(self, inner: OnlinePolicy, levels: Sequence[float]):
        if not levels:
            raise ValueError("need a non-empty level grid")
        self.inner = inner
        self.levels = sorted(levels)
        self.memory_policy = inner.memory_policy
        self.core_policy = inner.core_policy

    def on_arrival(self, now: float, tasks: Sequence[Task]) -> None:
        self.inner.on_arrival(now, tasks)

    def run_until(
        self, now: float, until: float
    ) -> List[Tuple[int, ExecutionInterval]]:
        out: List[Tuple[int, ExecutionInterval]] = []
        for core, interval in self.inner.run_until(now, until):
            for piece in split_interval(interval, self.levels):
                out.append((core, piece))
        return out

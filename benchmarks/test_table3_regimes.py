"""Table 3: optimal memory sleep time under transition-overhead regimes.

Regenerates the four regime rows with constructed instances and checks the
solver lands where the table says it should.
"""

from __future__ import annotations

from repro.experiments import table3_rows, table4_rows

from conftest import emit


def test_table3_regimes(benchmark):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    emit(
        "Table 3: optimal Delta_mi^(xi) by regime",
        (
            f"  {row['case']:<22s} (xi={row['xi']}, xi_m={row['xi_m']}): "
            f"Delta = {row['delta_ms']} ms -> {row['expected']}"
            for row in rows
        ),
    )
    by_case = {row["case"]: row for row in rows}
    assert float(by_case["xi <= Delta < xi_m"]["delta_ms"]) == 0.0
    assert float(by_case["Delta < xi, xi_m"]["delta_ms"]) == 0.0
    assert float(by_case["Delta >= xi, xi_m"]["delta_ms"]) > 0.0


def test_table4_parameter_grid():
    rows = table4_rows()
    emit(
        "Table 4: evaluation parameter grid (stars = defaults)",
        (
            f"  point {row['point']}: x={row['x_ms']} ms, "
            f"alpha_m={row['alpha_m_w']} W, xi_m={row['xi_m_ms']} ms"
            for row in rows
        ),
    )
    assert len(rows) == 8

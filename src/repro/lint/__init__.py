"""``repro.lint`` -- project-specific static analysis (``repro check``).

The repo enforces several invariants that generic linters cannot see:

* **determinism** -- cache keys, result rows and solver outputs must be
  bit-reproducible (no wall-clock, no unseeded randomness, no set-order
  dependence, no computed-float equality in solver code);
* **backend purity** -- the scalar/numpy dual numeric core stays
  byte-compatible only while every ndarray touch goes through
  :mod:`repro.core.vectorized` and ``REPRO_NUMERIC`` is read through its
  sanctioned accessor;
* **concurrency** -- the solve service's locks are acquired in a
  consistent order, never held across ``await``, and the metrics
  registry's shared state is only mutated under its lock;
* **units** -- energy/power/time/speed quantities (all ``float``) are
  not additively mixed without conversion (see :mod:`repro.units`).

This package turns those conventions into machine-checked rules: a small
AST engine (:mod:`repro.lint.engine`), one module per rule family, a
baseline mechanism (:mod:`repro.lint.baseline`) that suppresses accepted
legacy findings so CI only fails on *new* violations, and the CLI runner
(:mod:`repro.lint.runner`) behind ``repro check``.

See docs/STATIC_ANALYSIS.md for the rule catalogue and how to add rules.
"""

from __future__ import annotations

from repro.lint.engine import (
    Finding,
    Project,
    Rule,
    SourceModule,
    all_rules,
    analyze_paths,
    load_rules,
    rule_catalogue,
)
from repro.lint.baseline import (
    BASELINE_DEFAULT,
    Baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.runner import CheckReport, render_json, render_text, run_check

__all__ = [
    "Finding",
    "Project",
    "Rule",
    "SourceModule",
    "all_rules",
    "analyze_paths",
    "load_rules",
    "rule_catalogue",
    "BASELINE_DEFAULT",
    "Baseline",
    "load_baseline",
    "write_baseline",
    "CheckReport",
    "render_json",
    "render_text",
    "run_check",
]

"""Tests for the Section 4 optimal common-release schemes.

The key assertions:

* the scheme's closed-form energy equals the generic accountant's price of
  the emitted schedule (internal consistency);
* the scheme matches the slow numeric reference optimizer (optimality,
  Theorems 2 and 3);
* the binary-search variant (Lemma 1) agrees with the linear scan;
* schedules are always feasible.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    solve_common_release,
    solve_common_release_alpha_nonzero,
    solve_common_release_alpha_zero,
)
from repro.core.reference import (
    common_release_energy_at_delta,
    reference_common_release,
)
from repro.energy import SleepPolicy, account
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import validate_schedule


def random_common_release_tasks(rng: random.Random, n: int) -> TaskSet:
    return TaskSet(
        Task(0.0, rng.uniform(5.0, 120.0), rng.uniform(50.0, 5000.0))
        for _ in range(n)
    )


@pytest.fixture
def platform_zero():
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1000.0),
        MemoryModel(alpha_m=10.0),
    )


@pytest.fixture
def platform_alpha():
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=2.0, s_up=1000.0),
        MemoryModel(alpha_m=10.0),
    )


class TestAlphaZeroScheme:
    def test_rejects_non_common_release(self, platform_zero):
        ts = TaskSet([Task(0, 10, 5), Task(1, 20, 5)])
        with pytest.raises(ValueError, match="common release"):
            solve_common_release_alpha_zero(ts, platform_zero)

    def test_rejects_infeasible_set(self, platform_zero):
        ts = TaskSet([Task(0, 1.0, 5000.0)])  # needs 5000 MHz > 1000
        with pytest.raises(ValueError, match="infeasible"):
            solve_common_release_alpha_zero(ts, platform_zero)

    def test_single_task_closed_form(self, platform_zero):
        """One task: minimize alpha_m*(d-Delta) + beta w^3 (d-Delta)^-2.

        Optimal busy length b* = (2 beta w^3 / alpha_m)^(1/3) (Eq. (4)).
        """
        w, d = 1000.0, 100.0
        ts = TaskSet([Task(0.0, d, w)])
        sol = solve_common_release_alpha_zero(ts, platform_zero)
        beta, alpha_m = 1e-6, 10.0
        busy_star = (2.0 * beta * w**3 / alpha_m) ** (1.0 / 3.0)
        assert sol.memory_busy_length == pytest.approx(busy_star, rel=1e-9)
        assert sol.delta == pytest.approx(d - busy_star, rel=1e-9)

    def test_predicted_energy_matches_accountant(self, platform_zero):
        ts = TaskSet(
            [Task(0, 40, 800.0), Task(0, 70, 1500.0), Task(0, 100, 400.0)]
        )
        sol = solve_common_release_alpha_zero(ts, platform_zero)
        sched = sol.schedule()
        validate_schedule(sched, ts, max_speed=1000.0, require_non_preemptive=True)
        bd = account(
            sched,
            platform_zero,
            horizon=(0.0, ts.latest_deadline),
            memory_policy=SleepPolicy.BREAK_EVEN,
        )
        assert bd.total == pytest.approx(sol.predicted_energy, rel=1e-9)
        assert bd.memory_busy_time == pytest.approx(sol.memory_busy_length, rel=1e-9)

    def test_matches_reference_optimizer(self, platform_zero):
        rng = random.Random(7)
        for _ in range(10):
            ts = random_common_release_tasks(rng, rng.randint(1, 8))
            sol = solve_common_release_alpha_zero(ts, platform_zero)
            _, ref_energy = reference_common_release(ts, platform_zero)
            assert sol.predicted_energy == pytest.approx(ref_energy, rel=1e-5)

    def test_binary_matches_scan(self, platform_zero):
        rng = random.Random(21)
        for _ in range(30):
            ts = random_common_release_tasks(rng, rng.randint(1, 12))
            scan = solve_common_release_alpha_zero(ts, platform_zero, method="scan")
            binary = solve_common_release_alpha_zero(ts, platform_zero, method="binary")
            assert binary.predicted_energy == pytest.approx(
                scan.predicted_energy, rel=1e-9
            )
            assert binary.delta == pytest.approx(scan.delta, abs=1e-7)

    def test_huge_memory_power_forces_racing(self):
        """alpha_m -> inf drives Delta toward its speed-capped maximum."""
        core = CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1000.0)
        hungry = Platform(core, MemoryModel(alpha_m=1e9))
        ts = TaskSet([Task(0, 100, 1000.0), Task(0, 50, 500.0)])
        sol = solve_common_release_alpha_zero(ts, hungry)
        # Busy length pinned at max w / s_up = 1 ms.
        assert sol.memory_busy_length == pytest.approx(1.0, rel=1e-6)

    def test_tiny_memory_power_prefers_filled_speeds(self):
        """alpha_m -> 0 makes stretching every task to its deadline optimal."""
        core = CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1000.0)
        frugal = Platform(core, MemoryModel(alpha_m=1e-12))
        ts = TaskSet([Task(0, 100, 1000.0), Task(0, 50, 500.0)])
        sol = solve_common_release_alpha_zero(ts, frugal)
        assert sol.delta == pytest.approx(0.0, abs=1e-3)
        for task in ts:
            assert sol.speeds[task.name] == pytest.approx(
                task.filled_speed, rel=1e-3
            )

    def test_energy_at_delta_is_minimal_at_solution(self, platform_zero):
        ts = TaskSet([Task(0, 60, 900.0), Task(0, 90, 1200.0)])
        sol = solve_common_release_alpha_zero(ts, platform_zero)
        e_star = common_release_energy_at_delta(ts, platform_zero, sol.delta)
        assert e_star == pytest.approx(sol.predicted_energy, rel=1e-9)
        for probe in [0.0, 0.3, 0.7, 0.95]:
            delta = probe * (ts.latest_deadline - 1.0)
            assert (
                common_release_energy_at_delta(ts, platform_zero, delta)
                >= e_star - 1e-9
            )


class TestAlphaNonzeroScheme:
    def test_rejects_alpha_zero_platform(self, platform_zero):
        ts = TaskSet([Task(0, 10, 5)])
        with pytest.raises(ValueError, match="alpha"):
            solve_common_release_alpha_nonzero(ts, platform_zero)

    def test_single_lazy_task_runs_at_critical_speed(self, platform_alpha):
        """A task with huge slack runs at s_m; memory sleeps the rest."""
        core = platform_alpha.core
        ts = TaskSet([Task(0.0, 1000.0, 100.0)])
        sol = solve_common_release_alpha_nonzero(ts, platform_alpha)
        # With alpha_m >> alpha the memory term dominates and the single
        # aligned task is pushed above s_0; its speed lies in [s_0, s_up].
        speed = sol.speeds["T1"]
        assert core.s0(ts[0]) - 1e-9 <= speed <= core.s_up + 1e-9

    def test_predicted_energy_matches_accountant(self, platform_alpha):
        ts = TaskSet(
            [Task(0, 40, 800.0), Task(0, 70, 1500.0), Task(0, 100, 400.0)]
        )
        sol = solve_common_release_alpha_nonzero(ts, platform_alpha)
        sched = sol.schedule()
        validate_schedule(sched, ts, max_speed=1000.0, require_non_preemptive=True)
        bd = account(
            sched,
            platform_alpha,
            horizon=(0.0, ts.latest_deadline),
        )
        assert bd.total == pytest.approx(sol.predicted_energy, rel=1e-9)

    def test_matches_reference_optimizer(self, platform_alpha):
        rng = random.Random(13)
        for _ in range(10):
            ts = random_common_release_tasks(rng, rng.randint(1, 8))
            sol = solve_common_release_alpha_nonzero(ts, platform_alpha)
            _, ref_energy = reference_common_release(ts, platform_alpha)
            assert sol.predicted_energy == pytest.approx(ref_energy, rel=1e-5)

    def test_speeds_never_below_critical(self, platform_alpha):
        rng = random.Random(99)
        for _ in range(10):
            ts = random_common_release_tasks(rng, rng.randint(2, 10))
            sol = solve_common_release_alpha_nonzero(ts, platform_alpha)
            for task in ts:
                s0 = platform_alpha.core.s0(task)
                assert sol.speeds[task.name] >= s0 - 1e-6

    def test_common_deadline_special_case(self, platform_alpha):
        """All tasks share release AND deadline: single case, Eq. (7)/(8)."""
        ts = TaskSet([Task(0, 50, 700.0), Task(0, 50, 900.0), Task(0, 50, 400.0)])
        sol = solve_common_release_alpha_nonzero(ts, platform_alpha)
        _, ref_energy = reference_common_release(ts, platform_alpha)
        assert sol.predicted_energy == pytest.approx(ref_energy, rel=1e-6)


class TestDispatch:
    def test_dispatch_selects_regime(self, platform_zero, platform_alpha):
        ts = TaskSet([Task(0, 50, 700.0), Task(0, 80, 900.0)])
        assert solve_common_release(ts, platform_zero).alpha_zero
        assert not solve_common_release(ts, platform_alpha).alpha_zero


@settings(deadline=None, max_examples=25)
@given(
    data=st.lists(
        st.tuples(st.floats(5.0, 120.0), st.floats(50.0, 5000.0)),
        min_size=1,
        max_size=8,
    ),
    alpha=st.sampled_from([0.0, 0.5, 2.0, 20.0]),
    alpha_m=st.floats(0.5, 100.0),
)
def test_property_scheme_beats_or_matches_reference(data, alpha, alpha_m):
    """The closed-form scheme is never worse than the numeric reference.

    (Allowing a hair of slack for the reference's grid resolution.)
    """
    ts = TaskSet(Task(0.0, d, w) for d, w in data)
    platform = Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=2000.0),
        MemoryModel(alpha_m=alpha_m),
    )
    sol = solve_common_release(ts, platform)
    _, ref_energy = reference_common_release(ts, platform, grid=800)
    assert sol.predicted_energy <= ref_energy * (1.0 + 1e-6) + 1e-9
    # And the reference can never beat the scheme by more than grid error.
    assert sol.predicted_energy >= ref_energy * (1.0 - 1e-3) - 1e-9
